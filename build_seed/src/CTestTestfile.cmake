# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build_seed/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("obs")
subdirs("sim")
subdirs("net")
subdirs("mpi")
subdirs("fault")
subdirs("pfs")
subdirs("mpiio")
subdirs("bio")
subdirs("trace")
subdirs("core")
