file(REMOVE_RECURSE
  "CMakeFiles/s3asim_sim.dir/lp_scheduler.cpp.o"
  "CMakeFiles/s3asim_sim.dir/lp_scheduler.cpp.o.d"
  "CMakeFiles/s3asim_sim.dir/scheduler.cpp.o"
  "CMakeFiles/s3asim_sim.dir/scheduler.cpp.o.d"
  "libs3asim_sim.a"
  "libs3asim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3asim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
