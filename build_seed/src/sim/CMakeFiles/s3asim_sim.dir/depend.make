# Empty dependencies file for s3asim_sim.
# This may be replaced when dependencies are built.
