file(REMOVE_RECURSE
  "libs3asim_sim.a"
)
