file(REMOVE_RECURSE
  "libs3asim_fault.a"
)
