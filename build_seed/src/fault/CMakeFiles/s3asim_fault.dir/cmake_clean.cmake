file(REMOVE_RECURSE
  "CMakeFiles/s3asim_fault.dir/fault.cpp.o"
  "CMakeFiles/s3asim_fault.dir/fault.cpp.o.d"
  "libs3asim_fault.a"
  "libs3asim_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3asim_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
