# Empty dependencies file for s3asim_fault.
# This may be replaced when dependencies are built.
