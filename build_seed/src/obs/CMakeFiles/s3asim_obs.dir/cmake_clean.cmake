file(REMOVE_RECURSE
  "CMakeFiles/s3asim_obs.dir/metrics.cpp.o"
  "CMakeFiles/s3asim_obs.dir/metrics.cpp.o.d"
  "CMakeFiles/s3asim_obs.dir/schema.cpp.o"
  "CMakeFiles/s3asim_obs.dir/schema.cpp.o.d"
  "libs3asim_obs.a"
  "libs3asim_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3asim_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
