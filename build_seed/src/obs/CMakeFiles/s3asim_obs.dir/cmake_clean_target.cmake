file(REMOVE_RECURSE
  "libs3asim_obs.a"
)
