# Empty dependencies file for s3asim_obs.
# This may be replaced when dependencies are built.
