file(REMOVE_RECURSE
  "CMakeFiles/s3asim_trace.dir/trace.cpp.o"
  "CMakeFiles/s3asim_trace.dir/trace.cpp.o.d"
  "libs3asim_trace.a"
  "libs3asim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3asim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
