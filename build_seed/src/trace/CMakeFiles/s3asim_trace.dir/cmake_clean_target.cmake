file(REMOVE_RECURSE
  "libs3asim_trace.a"
)
