# Empty dependencies file for s3asim_trace.
# This may be replaced when dependencies are built.
