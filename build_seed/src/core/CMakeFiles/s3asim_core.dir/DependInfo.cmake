
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config_loader.cpp" "src/core/CMakeFiles/s3asim_core.dir/config_loader.cpp.o" "gcc" "src/core/CMakeFiles/s3asim_core.dir/config_loader.cpp.o.d"
  "/root/repo/src/core/fasta_workload.cpp" "src/core/CMakeFiles/s3asim_core.dir/fasta_workload.cpp.o" "gcc" "src/core/CMakeFiles/s3asim_core.dir/fasta_workload.cpp.o.d"
  "/root/repo/src/core/master_runtime.cpp" "src/core/CMakeFiles/s3asim_core.dir/master_runtime.cpp.o" "gcc" "src/core/CMakeFiles/s3asim_core.dir/master_runtime.cpp.o.d"
  "/root/repo/src/core/obs_bridge.cpp" "src/core/CMakeFiles/s3asim_core.dir/obs_bridge.cpp.o" "gcc" "src/core/CMakeFiles/s3asim_core.dir/obs_bridge.cpp.o.d"
  "/root/repo/src/core/runtime.cpp" "src/core/CMakeFiles/s3asim_core.dir/runtime.cpp.o" "gcc" "src/core/CMakeFiles/s3asim_core.dir/runtime.cpp.o.d"
  "/root/repo/src/core/scale_model.cpp" "src/core/CMakeFiles/s3asim_core.dir/scale_model.cpp.o" "gcc" "src/core/CMakeFiles/s3asim_core.dir/scale_model.cpp.o.d"
  "/root/repo/src/core/serving.cpp" "src/core/CMakeFiles/s3asim_core.dir/serving.cpp.o" "gcc" "src/core/CMakeFiles/s3asim_core.dir/serving.cpp.o.d"
  "/root/repo/src/core/simulation.cpp" "src/core/CMakeFiles/s3asim_core.dir/simulation.cpp.o" "gcc" "src/core/CMakeFiles/s3asim_core.dir/simulation.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/core/CMakeFiles/s3asim_core.dir/stats.cpp.o" "gcc" "src/core/CMakeFiles/s3asim_core.dir/stats.cpp.o.d"
  "/root/repo/src/core/strategies/io_strategy.cpp" "src/core/CMakeFiles/s3asim_core.dir/strategies/io_strategy.cpp.o" "gcc" "src/core/CMakeFiles/s3asim_core.dir/strategies/io_strategy.cpp.o.d"
  "/root/repo/src/core/strategies/mw.cpp" "src/core/CMakeFiles/s3asim_core.dir/strategies/mw.cpp.o" "gcc" "src/core/CMakeFiles/s3asim_core.dir/strategies/mw.cpp.o.d"
  "/root/repo/src/core/strategies/registry.cpp" "src/core/CMakeFiles/s3asim_core.dir/strategies/registry.cpp.o" "gcc" "src/core/CMakeFiles/s3asim_core.dir/strategies/registry.cpp.o.d"
  "/root/repo/src/core/strategies/ww_aggr.cpp" "src/core/CMakeFiles/s3asim_core.dir/strategies/ww_aggr.cpp.o" "gcc" "src/core/CMakeFiles/s3asim_core.dir/strategies/ww_aggr.cpp.o.d"
  "/root/repo/src/core/strategies/ww_coll.cpp" "src/core/CMakeFiles/s3asim_core.dir/strategies/ww_coll.cpp.o" "gcc" "src/core/CMakeFiles/s3asim_core.dir/strategies/ww_coll.cpp.o.d"
  "/root/repo/src/core/strategies/ww_coll_list.cpp" "src/core/CMakeFiles/s3asim_core.dir/strategies/ww_coll_list.cpp.o" "gcc" "src/core/CMakeFiles/s3asim_core.dir/strategies/ww_coll_list.cpp.o.d"
  "/root/repo/src/core/strategies/ww_file_per_process.cpp" "src/core/CMakeFiles/s3asim_core.dir/strategies/ww_file_per_process.cpp.o" "gcc" "src/core/CMakeFiles/s3asim_core.dir/strategies/ww_file_per_process.cpp.o.d"
  "/root/repo/src/core/strategies/ww_list.cpp" "src/core/CMakeFiles/s3asim_core.dir/strategies/ww_list.cpp.o" "gcc" "src/core/CMakeFiles/s3asim_core.dir/strategies/ww_list.cpp.o.d"
  "/root/repo/src/core/strategies/ww_posix.cpp" "src/core/CMakeFiles/s3asim_core.dir/strategies/ww_posix.cpp.o" "gcc" "src/core/CMakeFiles/s3asim_core.dir/strategies/ww_posix.cpp.o.d"
  "/root/repo/src/core/worker_runtime.cpp" "src/core/CMakeFiles/s3asim_core.dir/worker_runtime.cpp.o" "gcc" "src/core/CMakeFiles/s3asim_core.dir/worker_runtime.cpp.o.d"
  "/root/repo/src/core/workload.cpp" "src/core/CMakeFiles/s3asim_core.dir/workload.cpp.o" "gcc" "src/core/CMakeFiles/s3asim_core.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_seed/src/bio/CMakeFiles/s3asim_bio.dir/DependInfo.cmake"
  "/root/repo/build_seed/src/fault/CMakeFiles/s3asim_fault.dir/DependInfo.cmake"
  "/root/repo/build_seed/src/obs/CMakeFiles/s3asim_obs.dir/DependInfo.cmake"
  "/root/repo/build_seed/src/trace/CMakeFiles/s3asim_trace.dir/DependInfo.cmake"
  "/root/repo/build_seed/src/util/CMakeFiles/s3asim_util.dir/DependInfo.cmake"
  "/root/repo/build_seed/src/sim/CMakeFiles/s3asim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
