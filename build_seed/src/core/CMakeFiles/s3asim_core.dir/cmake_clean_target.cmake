file(REMOVE_RECURSE
  "libs3asim_core.a"
)
