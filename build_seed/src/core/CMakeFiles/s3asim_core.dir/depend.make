# Empty dependencies file for s3asim_core.
# This may be replaced when dependencies are built.
