file(REMOVE_RECURSE
  "libs3asim_bio.a"
)
