
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bio/align.cpp" "src/bio/CMakeFiles/s3asim_bio.dir/align.cpp.o" "gcc" "src/bio/CMakeFiles/s3asim_bio.dir/align.cpp.o.d"
  "/root/repo/src/bio/blast.cpp" "src/bio/CMakeFiles/s3asim_bio.dir/blast.cpp.o" "gcc" "src/bio/CMakeFiles/s3asim_bio.dir/blast.cpp.o.d"
  "/root/repo/src/bio/evalue.cpp" "src/bio/CMakeFiles/s3asim_bio.dir/evalue.cpp.o" "gcc" "src/bio/CMakeFiles/s3asim_bio.dir/evalue.cpp.o.d"
  "/root/repo/src/bio/fasta.cpp" "src/bio/CMakeFiles/s3asim_bio.dir/fasta.cpp.o" "gcc" "src/bio/CMakeFiles/s3asim_bio.dir/fasta.cpp.o.d"
  "/root/repo/src/bio/generator.cpp" "src/bio/CMakeFiles/s3asim_bio.dir/generator.cpp.o" "gcc" "src/bio/CMakeFiles/s3asim_bio.dir/generator.cpp.o.d"
  "/root/repo/src/bio/kmer_index.cpp" "src/bio/CMakeFiles/s3asim_bio.dir/kmer_index.cpp.o" "gcc" "src/bio/CMakeFiles/s3asim_bio.dir/kmer_index.cpp.o.d"
  "/root/repo/src/bio/report.cpp" "src/bio/CMakeFiles/s3asim_bio.dir/report.cpp.o" "gcc" "src/bio/CMakeFiles/s3asim_bio.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_seed/src/util/CMakeFiles/s3asim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
