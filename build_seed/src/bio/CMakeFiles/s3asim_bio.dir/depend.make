# Empty dependencies file for s3asim_bio.
# This may be replaced when dependencies are built.
