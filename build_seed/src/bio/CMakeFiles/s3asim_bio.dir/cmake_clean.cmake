file(REMOVE_RECURSE
  "CMakeFiles/s3asim_bio.dir/align.cpp.o"
  "CMakeFiles/s3asim_bio.dir/align.cpp.o.d"
  "CMakeFiles/s3asim_bio.dir/blast.cpp.o"
  "CMakeFiles/s3asim_bio.dir/blast.cpp.o.d"
  "CMakeFiles/s3asim_bio.dir/evalue.cpp.o"
  "CMakeFiles/s3asim_bio.dir/evalue.cpp.o.d"
  "CMakeFiles/s3asim_bio.dir/fasta.cpp.o"
  "CMakeFiles/s3asim_bio.dir/fasta.cpp.o.d"
  "CMakeFiles/s3asim_bio.dir/generator.cpp.o"
  "CMakeFiles/s3asim_bio.dir/generator.cpp.o.d"
  "CMakeFiles/s3asim_bio.dir/kmer_index.cpp.o"
  "CMakeFiles/s3asim_bio.dir/kmer_index.cpp.o.d"
  "CMakeFiles/s3asim_bio.dir/report.cpp.o"
  "CMakeFiles/s3asim_bio.dir/report.cpp.o.d"
  "libs3asim_bio.a"
  "libs3asim_bio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3asim_bio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
