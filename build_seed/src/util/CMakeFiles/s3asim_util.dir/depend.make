# Empty dependencies file for s3asim_util.
# This may be replaced when dependencies are built.
