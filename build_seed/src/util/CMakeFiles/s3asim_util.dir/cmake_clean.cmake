file(REMOVE_RECURSE
  "CMakeFiles/s3asim_util.dir/csv.cpp.o"
  "CMakeFiles/s3asim_util.dir/csv.cpp.o.d"
  "CMakeFiles/s3asim_util.dir/histogram.cpp.o"
  "CMakeFiles/s3asim_util.dir/histogram.cpp.o.d"
  "CMakeFiles/s3asim_util.dir/json.cpp.o"
  "CMakeFiles/s3asim_util.dir/json.cpp.o.d"
  "CMakeFiles/s3asim_util.dir/keyval.cpp.o"
  "CMakeFiles/s3asim_util.dir/keyval.cpp.o.d"
  "CMakeFiles/s3asim_util.dir/log.cpp.o"
  "CMakeFiles/s3asim_util.dir/log.cpp.o.d"
  "CMakeFiles/s3asim_util.dir/stats.cpp.o"
  "CMakeFiles/s3asim_util.dir/stats.cpp.o.d"
  "CMakeFiles/s3asim_util.dir/table.cpp.o"
  "CMakeFiles/s3asim_util.dir/table.cpp.o.d"
  "CMakeFiles/s3asim_util.dir/units.cpp.o"
  "CMakeFiles/s3asim_util.dir/units.cpp.o.d"
  "libs3asim_util.a"
  "libs3asim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3asim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
