file(REMOVE_RECURSE
  "libs3asim_util.a"
)
