file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/test_cache_identity.cpp.o"
  "CMakeFiles/test_integration.dir/test_cache_identity.cpp.o.d"
  "CMakeFiles/test_integration.dir/test_cross_layer.cpp.o"
  "CMakeFiles/test_integration.dir/test_cross_layer.cpp.o.d"
  "CMakeFiles/test_integration.dir/test_engine_identity.cpp.o"
  "CMakeFiles/test_integration.dir/test_engine_identity.cpp.o.d"
  "CMakeFiles/test_integration.dir/test_observability_determinism.cpp.o"
  "CMakeFiles/test_integration.dir/test_observability_determinism.cpp.o.d"
  "CMakeFiles/test_integration.dir/test_random_configs.cpp.o"
  "CMakeFiles/test_integration.dir/test_random_configs.cpp.o.d"
  "CMakeFiles/test_integration.dir/test_sweep_determinism.cpp.o"
  "CMakeFiles/test_integration.dir/test_sweep_determinism.cpp.o.d"
  "test_integration"
  "test_integration.pdb"
  "test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
