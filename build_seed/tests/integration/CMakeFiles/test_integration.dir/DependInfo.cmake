
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/test_cache_identity.cpp" "tests/integration/CMakeFiles/test_integration.dir/test_cache_identity.cpp.o" "gcc" "tests/integration/CMakeFiles/test_integration.dir/test_cache_identity.cpp.o.d"
  "/root/repo/tests/integration/test_cross_layer.cpp" "tests/integration/CMakeFiles/test_integration.dir/test_cross_layer.cpp.o" "gcc" "tests/integration/CMakeFiles/test_integration.dir/test_cross_layer.cpp.o.d"
  "/root/repo/tests/integration/test_engine_identity.cpp" "tests/integration/CMakeFiles/test_integration.dir/test_engine_identity.cpp.o" "gcc" "tests/integration/CMakeFiles/test_integration.dir/test_engine_identity.cpp.o.d"
  "/root/repo/tests/integration/test_observability_determinism.cpp" "tests/integration/CMakeFiles/test_integration.dir/test_observability_determinism.cpp.o" "gcc" "tests/integration/CMakeFiles/test_integration.dir/test_observability_determinism.cpp.o.d"
  "/root/repo/tests/integration/test_random_configs.cpp" "tests/integration/CMakeFiles/test_integration.dir/test_random_configs.cpp.o" "gcc" "tests/integration/CMakeFiles/test_integration.dir/test_random_configs.cpp.o.d"
  "/root/repo/tests/integration/test_sweep_determinism.cpp" "tests/integration/CMakeFiles/test_integration.dir/test_sweep_determinism.cpp.o" "gcc" "tests/integration/CMakeFiles/test_integration.dir/test_sweep_determinism.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_seed/src/core/CMakeFiles/s3asim_core.dir/DependInfo.cmake"
  "/root/repo/build_seed/bench/CMakeFiles/s3asim_bench_common.dir/DependInfo.cmake"
  "/root/repo/build_seed/src/bio/CMakeFiles/s3asim_bio.dir/DependInfo.cmake"
  "/root/repo/build_seed/src/fault/CMakeFiles/s3asim_fault.dir/DependInfo.cmake"
  "/root/repo/build_seed/src/trace/CMakeFiles/s3asim_trace.dir/DependInfo.cmake"
  "/root/repo/build_seed/src/sim/CMakeFiles/s3asim_sim.dir/DependInfo.cmake"
  "/root/repo/build_seed/src/obs/CMakeFiles/s3asim_obs.dir/DependInfo.cmake"
  "/root/repo/build_seed/src/util/CMakeFiles/s3asim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
