# CMake generated Testfile for 
# Source directory: /root/repo/tests/bio
# Build directory: /root/repo/build_seed/tests/bio
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build_seed/tests/bio/test_bio[1]_include.cmake")
