file(REMOVE_RECURSE
  "CMakeFiles/test_bio.dir/test_align.cpp.o"
  "CMakeFiles/test_bio.dir/test_align.cpp.o.d"
  "CMakeFiles/test_bio.dir/test_blast.cpp.o"
  "CMakeFiles/test_bio.dir/test_blast.cpp.o.d"
  "CMakeFiles/test_bio.dir/test_evalue.cpp.o"
  "CMakeFiles/test_bio.dir/test_evalue.cpp.o.d"
  "CMakeFiles/test_bio.dir/test_fasta.cpp.o"
  "CMakeFiles/test_bio.dir/test_fasta.cpp.o.d"
  "CMakeFiles/test_bio.dir/test_generator.cpp.o"
  "CMakeFiles/test_bio.dir/test_generator.cpp.o.d"
  "CMakeFiles/test_bio.dir/test_kmer_index.cpp.o"
  "CMakeFiles/test_bio.dir/test_kmer_index.cpp.o.d"
  "CMakeFiles/test_bio.dir/test_report.cpp.o"
  "CMakeFiles/test_bio.dir/test_report.cpp.o.d"
  "test_bio"
  "test_bio.pdb"
  "test_bio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
