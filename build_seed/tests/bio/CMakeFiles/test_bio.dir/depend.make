# Empty dependencies file for test_bio.
# This may be replaced when dependencies are built.
