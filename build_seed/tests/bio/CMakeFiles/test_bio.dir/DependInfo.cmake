
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bio/test_align.cpp" "tests/bio/CMakeFiles/test_bio.dir/test_align.cpp.o" "gcc" "tests/bio/CMakeFiles/test_bio.dir/test_align.cpp.o.d"
  "/root/repo/tests/bio/test_blast.cpp" "tests/bio/CMakeFiles/test_bio.dir/test_blast.cpp.o" "gcc" "tests/bio/CMakeFiles/test_bio.dir/test_blast.cpp.o.d"
  "/root/repo/tests/bio/test_evalue.cpp" "tests/bio/CMakeFiles/test_bio.dir/test_evalue.cpp.o" "gcc" "tests/bio/CMakeFiles/test_bio.dir/test_evalue.cpp.o.d"
  "/root/repo/tests/bio/test_fasta.cpp" "tests/bio/CMakeFiles/test_bio.dir/test_fasta.cpp.o" "gcc" "tests/bio/CMakeFiles/test_bio.dir/test_fasta.cpp.o.d"
  "/root/repo/tests/bio/test_generator.cpp" "tests/bio/CMakeFiles/test_bio.dir/test_generator.cpp.o" "gcc" "tests/bio/CMakeFiles/test_bio.dir/test_generator.cpp.o.d"
  "/root/repo/tests/bio/test_kmer_index.cpp" "tests/bio/CMakeFiles/test_bio.dir/test_kmer_index.cpp.o" "gcc" "tests/bio/CMakeFiles/test_bio.dir/test_kmer_index.cpp.o.d"
  "/root/repo/tests/bio/test_report.cpp" "tests/bio/CMakeFiles/test_bio.dir/test_report.cpp.o" "gcc" "tests/bio/CMakeFiles/test_bio.dir/test_report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_seed/src/bio/CMakeFiles/s3asim_bio.dir/DependInfo.cmake"
  "/root/repo/build_seed/src/util/CMakeFiles/s3asim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
