
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pfs/test_cache_pfs.cpp" "tests/pfs/CMakeFiles/test_pfs.dir/test_cache_pfs.cpp.o" "gcc" "tests/pfs/CMakeFiles/test_pfs.dir/test_cache_pfs.cpp.o.d"
  "/root/repo/tests/pfs/test_client_cache.cpp" "tests/pfs/CMakeFiles/test_pfs.dir/test_client_cache.cpp.o" "gcc" "tests/pfs/CMakeFiles/test_pfs.dir/test_client_cache.cpp.o.d"
  "/root/repo/tests/pfs/test_file_image.cpp" "tests/pfs/CMakeFiles/test_pfs.dir/test_file_image.cpp.o" "gcc" "tests/pfs/CMakeFiles/test_pfs.dir/test_file_image.cpp.o.d"
  "/root/repo/tests/pfs/test_file_image_property.cpp" "tests/pfs/CMakeFiles/test_pfs.dir/test_file_image_property.cpp.o" "gcc" "tests/pfs/CMakeFiles/test_pfs.dir/test_file_image_property.cpp.o.d"
  "/root/repo/tests/pfs/test_layout.cpp" "tests/pfs/CMakeFiles/test_pfs.dir/test_layout.cpp.o" "gcc" "tests/pfs/CMakeFiles/test_pfs.dir/test_layout.cpp.o.d"
  "/root/repo/tests/pfs/test_pfs.cpp" "tests/pfs/CMakeFiles/test_pfs.dir/test_pfs.cpp.o" "gcc" "tests/pfs/CMakeFiles/test_pfs.dir/test_pfs.cpp.o.d"
  "/root/repo/tests/pfs/test_read.cpp" "tests/pfs/CMakeFiles/test_pfs.dir/test_read.cpp.o" "gcc" "tests/pfs/CMakeFiles/test_pfs.dir/test_read.cpp.o.d"
  "/root/repo/tests/pfs/test_token.cpp" "tests/pfs/CMakeFiles/test_pfs.dir/test_token.cpp.o" "gcc" "tests/pfs/CMakeFiles/test_pfs.dir/test_token.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_seed/src/sim/CMakeFiles/s3asim_sim.dir/DependInfo.cmake"
  "/root/repo/build_seed/src/obs/CMakeFiles/s3asim_obs.dir/DependInfo.cmake"
  "/root/repo/build_seed/src/util/CMakeFiles/s3asim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
