# Empty compiler generated dependencies file for test_pfs.
# This may be replaced when dependencies are built.
