file(REMOVE_RECURSE
  "CMakeFiles/test_pfs.dir/test_cache_pfs.cpp.o"
  "CMakeFiles/test_pfs.dir/test_cache_pfs.cpp.o.d"
  "CMakeFiles/test_pfs.dir/test_client_cache.cpp.o"
  "CMakeFiles/test_pfs.dir/test_client_cache.cpp.o.d"
  "CMakeFiles/test_pfs.dir/test_file_image.cpp.o"
  "CMakeFiles/test_pfs.dir/test_file_image.cpp.o.d"
  "CMakeFiles/test_pfs.dir/test_file_image_property.cpp.o"
  "CMakeFiles/test_pfs.dir/test_file_image_property.cpp.o.d"
  "CMakeFiles/test_pfs.dir/test_layout.cpp.o"
  "CMakeFiles/test_pfs.dir/test_layout.cpp.o.d"
  "CMakeFiles/test_pfs.dir/test_pfs.cpp.o"
  "CMakeFiles/test_pfs.dir/test_pfs.cpp.o.d"
  "CMakeFiles/test_pfs.dir/test_read.cpp.o"
  "CMakeFiles/test_pfs.dir/test_read.cpp.o.d"
  "CMakeFiles/test_pfs.dir/test_token.cpp.o"
  "CMakeFiles/test_pfs.dir/test_token.cpp.o.d"
  "test_pfs"
  "test_pfs.pdb"
  "test_pfs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
