# CMake generated Testfile for 
# Source directory: /root/repo/tests/pfs
# Build directory: /root/repo/build_seed/tests/pfs
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build_seed/tests/pfs/test_pfs[1]_include.cmake")
