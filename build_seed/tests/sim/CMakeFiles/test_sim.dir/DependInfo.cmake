
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_channel_barrier.cpp" "tests/sim/CMakeFiles/test_sim.dir/test_channel_barrier.cpp.o" "gcc" "tests/sim/CMakeFiles/test_sim.dir/test_channel_barrier.cpp.o.d"
  "/root/repo/tests/sim/test_event_queue.cpp" "tests/sim/CMakeFiles/test_sim.dir/test_event_queue.cpp.o" "gcc" "tests/sim/CMakeFiles/test_sim.dir/test_event_queue.cpp.o.d"
  "/root/repo/tests/sim/test_frame_pool.cpp" "tests/sim/CMakeFiles/test_sim.dir/test_frame_pool.cpp.o" "gcc" "tests/sim/CMakeFiles/test_sim.dir/test_frame_pool.cpp.o.d"
  "/root/repo/tests/sim/test_gate_resource.cpp" "tests/sim/CMakeFiles/test_sim.dir/test_gate_resource.cpp.o" "gcc" "tests/sim/CMakeFiles/test_sim.dir/test_gate_resource.cpp.o.d"
  "/root/repo/tests/sim/test_lp_scheduler.cpp" "tests/sim/CMakeFiles/test_sim.dir/test_lp_scheduler.cpp.o" "gcc" "tests/sim/CMakeFiles/test_sim.dir/test_lp_scheduler.cpp.o.d"
  "/root/repo/tests/sim/test_mailbox.cpp" "tests/sim/CMakeFiles/test_sim.dir/test_mailbox.cpp.o" "gcc" "tests/sim/CMakeFiles/test_sim.dir/test_mailbox.cpp.o.d"
  "/root/repo/tests/sim/test_scheduler.cpp" "tests/sim/CMakeFiles/test_sim.dir/test_scheduler.cpp.o" "gcc" "tests/sim/CMakeFiles/test_sim.dir/test_scheduler.cpp.o.d"
  "/root/repo/tests/sim/test_task.cpp" "tests/sim/CMakeFiles/test_sim.dir/test_task.cpp.o" "gcc" "tests/sim/CMakeFiles/test_sim.dir/test_task.cpp.o.d"
  "/root/repo/tests/sim/test_timer.cpp" "tests/sim/CMakeFiles/test_sim.dir/test_timer.cpp.o" "gcc" "tests/sim/CMakeFiles/test_sim.dir/test_timer.cpp.o.d"
  "/root/repo/tests/sim/test_wait_group.cpp" "tests/sim/CMakeFiles/test_sim.dir/test_wait_group.cpp.o" "gcc" "tests/sim/CMakeFiles/test_sim.dir/test_wait_group.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_seed/src/sim/CMakeFiles/s3asim_sim.dir/DependInfo.cmake"
  "/root/repo/build_seed/src/obs/CMakeFiles/s3asim_obs.dir/DependInfo.cmake"
  "/root/repo/build_seed/src/util/CMakeFiles/s3asim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
