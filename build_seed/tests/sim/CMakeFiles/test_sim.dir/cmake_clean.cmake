file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/test_channel_barrier.cpp.o"
  "CMakeFiles/test_sim.dir/test_channel_barrier.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_event_queue.cpp.o"
  "CMakeFiles/test_sim.dir/test_event_queue.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_frame_pool.cpp.o"
  "CMakeFiles/test_sim.dir/test_frame_pool.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_gate_resource.cpp.o"
  "CMakeFiles/test_sim.dir/test_gate_resource.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_lp_scheduler.cpp.o"
  "CMakeFiles/test_sim.dir/test_lp_scheduler.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_mailbox.cpp.o"
  "CMakeFiles/test_sim.dir/test_mailbox.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_scheduler.cpp.o"
  "CMakeFiles/test_sim.dir/test_scheduler.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_task.cpp.o"
  "CMakeFiles/test_sim.dir/test_task.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_timer.cpp.o"
  "CMakeFiles/test_sim.dir/test_timer.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_wait_group.cpp.o"
  "CMakeFiles/test_sim.dir/test_wait_group.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
