# CMake generated Testfile for 
# Source directory: /root/repo/tests/mpiio
# Build directory: /root/repo/build_seed/tests/mpiio
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build_seed/tests/mpiio/test_mpiio[1]_include.cmake")
