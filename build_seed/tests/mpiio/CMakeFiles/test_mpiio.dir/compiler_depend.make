# Empty compiler generated dependencies file for test_mpiio.
# This may be replaced when dependencies are built.
