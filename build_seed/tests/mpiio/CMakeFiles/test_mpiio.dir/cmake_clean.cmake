file(REMOVE_RECURSE
  "CMakeFiles/test_mpiio.dir/test_datatype.cpp.o"
  "CMakeFiles/test_mpiio.dir/test_datatype.cpp.o.d"
  "CMakeFiles/test_mpiio.dir/test_file.cpp.o"
  "CMakeFiles/test_mpiio.dir/test_file.cpp.o.d"
  "test_mpiio"
  "test_mpiio.pdb"
  "test_mpiio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpiio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
