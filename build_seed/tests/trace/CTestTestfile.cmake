# CMake generated Testfile for 
# Source directory: /root/repo/tests/trace
# Build directory: /root/repo/build_seed/tests/trace
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build_seed/tests/trace/test_trace[1]_include.cmake")
