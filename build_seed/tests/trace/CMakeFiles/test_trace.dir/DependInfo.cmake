
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace/test_chrome_export.cpp" "tests/trace/CMakeFiles/test_trace.dir/test_chrome_export.cpp.o" "gcc" "tests/trace/CMakeFiles/test_trace.dir/test_chrome_export.cpp.o.d"
  "/root/repo/tests/trace/test_trace.cpp" "tests/trace/CMakeFiles/test_trace.dir/test_trace.cpp.o" "gcc" "tests/trace/CMakeFiles/test_trace.dir/test_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_seed/src/trace/CMakeFiles/s3asim_trace.dir/DependInfo.cmake"
  "/root/repo/build_seed/src/obs/CMakeFiles/s3asim_obs.dir/DependInfo.cmake"
  "/root/repo/build_seed/src/util/CMakeFiles/s3asim_util.dir/DependInfo.cmake"
  "/root/repo/build_seed/src/sim/CMakeFiles/s3asim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
