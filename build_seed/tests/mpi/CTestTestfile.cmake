# CMake generated Testfile for 
# Source directory: /root/repo/tests/mpi
# Build directory: /root/repo/build_seed/tests/mpi
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build_seed/tests/mpi/test_mpi[1]_include.cmake")
