
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/test_histogram.cpp" "tests/util/CMakeFiles/test_util.dir/test_histogram.cpp.o" "gcc" "tests/util/CMakeFiles/test_util.dir/test_histogram.cpp.o.d"
  "/root/repo/tests/util/test_json.cpp" "tests/util/CMakeFiles/test_util.dir/test_json.cpp.o" "gcc" "tests/util/CMakeFiles/test_util.dir/test_json.cpp.o.d"
  "/root/repo/tests/util/test_keyval.cpp" "tests/util/CMakeFiles/test_util.dir/test_keyval.cpp.o" "gcc" "tests/util/CMakeFiles/test_util.dir/test_keyval.cpp.o.d"
  "/root/repo/tests/util/test_rng.cpp" "tests/util/CMakeFiles/test_util.dir/test_rng.cpp.o" "gcc" "tests/util/CMakeFiles/test_util.dir/test_rng.cpp.o.d"
  "/root/repo/tests/util/test_stats.cpp" "tests/util/CMakeFiles/test_util.dir/test_stats.cpp.o" "gcc" "tests/util/CMakeFiles/test_util.dir/test_stats.cpp.o.d"
  "/root/repo/tests/util/test_table_csv.cpp" "tests/util/CMakeFiles/test_util.dir/test_table_csv.cpp.o" "gcc" "tests/util/CMakeFiles/test_util.dir/test_table_csv.cpp.o.d"
  "/root/repo/tests/util/test_units.cpp" "tests/util/CMakeFiles/test_util.dir/test_units.cpp.o" "gcc" "tests/util/CMakeFiles/test_util.dir/test_units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_seed/src/util/CMakeFiles/s3asim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
