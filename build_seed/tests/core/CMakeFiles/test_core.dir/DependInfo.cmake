
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_cli_usage.cpp" "tests/core/CMakeFiles/test_core.dir/test_cli_usage.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/test_cli_usage.cpp.o.d"
  "/root/repo/tests/core/test_config_loader.cpp" "tests/core/CMakeFiles/test_core.dir/test_config_loader.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/test_config_loader.cpp.o.d"
  "/root/repo/tests/core/test_database_io.cpp" "tests/core/CMakeFiles/test_core.dir/test_database_io.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/test_database_io.cpp.o.d"
  "/root/repo/tests/core/test_fasta_workload.cpp" "tests/core/CMakeFiles/test_core.dir/test_fasta_workload.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/test_fasta_workload.cpp.o.d"
  "/root/repo/tests/core/test_faults.cpp" "tests/core/CMakeFiles/test_core.dir/test_faults.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/test_faults.cpp.o.d"
  "/root/repo/tests/core/test_file_per_process.cpp" "tests/core/CMakeFiles/test_core.dir/test_file_per_process.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/test_file_per_process.cpp.o.d"
  "/root/repo/tests/core/test_fragment_cache.cpp" "tests/core/CMakeFiles/test_core.dir/test_fragment_cache.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/test_fragment_cache.cpp.o.d"
  "/root/repo/tests/core/test_golden_stats.cpp" "tests/core/CMakeFiles/test_core.dir/test_golden_stats.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/test_golden_stats.cpp.o.d"
  "/root/repo/tests/core/test_heterogeneity.cpp" "tests/core/CMakeFiles/test_core.dir/test_heterogeneity.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/test_heterogeneity.cpp.o.d"
  "/root/repo/tests/core/test_hybrid.cpp" "tests/core/CMakeFiles/test_core.dir/test_hybrid.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/test_hybrid.cpp.o.d"
  "/root/repo/tests/core/test_phases.cpp" "tests/core/CMakeFiles/test_core.dir/test_phases.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/test_phases.cpp.o.d"
  "/root/repo/tests/core/test_scale_model.cpp" "tests/core/CMakeFiles/test_core.dir/test_scale_model.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/test_scale_model.cpp.o.d"
  "/root/repo/tests/core/test_serving.cpp" "tests/core/CMakeFiles/test_core.dir/test_serving.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/test_serving.cpp.o.d"
  "/root/repo/tests/core/test_shapes.cpp" "tests/core/CMakeFiles/test_core.dir/test_shapes.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/test_shapes.cpp.o.d"
  "/root/repo/tests/core/test_simulation.cpp" "tests/core/CMakeFiles/test_core.dir/test_simulation.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/test_simulation.cpp.o.d"
  "/root/repo/tests/core/test_strategy.cpp" "tests/core/CMakeFiles/test_core.dir/test_strategy.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/test_strategy.cpp.o.d"
  "/root/repo/tests/core/test_workload.cpp" "tests/core/CMakeFiles/test_core.dir/test_workload.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_seed/src/core/CMakeFiles/s3asim_core.dir/DependInfo.cmake"
  "/root/repo/build_seed/src/bio/CMakeFiles/s3asim_bio.dir/DependInfo.cmake"
  "/root/repo/build_seed/src/fault/CMakeFiles/s3asim_fault.dir/DependInfo.cmake"
  "/root/repo/build_seed/src/trace/CMakeFiles/s3asim_trace.dir/DependInfo.cmake"
  "/root/repo/build_seed/src/sim/CMakeFiles/s3asim_sim.dir/DependInfo.cmake"
  "/root/repo/build_seed/src/obs/CMakeFiles/s3asim_obs.dir/DependInfo.cmake"
  "/root/repo/build_seed/src/util/CMakeFiles/s3asim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
