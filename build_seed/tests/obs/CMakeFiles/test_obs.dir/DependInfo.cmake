
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/obs/test_metrics.cpp" "tests/obs/CMakeFiles/test_obs.dir/test_metrics.cpp.o" "gcc" "tests/obs/CMakeFiles/test_obs.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/obs/test_schema.cpp" "tests/obs/CMakeFiles/test_obs.dir/test_schema.cpp.o" "gcc" "tests/obs/CMakeFiles/test_obs.dir/test_schema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_seed/src/obs/CMakeFiles/s3asim_obs.dir/DependInfo.cmake"
  "/root/repo/build_seed/src/util/CMakeFiles/s3asim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
