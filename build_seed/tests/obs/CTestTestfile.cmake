# CMake generated Testfile for 
# Source directory: /root/repo/tests/obs
# Build directory: /root/repo/build_seed/tests/obs
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build_seed/tests/obs/test_obs[1]_include.cmake")
