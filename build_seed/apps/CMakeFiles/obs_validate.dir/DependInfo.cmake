
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/apps/obs_validate.cpp" "apps/CMakeFiles/obs_validate.dir/obs_validate.cpp.o" "gcc" "apps/CMakeFiles/obs_validate.dir/obs_validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_seed/src/obs/CMakeFiles/s3asim_obs.dir/DependInfo.cmake"
  "/root/repo/build_seed/src/util/CMakeFiles/s3asim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
