# Empty dependencies file for obs_validate.
# This may be replaced when dependencies are built.
