file(REMOVE_RECURSE
  "CMakeFiles/obs_validate.dir/obs_validate.cpp.o"
  "CMakeFiles/obs_validate.dir/obs_validate.cpp.o.d"
  "obs_validate"
  "obs_validate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_validate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
