# Empty compiler generated dependencies file for s3asim.
# This may be replaced when dependencies are built.
