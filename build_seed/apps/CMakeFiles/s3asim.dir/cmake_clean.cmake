file(REMOVE_RECURSE
  "CMakeFiles/s3asim.dir/s3asim_cli.cpp.o"
  "CMakeFiles/s3asim.dir/s3asim_cli.cpp.o.d"
  "s3asim"
  "s3asim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3asim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
