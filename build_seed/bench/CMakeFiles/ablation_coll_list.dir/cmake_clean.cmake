file(REMOVE_RECURSE
  "CMakeFiles/ablation_coll_list.dir/ablation_coll_list.cpp.o"
  "CMakeFiles/ablation_coll_list.dir/ablation_coll_list.cpp.o.d"
  "ablation_coll_list"
  "ablation_coll_list.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_coll_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
