# Empty dependencies file for ablation_coll_list.
# This may be replaced when dependencies are built.
