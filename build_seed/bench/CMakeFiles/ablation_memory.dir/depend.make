# Empty dependencies file for ablation_memory.
# This may be replaced when dependencies are built.
