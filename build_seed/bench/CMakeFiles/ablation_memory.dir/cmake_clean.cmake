file(REMOVE_RECURSE
  "CMakeFiles/ablation_memory.dir/ablation_memory.cpp.o"
  "CMakeFiles/ablation_memory.dir/ablation_memory.cpp.o.d"
  "ablation_memory"
  "ablation_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
