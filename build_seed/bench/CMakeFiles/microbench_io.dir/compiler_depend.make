# Empty compiler generated dependencies file for microbench_io.
# This may be replaced when dependencies are built.
