file(REMOVE_RECURSE
  "CMakeFiles/microbench_io.dir/microbench_io.cpp.o"
  "CMakeFiles/microbench_io.dir/microbench_io.cpp.o.d"
  "microbench_io"
  "microbench_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
