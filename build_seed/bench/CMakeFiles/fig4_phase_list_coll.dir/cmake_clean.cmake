file(REMOVE_RECURSE
  "CMakeFiles/fig4_phase_list_coll.dir/fig4_phase_list_coll.cpp.o"
  "CMakeFiles/fig4_phase_list_coll.dir/fig4_phase_list_coll.cpp.o.d"
  "fig4_phase_list_coll"
  "fig4_phase_list_coll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_phase_list_coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
