# Empty compiler generated dependencies file for fig4_phase_list_coll.
# This may be replaced when dependencies are built.
