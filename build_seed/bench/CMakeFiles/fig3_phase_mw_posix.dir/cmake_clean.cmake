file(REMOVE_RECURSE
  "CMakeFiles/fig3_phase_mw_posix.dir/fig3_phase_mw_posix.cpp.o"
  "CMakeFiles/fig3_phase_mw_posix.dir/fig3_phase_mw_posix.cpp.o.d"
  "fig3_phase_mw_posix"
  "fig3_phase_mw_posix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_phase_mw_posix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
