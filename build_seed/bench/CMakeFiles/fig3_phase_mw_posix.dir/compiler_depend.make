# Empty compiler generated dependencies file for fig3_phase_mw_posix.
# This may be replaced when dependencies are built.
