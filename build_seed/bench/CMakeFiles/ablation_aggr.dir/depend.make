# Empty dependencies file for ablation_aggr.
# This may be replaced when dependencies are built.
