file(REMOVE_RECURSE
  "CMakeFiles/ablation_aggr.dir/ablation_aggr.cpp.o"
  "CMakeFiles/ablation_aggr.dir/ablation_aggr.cpp.o.d"
  "ablation_aggr"
  "ablation_aggr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_aggr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
