file(REMOVE_RECURSE
  "CMakeFiles/ablation_mw_nonblocking.dir/ablation_mw_nonblocking.cpp.o"
  "CMakeFiles/ablation_mw_nonblocking.dir/ablation_mw_nonblocking.cpp.o.d"
  "ablation_mw_nonblocking"
  "ablation_mw_nonblocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mw_nonblocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
