# Empty compiler generated dependencies file for ablation_mw_nonblocking.
# This may be replaced when dependencies are built.
