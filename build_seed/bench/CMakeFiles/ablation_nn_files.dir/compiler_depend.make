# Empty compiler generated dependencies file for ablation_nn_files.
# This may be replaced when dependencies are built.
