file(REMOVE_RECURSE
  "CMakeFiles/ablation_nn_files.dir/ablation_nn_files.cpp.o"
  "CMakeFiles/ablation_nn_files.dir/ablation_nn_files.cpp.o.d"
  "ablation_nn_files"
  "ablation_nn_files.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nn_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
