# Empty dependencies file for ablation_resume.
# This may be replaced when dependencies are built.
