file(REMOVE_RECURSE
  "CMakeFiles/ablation_resume.dir/ablation_resume.cpp.o"
  "CMakeFiles/ablation_resume.dir/ablation_resume.cpp.o.d"
  "ablation_resume"
  "ablation_resume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_resume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
