# Empty compiler generated dependencies file for serving_load.
# This may be replaced when dependencies are built.
