file(REMOVE_RECURSE
  "CMakeFiles/serving_load.dir/serving_load.cpp.o"
  "CMakeFiles/serving_load.dir/serving_load.cpp.o.d"
  "serving_load"
  "serving_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
