file(REMOVE_RECURSE
  "../lib/libs3asim_bench_common.a"
)
