# Empty compiler generated dependencies file for s3asim_bench_common.
# This may be replaced when dependencies are built.
