file(REMOVE_RECURSE
  "../lib/libs3asim_bench_common.a"
  "../lib/libs3asim_bench_common.pdb"
  "CMakeFiles/s3asim_bench_common.dir/common.cpp.o"
  "CMakeFiles/s3asim_bench_common.dir/common.cpp.o.d"
  "CMakeFiles/s3asim_bench_common.dir/sweep.cpp.o"
  "CMakeFiles/s3asim_bench_common.dir/sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3asim_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
