file(REMOVE_RECURSE
  "CMakeFiles/fig6_phase_mw_posix.dir/fig6_phase_mw_posix.cpp.o"
  "CMakeFiles/fig6_phase_mw_posix.dir/fig6_phase_mw_posix.cpp.o.d"
  "fig6_phase_mw_posix"
  "fig6_phase_mw_posix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_phase_mw_posix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
