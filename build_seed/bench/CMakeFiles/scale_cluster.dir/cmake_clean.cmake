file(REMOVE_RECURSE
  "CMakeFiles/scale_cluster.dir/scale_cluster.cpp.o"
  "CMakeFiles/scale_cluster.dir/scale_cluster.cpp.o.d"
  "scale_cluster"
  "scale_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scale_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
