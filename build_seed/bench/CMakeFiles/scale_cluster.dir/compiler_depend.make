# Empty compiler generated dependencies file for scale_cluster.
# This may be replaced when dependencies are built.
