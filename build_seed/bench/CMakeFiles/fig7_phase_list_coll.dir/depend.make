# Empty dependencies file for fig7_phase_list_coll.
# This may be replaced when dependencies are built.
