file(REMOVE_RECURSE
  "CMakeFiles/fig7_phase_list_coll.dir/fig7_phase_list_coll.cpp.o"
  "CMakeFiles/fig7_phase_list_coll.dir/fig7_phase_list_coll.cpp.o.d"
  "fig7_phase_list_coll"
  "fig7_phase_list_coll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_phase_list_coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
