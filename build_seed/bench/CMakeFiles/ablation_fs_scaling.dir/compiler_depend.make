# Empty compiler generated dependencies file for ablation_fs_scaling.
# This may be replaced when dependencies are built.
