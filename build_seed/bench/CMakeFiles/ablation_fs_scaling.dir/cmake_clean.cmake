file(REMOVE_RECURSE
  "CMakeFiles/ablation_fs_scaling.dir/ablation_fs_scaling.cpp.o"
  "CMakeFiles/ablation_fs_scaling.dir/ablation_fs_scaling.cpp.o.d"
  "ablation_fs_scaling"
  "ablation_fs_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fs_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
