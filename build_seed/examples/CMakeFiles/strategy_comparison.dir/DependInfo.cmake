
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/strategy_comparison.cpp" "examples/CMakeFiles/strategy_comparison.dir/strategy_comparison.cpp.o" "gcc" "examples/CMakeFiles/strategy_comparison.dir/strategy_comparison.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_seed/src/core/CMakeFiles/s3asim_core.dir/DependInfo.cmake"
  "/root/repo/build_seed/src/bio/CMakeFiles/s3asim_bio.dir/DependInfo.cmake"
  "/root/repo/build_seed/src/fault/CMakeFiles/s3asim_fault.dir/DependInfo.cmake"
  "/root/repo/build_seed/src/trace/CMakeFiles/s3asim_trace.dir/DependInfo.cmake"
  "/root/repo/build_seed/src/sim/CMakeFiles/s3asim_sim.dir/DependInfo.cmake"
  "/root/repo/build_seed/src/obs/CMakeFiles/s3asim_obs.dir/DependInfo.cmake"
  "/root/repo/build_seed/src/util/CMakeFiles/s3asim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
