# Empty dependencies file for hybrid_segmentation.
# This may be replaced when dependencies are built.
