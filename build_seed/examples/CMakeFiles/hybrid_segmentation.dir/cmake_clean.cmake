file(REMOVE_RECURSE
  "CMakeFiles/hybrid_segmentation.dir/hybrid_segmentation.cpp.o"
  "CMakeFiles/hybrid_segmentation.dir/hybrid_segmentation.cpp.o.d"
  "hybrid_segmentation"
  "hybrid_segmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_segmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
