file(REMOVE_RECURSE
  "CMakeFiles/blast_search.dir/blast_search.cpp.o"
  "CMakeFiles/blast_search.dir/blast_search.cpp.o.d"
  "blast_search"
  "blast_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blast_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
