# Empty compiler generated dependencies file for blast_search.
# This may be replaced when dependencies are built.
