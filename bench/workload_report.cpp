/// Workload characterization — the §3.3 sanity table: prints the NT
/// histogram reconstruction, the paper workload's aggregate statistics
/// (result counts, output volume, per-query regions), and the per-fragment
/// compute-time distribution that drives straggler effects.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/workload.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace s3asim;

int main() {
  const auto config = core::paper_config();
  const core::WorkloadModel workload(config.workload);

  std::printf("S3aSim workload characterization (paper §3.3 setup)\n\n");
  std::printf("NT database histogram reconstruction:\n%s\n",
              config.workload.database_histogram.describe().c_str());
  std::printf("query histogram: mean %s (paper: 20 queries ~ 86 KB)\n\n",
              util::format_bytes(static_cast<std::uint64_t>(
                  config.workload.query_histogram.mean())).c_str());

  // Aggregate statistics.
  std::printf("queries              : %u\n", config.workload.query_count);
  std::printf("fragments            : %u\n", config.workload.fragment_count);
  std::printf("total results        : %llu  (paper: 1000-2000/query)\n",
              static_cast<unsigned long long>(workload.total_result_count()));
  std::printf("total output         : %s  (paper: ~208 MB)\n",
              util::format_bytes(workload.total_output_bytes()).c_str());

  // Per-query regions.
  util::TextTable table({"Query", "Results", "Region size", "Region offset"});
  for (std::uint32_t q = 0; q < config.workload.query_count; ++q) {
    const auto& query = workload.query(q);
    table.add_row({std::to_string(q), std::to_string(query.results.size()),
                   util::format_bytes(query.total_bytes),
                   util::format_bytes(workload.region_base(q))});
  }
  std::printf("\n%s", table.render().c_str());

  // Compute-time heterogeneity across (query, fragment) tasks — the source
  // of the straggler effects in Figures 4/7.
  std::vector<double> task_seconds;
  util::RunningStats stats;
  for (std::uint32_t q = 0; q < config.workload.query_count; ++q) {
    for (std::uint32_t f = 0; f < config.workload.fragment_count; ++f) {
      const double seconds =
          (sim::to_seconds(config.model.compute_startup) +
           static_cast<double>(workload.fragment_result_bytes(q, f)) *
               config.model.compute_ns_per_result_byte * 1e-9);
      task_seconds.push_back(seconds);
      stats.add(seconds);
    }
  }
  std::printf("\nper-task compute time at speed 1.0:\n");
  std::printf("  tasks %zu, total %.1f s, mean %.3f s, stddev %.3f s\n",
              task_seconds.size(), stats.sum(), stats.mean(), stats.stddev());
  std::printf("  p50 %.3f s, p90 %.3f s, p99 %.3f s, max %.3f s\n",
              util::percentile(task_seconds, 50),
              util::percentile(task_seconds, 90),
              util::percentile(task_seconds, 99), stats.max());
  std::printf("  (coefficient of variation %.2f — the paper: \"large "
              "variance in compute phase times among workers\")\n",
              util::coefficient_of_variation(task_seconds));
  return 0;
}
