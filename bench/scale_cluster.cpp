/// scale_cluster — the parallel-engine speedup benchmark (DESIGN.md §9).
///
/// Runs the native-LP cluster scale model (core/scale_model.hpp) — 1024
/// simulated ranks + 16 I/O servers by default, one LP each — through the
/// conservative windowed engine at increasing thread counts, and records
/// host wall-clock, events/second, and speedup vs the 1-thread run in
/// results/BENCH_scale.json.  Before timing anything it re-checks the
/// determinism contract: every thread count must produce the identical
/// stats fingerprint, or the bench exits nonzero — a fast parallel engine
/// that changes answers is worthless.
///
/// The speedup target (≥ 4x at 8 threads for the 1024-rank model) is only
/// meaningful on a host with ≥ 8 cores; the JSON records the host's
/// hardware concurrency so CI can judge the number in context.
///
///   scale_cluster [--quick] [--ranks N] [--threads a,b,c]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/scale_model.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

using namespace s3asim;

namespace {

struct TimedRun {
  unsigned threads = 1;
  double wall_seconds = 0.0;
  core::ScaleStats stats;
};

TimedRun timed_run(const core::ScaleConfig& config, unsigned threads) {
  const auto start = std::chrono::steady_clock::now();
  core::ScaleStats stats = run_scale_model(config, threads);
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;
  return {threads, wall.count(), std::move(stats)};
}

std::vector<unsigned> parse_threads(const std::string& spec) {
  std::vector<unsigned> threads;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string item = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const long value = std::strtol(item.c_str(), nullptr, 10);
    if (value < 1 || value > 256) {
      std::fprintf(stderr, "scale_cluster: bad thread count '%s'\n",
                   item.c_str());
      std::exit(2);
    }
    threads.push_back(static_cast<unsigned>(value));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return threads;
}

}  // namespace

int main(int argc, char** argv) {
  core::ScaleConfig config;  // defaults: 1024 ranks, 16 servers, WW-List
  std::vector<unsigned> thread_counts{1, 2, 4, 8};
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--ranks" && i + 1 < argc) {
      config.nprocs = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--threads" && i + 1 < argc) {
      thread_counts = parse_threads(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: scale_cluster [--quick] [--ranks N] "
                   "[--threads a,b,c]\n");
      return 2;
    }
  }
  if (quick) {
    config.nprocs = std::min<std::uint32_t>(config.nprocs, 128);
    config.queries = 2;
  }

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf(
      "S3aSim scale_cluster: %u ranks + %u servers (%s, %u queries), "
      "host has %u hardware threads\n",
      config.nprocs, config.servers, core::strategy_name(config.strategy),
      config.queries, hw);

  std::vector<TimedRun> runs;
  runs.reserve(thread_counts.size());
  for (const unsigned threads : thread_counts) {
    runs.push_back(timed_run(config, threads));
    const TimedRun& run = runs.back();
    std::printf("  %2u thread%s: %8.3f s wall, %.2fM events/s\n", threads,
                threads == 1 ? " " : "s", run.wall_seconds,
                static_cast<double>(run.stats.events) / run.wall_seconds /
                    1e6);
  }

  // Determinism gate: identical full stats (fingerprint included) at every
  // thread count, or the speedup numbers are meaningless.
  const std::string reference = runs.front().stats.to_json();
  for (const TimedRun& run : runs) {
    if (run.stats.to_json() != reference) {
      std::fprintf(stderr,
                   "scale_cluster: DETERMINISM VIOLATION at %u threads — "
                   "stats differ from the %u-thread run\n",
                   run.threads, runs.front().threads);
      return 1;
    }
  }

  const double base_wall = runs.front().wall_seconds;
  util::TextTable table({"threads", "wall (s)", "speedup", "Mevents/s"});
  for (const TimedRun& run : runs)
    table.add_row_numeric(
        std::to_string(run.threads),
        {run.wall_seconds, base_wall / run.wall_seconds,
         static_cast<double>(run.stats.events) / run.wall_seconds / 1e6},
        3);
  std::printf("%s", table.render().c_str());

  util::JsonWriter json;
  json.begin_object();
  json.key("bench");
  json.value(std::string("scale_cluster"));
  json.key("quick");
  json.value(quick);
  json.key("config");
  json.begin_object();
  json.key("ranks");
  json.value(static_cast<std::uint64_t>(config.nprocs));
  json.key("servers");
  json.value(static_cast<std::uint64_t>(config.servers));
  json.key("strategy");
  json.value(std::string(core::strategy_name(config.strategy)));
  json.key("queries");
  json.value(static_cast<std::uint64_t>(config.queries));
  json.end_object();
  json.key("host_hardware_threads");
  json.value(static_cast<std::uint64_t>(hw));
  json.key("identical_across_threads");
  json.value(true);
  const core::ScaleStats& sim = runs.front().stats;
  json.key("simulated");
  json.begin_object();
  json.key("makespan_seconds");
  json.value(sim.makespan_seconds);
  json.key("total_result_bytes");
  json.value(sim.total_result_bytes);
  json.key("events");
  json.value(static_cast<std::uint64_t>(sim.events));
  json.key("windows");
  json.value(sim.windows);
  json.key("cross_lp_messages");
  json.value(sim.cross_lp_messages);
  json.key("lp_count");
  json.value(static_cast<std::uint64_t>(sim.lp_count));
  json.key("fingerprint");
  json.value(sim.fingerprint);
  json.end_object();
  json.key("runs");
  json.begin_array();
  for (const TimedRun& run : runs) {
    json.begin_object();
    json.key("threads");
    json.value(static_cast<std::uint64_t>(run.threads));
    json.key("wall_seconds");
    json.value(run.wall_seconds);
    json.key("events_per_second");
    json.value(static_cast<double>(run.stats.events) / run.wall_seconds);
    json.key("speedup_vs_serial");
    json.value(base_wall / run.wall_seconds);
    json.end_object();
  }
  json.end_array();
  json.end_object();

  const std::string path = bench::csv_path("BENCH_scale.json");
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "scale_cluster: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "%s\n", json.str().c_str());
  std::fclose(out);
  std::printf("(json: %s)\n", path.c_str());
  return 0;
}
