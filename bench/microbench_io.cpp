/// Ablation B — the pure-I/O comparison the paper contrasts itself against
/// (§3.3: "Collective I/O, in nearly all noncontiguous I/O cases,
/// outperforms POSIX I/O and, in some noncontiguous I/O cases, outperforms
/// list I/O in pure I/O tests" — while in the *application* the ordering
/// flips).  Google-benchmark over the mpiio layer without any application
/// logic: N clients concurrently writing interleaved extents.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "mpi/comm.hpp"
#include "mpiio/file.hpp"
#include "pfs/pfs.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace s3asim;

struct IoWorld {
  sim::Scheduler sched;
  net::Network network;
  mpi::Comm comm;
  pfs::Pfs fs;
  pfs::FileHandle handle = 0;
  std::unique_ptr<mpiio::File> file;

  explicit IoWorld(std::uint32_t clients, mpiio::Hints hints = {})
      : network(sched, clients + 16),
        comm(sched, network, clients),
        fs(sched, network, clients) {
    auto create = [](IoWorld& world) -> sim::Process {
      world.handle = co_await world.fs.create_file(0, "bench");
    };
    sched.spawn(create(*this));
    sched.run();
    std::vector<mpi::Rank> participants;
    for (mpi::Rank r = 0; r < clients; ++r) participants.push_back(r);
    file = std::make_unique<mpiio::File>(sched, network, fs, comm, handle,
                                         participants, hints);
  }

  ~IoWorld() {
    fs.shutdown();
    sched.run();
  }
};

/// Interleaved extents: client c owns pieces c, c+P, c+2P, ... of
/// `pieces_per_client * clients` extents of `piece` bytes.
std::vector<pfs::Extent> client_extents(std::uint32_t client,
                                        std::uint32_t clients,
                                        std::uint32_t pieces_per_client,
                                        std::uint64_t piece) {
  std::vector<pfs::Extent> extents;
  extents.reserve(pieces_per_client);
  for (std::uint32_t k = 0; k < pieces_per_client; ++k) {
    const std::uint64_t index = static_cast<std::uint64_t>(k) * clients + client;
    extents.push_back(pfs::Extent{index * piece, piece});
  }
  return extents;
}

enum class Method { Posix, List, TwoPhase };

/// Runs one concurrent pure-I/O round; returns simulated seconds.
double pure_io_seconds(Method method, std::uint32_t clients,
                       std::uint32_t pieces, std::uint64_t piece_bytes) {
  IoWorld world(clients);
  auto writer = [](IoWorld& w, Method m, mpi::Rank rank, std::uint32_t nclients,
                   std::uint32_t npieces, std::uint64_t piece) -> sim::Process {
    auto extents = client_extents(rank, nclients, npieces, piece);
    switch (m) {
      case Method::Posix:
        co_await w.file->write_noncontig(rank, std::move(extents),
                                         mpiio::NoncontigMethod::Posix);
        break;
      case Method::List:
        co_await w.file->write_noncontig(rank, std::move(extents),
                                         mpiio::NoncontigMethod::ListIo);
        break;
      case Method::TwoPhase:
        co_await w.file->write_at_all(rank, std::move(extents));
        break;
    }
  };
  for (mpi::Rank r = 0; r < clients; ++r)
    world.sched.spawn(writer(world, method, r, clients, pieces, piece_bytes));
  world.sched.run();
  return sim::to_seconds(world.sched.now());
}

void BM_PureIo(benchmark::State& state, Method method) {
  const auto clients = static_cast<std::uint32_t>(state.range(0));
  const auto pieces = static_cast<std::uint32_t>(state.range(1));
  const auto piece_bytes = static_cast<std::uint64_t>(state.range(2));
  double simulated = 0.0;
  for (auto _ : state) simulated = pure_io_seconds(method, clients, pieces, piece_bytes);
  state.counters["simulated_io_s"] = simulated;
  state.counters["aggregate_MBps"] =
      static_cast<double>(clients) * pieces * static_cast<double>(piece_bytes) /
      simulated / 1e6;
}

void IoArgs(benchmark::internal::Benchmark* bench) {
  bench->Args({8, 16, 7 * 1024})
      ->Args({32, 16, 7 * 1024})
      ->Args({32, 64, 7 * 1024})
      ->Args({32, 16, 64 * 1024})
      ->Unit(benchmark::kMillisecond);
}

BENCHMARK_CAPTURE(BM_PureIo, posix, Method::Posix)->Apply(IoArgs);
BENCHMARK_CAPTURE(BM_PureIo, list, Method::List)->Apply(IoArgs);
BENCHMARK_CAPTURE(BM_PureIo, two_phase, Method::TwoPhase)->Apply(IoArgs);

/// Contiguous single-writer baseline (the MW write pattern).
void BM_PureIoContiguous(benchmark::State& state) {
  const auto bytes = static_cast<std::uint64_t>(state.range(0));
  double simulated = 0.0;
  for (auto _ : state) {
    IoWorld world(2);
    auto writer = [](IoWorld& w, std::uint64_t n) -> sim::Process {
      co_await w.file->write_at(0, 0, n);
    };
    world.sched.spawn(writer(world, bytes));
    world.sched.run();
    simulated = sim::to_seconds(world.sched.now());
  }
  state.counters["simulated_io_s"] = simulated;
  state.counters["MBps"] = static_cast<double>(bytes) / simulated / 1e6;
}
BENCHMARK(BM_PureIoContiguous)
    ->Arg(1 << 20)
    ->Arg(10 << 20)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
