/// Ablation B — the pure-I/O comparison the paper contrasts itself against
/// (§3.3: "Collective I/O, in nearly all noncontiguous I/O cases,
/// outperforms POSIX I/O and, in some noncontiguous I/O cases, outperforms
/// list I/O in pure I/O tests" — while in the *application* the ordering
/// flips).  Google-benchmark over the mpiio layer without any application
/// logic: N clients concurrently writing interleaved extents.
///
/// Also the host-side perf harness for the model-layer hot path (ISSUE 3):
/// the high-extent-count shapes (1k–16k extents, 16–128 clients) measure
/// the zero-allocation fan-out in `Pfs`/`Layout`/`FileImage`.  Results are
/// mirrored to results/BENCH_io.json (same schema as BENCH_sim.json: plain
/// google-benchmark JSON with per-run counters) unless the caller passes
/// its own --benchmark_out.

#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "mpi/comm.hpp"
#include "mpiio/file.hpp"
#include "pfs/pfs.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace s3asim;

struct IoWorld {
  sim::Scheduler sched;
  net::Network network;
  mpi::Comm comm;
  pfs::Pfs fs;
  pfs::FileHandle handle = 0;
  std::unique_ptr<mpiio::File> file;

  explicit IoWorld(std::uint32_t clients, mpiio::Hints hints = {})
      : network(sched, clients + 16),
        comm(sched, network, clients),
        fs(sched, network, clients) {
    auto create = [](IoWorld& world) -> sim::Process {
      world.handle = co_await world.fs.create_file(0, "bench");
    };
    sched.spawn(create(*this));
    sched.run();
    std::vector<mpi::Rank> participants;
    for (mpi::Rank r = 0; r < clients; ++r) participants.push_back(r);
    file = std::make_unique<mpiio::File>(sched, network, fs, comm, handle,
                                         participants, hints);
  }

  ~IoWorld() {
    fs.shutdown();
    sched.run();
  }
};

/// Interleaved extents: client c owns pieces c, c+P, c+2P, ... of
/// `pieces_per_client * clients` extents of `piece` bytes.
std::vector<pfs::Extent> client_extents(std::uint32_t client,
                                        std::uint32_t clients,
                                        std::uint32_t pieces_per_client,
                                        std::uint64_t piece) {
  std::vector<pfs::Extent> extents;
  extents.reserve(pieces_per_client);
  for (std::uint32_t k = 0; k < pieces_per_client; ++k) {
    const std::uint64_t index = static_cast<std::uint64_t>(k) * clients + client;
    extents.push_back(pfs::Extent{index * piece, piece});
  }
  return extents;
}

enum class Method { Posix, List, TwoPhase };

/// One concurrent pure-I/O round's observables: simulated seconds plus the
/// file-system-side aggregate counters (request/OL-pair/byte totals).
struct IoRound {
  double seconds = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t pairs = 0;
  std::uint64_t bytes = 0;
  std::uint64_t events = 0;
};

/// Runs one concurrent pure-I/O round.
IoRound pure_io_round(Method method, std::uint32_t clients,
                      std::uint32_t pieces, std::uint64_t piece_bytes) {
  IoWorld world(clients);
  auto writer = [](IoWorld& w, Method m, mpi::Rank rank, std::uint32_t nclients,
                   std::uint32_t npieces, std::uint64_t piece) -> sim::Process {
    auto extents = client_extents(rank, nclients, npieces, piece);
    switch (m) {
      case Method::Posix:
        co_await w.file->write_noncontig(rank, std::move(extents),
                                         mpiio::NoncontigMethod::Posix);
        break;
      case Method::List:
        co_await w.file->write_noncontig(rank, std::move(extents),
                                         mpiio::NoncontigMethod::ListIo);
        break;
      case Method::TwoPhase:
        co_await w.file->write_at_all(rank, std::move(extents));
        break;
    }
  };
  for (mpi::Rank r = 0; r < clients; ++r)
    world.sched.spawn(writer(world, method, r, clients, pieces, piece_bytes));
  world.sched.run();
  IoRound round;
  round.seconds = sim::to_seconds(world.sched.now());
  const pfs::ServerStats totals = world.fs.aggregate_stats();
  round.requests = totals.requests;
  round.pairs = totals.pairs;
  round.bytes = totals.bytes;
  round.events = world.sched.events_processed();
  return round;
}

/// Peak resident set of this process so far, in MiB (ru_maxrss is KiB on
/// Linux) — recorded per benchmark so the quick-bench CI artifact tracks
/// allocation regressions alongside throughput.
double peak_rss_mib() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

void BM_PureIo(benchmark::State& state, Method method) {
  const auto clients = static_cast<std::uint32_t>(state.range(0));
  const auto pieces = static_cast<std::uint32_t>(state.range(1));
  const auto piece_bytes = static_cast<std::uint64_t>(state.range(2));
  IoRound round;
  for (auto _ : state) round = pure_io_round(method, clients, pieces, piece_bytes);
  state.counters["simulated_io_s"] = round.seconds;
  state.counters["aggregate_MBps"] =
      static_cast<double>(clients) * pieces * static_cast<double>(piece_bytes) /
      round.seconds / 1e6;
  state.counters["fs_requests"] = static_cast<double>(round.requests);
  state.counters["fs_pairs"] = static_cast<double>(round.pairs);
  state.counters["fs_bytes"] = static_cast<double>(round.bytes);
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(round.events), benchmark::Counter::kIsIterationInvariantRate);
  state.counters["peak_rss_mib"] = peak_rss_mib();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(clients) * pieces);
}

void IoArgs(benchmark::internal::Benchmark* bench) {
  bench->Args({8, 16, 7 * 1024})
      ->Args({32, 16, 7 * 1024})
      ->Args({32, 64, 7 * 1024})
      ->Args({32, 16, 64 * 1024})
      // Model-layer hot-path shapes (ISSUE 3): 1k–16k total extents across
      // 16–128 clients — the WW fan-out regime the paper's §4 results live
      // in (1000–2000 results per query, 128 fragments).
      ->Args({16, 64, 7 * 1024})
      ->Args({64, 16, 7 * 1024})
      ->Args({64, 64, 7 * 1024})
      ->Args({64, 256, 7 * 1024})
      ->Args({64, 1024, 7 * 1024})
      ->Args({128, 128, 7 * 1024})
      ->Unit(benchmark::kMillisecond);
}

BENCHMARK_CAPTURE(BM_PureIo, posix, Method::Posix)->Apply(IoArgs);
BENCHMARK_CAPTURE(BM_PureIo, list, Method::List)->Apply(IoArgs);
BENCHMARK_CAPTURE(BM_PureIo, two_phase, Method::TwoPhase)->Apply(IoArgs);

/// Contiguous single-writer baseline (the MW write pattern).
void BM_PureIoContiguous(benchmark::State& state) {
  const auto bytes = static_cast<std::uint64_t>(state.range(0));
  double simulated = 0.0;
  for (auto _ : state) {
    IoWorld world(2);
    auto writer = [](IoWorld& w, std::uint64_t n) -> sim::Process {
      co_await w.file->write_at(0, 0, n);
    };
    world.sched.spawn(writer(world, bytes));
    world.sched.run();
    simulated = sim::to_seconds(world.sched.now());
  }
  state.counters["simulated_io_s"] = simulated;
  state.counters["MBps"] = static_cast<double>(bytes) / simulated / 1e6;
  state.counters["peak_rss_mib"] = peak_rss_mib();
}
BENCHMARK(BM_PureIoContiguous)
    ->Arg(1 << 20)
    ->Arg(10 << 20)
    ->Unit(benchmark::kMillisecond);

}  // namespace

/// Custom main: defaults --benchmark_out to results/BENCH_io.json
/// (S3ASIM_RESULTS_DIR overrides the directory, matching the figure
/// benches) so CI artifacts always carry the machine-readable run.
int main(int argc, char** argv) {
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    const char* dir_env = std::getenv("S3ASIM_RESULTS_DIR");
    const std::filesystem::path dir =
        dir_env != nullptr && dir_env[0] != '\0' ? dir_env : "results";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    out_flag = "--benchmark_out=" + (dir / "BENCH_io.json").string();
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int effective_argc = static_cast<int>(args.size());
  benchmark::Initialize(&effective_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(effective_argc, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
