/// Ablation F — §2's motivation for frequent result flushing: "More
/// frequently writing out the results also allows users to resume a failed
/// application run at the appropriate input query."
///
/// For each flush policy (every query ... write-at-end) this bench measures
/// (a) the run time — flushing less often is cheaper — and (b) the expected
/// recomputation after a fail-stop at a uniformly random time: a resumed
/// run restarts from the last fully-flushed batch, so everything after it
/// is lost.  The product of the two trade-offs is the paper's argument for
/// per-query writes.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "bench/sweep.hpp"
#include "trace/trace.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace s3asim;
using namespace s3asim::bench;

namespace {

/// Expected lost work (seconds of recomputation) for a failure uniform in
/// [0, wall]: at failure time t, work since the last completed flush is
/// lost.  We approximate flush completion times by even spacing of batches
/// across the run (the workload is homogeneous at this scale).
double expected_lost_seconds(double wall, std::uint32_t batches) {
  // Failure lands uniformly inside one of `batches` intervals of length
  // wall/batches; expected loss within an interval is half its length.
  return wall / static_cast<double>(batches) / 2.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const unsigned jobs = sweep_jobs(argc, argv);
  const std::uint32_t procs = quick ? 16 : 64;

  std::printf("S3aSim Ablation F: flush frequency vs. failure resumability "
              "(WW-List, %u procs)\n", procs);

  const std::uint32_t queries = core::paper_config().workload.query_count;
  const std::vector<std::uint32_t> flushes{1u, 2u, 4u, 10u, queries};

  std::vector<SweepPoint> grid;
  for (const std::uint32_t flush : flushes) {
    grid.push_back({"flush=" + std::to_string(flush), [flush, procs] {
                      auto config = core::paper_config();
                      config.strategy = core::Strategy::WWList;
                      config.nprocs = procs;
                      config.queries_per_flush = flush;
                      auto stats = core::run_simulation(config);
                      require_exact(stats);
                      return stats;
                    }});
  }
  const auto sweep_start = std::chrono::steady_clock::now();
  const auto results = run_sweep(std::move(grid), jobs);
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();

  util::TextTable table({"Flush every", "Wall (s)", "FS requests",
                         "E[lost work] (s)", "Wall + E[lost] (s)"});
  util::CsvWriter csv(csv_path("ablation_resume.csv"));
  csv.write_row({"queries_per_flush", "wall_s", "fs_requests",
                 "expected_lost_s", "total_s"});

  std::size_t index = 0;
  for (const std::uint32_t flush : flushes) {
    const auto& stats = results[index++].stats;
    const std::uint32_t batches = (queries + flush - 1) / flush;
    const double lost = expected_lost_seconds(stats.wall_seconds, batches);
    const std::string label =
        flush == queries ? "run end (mpiBLAST 1.2)" :
        flush == 1 ? "query (paper default)" : std::to_string(flush) + " queries";
    table.add_row({label, util::format_fixed(stats.wall_seconds),
                   std::to_string(stats.fs.server_requests),
                   util::format_fixed(lost),
                   util::format_fixed(stats.wall_seconds + lost)});
    csv.write_row_numeric(std::to_string(flush),
                          {stats.wall_seconds,
                           static_cast<double>(stats.fs.server_requests), lost,
                           stats.wall_seconds + lost});
  }
  std::printf("%s(csv: results/ablation_resume.csv)\n", table.render().c_str());
  std::printf("\nWriting after every query costs a little wall time but "
              "bounds the expected recomputation after a failure to half a "
              "query's span — the mpiBLAST 1.4 design point (§2).\n");

  const auto report = write_bench_json("ablation_resume", quick, jobs,
                                       results, sweep_seconds);
  std::printf("(bench json: %s)\n", report.c_str());
  return 0;
}
