/// Ablation I — failure time × I/O strategy: the cost of losing a worker.
///
/// The paper motivates per-query flushing with resumability (§2); this
/// bench exercises the complementary in-run recovery path: a worker dies
/// mid-run, the master's failure detector retires it, and its outstanding
/// (query, fragment) tasks are recomputed by the survivors.  For each
/// strategy we kill one worker at a fraction of the failure-free wall and
/// report the slowdown over the baseline plus the recovery counters.  Every
/// run must still produce an exactly-covered output file — recovery that
/// corrupts the layout would be worse than the failure.
///
/// Quick mode: death at 50% only.  Full mode sweeps 25% / 50% / 75%.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "bench/sweep.hpp"
#include "fault/fault.hpp"
#include "sim/time.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace s3asim;
using namespace s3asim::bench;

namespace {

core::SimConfig strategy_config(core::Strategy strategy, std::uint32_t procs) {
  auto config = core::paper_config();
  config.strategy = strategy;
  config.nprocs = procs;
  // The detector timeout must exceed the worst-case healthy search+flush
  // cycle at this scale or silence gets misread as death (WW-POSIX's
  // per-extent flushes are the long pole; 10s is marginal at 16 procs).
  config.fault_detection_timeout = sim::seconds(15);
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const unsigned jobs = sweep_jobs(argc, argv);
  const std::uint32_t procs = quick ? 16 : 32;
  const std::vector<double> fractions =
      quick ? std::vector<double>{0.5} : std::vector<double>{0.25, 0.5, 0.75};

  std::printf(
      "S3aSim Ablation I: worker death vs. I/O strategy (%u procs, "
      "detector timeout 15s)\n",
      procs);

  // Stage 1: failure-free baselines per strategy.  A benign plan (slow
  // factor 1 changes nothing) keeps both runs on the recovery-capable
  // master loop; the legacy MW loop head-of-line blocks on requests and is
  // measurably slower, which would masquerade as negative death cost.
  std::vector<SweepPoint> baseline_grid;
  for (const auto strategy : paper_strategies()) {
    baseline_grid.push_back(
        {std::string(core::strategy_name(strategy)) + " baseline",
         [strategy, procs] {
           auto benign = strategy_config(strategy, procs);
           benign.fault.slowdowns.push_back(fault::WorkerSlow{1, 0, 1.0});
           auto stats = core::run_simulation(benign);
           require_exact(stats);
           return stats;
         }});
  }
  const auto sweep_start = std::chrono::steady_clock::now();
  const auto baselines = run_sweep(std::move(baseline_grid), jobs);

  // Stage 2: faulted runs, whose kill times derive from the baselines.
  std::vector<SweepPoint> faulted_grid;
  for (std::size_t s = 0; s < paper_strategies().size(); ++s) {
    const auto strategy = paper_strategies()[s];
    const double baseline_wall = baselines[s].stats.wall_seconds;
    for (const double fraction : fractions) {
      faulted_grid.push_back(
          {std::string(core::strategy_name(strategy)) + " death@" +
               util::format_fixed(fraction * 100.0, 0) + "%",
           [strategy, procs, baseline_wall, fraction] {
             auto faulted = strategy_config(strategy, procs);
             faulted.fault.kills.push_back(
                 fault::WorkerKill{1, sim::seconds(baseline_wall * fraction)});
             auto stats = core::run_simulation(faulted);
             require_exact(stats);
             return stats;
           }});
    }
  }
  const auto faulted = run_sweep(std::move(faulted_grid), jobs);
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();

  util::TextTable table({"Strategy", "Death at", "Baseline (s)", "Faulted (s)",
                         "Slowdown", "Died", "Retired", "Reassigned",
                         "Repaired"});
  util::CsvWriter csv(csv_path("ablation_faults.csv"));
  csv.write_row({"strategy", "death_fraction", "baseline_s", "faulted_s",
                 "slowdown", "workers_died", "workers_retired",
                 "tasks_reassigned", "repaired_bytes"});

  std::size_t index = 0;
  for (std::size_t s = 0; s < paper_strategies().size(); ++s) {
    const auto strategy = paper_strategies()[s];
    const auto& baseline = baselines[s].stats;
    for (const double fraction : fractions) {
      const auto& stats = faulted[index++].stats;
      const double slowdown = stats.wall_seconds / baseline.wall_seconds;
      table.add_row(
          {core::strategy_name(strategy),
           util::format_fixed(fraction * 100.0, 0) + "%",
           util::format_fixed(baseline.wall_seconds),
           util::format_fixed(stats.wall_seconds),
           util::format_fixed(slowdown, 2) + "x",
           std::to_string(stats.faults.workers_died),
           std::to_string(stats.faults.workers_retired),
           std::to_string(stats.faults.tasks_reassigned),
           util::format_bytes(stats.faults.repaired_bytes)});
      csv.write_row_numeric(
          std::string(core::strategy_name(strategy)),
          {fraction, baseline.wall_seconds, stats.wall_seconds, slowdown,
           static_cast<double>(stats.faults.workers_died),
           static_cast<double>(stats.faults.workers_retired),
           static_cast<double>(stats.faults.tasks_reassigned),
           static_cast<double>(stats.faults.repaired_bytes)});
    }
  }
  std::printf("%s(csv: results/ablation_faults.csv)\n", table.render().c_str());
  std::printf(
      "\nEvery strategy recovers to an exactly-verified output file.  The "
      "worker-write strategies pay the detector timeout plus recomputation "
      "of the dead worker's outstanding tasks; MW can absorb a mid-run "
      "death for free (its master-side write drain is the critical path, "
      "so the search phase has slack — a died-but-never-retired worker "
      "simply had nothing outstanding).\n");

  // One combined report: baselines first, then the faulted grid.
  auto all = baselines;
  all.insert(all.end(), faulted.begin(), faulted.end());
  const auto report = write_bench_json("ablation_faults", quick, jobs, all,
                                       sweep_seconds);
  std::printf("(bench json: %s)\n", report.c_str());
  return 0;
}
