/// Ablation I — failure time × I/O strategy: the cost of losing a worker.
///
/// The paper motivates per-query flushing with resumability (§2); this
/// bench exercises the complementary in-run recovery path: a worker dies
/// mid-run, the master's failure detector retires it, and its outstanding
/// (query, fragment) tasks are recomputed by the survivors.  For each
/// strategy we kill one worker at a fraction of the failure-free wall and
/// report the slowdown over the baseline plus the recovery counters.  Every
/// run must still produce an exactly-covered output file — recovery that
/// corrupts the layout would be worse than the failure.
///
/// Quick mode: death at 50% only.  Full mode sweeps 25% / 50% / 75%.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "fault/fault.hpp"
#include "sim/time.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace s3asim;
using namespace s3asim::bench;

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const std::uint32_t procs = quick ? 16 : 32;
  const std::vector<double> fractions =
      quick ? std::vector<double>{0.5} : std::vector<double>{0.25, 0.5, 0.75};

  std::printf(
      "S3aSim Ablation I: worker death vs. I/O strategy (%u procs, "
      "detector timeout 15s)\n",
      procs);

  util::TextTable table({"Strategy", "Death at", "Baseline (s)", "Faulted (s)",
                         "Slowdown", "Died", "Retired", "Reassigned",
                         "Repaired"});
  util::CsvWriter csv(csv_path("ablation_faults.csv"));
  csv.write_row({"strategy", "death_fraction", "baseline_s", "faulted_s",
                 "slowdown", "workers_died", "workers_retired",
                 "tasks_reassigned", "repaired_bytes"});

  for (const auto strategy : paper_strategies()) {
    auto config = core::paper_config();
    config.strategy = strategy;
    config.nprocs = procs;
    // The detector timeout must exceed the worst-case healthy search+flush
    // cycle at this scale or silence gets misread as death (WW-POSIX's
    // per-extent flushes are the long pole; 10s is marginal at 16 procs).
    config.fault_detection_timeout = sim::seconds(15);

    // Baseline with a benign plan (slow factor 1 changes nothing) so both
    // runs use the recovery-capable master loop; the legacy MW loop
    // head-of-line blocks on requests and is measurably slower, which
    // would masquerade as negative death cost.
    auto benign = config;
    benign.fault.slowdowns.push_back(fault::WorkerSlow{1, 0, 1.0});
    const auto baseline = core::run_simulation(benign);
    require_exact(baseline);

    for (const double fraction : fractions) {
      auto faulted = config;
      faulted.fault.kills.push_back(
          fault::WorkerKill{1, sim::seconds(baseline.wall_seconds * fraction)});
      const auto stats = core::run_simulation(faulted);
      require_exact(stats);
      const double slowdown = stats.wall_seconds / baseline.wall_seconds;
      table.add_row(
          {core::strategy_name(strategy),
           util::format_fixed(fraction * 100.0, 0) + "%",
           util::format_fixed(baseline.wall_seconds),
           util::format_fixed(stats.wall_seconds),
           util::format_fixed(slowdown, 2) + "x",
           std::to_string(stats.faults.workers_died),
           std::to_string(stats.faults.workers_retired),
           std::to_string(stats.faults.tasks_reassigned),
           util::format_bytes(stats.faults.repaired_bytes)});
      csv.write_row_numeric(
          std::string(core::strategy_name(strategy)),
          {fraction, baseline.wall_seconds, stats.wall_seconds, slowdown,
           static_cast<double>(stats.faults.workers_died),
           static_cast<double>(stats.faults.workers_retired),
           static_cast<double>(stats.faults.tasks_reassigned),
           static_cast<double>(stats.faults.repaired_bytes)});
    }
  }
  std::printf("%s(csv: results/ablation_faults.csv)\n", table.render().c_str());
  std::printf(
      "\nEvery strategy recovers to an exactly-verified output file.  The "
      "worker-write strategies pay the detector timeout plus recomputation "
      "of the dead worker's outstanding tasks; MW can absorb a mid-run "
      "death for free (its master-side write drain is the critical path, "
      "so the search phase has slack — a died-but-never-retired worker "
      "simply had nothing outstanding).\n");
  return 0;
}
