#pragma once

/// \file common.hpp
/// Shared driver for the figure-reproduction benches: runs the paper's
/// workload grid, prints the series each figure plots, and mirrors them to
/// CSV.  Absolute seconds are model-calibrated; the *shapes* are the
/// reproduction target (see DESIGN.md §3 and EXPERIMENTS.md).

#include <cstdint>
#include <string>
#include <vector>

#include "core/simulation.hpp"

namespace s3asim::bench {

/// Process counts used by the paper's first test suite (Figures 2–4).
[[nodiscard]] std::vector<std::uint32_t> paper_proc_counts(bool quick);

/// Compute speeds used by the second suite (Figures 5–7): 0.1 … 25.6, ×2.
[[nodiscard]] std::vector<double> paper_compute_speeds(bool quick);

/// The four strategies of the paper, in presentation order.
[[nodiscard]] const std::vector<core::Strategy>& paper_strategies();

/// Runs one paper-config simulation with the given overrides.
[[nodiscard]] core::RunStats run_point(core::Strategy strategy,
                                       std::uint32_t nprocs, bool query_sync,
                                       double compute_speed = 1.0);

/// Prints an "Overall Execution Time" table (one row per x value, one
/// column per strategy) and writes it to `<csv_prefix>.csv` when non-empty.
void print_overall_table(
    const std::string& title, const std::string& x_label,
    const std::vector<std::string>& x_values,
    const std::vector<core::Strategy>& strategies,
    const std::vector<std::vector<double>>& seconds,  // [x][strategy]
    const std::string& csv_prefix);

/// Prints the per-phase worker-process breakdown for one strategy/mode
/// (one row per phase, one column per x value) — the stacked bars of
/// Figures 3/4/6/7 — and mirrors to CSV.
void print_phase_breakdown(
    const std::string& title, const std::string& x_label,
    const std::vector<std::string>& x_values,
    const std::vector<core::RunStats>& runs,  // one per x value
    const std::string& csv_prefix);

/// Prints the paper's §4 headline comparison: how much WW-List outperforms
/// each other strategy ("by N%"), paper value alongside.
void print_headline_ratios(const std::string& context,
                           const std::vector<core::Strategy>& strategies,
                           const std::vector<double>& seconds,
                           const std::vector<double>& paper_percent,
                           bool sync);

/// True when "--quick" is among the args (reduced grid for smoke runs).
[[nodiscard]] bool quick_mode(int argc, char** argv);

/// Where bench CSVs go: `results/<name>` (the directory is created on
/// first use; S3ASIM_RESULTS_DIR overrides the location).
[[nodiscard]] std::string csv_path(const std::string& name);

/// Verifies a run's output file and aborts loudly if broken.
void require_exact(const core::RunStats& stats);

}  // namespace s3asim::bench
