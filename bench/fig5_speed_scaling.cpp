/// Figure 5 — "Results when scaling up the compute speed with no-sync/sync
/// query options": overall execution time at 64 processes over compute
/// speeds 0.1–25.6, plus the §4 headline ratios at speed 25.6.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "bench/sweep.hpp"
#include "util/units.hpp"

using namespace s3asim;
using namespace s3asim::bench;

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const unsigned jobs = sweep_jobs(argc, argv);
  const auto speeds = paper_compute_speeds(quick);
  const auto& strategies = paper_strategies();
  constexpr std::uint32_t kProcs = 64;

  std::printf("S3aSim Figure 5: overall execution time vs. compute speed "
              "(64 processes)\n");

  std::vector<SweepPoint> grid;
  for (const bool sync : {false, true}) {
    for (const double speed : speeds) {
      for (std::size_t s = 0; s < strategies.size(); ++s) {
        const auto strategy = strategies[s];
        grid.push_back({std::string(core::strategy_name(strategy)) +
                            " speed=" + util::format_fixed(speed, 1) +
                            (sync ? " sync" : " no-sync"),
                        [strategy, sync, speed] {
                          return run_point(strategy, kProcs, sync, speed);
                        }});
      }
    }
  }
  const auto sweep_start = std::chrono::steady_clock::now();
  const auto results = run_sweep(std::move(grid), jobs);
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();

  std::size_t index = 0;
  for (const bool sync : {false, true}) {
    std::vector<std::string> x_values;
    std::vector<std::vector<double>> seconds;
    std::vector<double> at_max(strategies.size(), 0.0);
    for (const double speed : speeds) {
      std::vector<double> row;
      for (std::size_t s = 0; s < strategies.size(); ++s) {
        row.push_back(results[index++].stats.wall_seconds);
        at_max[s] = row.back();
      }
      x_values.push_back(util::format_fixed(speed, 1));
      seconds.push_back(std::move(row));
    }
    print_overall_table(
        std::string("Overall Execution Time - ") + (sync ? "Sync" : "No-sync"),
        "Compute Speed", x_values, strategies, seconds,
        std::string("fig5_") + (sync ? "sync" : "nosync"));

    // §4: at compute speed 25.6, WW-List outperforms by 592% (MW), 32%
    // (WW-POSIX), 98% (WW-Coll) no-sync; 444%, 65%, 58% sync.
    const std::vector<double> paper =
        sync ? std::vector<double>{444.0, 65.0, 0.0, 58.0}
             : std::vector<double>{592.0, 32.0, 0.0, 98.0};
    print_headline_ratios("at compute speed 25.6", strategies, at_max, paper,
                          sync);

    // §4: MW is compute-insensitive ("increasing the compute speed up to
    // 25.6 times faster than the base compute speed made less than a 2%
    // difference").
    double mw_base = seconds.back()[0];
    for (std::size_t i = 0; i < speeds.size(); ++i)
      if (speeds[i] == 1.0) mw_base = seconds[i][0];
    const double mw_fastest = seconds.back()[0];
    std::printf("MW delta from base speed (1.0x) to 25.6x: %.1f%% "
                "(paper: <2%%)\n",
                (mw_base / mw_fastest - 1.0) * 100.0);
  }

  const auto report = write_bench_json("fig5", quick, jobs, results,
                                       sweep_seconds);
  std::printf("(bench json: %s)\n", report.c_str());
  return 0;
}
