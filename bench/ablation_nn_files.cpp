/// Ablation H — "new I/O algorithms" (§5): file-per-process (N-N) output.
/// Workers append results contiguously to private files the moment they are
/// computed — no offset lists, no noncontiguous writes, no synchronization —
/// and the master pays for it all at the end, reading every private file
/// back and list-writing 208 MB into sorted order.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "bench/sweep.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace s3asim;
using namespace s3asim::bench;

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const unsigned jobs = sweep_jobs(argc, argv);
  const auto procs = paper_proc_counts(quick);

  std::printf("S3aSim Ablation H: file-per-process (N-N) vs shared-file "
              "strategies\n");

  const std::vector<core::Strategy> variants{
      core::Strategy::WWFilePerProcess, core::Strategy::WWList,
      core::Strategy::MW};

  std::vector<SweepPoint> grid;
  for (const auto nprocs : procs) {
    for (const auto strategy : variants) {
      grid.push_back({std::string(core::strategy_name(strategy)) + " n=" +
                          std::to_string(nprocs),
                      [strategy, nprocs] {
                        return run_point(strategy, nprocs, false);
                      }});
    }
  }
  const auto sweep_start = std::chrono::steady_clock::now();
  const auto results = run_sweep(std::move(grid), jobs);
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();

  util::TextTable table({"Procs", "WW-FilePerProc (s)", "  of which merge (s)",
                         "WW-List (s)", "MW (s)"});
  util::CsvWriter csv(csv_path("ablation_nn_files.csv"));
  csv.write_row({"procs", "nn_total", "nn_merge", "ww_list", "mw"});

  std::size_t index = 0;
  for (const auto nprocs : procs) {
    const auto& nn = results[index++].stats;
    const auto& list = results[index++].stats;
    const auto& mw = results[index++].stats;
    // The merge runs serially on the master at the end; its I/O phase is a
    // good proxy (the master does no other I/O in this strategy).
    const double merge = nn.master_seconds(core::Phase::Io);
    table.add_row_numeric(std::to_string(nprocs),
                          {nn.wall_seconds, merge, list.wall_seconds,
                           mw.wall_seconds});
    csv.write_row_numeric(std::to_string(nprocs),
                          {nn.wall_seconds, merge, list.wall_seconds,
                           mw.wall_seconds});
  }
  std::printf("%s(csv: results/ablation_nn_files.csv)\n", table.render().c_str());
  std::printf("\nN-N makes the workers' write path trivial (contiguous "
              "appends) but moves every byte twice and serializes the merge "
              "on one rank — at scale the merge dominates, which is why the "
              "tools the paper studies write one shared, sorted file "
              "in-flight instead.\n");

  const auto report = write_bench_json("ablation_nn_files", quick, jobs,
                                       results, sweep_seconds);
  std::printf("(bench json: %s)\n", report.c_str());
  return 0;
}
