/// Figure 2 — "Results when scaling up the number of processors with
/// no-sync/sync query options": overall execution time of MW, WW-POSIX,
/// WW-List, WW-Coll over 2–96 processes, both query-sync modes, plus the
/// §4 headline ratios at 96 processes.
///
/// --scale-out replaces the paper's 2–96 grid with the extrapolation the
/// parallel engine exists for: all seven strategies at 1024 and 4096
/// simulated ranks via the native-LP scale model (core/scale_model.hpp),
/// against the same fixed 16-server I/O subsystem.  The resulting
/// strategy-survival table (EXPERIMENTS.md, Ablation M) shows which
/// strategies' makespans hold as the compute side grows 40x beyond the
/// largest cluster the paper measured.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "bench/sweep.hpp"
#include "core/scale_model.hpp"
#include "core/simulation.hpp"
#include "obs/metrics.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace s3asim;
using namespace s3asim::bench;

namespace {

int run_scale_out() {
  const std::vector<std::uint32_t> ranks{1024, 4096};
  const std::vector<core::Strategy> strategies(
      std::begin(core::kAllStrategies), std::end(core::kAllStrategies));
  const unsigned threads =
      std::clamp(std::thread::hardware_concurrency(), 1u, 8u);

  std::printf(
      "S3aSim Figure 2 (--scale-out): simulated makespan at 1024/4096 ranks\n"
      "scale model: 16 I/O servers, 4 queries, Myrinet-2000 link, "
      "engine threads=%u (results are thread-count independent)\n",
      threads);

  util::TextTable table({"Strategy", "1024 ranks (s)", "4096 ranks (s)",
                         "growth (x)"});
  util::CsvWriter csv(csv_path("fig2_scale_out.csv"));
  csv.write_row({"strategy", "ranks", "makespan_seconds", "events",
                 "cross_lp_messages"});
  for (const auto strategy : strategies) {
    std::vector<double> makespans;
    for (const auto nprocs : ranks) {
      core::ScaleConfig config;
      config.nprocs = nprocs;
      config.strategy = strategy;
      const core::ScaleStats stats = run_scale_model(config, threads);
      makespans.push_back(stats.makespan_seconds);
      csv.write_row({std::string(core::strategy_name(strategy)),
                     std::to_string(nprocs),
                     std::to_string(stats.makespan_seconds),
                     std::to_string(stats.events),
                     std::to_string(stats.cross_lp_messages)});
    }
    table.add_row_numeric(core::strategy_name(strategy),
                          {makespans[0], makespans[1],
                           makespans[1] / makespans[0]});
  }
  std::printf("%s(csv: results/fig2_scale_out.csv)\n", table.render().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--scale-out") == 0) return run_scale_out();
  const bool quick = quick_mode(argc, argv);
  const unsigned jobs = sweep_jobs(argc, argv);
  const auto procs = paper_proc_counts(quick);
  const auto& strategies = paper_strategies();

  std::printf("S3aSim Figure 2: overall execution time vs. process count\n");
  std::printf("workload: 20 queries x 128 fragments, NT histograms, ~208 MB "
              "output, flush per query, MPI_File_sync after every write\n");

  // Flat grid in (sync, nprocs, strategy) order; the tables below index
  // back into it, so serial and --jobs runs emit identical bytes.
  std::vector<SweepPoint> grid;
  for (const bool sync : {false, true}) {
    for (const auto nprocs : procs) {
      for (std::size_t s = 0; s < strategies.size(); ++s) {
        const auto strategy = strategies[s];
        grid.push_back({std::string(core::strategy_name(strategy)) + " n=" +
                            std::to_string(nprocs) +
                            (sync ? " sync" : " no-sync"),
                        [strategy, nprocs, sync] {
                          return run_point(strategy, nprocs, sync);
                        }});
      }
    }
  }
  const auto sweep_start = std::chrono::steady_clock::now();
  const auto results = run_sweep(std::move(grid), jobs);
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();

  std::size_t index = 0;
  for (const bool sync : {false, true}) {
    std::vector<std::string> x_values;
    std::vector<std::vector<double>> seconds;
    std::vector<double> at_max(strategies.size(), 0.0);
    for (const auto nprocs : procs) {
      std::vector<double> row;
      for (std::size_t s = 0; s < strategies.size(); ++s) {
        row.push_back(results[index++].stats.wall_seconds);
        at_max[s] = row.back();  // last proc count wins
      }
      x_values.push_back(std::to_string(nprocs));
      seconds.push_back(std::move(row));
    }
    print_overall_table(
        std::string("Overall Execution Time - ") + (sync ? "Sync" : "No-sync"),
        "Processes", x_values, strategies, seconds,
        std::string("fig2_") + (sync ? "sync" : "nosync"));

    // §4: "WW-List outperforms the other I/O strategies by 364% (MW), 33%
    // (WW-POSIX), and 75% (WW-Coll) in the no-sync cases and 182% (MW), 37%
    // (WW-POSIX), and 13% (WW-Coll) in the sync cases" at 96 processors.
    const std::vector<double> paper =
        sync ? std::vector<double>{182.0, 37.0, 0.0, 13.0}
             : std::vector<double>{364.0, 33.0, 0.0, 75.0};
    if (procs.back() == 96)
      print_headline_ratios("at 96 processors", strategies, at_max, paper,
                            sync);
  }

  // One representative observed run (paper strategy at the largest grid
  // size) re-executed with the metrics registry attached; its snapshot is
  // embedded in the bench JSON.  Observability never perturbs results, so
  // the tables/CSVs above — built only from the sweep — are unaffected.
  obs::Registry registry;
  {
    auto config = core::paper_config();
    config.nprocs = procs.back();
    const core::Observability observe{nullptr, &registry};
    const auto observed = core::run_simulation(config, observe);
    require_exact(observed);
  }

  const auto report = write_bench_json("fig2", quick, jobs, results,
                                       sweep_seconds, &registry);
  std::printf("(bench json: %s)\n", report.c_str());
  return 0;
}
