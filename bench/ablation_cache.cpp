/// Ablation K — client-side write-back caching with byte-range lease
/// tokens (DESIGN.md §10).  Two grids at the paper's §3.3 configuration
/// (sync-after-write off, so the cache is allowed to absorb):
///   * cache-capacity sweep (off / 16 MiB / 64 MiB per client) across the
///     strategies the cache affects most — MW's batched master writes,
///     WW-POSIX's per-call round trips (the token-contention worst case),
///     WW-List's native list writes, and WW-Aggr's group aggregation;
///   * token-granularity sweep (64 KiB / 1 MiB / 8 MiB) at 64 MiB capacity
///     — coarser leases mean fewer grant round trips but more false
///     sharing and revocation traffic between neighbouring writers.
/// The run fails (exit 1) unless at least two strategies see either a
/// ≥1.3x simulated-time speedup or a ≥30% server-request reduction with
/// the cache on — the acceptance gate recorded in EXPERIMENTS.md.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "bench/sweep.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace s3asim;
using namespace s3asim::bench;

namespace {

const core::Strategy kStrategies[] = {
    core::Strategy::MW, core::Strategy::WWPosix, core::Strategy::WWList,
    core::Strategy::WWAggr};

core::RunStats run_cache_point(core::Strategy strategy, std::uint32_t nprocs,
                               std::uint64_t capacity,
                               std::uint64_t token_bytes) {
  auto config = core::paper_config();
  config.strategy = strategy;
  config.nprocs = nprocs;
  config.sync_after_write = false;
  if (capacity != 0) {
    config.model.pfs.cache.capacity_bytes = capacity;
    config.model.pfs.cache.block_bytes = 64 * util::KiB;  // = strip
    config.model.pfs.cache.token_bytes = token_bytes;
  }
  auto stats = core::run_simulation(config);
  require_exact(stats);
  return stats;
}

double total_requests(const core::RunStats& stats) {
  return static_cast<double>(stats.fs.server_requests);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const unsigned jobs = sweep_jobs(argc, argv);
  const std::uint32_t nprocs = quick ? 8 : 16;
  const std::vector<std::uint64_t> capacities{0, 16 * util::MiB,
                                              64 * util::MiB};
  const std::vector<std::uint64_t> tokens{64 * util::KiB, util::MiB,
                                          8 * util::MiB};
  constexpr std::uint64_t kDefaultToken = util::MiB;
  constexpr std::uint64_t kSweepCapacity = 64 * util::MiB;

  std::printf("S3aSim Ablation K: client-side write-back caching with "
              "byte-range lease tokens (%u processes)\n",
              nprocs);

  std::vector<SweepPoint> grid;
  for (const auto strategy : kStrategies)
    for (const auto capacity : capacities)
      grid.push_back({std::string(core::strategy_name(strategy)) + " cap=" +
                          std::to_string(capacity / util::MiB) + "MiB",
                      [strategy, nprocs, capacity] {
                        return run_cache_point(strategy, nprocs, capacity,
                                               kDefaultToken);
                      }});
  for (const auto strategy : kStrategies)
    for (const auto token : tokens)
      grid.push_back({std::string(core::strategy_name(strategy)) + " token=" +
                          std::to_string(token / util::KiB) + "KiB",
                      [strategy, nprocs, token] {
                        return run_cache_point(strategy, nprocs,
                                               kSweepCapacity, token);
                      }});

  const auto sweep_start = std::chrono::steady_clock::now();
  const auto results = run_sweep(std::move(grid), jobs);
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();

  // --- Capacity sweep table + gate inputs. --------------------------------
  util::TextTable table({"Strategy", "off (s)", "16MiB (s)", "64MiB (s)",
                         "speedup", "req off", "req 64MiB", "req cut"});
  util::CsvWriter csv(csv_path("ablation_cache.csv"));
  csv.write_row({"strategy", "off_s", "cap16_s", "cap64_s", "speedup",
                 "requests_off", "requests_cap64", "request_cut"});
  std::size_t index = 0;
  unsigned winners = 0;
  for (const auto strategy : kStrategies) {
    const auto& off = results[index++].stats;
    const auto& cap16 = results[index++].stats;
    const auto& cap64 = results[index++].stats;
    const double speedup = cap64.wall_seconds > 0.0
                               ? off.wall_seconds / cap64.wall_seconds
                               : 0.0;
    const double cut =
        total_requests(off) > 0.0
            ? 1.0 - total_requests(cap64) / total_requests(off)
            : 0.0;
    if (speedup >= 1.3 || cut >= 0.30) ++winners;
    table.add_row_numeric(core::strategy_name(strategy),
                          {off.wall_seconds, cap16.wall_seconds,
                           cap64.wall_seconds, speedup, total_requests(off),
                           total_requests(cap64), cut});
    csv.write_row_numeric(core::strategy_name(strategy),
                          {off.wall_seconds, cap16.wall_seconds,
                           cap64.wall_seconds, speedup, total_requests(off),
                           total_requests(cap64), cut});
  }
  std::printf("%s", table.render().c_str());
  std::printf("(csv: results/ablation_cache.csv)\n");

  // --- Token-granularity sweep. -------------------------------------------
  util::TextTable token_table({"Strategy", "64KiB (s)", "1MiB (s)",
                               "8MiB (s)", "grants@64KiB", "revokes@64KiB",
                               "revokes@8MiB"});
  util::CsvWriter token_csv(csv_path("ablation_cache_token.csv"));
  token_csv.write_row({"strategy", "token64k_s", "token1m_s", "token8m_s",
                       "grants_64k", "revocations_64k", "revocations_8m"});
  for (const auto strategy : kStrategies) {
    const auto& fine = results[index++].stats;
    const auto& mid = results[index++].stats;
    const auto& coarse = results[index++].stats;
    token_table.add_row_numeric(
        core::strategy_name(strategy),
        {fine.wall_seconds, mid.wall_seconds, coarse.wall_seconds,
         static_cast<double>(fine.cache.token_grants),
         static_cast<double>(fine.cache.token_revocations),
         static_cast<double>(coarse.cache.token_revocations)});
    token_csv.write_row_numeric(
        core::strategy_name(strategy),
        {fine.wall_seconds, mid.wall_seconds, coarse.wall_seconds,
         static_cast<double>(fine.cache.token_grants),
         static_cast<double>(fine.cache.token_revocations),
         static_cast<double>(coarse.cache.token_revocations)});
  }
  std::printf("\n== Token-granularity sweep at 64 MiB capacity ==\n");
  std::printf("%s", token_table.render().c_str());
  std::printf("(csv: results/ablation_cache_token.csv)\n");

  const auto report =
      write_bench_json("cache", quick, jobs, results, sweep_seconds);
  std::printf("(bench json: %s)\n", report.c_str());

  if (winners < 2) {
    std::fprintf(stderr,
                 "ablation_cache: GATE FAILED — only %u strategies reached "
                 "a >=1.3x speedup or >=30%% request cut (need >=2)\n",
                 winners);
    return 1;
  }
  std::printf("gate: %u strategies met >=1.3x speedup or >=30%% request "
              "cut (need >=2)\n",
              winners);
  return 0;
}
