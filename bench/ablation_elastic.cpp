/// Ablation O — elastic provisioning and heterogeneous speed classes.
///
/// Two questions the fixed-membership paper setup cannot ask (ROADMAP
/// item 5, DESIGN.md §12):
///
/// Part 1 — does the master's speed-aware dispatch (LPT with a tail
/// guard) beat size-blind dispatch on a heterogeneous cluster?  Closed
/// batch, standard:1× and accel:4× workers mixed 3:1, aware vs blind
/// per strategy.
///
/// Part 2 — what does elasticity buy under a bursty arrival trace?
/// Three provisioning arms per strategy: static-peak (every worker
/// active the whole run), static-min (only the baseline workers exist),
/// and elastic (baseline workers plus standbys the autoscaler summons
/// against the admission-queue depth and drains when it empties).  The
/// figure of merit is the p99 latency each arm reaches versus the
/// worker-seconds it provisions.
///
/// Only membership-tolerant strategies appear in part 2 — WW-Coll,
/// WW-CollList and WW-Aggr pin their collective schedules to a fixed
/// worker set and are rejected by validate_membership by design.
///
/// Determinism: every simulated column of results/ablation_elastic.csv
/// derives from seed + config only; CI double-runs this bench
/// (serial vs --jobs 4) and requires byte-identical CSVs.
///
/// Quick mode: 2 strategies per part.  Full: 3 (part 1) and 4 (part 2).

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/common.hpp"
#include "bench/sweep.hpp"
#include "core/membership.hpp"
#include "sim/time.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace s3asim;
using namespace s3asim::bench;

namespace {

constexpr std::uint32_t kProcs = 9;        // 1 master + 8 workers
constexpr std::uint32_t kMinWorkers = 4;   // static-min / elastic baseline
constexpr char kClasses[] = "standard:speed=1,count=3|accel:speed=4,count=1";

core::SimConfig hetero_config(core::Strategy strategy, bool aware) {
  auto config = core::paper_config();
  config.strategy = strategy;
  config.nprocs = kProcs;
  config.membership.classes = core::parse_worker_classes(kClasses);
  config.membership.speed_aware = aware;
  return config;
}

/// The bursty trace every part-2 arm of one strategy replays: a trickle
/// at 25% of the strategy's closed-batch capacity, then a burst at 200%
/// for half the queries, then a trickle again.  Arrival times derive
/// from the measured capacity, so the trace stresses each strategy
/// equally hard relative to its own peak throughput.  The burst
/// overloads even the full cluster (2x > 1x), so static-peak queues
/// too — the elastic arm's question is whether its ramp-up penalty
/// stays small against the burst-driven queueing both arms share.
std::vector<std::pair<double, std::uint32_t>> bursty_trace(
    double capacity_qps, std::uint32_t queries) {
  std::vector<std::pair<double, std::uint32_t>> trace;
  trace.reserve(queries);
  const std::uint32_t pre = queries / 3;
  const std::uint32_t burst_end = pre + queries / 2;
  double t = 0.0;
  for (std::uint32_t q = 0; q < queries; ++q) {
    const bool burst = q >= pre && q < burst_end;
    t += 1.0 / (capacity_qps * (burst ? 2.0 : 0.25));
    trace.emplace_back(t, 0);
  }
  return trace;
}

core::SimConfig serving_config(
    core::Strategy strategy, std::uint32_t procs,
    std::vector<std::pair<double, std::uint32_t>> trace) {
  auto config = core::paper_config();
  config.strategy = strategy;
  config.nprocs = procs;
  config.workload.query_count = static_cast<std::uint32_t>(trace.size());
  config.serving.trace_arrivals = std::move(trace);
  config.serving.admit_depth = 64;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const unsigned jobs = sweep_jobs(argc, argv);
  const std::uint32_t queries = quick ? 24 : 42;
  const std::vector<core::Strategy> hetero_strategies =
      quick ? std::vector<core::Strategy>{core::Strategy::WWList,
                                          core::Strategy::MW}
            : std::vector<core::Strategy>{core::Strategy::WWList,
                                          core::Strategy::WWPosix,
                                          core::Strategy::MW};
  const std::vector<core::Strategy> elastic_strategies =
      quick ? std::vector<core::Strategy>{core::Strategy::WWList,
                                          core::Strategy::MW}
            : std::vector<core::Strategy>{core::Strategy::WWList,
                                          core::Strategy::WWPosix,
                                          core::Strategy::WWFilePerProcess,
                                          core::Strategy::MW};

  std::printf(
      "S3aSim Ablation O: heterogeneous dispatch + elastic provisioning "
      "(%u procs, classes %s)\n",
      kProcs, kClasses);

  // ---- Part 1: speed-aware vs blind dispatch on a heterogeneous mix.
  std::vector<SweepPoint> hetero_grid;
  for (const auto strategy : hetero_strategies) {
    for (const bool aware : {false, true}) {
      hetero_grid.push_back(
          {std::string(core::strategy_name(strategy)) +
               (aware ? " aware" : " blind"),
           [strategy, aware] {
             auto stats = core::run_simulation(hetero_config(strategy, aware));
             require_exact(stats);
             return stats;
           }});
    }
  }
  const auto sweep_start = std::chrono::steady_clock::now();
  const auto hetero = run_sweep(std::move(hetero_grid), jobs);

  // ---- Part 2, stage 1: per-strategy closed-batch capacity at peak size
  // (the yardstick the bursty trace scales from).
  std::vector<SweepPoint> capacity_grid;
  for (const auto strategy : elastic_strategies) {
    capacity_grid.push_back(
        {std::string(core::strategy_name(strategy)) + " capacity",
         [strategy, queries] {
           auto config = core::paper_config();
           config.strategy = strategy;
           config.nprocs = kProcs;
           config.workload.query_count = queries;
           auto stats = core::run_simulation(config);
           require_exact(stats);
           return stats;
         }});
  }
  const auto capacities = run_sweep(std::move(capacity_grid), jobs);

  // ---- Part 2, stage 2: the three provisioning arms per strategy.
  struct Arm {
    const char* name;
    std::uint32_t procs;
    bool elastic;
  };
  const std::vector<Arm> arms = {{"static-peak", kProcs, false},
                                 {"static-min", kMinWorkers + 1, false},
                                 {"elastic", kProcs, true}};
  std::vector<SweepPoint> arm_grid;
  for (std::size_t s = 0; s < elastic_strategies.size(); ++s) {
    const auto strategy = elastic_strategies[s];
    const double capacity_qps =
        static_cast<double>(queries) / capacities[s].stats.wall_seconds;
    for (const Arm& arm : arms) {
      arm_grid.push_back(
          {std::string(core::strategy_name(strategy)) + " " + arm.name,
           [strategy, capacity_qps, queries, arm] {
             auto config = serving_config(strategy, arm.procs,
                                          bursty_trace(capacity_qps, queries));
             if (arm.elastic) {
               config.membership.elastic = true;
               config.membership.min_workers = kMinWorkers;
               config.membership.autoscale_target = 2.0;
               config.membership.autoscale_cooldown = sim::seconds(0.5);
             }
             auto stats = core::run_simulation(config);
             require_exact(stats);
             return stats;
           }});
    }
  }
  const auto served = run_sweep(std::move(arm_grid), jobs);
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();

  // ---- Report part 1.
  util::TextTable hetero_table({"Strategy", "Blind (s)", "Aware (s)",
                                "Speedup", "Speed min..max"});
  util::CsvWriter csv(csv_path("ablation_elastic.csv"));
  csv.write_row({"label", "wall_s", "p99_s", "completed", "shed",
                 "worker_seconds", "peak_active", "joins", "drains"});
  for (std::size_t s = 0; s < hetero_strategies.size(); ++s) {
    const auto& blind = hetero[2 * s].stats;
    const auto& aware = hetero[2 * s + 1].stats;
    hetero_table.add_row(
        {core::strategy_name(hetero_strategies[s]),
         util::format_fixed(blind.wall_seconds),
         util::format_fixed(aware.wall_seconds),
         util::format_fixed(blind.wall_seconds / aware.wall_seconds, 3) + "x",
         util::format_fixed(aware.membership.speed_min, 1) + ".." +
             util::format_fixed(aware.membership.speed_max, 1)});
    for (const auto* run : {&blind, &aware}) {
      csv.write_row_numeric(
          std::string(core::strategy_name(hetero_strategies[s])) +
              (run == &aware ? "/aware" : "/blind"),
          {run->wall_seconds, 0.0, 0.0, 0.0, run->membership.worker_seconds,
           static_cast<double>(run->membership.peak_active), 0.0, 0.0});
    }
  }
  std::printf("\nPart 1 — closed batch, speed-aware vs blind dispatch:\n%s",
              hetero_table.render().c_str());

  // ---- Report part 2.
  util::TextTable arm_table({"Strategy", "Arm", "p99 (s)", "Completed",
                             "Shed", "Worker-s", "Peak", "Joins", "Drains"});
  std::size_t index = 0;
  std::uint32_t elastic_wins = 0;
  for (std::size_t s = 0; s < elastic_strategies.size(); ++s) {
    double peak_p99 = 0.0, peak_worker_s = 0.0;
    for (const Arm& arm : arms) {
      const auto& stats = served[index++].stats;
      const auto& overall = stats.serving.overall;
      // Static arms keep (procs-1) workers active for the whole run;
      // elastic arms report the registry's measured active spans.
      const double worker_s =
          arm.elastic ? stats.membership.worker_seconds
                      : static_cast<double>(arm.procs - 1) * stats.wall_seconds;
      if (std::string(arm.name) == "static-peak") {
        peak_p99 = overall.p99_seconds;
        peak_worker_s = worker_s;
      } else if (std::string(arm.name) == "elastic" &&
                 overall.p99_seconds <= peak_p99 * 1.10 &&
                 worker_s < peak_worker_s) {
        ++elastic_wins;
      }
      arm_table.add_row(
          {core::strategy_name(elastic_strategies[s]), arm.name,
           util::format_fixed(overall.p99_seconds),
           std::to_string(overall.completed), std::to_string(overall.shed),
           util::format_fixed(worker_s, 1),
           arm.elastic ? std::to_string(stats.membership.peak_active)
                       : std::to_string(arm.procs - 1),
           arm.elastic ? std::to_string(stats.membership.joins) : "-",
           arm.elastic ? std::to_string(stats.membership.drains) : "-"});
      csv.write_row_numeric(
          std::string(core::strategy_name(elastic_strategies[s])) + "/" +
              arm.name,
          {stats.wall_seconds, overall.p99_seconds,
           static_cast<double>(overall.completed),
           static_cast<double>(overall.shed), worker_s,
           arm.elastic ? static_cast<double>(stats.membership.peak_active)
                       : static_cast<double>(arm.procs - 1),
           static_cast<double>(stats.membership.joins),
           static_cast<double>(stats.membership.drains)});
    }
  }
  std::printf(
      "\nPart 2 — bursty trace, provisioning arms:\n%s"
      "(csv: results/ablation_elastic.csv)\n",
      arm_table.render().c_str());
  std::printf(
      "\nElastic reaches static-peak's p99 (within 10%%) at lower "
      "worker-seconds for %u of %zu strategies.  Honest losses: (1) the "
      "autoscaler reacts only after demand crosses the target, so backlog "
      "accumulated while the cluster ramps 4->8 inflates the early burst "
      "queries — the residual p99 gap; (2) drained workers depart for "
      "good (spot-release semantics), so an eager target would spend the "
      "standby pool on trickle queries and face the burst at min size — "
      "hence target 2, not 1; (3) trickle queries run on the min-size "
      "cluster, so elastic's p50 sits above static-peak's.  And in part 1 "
      "MW gains nothing from speed-aware dispatch: its master-side write "
      "drain, not compute assignment, is the critical path — aware-vs-"
      "blind is a worker-write story.\n",
      elastic_wins, elastic_strategies.size());

  auto all = hetero;
  all.insert(all.end(), capacities.begin(), capacities.end());
  all.insert(all.end(), served.begin(), served.end());
  const auto report =
      write_bench_json("ablation_elastic", quick, jobs, all, sweep_seconds);
  std::printf("(bench json: %s)\n", report.c_str());

  // CI win gate: elastic must match static-peak's p99 (within 10%) at
  // lower worker-seconds for at least two strategies.
  if (elastic_wins < 2) {
    std::fprintf(stderr,
                 "FAIL: elastic matched static-peak p99 at lower "
                 "worker-seconds for only %u of %zu strategies (need 2)\n",
                 elastic_wins, elastic_strategies.size());
    return 1;
  }
  return 0;
}
