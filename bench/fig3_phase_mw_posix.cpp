/// Figure 3 — "Individual phase timing results when scaling up the number
/// of processors with no-sync/sync query options for MW and WW-POSIX":
/// per-phase worker-process breakdown across 2–96 processes.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"

using namespace s3asim;
using namespace s3asim::bench;

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const auto procs = paper_proc_counts(quick);

  std::printf("S3aSim Figure 3: phase breakdown vs. process count "
              "(MW and WW-POSIX)\n");

  for (const auto strategy : {core::Strategy::MW, core::Strategy::WWPosix}) {
    for (const bool sync : {false, true}) {
      std::vector<std::string> x_values;
      std::vector<core::RunStats> runs;
      for (const auto nprocs : procs) {
        runs.push_back(run_point(strategy, nprocs, sync));
        x_values.push_back(std::to_string(nprocs));
      }
      const std::string mode = sync ? "sync" : "no-sync";
      print_phase_breakdown(
          std::string(core::strategy_name(strategy)) + " - " + mode,
          "Processes", x_values, runs,
          std::string("fig3_") + core::strategy_name(strategy) + "_" +
              (sync ? "sync" : "nosync"));
    }
  }
  return 0;
}
