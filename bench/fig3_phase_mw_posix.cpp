/// Figure 3 — "Individual phase timing results when scaling up the number
/// of processors with no-sync/sync query options for MW and WW-POSIX":
/// per-phase worker-process breakdown across 2–96 processes.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "bench/sweep.hpp"

using namespace s3asim;
using namespace s3asim::bench;

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const unsigned jobs = sweep_jobs(argc, argv);
  const auto procs = paper_proc_counts(quick);
  const std::vector<core::Strategy> strategies{core::Strategy::MW,
                                               core::Strategy::WWPosix};

  std::printf("S3aSim Figure 3: phase breakdown vs. process count "
              "(MW and WW-POSIX)\n");

  std::vector<SweepPoint> grid;
  for (const auto strategy : strategies) {
    for (const bool sync : {false, true}) {
      for (const auto nprocs : procs) {
        grid.push_back({std::string(core::strategy_name(strategy)) + " n=" +
                            std::to_string(nprocs) +
                            (sync ? " sync" : " no-sync"),
                        [strategy, nprocs, sync] {
                          return run_point(strategy, nprocs, sync);
                        }});
      }
    }
  }
  const auto sweep_start = std::chrono::steady_clock::now();
  const auto results = run_sweep(std::move(grid), jobs);
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();

  std::size_t index = 0;
  for (const auto strategy : strategies) {
    for (const bool sync : {false, true}) {
      std::vector<std::string> x_values;
      std::vector<core::RunStats> runs;
      for (const auto nprocs : procs) {
        runs.push_back(results[index++].stats);
        x_values.push_back(std::to_string(nprocs));
      }
      const std::string mode = sync ? "sync" : "no-sync";
      print_phase_breakdown(
          std::string(core::strategy_name(strategy)) + " - " + mode,
          "Processes", x_values, runs,
          std::string("fig3_") + core::strategy_name(strategy) + "_" +
              (sync ? "sync" : "nosync"));
    }
  }

  const auto report = write_bench_json("fig3", quick, jobs, results,
                                       sweep_seconds);
  std::printf("(bench json: %s)\n", report.c_str());
  return 0;
}
