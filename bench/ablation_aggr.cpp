/// Ablation J — worker-side aggregation (WW-Aggr) vs. the paper's best
/// independent method (WW-List) and its collective method (WW-Coll).
/// WW-Aggr partitions the workers into fan-in-sized groups whose first
/// member coalesces the whole group's extents and issues one sorted list
/// write per flush: fewer, larger, contiguous-where-possible requests at
/// the file system, bought with intra-group result shipping and lockstep
/// batch rounds.  Two grids:
///   * strategy comparison across process counts (fan-in 4), and
///   * a fan-in sweep at a fixed process count (2 … all-workers).

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "bench/sweep.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace s3asim;
using namespace s3asim::bench;

namespace {

core::RunStats run_aggr_point(std::uint32_t nprocs, std::uint32_t fanin) {
  auto config = core::paper_config();
  config.strategy = core::Strategy::WWAggr;
  config.nprocs = nprocs;
  config.aggregator_fanin = fanin;
  auto stats = core::run_simulation(config);
  require_exact(stats);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const unsigned jobs = sweep_jobs(argc, argv);
  const auto procs = paper_proc_counts(quick);
  constexpr std::uint32_t kDefaultFanin = 4;
  const std::uint32_t fanin_procs = procs.back();
  const std::vector<std::uint32_t> fanins{2, 4, 8, 16, 0};

  std::printf("S3aSim Ablation J: worker-side aggregation (WW-Aggr) vs. "
              "WW-List and WW-Coll\n");

  std::vector<SweepPoint> grid;
  for (const auto nprocs : procs) {
    grid.push_back({"WW-List n=" + std::to_string(nprocs), [nprocs] {
                      return run_point(core::Strategy::WWList, nprocs, false);
                    }});
    grid.push_back({"WW-Coll n=" + std::to_string(nprocs), [nprocs] {
                      return run_point(core::Strategy::WWColl, nprocs, false);
                    }});
    grid.push_back({"WW-Aggr n=" + std::to_string(nprocs), [nprocs] {
                      return run_aggr_point(nprocs, kDefaultFanin);
                    }});
  }
  for (const auto fanin : fanins) {
    grid.push_back({"fanin=" + std::to_string(fanin), [fanin_procs, fanin] {
                      return run_aggr_point(fanin_procs, fanin);
                    }});
  }
  const auto sweep_start = std::chrono::steady_clock::now();
  const auto results = run_sweep(std::move(grid), jobs);
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();

  util::TextTable table(
      {"Processes", "WW-List (s)", "WW-Coll (s)", "WW-Aggr fanin=4 (s)"});
  util::CsvWriter csv(csv_path("ablation_aggr.csv"));
  csv.write_row({"procs", "ww_list", "ww_coll", "ww_aggr"});
  std::size_t index = 0;
  for (const auto nprocs : procs) {
    const auto& list = results[index++].stats;
    const auto& coll = results[index++].stats;
    const auto& aggr = results[index++].stats;
    table.add_row_numeric(
        std::to_string(nprocs),
        {list.wall_seconds, coll.wall_seconds, aggr.wall_seconds});
    csv.write_row_numeric(
        std::to_string(nprocs),
        {list.wall_seconds, coll.wall_seconds, aggr.wall_seconds});
  }
  std::printf("%s", table.render().c_str());
  std::printf("(csv: results/ablation_aggr.csv)\n");

  util::TextTable fanin_table({"Fan-in", "WW-Aggr (s)", "Writes issued"});
  util::CsvWriter fanin_csv(csv_path("ablation_aggr_fanin.csv"));
  fanin_csv.write_row({"fanin", "ww_aggr", "writes_issued"});
  for (const auto fanin : fanins) {
    const auto& stats = results[index++].stats;
    std::uint64_t writes = 0;
    for (const auto& rank : stats.ranks) writes += rank.writes_issued;
    const std::string label =
        fanin == 0 ? "all" : std::to_string(fanin);
    fanin_table.add_row_numeric(
        label, {stats.wall_seconds, static_cast<double>(writes)});
    fanin_csv.write_row_numeric(
        label, {stats.wall_seconds, static_cast<double>(writes)});
  }
  std::printf("\n== Fan-in sweep at %u processes ==\n", fanin_procs);
  std::printf("%s", fanin_table.render().c_str());
  std::printf("(csv: results/ablation_aggr_fanin.csv)\n");

  const auto report = write_bench_json("ablation_aggr", quick, jobs, results,
                                       sweep_seconds);
  std::printf("(bench json: %s)\n", report.c_str());
  return 0;
}
