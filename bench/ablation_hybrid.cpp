/// Ablation G — §5 future work: "hybrid query segmentation/database
/// segmentation strategies".  Splits the ranks into G master/worker teams;
/// queries are query-segmented across teams and database-segmented within
/// them.  Sweeps G for each strategy and shows the memory trade-off: more
/// teams relieve the master/collective bottlenecks but raise per-worker
/// database pressure when the database exceeds node memory.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "bench/sweep.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace s3asim;
using namespace s3asim::bench;
using util::GiB;

namespace {

core::RunStats run_groups(core::Strategy strategy, std::uint32_t nprocs,
                          std::uint32_t groups, std::uint64_t db_bytes = 0,
                          std::uint64_t memory = GiB) {
  auto config = core::paper_config();
  config.strategy = strategy;
  config.nprocs = nprocs;
  config.workload.database_bytes = db_bytes;
  config.worker_memory_bytes = memory;
  auto stats = core::run_hybrid_simulation(config, groups);
  require_exact(stats);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const unsigned jobs = sweep_jobs(argc, argv);
  const std::uint32_t nprocs = 96;  // divisible by 1, 2, 4, 8
  const auto group_counts = quick ? std::vector<std::uint32_t>{1, 4}
                                  : std::vector<std::uint32_t>{1, 2, 4, 8};

  std::printf("S3aSim Ablation G: hybrid query/database segmentation "
              "(%u ranks)\n", nprocs);

  std::vector<SweepPoint> grid;
  for (const auto groups : group_counts) {
    for (const auto strategy : {core::Strategy::MW, core::Strategy::WWList,
                                core::Strategy::WWColl}) {
      grid.push_back({std::string(core::strategy_name(strategy)) +
                          " groups=" + std::to_string(groups),
                      [strategy, groups] {
                        return run_groups(strategy, nprocs, groups);
                      }});
    }
  }
  for (const auto groups : group_counts) {
    grid.push_back({"WW-List 8GiB-db groups=" + std::to_string(groups),
                    [groups] {
                      return run_groups(core::Strategy::WWList, nprocs, groups,
                                        8 * GiB, GiB);
                    }});
  }
  const auto sweep_start = std::chrono::steady_clock::now();
  const auto results = run_sweep(std::move(grid), jobs);
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();

  std::size_t index = 0;
  // --- Group sweep per strategy (no database-memory pressure). ------------
  {
    util::TextTable table({"Groups", "MW (s)", "WW-List (s)", "WW-Coll (s)"});
    util::CsvWriter csv(csv_path("ablation_hybrid_groups.csv"));
    csv.write_row({"groups", "mw", "ww_list", "ww_coll"});
    for (const auto groups : group_counts) {
      const auto& mw = results[index++].stats;
      const auto& list = results[index++].stats;
      const auto& coll = results[index++].stats;
      table.add_row_numeric(std::to_string(groups),
                            {mw.wall_seconds, list.wall_seconds,
                             coll.wall_seconds});
      csv.write_row_numeric(std::to_string(groups),
                            {mw.wall_seconds, list.wall_seconds,
                             coll.wall_seconds});
    }
    std::printf("\n== Group-count sweep ==\n%s", table.render().c_str());
    std::printf("(csv: results/ablation_hybrid_groups.csv)\n");
    std::printf("Hybrid grouping divides the MW master bottleneck and the\n"
                "collective synchronization domain; individual worker-writing"
                " gains little.\n");
  }

  // --- The memory trade-off (8 GiB database, 1 GiB nodes). -----------------
  {
    util::TextTable table({"Groups", "Wall (s)", "DB read", "Hit rate"});
    util::CsvWriter csv(csv_path("ablation_hybrid_memory.csv"));
    csv.write_row({"groups", "wall_s", "db_read_bytes", "hit_rate"});
    for (const auto groups : group_counts) {
      const auto& stats = results[index++].stats;
      std::uint64_t loads = 0, hits = 0;
      for (const auto& rank : stats.ranks) {
        loads += rank.fragment_loads;
        hits += rank.fragment_hits;
      }
      const double hit_rate =
          loads + hits > 0
              ? static_cast<double>(hits) / static_cast<double>(loads + hits)
              : 0.0;
      table.add_row({std::to_string(groups),
                     util::format_fixed(stats.wall_seconds),
                     util::format_bytes(stats.db_bytes_read),
                     util::format_fixed(hit_rate * 100.0, 1) + "%"});
      csv.write_row_numeric(std::to_string(groups),
                            {stats.wall_seconds,
                             static_cast<double>(stats.db_bytes_read),
                             hit_rate});
    }
    std::printf("\n== With an 8 GiB database on 1 GiB nodes (WW-List) ==\n%s",
                table.render().c_str());
    std::printf("(csv: results/ablation_hybrid_memory.csv)\n");
    std::printf("More groups shrink each team, so each worker must hold more "
                "of the database — the §1 query-segmentation penalty "
                "returns.\n");
  }

  const auto report = write_bench_json("ablation_hybrid", quick, jobs,
                                       results, sweep_seconds);
  std::printf("(bench json: %s)\n", report.c_str());
  return 0;
}
