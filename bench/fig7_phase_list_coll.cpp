/// Figure 7 — "Individual phase timing results when scaling up the compute
/// speed with no-sync/sync query options for WW-List and WW-Coll" (64
/// procs).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "bench/sweep.hpp"
#include "util/units.hpp"

using namespace s3asim;
using namespace s3asim::bench;

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const unsigned jobs = sweep_jobs(argc, argv);
  const auto speeds = paper_compute_speeds(quick);
  constexpr std::uint32_t kProcs = 64;
  const std::vector<core::Strategy> strategies{core::Strategy::WWList,
                                               core::Strategy::WWColl};

  std::printf("S3aSim Figure 7: phase breakdown vs. compute speed "
              "(WW-List and WW-Coll, 64 processes)\n");

  std::vector<SweepPoint> grid;
  for (const auto strategy : strategies) {
    for (const bool sync : {false, true}) {
      for (const double speed : speeds) {
        grid.push_back({std::string(core::strategy_name(strategy)) +
                            " speed=" + util::format_fixed(speed, 1) +
                            (sync ? " sync" : " no-sync"),
                        [strategy, sync, speed] {
                          return run_point(strategy, kProcs, sync, speed);
                        }});
      }
    }
  }
  const auto sweep_start = std::chrono::steady_clock::now();
  const auto results = run_sweep(std::move(grid), jobs);
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();

  std::size_t index = 0;
  std::vector<double> coll_walls[2];  // [sync], in speed order
  for (const auto strategy : strategies) {
    for (const bool sync : {false, true}) {
      std::vector<std::string> x_values;
      std::vector<core::RunStats> runs;
      for (const double speed : speeds) {
        const core::RunStats& stats = results[index++].stats;
        if (strategy == core::Strategy::WWColl)
          coll_walls[sync ? 1 : 0].push_back(stats.wall_seconds);
        runs.push_back(stats);
        x_values.push_back(util::format_fixed(speed, 1));
      }
      const std::string mode = sync ? "sync" : "no-sync";
      print_phase_breakdown(
          std::string(core::strategy_name(strategy)) + " - " + mode,
          "Speed", x_values, runs,
          std::string("fig7_") + core::strategy_name(strategy) + "_" +
              (sync ? "sync" : "nosync"));
    }
  }

  // §4: "WW-Coll is hardly affected when going from no-sync to sync (at
  // most 4%)" across the speed sweep.
  double worst = 0.0;
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    const double delta =
        (coll_walls[1][i] / coll_walls[0][i] - 1.0) * 100.0;
    worst = std::max(worst, std::abs(delta));
  }
  std::printf("\nWW-Coll worst |sync - no-sync| delta over the sweep: %.1f%% "
              "[paper: at most ~4%%]\n", worst);

  const auto report = write_bench_json("fig7", quick, jobs, results,
                                       sweep_seconds);
  std::printf("(bench json: %s)\n", report.c_str());
  return 0;
}
