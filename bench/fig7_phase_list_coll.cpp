/// Figure 7 — "Individual phase timing results when scaling up the compute
/// speed with no-sync/sync query options for WW-List and WW-Coll" (64
/// procs).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "util/units.hpp"

using namespace s3asim;
using namespace s3asim::bench;

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const auto speeds = paper_compute_speeds(quick);
  constexpr std::uint32_t kProcs = 64;

  std::printf("S3aSim Figure 7: phase breakdown vs. compute speed "
              "(WW-List and WW-Coll, 64 processes)\n");

  for (const auto strategy : {core::Strategy::WWList, core::Strategy::WWColl}) {
    for (const bool sync : {false, true}) {
      std::vector<std::string> x_values;
      std::vector<core::RunStats> runs;
      for (const double speed : speeds) {
        runs.push_back(run_point(strategy, kProcs, sync, speed));
        x_values.push_back(util::format_fixed(speed, 1));
      }
      const std::string mode = sync ? "sync" : "no-sync";
      print_phase_breakdown(
          std::string(core::strategy_name(strategy)) + " - " + mode,
          "Speed", x_values, runs,
          std::string("fig7_") + core::strategy_name(strategy) + "_" +
              (sync ? "sync" : "nosync"));
    }
  }

  // §4: "WW-Coll is hardly affected when going from no-sync to sync (at
  // most 4%)" across the speed sweep.
  double worst = 0.0;
  for (const double speed : speeds) {
    const auto nosync = run_point(core::Strategy::WWColl, kProcs, false, speed);
    const auto sync = run_point(core::Strategy::WWColl, kProcs, true, speed);
    const double delta =
        (sync.wall_seconds / nosync.wall_seconds - 1.0) * 100.0;
    worst = std::max(worst, std::abs(delta));
  }
  std::printf("\nWW-Coll worst |sync - no-sync| delta over the sweep: %.1f%% "
              "[paper: at most ~4%%]\n", worst);
  return 0;
}
