#include "bench/sweep.hpp"

#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "bench/common.hpp"
#include "core/strategy.hpp"
#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace s3asim::bench {
namespace {

std::int64_t peak_rss_kb() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::int64_t>(usage.ru_maxrss);  // KiB on Linux
}

unsigned parse_jobs(const char* text, const char* origin) {
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value < 1 || value > 1024)
    throw std::runtime_error(std::string("invalid job count from ") + origin +
                             ": \"" + text + "\"");
  return static_cast<unsigned>(value);
}

}  // namespace

unsigned sweep_jobs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
      return parse_jobs(argv[i + 1], "--jobs");
    if (std::strncmp(argv[i], "--jobs=", 7) == 0)
      return parse_jobs(argv[i] + 7, "--jobs");
  }
  const char* env = std::getenv("S3ASIM_BENCH_JOBS");
  if (env != nullptr && env[0] != '\0')
    return parse_jobs(env, "S3ASIM_BENCH_JOBS");
  return 1;
}

std::vector<SweepResult> run_sweep(std::vector<SweepPoint> grid,
                                   unsigned jobs) {
  std::vector<SweepResult> results(grid.size());
  std::vector<std::exception_ptr> errors(grid.size());
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};

  const auto worker = [&] {
    for (;;) {
      const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= grid.size() || failed.load(std::memory_order_relaxed))
        return;
      SweepResult& out = results[index];
      out.label = grid[index].label;
      const auto start = std::chrono::steady_clock::now();
      try {
        out.stats = grid[index].run();
      } catch (...) {
        errors[index] = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
      out.host_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      out.peak_rss_kb = peak_rss_kb();
    }
  };

  const unsigned pool = jobs > 1 ? jobs : 1;
  if (pool == 1 || grid.size() <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(pool);
    for (unsigned t = 0; t < pool; ++t) threads.emplace_back(worker);
    for (auto& thread : threads) thread.join();
  }

  for (const auto& error : errors)
    if (error) std::rethrow_exception(error);
  return results;
}

std::string write_bench_json(const std::string& name, bool quick,
                             unsigned jobs,
                             const std::vector<SweepResult>& results,
                             double total_host_seconds,
                             const obs::Registry* metrics) {
  util::JsonWriter json;
  json.begin_object();
  json.key("bench");
  json.value(name);
  json.key("quick");
  json.value(quick);
  json.key("jobs");
  json.value(static_cast<std::uint64_t>(jobs));

  double sim_total = 0.0;
  std::uint64_t events_total = 0;
  json.key("points");
  json.begin_array();
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SweepResult& point = results[i];
    json.begin_object();
    json.key("index");
    json.value(static_cast<std::uint64_t>(i));
    json.key("label");
    json.value(point.label);
    json.key("strategy");
    json.value(core::strategy_name(point.stats.strategy));
    json.key("nprocs");
    json.value(static_cast<std::uint64_t>(point.stats.nprocs));
    json.key("query_sync");
    json.value(point.stats.query_sync);
    json.key("compute_speed");
    json.value(point.stats.compute_speed);
    json.key("sim_seconds");
    json.value(point.stats.wall_seconds);
    json.key("host_seconds");
    json.value(point.host_seconds);
    json.key("events");
    json.value(point.stats.events);
    json.key("events_per_sec");
    json.value(point.host_seconds > 0.0
                   ? static_cast<double>(point.stats.events) /
                         point.host_seconds
                   : 0.0);
    json.key("peak_rss_kb");
    json.value(static_cast<std::int64_t>(point.peak_rss_kb));
    json.end_object();
    sim_total += point.stats.wall_seconds;
    events_total += point.stats.events;
  }
  json.end_array();

  json.key("totals");
  json.begin_object();
  json.key("points");
  json.value(static_cast<std::uint64_t>(results.size()));
  json.key("sim_seconds");
  json.value(sim_total);
  json.key("host_seconds");
  json.value(total_host_seconds);
  json.key("events");
  json.value(events_total);
  json.key("peak_rss_kb");
  json.value(peak_rss_kb());
  json.end_object();

  if (metrics != nullptr) {
    json.key("metrics");
    metrics->write_json(json);
  }
  json.end_object();

  const std::string path = csv_path("BENCH_" + name + ".json");
  std::ofstream out(path, std::ios::trunc);
  out << json.str() << '\n';
  return path;
}

}  // namespace s3asim::bench
