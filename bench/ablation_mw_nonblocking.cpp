/// Ablation E — §2.1: "While nonblocking I/O could reduce this overhead,
/// blocking I/O is commonly used in a MW strategy to avoid overloading the
/// memory of the master process."  Measures how much MW recovers when the
/// master issues its batch writes asynchronously and keeps serving work
/// requests — and how far that still is from worker-writing.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace s3asim;
using namespace s3asim::bench;

namespace {

core::RunStats run_mw(std::uint32_t nprocs, bool nonblocking) {
  auto config = core::paper_config();
  config.strategy = core::Strategy::MW;
  config.nprocs = nprocs;
  config.mw_nonblocking_io = nonblocking;
  auto stats = core::run_simulation(config);
  require_exact(stats);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const auto procs = paper_proc_counts(quick);

  std::printf("S3aSim Ablation E: MW with blocking vs. nonblocking master "
              "I/O\n");

  util::TextTable table({"Procs", "MW blocking (s)", "MW nonblocking (s)",
                         "Improvement", "WW-List (s)"});
  util::CsvWriter csv(csv_path("ablation_mw_nonblocking.csv"));
  csv.write_row({"procs", "mw_blocking", "mw_nonblocking", "ww_list"});

  for (const auto nprocs : procs) {
    const auto blocking = run_mw(nprocs, false);
    const auto nonblocking = run_mw(nprocs, true);
    const auto list = run_point(core::Strategy::WWList, nprocs, false);
    table.add_row(
        {std::to_string(nprocs), util::format_fixed(blocking.wall_seconds),
         util::format_fixed(nonblocking.wall_seconds),
         util::format_fixed((blocking.wall_seconds / nonblocking.wall_seconds -
                             1.0) * 100.0, 1) + "%",
         util::format_fixed(list.wall_seconds)});
    csv.write_row_numeric(std::to_string(nprocs),
                          {blocking.wall_seconds, nonblocking.wall_seconds,
                           list.wall_seconds});
  }
  std::printf("%s(csv: results/ablation_mw_nonblocking.csv)\n", table.render().c_str());
  std::printf("\nNonblocking writes hide the master's I/O but not its "
              "result-gathering centralization — MW still trails WW-List.\n");
  return 0;
}
