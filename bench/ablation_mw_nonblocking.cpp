/// Ablation E — §2.1: "While nonblocking I/O could reduce this overhead,
/// blocking I/O is commonly used in a MW strategy to avoid overloading the
/// memory of the master process."  Measures how much MW recovers when the
/// master issues its batch writes asynchronously and keeps serving work
/// requests — and how far that still is from worker-writing.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "bench/sweep.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace s3asim;
using namespace s3asim::bench;

namespace {

core::RunStats run_mw(std::uint32_t nprocs, bool nonblocking) {
  auto config = core::paper_config();
  config.strategy = core::Strategy::MW;
  config.nprocs = nprocs;
  config.mw_nonblocking_io = nonblocking;
  auto stats = core::run_simulation(config);
  require_exact(stats);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const unsigned jobs = sweep_jobs(argc, argv);
  const auto procs = paper_proc_counts(quick);

  std::printf("S3aSim Ablation E: MW with blocking vs. nonblocking master "
              "I/O\n");

  std::vector<SweepPoint> grid;
  for (const auto nprocs : procs) {
    grid.push_back({"MW blocking n=" + std::to_string(nprocs),
                    [nprocs] { return run_mw(nprocs, false); }});
    grid.push_back({"MW nonblocking n=" + std::to_string(nprocs),
                    [nprocs] { return run_mw(nprocs, true); }});
    grid.push_back({"WW-List n=" + std::to_string(nprocs), [nprocs] {
                      return run_point(core::Strategy::WWList, nprocs, false);
                    }});
  }
  const auto sweep_start = std::chrono::steady_clock::now();
  const auto results = run_sweep(std::move(grid), jobs);
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();

  util::TextTable table({"Procs", "MW blocking (s)", "MW nonblocking (s)",
                         "Improvement", "WW-List (s)"});
  util::CsvWriter csv(csv_path("ablation_mw_nonblocking.csv"));
  csv.write_row({"procs", "mw_blocking", "mw_nonblocking", "ww_list"});

  std::size_t index = 0;
  for (const auto nprocs : procs) {
    const auto& blocking = results[index++].stats;
    const auto& nonblocking = results[index++].stats;
    const auto& list = results[index++].stats;
    table.add_row(
        {std::to_string(nprocs), util::format_fixed(blocking.wall_seconds),
         util::format_fixed(nonblocking.wall_seconds),
         util::format_fixed((blocking.wall_seconds / nonblocking.wall_seconds -
                             1.0) * 100.0, 1) + "%",
         util::format_fixed(list.wall_seconds)});
    csv.write_row_numeric(std::to_string(nprocs),
                          {blocking.wall_seconds, nonblocking.wall_seconds,
                           list.wall_seconds});
  }
  std::printf("%s(csv: results/ablation_mw_nonblocking.csv)\n", table.render().c_str());
  std::printf("\nNonblocking writes hide the master's I/O but not its "
              "result-gathering centralization — MW still trails WW-List.\n");

  const auto report = write_bench_json("ablation_mw_nonblocking", quick, jobs,
                                       results, sweep_seconds);
  std::printf("(bench json: %s)\n", report.c_str());
  return 0;
}
