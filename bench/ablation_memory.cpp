/// Ablation D — the §1 motivation for database segmentation: "Super-linear
/// speedup is possible when the sequence database is larger than the
/// processor memory by fitting the large database into the aggregate memory
/// of all processors."
///
/// Models a database bigger than one node's memory (8 GiB DB vs 1 GiB RAM,
/// Feynman-like) and sweeps the worker count: while aggregate memory <
/// database size, every query re-streams fragments from the file system;
/// once the database fits in aggregate memory (with mpiBLAST-style fragment
/// affinity), the streaming disappears and speedup exceeds the worker
/// ratio.  Also shows affinity on/off and a memory sweep.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "bench/sweep.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace s3asim;
using namespace s3asim::bench;
using util::GiB;
using util::MiB;

namespace {

core::RunStats run_db(std::uint32_t nprocs, std::uint64_t db_bytes,
                      std::uint64_t memory, bool affinity) {
  auto config = core::paper_config();
  config.strategy = core::Strategy::WWList;
  config.nprocs = nprocs;
  config.workload.database_bytes = db_bytes;
  config.worker_memory_bytes = memory;
  config.fragment_affinity = affinity;
  auto stats = core::run_simulation(config);
  require_exact(stats);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const unsigned jobs = sweep_jobs(argc, argv);
  const std::uint64_t kDb = 8 * GiB;
  const std::uint64_t kMemory = 1 * GiB;

  std::printf("S3aSim Ablation D: database vs. memory (8 GiB database, "
              "1 GiB/node, WW-List)\n");

  const auto scaling_procs =
      quick ? std::vector<std::uint32_t>{2, 8, 32}
            : std::vector<std::uint32_t>{2, 4, 8, 16, 32, 64};
  const auto affinity_procs = quick ? std::vector<std::uint32_t>{16}
                                    : std::vector<std::uint32_t>{8, 16, 32};
  const auto memories =
      quick ? std::vector<std::uint64_t>{128 * MiB, 1 * GiB}
            : std::vector<std::uint64_t>{64 * MiB, 256 * MiB, 512 * MiB,
                                         1 * GiB, 4 * GiB, 8 * GiB};

  std::vector<SweepPoint> grid;
  for (const auto nprocs : scaling_procs)
    grid.push_back({"scaling n=" + std::to_string(nprocs), [nprocs] {
                      return run_db(nprocs, kDb, kMemory, true);
                    }});
  for (const auto nprocs : affinity_procs) {
    grid.push_back({"affinity-on n=" + std::to_string(nprocs), [nprocs] {
                      return run_db(nprocs, kDb, kMemory, true);
                    }});
    grid.push_back({"affinity-off n=" + std::to_string(nprocs), [nprocs] {
                      return run_db(nprocs, kDb, kMemory, false);
                    }});
  }
  for (const auto memory : memories)
    grid.push_back({"memory=" + util::format_bytes(memory), [memory] {
                      return run_db(16, kDb, memory, true);
                    }});
  const auto sweep_start = std::chrono::steady_clock::now();
  const auto results = run_sweep(std::move(grid), jobs);
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();

  std::size_t index = 0;
  // --- Worker scaling: the super-linear window. ----------------------------
  {
    util::TextTable table({"Procs", "Wall (s)", "Speedup", "Ideal",
                           "DB read", "Frag hit rate"});
    util::CsvWriter csv(csv_path("ablation_memory_scaling.csv"));
    csv.write_row({"procs", "wall_s", "speedup", "ideal", "db_read_bytes",
                   "hit_rate"});
    double base_wall = 0.0;
    std::uint32_t base_procs = 0;
    for (const auto nprocs : scaling_procs) {
      const auto& stats = results[index++].stats;
      if (base_wall == 0.0) {
        base_wall = stats.wall_seconds;
        base_procs = nprocs - 1;
      }
      const double speedup = base_wall / stats.wall_seconds;
      const double ideal =
          static_cast<double>(nprocs - 1) / static_cast<double>(base_procs);
      std::uint64_t loads = 0, hits = 0;
      for (const auto& rank : stats.ranks) {
        loads += rank.fragment_loads;
        hits += rank.fragment_hits;
      }
      const double hit_rate =
          loads + hits > 0
              ? static_cast<double>(hits) / static_cast<double>(loads + hits)
              : 0.0;
      table.add_row({std::to_string(nprocs),
                     util::format_fixed(stats.wall_seconds),
                     util::format_fixed(speedup, 2) +
                         (speedup > ideal ? "  <-- super-linear" : ""),
                     util::format_fixed(ideal, 2),
                     util::format_bytes(stats.db_bytes_read),
                     util::format_fixed(hit_rate * 100.0, 1) + "%"});
      csv.write_row_numeric(std::to_string(nprocs),
                            {stats.wall_seconds, speedup, ideal,
                             static_cast<double>(stats.db_bytes_read),
                             hit_rate});
    }
    std::printf("%s(csv: results/ablation_memory_scaling.csv)\n", table.render().c_str());
  }

  // --- Affinity on/off. -----------------------------------------------------
  {
    util::TextTable table({"Procs", "Affinity on (s)", "Affinity off (s)",
                           "DB read on", "DB read off"});
    for (const auto nprocs : affinity_procs) {
      const auto& on = results[index++].stats;
      const auto& off = results[index++].stats;
      table.add_row({std::to_string(nprocs),
                     util::format_fixed(on.wall_seconds),
                     util::format_fixed(off.wall_seconds),
                     util::format_bytes(on.db_bytes_read),
                     util::format_bytes(off.db_bytes_read)});
    }
    std::printf("\n== mpiBLAST-style fragment affinity ==\n%s",
                table.render().c_str());
  }

  // --- Per-node memory sweep at 16 procs. -----------------------------------
  {
    util::TextTable table({"Memory/node", "Wall (s)", "DB read"});
    for (const auto memory : memories) {
      const auto& stats = results[index++].stats;
      table.add_row({util::format_bytes(memory),
                     util::format_fixed(stats.wall_seconds),
                     util::format_bytes(stats.db_bytes_read)});
    }
    std::printf("\n== Memory sweep (16 procs) ==\n%s", table.render().c_str());
  }

  const auto report = write_bench_json("ablation_memory", quick, jobs,
                                       results, sweep_seconds);
  std::printf("(bench json: %s)\n", report.c_str());
  return 0;
}
