/// Figure 6 — "Individual phase timing results when scaling up the compute
/// speed with no-sync/sync query options for MW and WW-POSIX" (64 procs).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "util/units.hpp"

using namespace s3asim;
using namespace s3asim::bench;

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const auto speeds = paper_compute_speeds(quick);
  constexpr std::uint32_t kProcs = 64;

  std::printf("S3aSim Figure 6: phase breakdown vs. compute speed "
              "(MW and WW-POSIX, 64 processes)\n");

  for (const auto strategy : {core::Strategy::MW, core::Strategy::WWPosix}) {
    for (const bool sync : {false, true}) {
      std::vector<std::string> x_values;
      std::vector<core::RunStats> runs;
      for (const double speed : speeds) {
        runs.push_back(run_point(strategy, kProcs, sync, speed));
        x_values.push_back(util::format_fixed(speed, 1));
      }
      const std::string mode = sync ? "sync" : "no-sync";
      print_phase_breakdown(
          std::string(core::strategy_name(strategy)) + " - " + mode,
          "Speed", x_values, runs,
          std::string("fig6_") + core::strategy_name(strategy) + "_" +
              (sync ? "sync" : "nosync"));
    }
  }

  // §4 checkpoint: "At compute speed = 0.1, workers spend close to an
  // average of 54 secs in the compute phase"; at 25.6, "slightly more than
  // 0.8 secs".
  const auto slow = run_point(core::Strategy::WWPosix, kProcs, false, 0.1);
  const auto fast = run_point(core::Strategy::WWPosix, kProcs, false, 25.6);
  std::printf("\nWorker mean compute at speed 0.1: %.2f s [paper ~54],"
              " at 25.6: %.2f s [paper ~0.8]\n",
              slow.worker_mean_seconds(core::Phase::Compute),
              fast.worker_mean_seconds(core::Phase::Compute));
  return 0;
}
