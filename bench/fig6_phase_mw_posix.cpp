/// Figure 6 — "Individual phase timing results when scaling up the compute
/// speed with no-sync/sync query options for MW and WW-POSIX" (64 procs).

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "bench/sweep.hpp"
#include "util/units.hpp"

using namespace s3asim;
using namespace s3asim::bench;

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const unsigned jobs = sweep_jobs(argc, argv);
  const auto speeds = paper_compute_speeds(quick);
  constexpr std::uint32_t kProcs = 64;
  const std::vector<core::Strategy> strategies{core::Strategy::MW,
                                               core::Strategy::WWPosix};

  std::printf("S3aSim Figure 6: phase breakdown vs. compute speed "
              "(MW and WW-POSIX, 64 processes)\n");

  std::vector<SweepPoint> grid;
  for (const auto strategy : strategies) {
    for (const bool sync : {false, true}) {
      for (const double speed : speeds) {
        grid.push_back({std::string(core::strategy_name(strategy)) +
                            " speed=" + util::format_fixed(speed, 1) +
                            (sync ? " sync" : " no-sync"),
                        [strategy, sync, speed] {
                          return run_point(strategy, kProcs, sync, speed);
                        }});
      }
    }
  }
  const auto sweep_start = std::chrono::steady_clock::now();
  const auto results = run_sweep(std::move(grid), jobs);
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();

  std::size_t index = 0;
  const core::RunStats* posix_nosync_slow = nullptr;
  const core::RunStats* posix_nosync_fast = nullptr;
  for (const auto strategy : strategies) {
    for (const bool sync : {false, true}) {
      std::vector<std::string> x_values;
      std::vector<core::RunStats> runs;
      for (const double speed : speeds) {
        const core::RunStats& stats = results[index++].stats;
        if (strategy == core::Strategy::WWPosix && !sync) {
          if (speed == 0.1) posix_nosync_slow = &stats;
          if (speed == 25.6) posix_nosync_fast = &stats;
        }
        runs.push_back(stats);
        x_values.push_back(util::format_fixed(speed, 1));
      }
      const std::string mode = sync ? "sync" : "no-sync";
      print_phase_breakdown(
          std::string(core::strategy_name(strategy)) + " - " + mode,
          "Speed", x_values, runs,
          std::string("fig6_") + core::strategy_name(strategy) + "_" +
              (sync ? "sync" : "nosync"));
    }
  }

  // §4 checkpoint: "At compute speed = 0.1, workers spend close to an
  // average of 54 secs in the compute phase"; at 25.6, "slightly more than
  // 0.8 secs".
  if (posix_nosync_slow != nullptr && posix_nosync_fast != nullptr) {
    std::printf("\nWorker mean compute at speed 0.1: %.2f s [paper ~54],"
                " at 25.6: %.2f s [paper ~0.8]\n",
                posix_nosync_slow->worker_mean_seconds(core::Phase::Compute),
                posix_nosync_fast->worker_mean_seconds(core::Phase::Compute));
  }

  const auto report = write_bench_json("fig6", quick, jobs, results,
                                       sweep_seconds);
  std::printf("(bench json: %s)\n", report.c_str());
  return 0;
}
