#pragma once

/// \file sweep.hpp
/// Parallel experiment-sweep harness for the figure benches.
///
/// Every grid point is an independent, self-contained simulation, so the
/// sweep parallelizes trivially: a small thread pool pulls point indices
/// from an atomic counter (work stealing — long sync runs don't convoy
/// behind short no-sync ones) and writes each result into a slot fixed by
/// grid order.  Downstream tables/CSVs consume results in grid order, so
/// any schedule — serial or `--jobs N` — produces byte-identical output.
///
/// Alongside the human-readable tables, each driver records a
/// machine-readable `results/BENCH_<name>.json` with per-point simulated
/// seconds, host wall-clock, scheduler events/sec, and peak RSS.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/stats.hpp"

namespace s3asim::obs {
class Registry;
}

namespace s3asim::bench {

/// One grid point: a display label plus the closure producing its stats.
/// The closure runs on a pool thread; it must be self-contained (the
/// simulations are — they share no mutable state).
struct SweepPoint {
  std::string label;
  std::function<core::RunStats()> run;
};

/// A grid point's result, annotated with host-side measurements.
struct SweepResult {
  std::string label;
  core::RunStats stats;
  double host_seconds = 0.0;     ///< host wall-clock this point took
  std::int64_t peak_rss_kb = 0;  ///< process peak RSS when the point finished
};

/// Worker-thread count for the sweep: `--jobs N` on the command line,
/// else the S3ASIM_BENCH_JOBS environment variable, else 1 (serial).
[[nodiscard]] unsigned sweep_jobs(int argc, char** argv);

/// Runs every point across `jobs` threads and returns results in grid
/// order.  The first exception (in grid order) is rethrown after all
/// threads join; remaining queued points are abandoned.
[[nodiscard]] std::vector<SweepResult> run_sweep(std::vector<SweepPoint> grid,
                                                 unsigned jobs);

/// Writes `results/BENCH_<name>.json`: run configuration (quick/jobs),
/// per-point records (sim seconds, host seconds, events, events/sec, peak
/// RSS), and totals.  When `metrics` is non-null its snapshot is embedded
/// as a "metrics" section (the observability registry of a representative
/// observed point — see docs/OBSERVABILITY.md).  Returns the path written.
std::string write_bench_json(const std::string& name, bool quick,
                             unsigned jobs,
                             const std::vector<SweepResult>& results,
                             double total_host_seconds,
                             const obs::Registry* metrics = nullptr);

}  // namespace s3asim::bench
