#include "bench/common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <mutex>
#include <set>

#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace s3asim::bench {

std::vector<std::uint32_t> paper_proc_counts(bool quick) {
  if (quick) return {2, 8, 32, 96};
  return {2, 4, 8, 16, 32, 48, 64, 96};  // §3.3: "2 to 96 processors"
}

std::vector<double> paper_compute_speeds(bool quick) {
  if (quick) return {0.1, 1.0, 25.6};
  return {0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4, 12.8, 25.6};
}

const std::vector<core::Strategy>& paper_strategies() {
  static const std::vector<core::Strategy> strategies{
      core::Strategy::MW, core::Strategy::WWPosix, core::Strategy::WWList,
      core::Strategy::WWColl};
  return strategies;
}

core::RunStats run_point(core::Strategy strategy, std::uint32_t nprocs,
                         bool query_sync, double compute_speed) {
  auto config = core::paper_config();
  config.strategy = strategy;
  config.nprocs = nprocs;
  config.query_sync = query_sync;
  config.compute_speed = compute_speed;
  auto stats = core::run_simulation(config);
  require_exact(stats);
  return stats;
}

void require_exact(const core::RunStats& stats) {
  if (!stats.file_exact) {
    std::cerr << "FATAL: output-file verification failed: " << stats.summary()
              << '\n';
    std::abort();
  }
}

void print_overall_table(const std::string& title, const std::string& x_label,
                         const std::vector<std::string>& x_values,
                         const std::vector<core::Strategy>& strategies,
                         const std::vector<std::vector<double>>& seconds,
                         const std::string& csv_prefix) {
  std::printf("\n== %s ==\n", title.c_str());
  std::vector<std::string> headers{x_label};
  for (const auto strategy : strategies)
    headers.push_back(std::string(core::strategy_name(strategy)) + " (s)");
  util::TextTable table(headers);
  for (std::size_t i = 0; i < x_values.size(); ++i)
    table.add_row_numeric(x_values[i], seconds[i]);
  std::cout << table;

  if (!csv_prefix.empty()) {
    const std::string path = csv_path(csv_prefix + ".csv");
    util::CsvWriter csv(path);
    std::vector<std::string> csv_header{x_label};
    for (const auto strategy : strategies)
      csv_header.emplace_back(core::strategy_name(strategy));
    csv.write_row(csv_header);
    for (std::size_t i = 0; i < x_values.size(); ++i)
      csv.write_row_numeric(x_values[i], seconds[i]);
    std::printf("(csv: %s)\n", path.c_str());
  }
}

void print_phase_breakdown(const std::string& title, const std::string& x_label,
                           const std::vector<std::string>& x_values,
                           const std::vector<core::RunStats>& runs,
                           const std::string& csv_prefix) {
  std::printf("\n== %s (worker process, seconds) ==\n", title.c_str());
  std::vector<std::string> headers{std::string("Phase \\ ") + x_label};
  for (const auto& x : x_values) headers.push_back(x);
  util::TextTable table(headers);
  for (const auto phase : core::all_phases()) {
    std::vector<double> row;
    row.reserve(runs.size());
    for (const auto& stats : runs)
      row.push_back(stats.worker_mean_seconds(phase));
    table.add_row_numeric(core::phase_name(phase), row);
  }
  std::vector<double> walls;
  walls.reserve(runs.size());
  for (const auto& stats : runs) walls.push_back(stats.wall_seconds);
  table.add_row_numeric("Overall", walls);
  std::cout << table;

  if (!csv_prefix.empty()) {
    const std::string path = csv_path(csv_prefix + ".csv");
    util::CsvWriter csv(path);
    std::vector<std::string> csv_header{"phase"};
    for (const auto& x : x_values) csv_header.push_back(x);
    csv.write_row(csv_header);
    for (const auto phase : core::all_phases()) {
      std::vector<double> row;
      for (const auto& stats : runs)
        row.push_back(stats.worker_mean_seconds(phase));
      csv.write_row_numeric(core::phase_name(phase), row);
    }
    csv.write_row_numeric("overall", walls);
    std::printf("(csv: %s)\n", path.c_str());
  }
}

void print_headline_ratios(const std::string& context,
                           const std::vector<core::Strategy>& strategies,
                           const std::vector<double>& seconds,
                           const std::vector<double>& paper_percent,
                           bool sync) {
  std::printf("\n-- Headline (paper §4): WW-List outperforms ... %s, %s --\n",
              context.c_str(), sync ? "sync" : "no-sync");
  double list_seconds = 0.0;
  for (std::size_t i = 0; i < strategies.size(); ++i)
    if (strategies[i] == core::Strategy::WWList) list_seconds = seconds[i];
  util::TextTable table({"Strategy", "Time (s)", "Measured \"by N%\"",
                         "Paper \"by N%\""});
  for (std::size_t i = 0; i < strategies.size(); ++i) {
    if (strategies[i] == core::Strategy::WWList) continue;
    const double measured =
        list_seconds > 0.0 ? (seconds[i] / list_seconds - 1.0) * 100.0 : 0.0;
    table.add_row({core::strategy_name(strategies[i]),
                   util::format_fixed(seconds[i]),
                   util::format_fixed(measured, 0) + "%",
                   util::format_fixed(paper_percent[i], 0) + "%"});
  }
  std::cout << table;
}

std::string csv_path(const std::string& name) {
  const char* override_dir = std::getenv("S3ASIM_RESULTS_DIR");
  const std::filesystem::path dir = override_dir != nullptr &&
                                            override_dir[0] != '\0'
                                        ? std::filesystem::path(override_dir)
                                        : std::filesystem::path("results");
  // Parallel sweep workers resolve paths concurrently: serialize creation
  // and only attempt each distinct directory once.  create_directories is
  // already idempotent across processes (EEXIST is success); best-effort —
  // a failure surfaces when the file is opened.
  static std::mutex mutex;
  static std::set<std::string> ensured;
  {
    const std::scoped_lock lock(mutex);
    if (ensured.insert(dir.string()).second) {
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);
    }
  }
  return (dir / name).string();
}

bool quick_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  // google-benchmark-style filter flags also imply a smoke run.
  return std::getenv("S3ASIM_BENCH_QUICK") != nullptr;
}

}  // namespace s3asim::bench
