/// Figure 4 — "Individual phase timing results when scaling up the number
/// of processors with no-sync/sync query options for WW-List and WW-Coll".

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "bench/sweep.hpp"

using namespace s3asim;
using namespace s3asim::bench;

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const unsigned jobs = sweep_jobs(argc, argv);
  const auto procs = paper_proc_counts(quick);
  const std::vector<core::Strategy> strategies{core::Strategy::WWList,
                                               core::Strategy::WWColl};

  std::printf("S3aSim Figure 4: phase breakdown vs. process count "
              "(WW-List and WW-Coll)\n");

  std::vector<SweepPoint> grid;
  for (const auto strategy : strategies) {
    for (const bool sync : {false, true}) {
      for (const auto nprocs : procs) {
        grid.push_back({std::string(core::strategy_name(strategy)) + " n=" +
                            std::to_string(nprocs) +
                            (sync ? " sync" : " no-sync"),
                        [strategy, nprocs, sync] {
                          return run_point(strategy, nprocs, sync);
                        }});
      }
    }
  }
  const auto sweep_start = std::chrono::steady_clock::now();
  const auto results = run_sweep(std::move(grid), jobs);
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();

  std::size_t index = 0;
  const core::RunStats* list96[2] = {nullptr, nullptr};  // [sync]
  for (const auto strategy : strategies) {
    for (const bool sync : {false, true}) {
      std::vector<std::string> x_values;
      std::vector<core::RunStats> runs;
      for (const auto nprocs : procs) {
        const core::RunStats& stats = results[index++].stats;
        if (strategy == core::Strategy::WWList && nprocs == 96)
          list96[sync ? 1 : 0] = &stats;
        runs.push_back(stats);
        x_values.push_back(std::to_string(nprocs));
      }
      const std::string mode = sync ? "sync" : "no-sync";
      print_phase_breakdown(
          std::string(core::strategy_name(strategy)) + " - " + mode,
          "Processes", x_values, runs,
          std::string("fig4_") + core::strategy_name(strategy) + "_" +
              (sync ? "sync" : "nosync"));
    }
  }

  // §4 checkpoints at 96 processors for WW-List:
  //   sync phase rises 0.41 s → 5.87 s and data distribution 4.47 → 18.47
  //   when turning query sync on.
  if (list96[0] != nullptr && list96[1] != nullptr) {
    std::printf("\nWW-List at 96 procs, no-sync → sync (paper in brackets):\n"
                "  sync phase   %.2f → %.2f s   [0.41 → 5.87]\n"
                "  data distr.  %.2f → %.2f s   [4.47 → 18.47]\n",
                list96[0]->worker_mean_seconds(core::Phase::Sync),
                list96[1]->worker_mean_seconds(core::Phase::Sync),
                list96[0]->worker_mean_seconds(core::Phase::DataDistribution),
                list96[1]->worker_mean_seconds(core::Phase::DataDistribution));
  }

  const auto report = write_bench_json("fig4", quick, jobs, results,
                                       sweep_seconds);
  std::printf("(bench json: %s)\n", report.c_str());
  return 0;
}
