/// Figure 4 — "Individual phase timing results when scaling up the number
/// of processors with no-sync/sync query options for WW-List and WW-Coll".

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"

using namespace s3asim;
using namespace s3asim::bench;

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const auto procs = paper_proc_counts(quick);

  std::printf("S3aSim Figure 4: phase breakdown vs. process count "
              "(WW-List and WW-Coll)\n");

  for (const auto strategy : {core::Strategy::WWList, core::Strategy::WWColl}) {
    for (const bool sync : {false, true}) {
      std::vector<std::string> x_values;
      std::vector<core::RunStats> runs;
      for (const auto nprocs : procs) {
        runs.push_back(run_point(strategy, nprocs, sync));
        x_values.push_back(std::to_string(nprocs));
      }
      const std::string mode = sync ? "sync" : "no-sync";
      print_phase_breakdown(
          std::string(core::strategy_name(strategy)) + " - " + mode,
          "Processes", x_values, runs,
          std::string("fig4_") + core::strategy_name(strategy) + "_" +
              (sync ? "sync" : "nosync"));
    }
  }

  // §4 checkpoints at 96 processors for WW-List:
  //   sync phase rises 0.41 s → 5.87 s and data distribution 4.47 → 18.47
  //   when turning query sync on.
  if (procs.back() == 96) {
    const auto nosync = run_point(core::Strategy::WWList, 96, false);
    const auto sync = run_point(core::Strategy::WWList, 96, true);
    std::printf("\nWW-List at 96 procs, no-sync → sync (paper in brackets):\n"
                "  sync phase   %.2f → %.2f s   [0.41 → 5.87]\n"
                "  data distr.  %.2f → %.2f s   [4.47 → 18.47]\n",
                nosync.worker_mean_seconds(core::Phase::Sync),
                sync.worker_mean_seconds(core::Phase::Sync),
                nosync.worker_mean_seconds(core::Phase::DataDistribution),
                sync.worker_mean_seconds(core::Phase::DataDistribution));
  }
  return 0;
}
