/// Ablation A — the paper's §5 proposal: "a collective I/O method
/// implemented with list I/O and forced synchronization may be a more
/// efficient collective I/O method than the default two phase I/O method in
/// ROMIO."  Compares:
///   * WW-Coll      — collective via ROMIO-style two-phase
///   * WW-CollList  — collective via list I/O + barriers (same blocking
///                    semantics, no two-phase machinery)
///   * WW-List+sync — the paper's actual proxy measurement (individual list
///                    I/O with the forced query barrier)

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace s3asim;
using namespace s3asim::bench;

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const auto procs = paper_proc_counts(quick);

  std::printf("S3aSim Ablation A: two-phase collective vs. list-based "
              "collectives\n");

  util::TextTable table({"Processes", "WW-Coll (two-phase)",
                         "WW-CollList (list+sync)", "WW-List + query sync"});
  util::CsvWriter csv(csv_path("ablation_coll_list.csv"));
  csv.write_row({"procs", "ww_coll", "ww_coll_list", "ww_list_sync"});

  for (const auto nprocs : procs) {
    const auto two_phase = run_point(core::Strategy::WWColl, nprocs, false);
    const auto coll_list = run_point(core::Strategy::WWCollList, nprocs, false);
    const auto list_sync = run_point(core::Strategy::WWList, nprocs, true);
    table.add_row_numeric(std::to_string(nprocs),
                          {two_phase.wall_seconds, coll_list.wall_seconds,
                           list_sync.wall_seconds});
    csv.write_row_numeric(std::to_string(nprocs),
                          {two_phase.wall_seconds, coll_list.wall_seconds,
                           list_sync.wall_seconds});
  }
  std::printf("%s", table.render().c_str());
  std::printf("(csv: results/ablation_coll_list.csv)\n");
  std::printf("\nPaper evidence at 96 procs: WW-List+sync 40.24 s vs WW-Coll"
              "+sync 45.54 s — the list-based collective wins.\n");
  return 0;
}
