/// Ablation A — the paper's §5 proposal: "a collective I/O method
/// implemented with list I/O and forced synchronization may be a more
/// efficient collective I/O method than the default two phase I/O method in
/// ROMIO."  Compares:
///   * WW-Coll      — collective via ROMIO-style two-phase
///   * WW-CollList  — collective via list I/O + barriers (same blocking
///                    semantics, no two-phase machinery)
///   * WW-List+sync — the paper's actual proxy measurement (individual list
///                    I/O with the forced query barrier)

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "bench/sweep.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace s3asim;
using namespace s3asim::bench;

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const unsigned jobs = sweep_jobs(argc, argv);
  const auto procs = paper_proc_counts(quick);

  std::printf("S3aSim Ablation A: two-phase collective vs. list-based "
              "collectives\n");

  struct Variant {
    const char* tag;
    core::Strategy strategy;
    bool sync;
  };
  const std::vector<Variant> variants{
      {"two-phase", core::Strategy::WWColl, false},
      {"coll-list", core::Strategy::WWCollList, false},
      {"list+sync", core::Strategy::WWList, true}};

  std::vector<SweepPoint> grid;
  for (const auto nprocs : procs) {
    for (const auto& variant : variants) {
      grid.push_back({std::string(variant.tag) + " n=" +
                          std::to_string(nprocs),
                      [variant, nprocs] {
                        return run_point(variant.strategy, nprocs,
                                         variant.sync);
                      }});
    }
  }
  const auto sweep_start = std::chrono::steady_clock::now();
  const auto results = run_sweep(std::move(grid), jobs);
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();

  util::TextTable table({"Processes", "WW-Coll (two-phase)",
                         "WW-CollList (list+sync)", "WW-List + query sync"});
  util::CsvWriter csv(csv_path("ablation_coll_list.csv"));
  csv.write_row({"procs", "ww_coll", "ww_coll_list", "ww_list_sync"});

  std::size_t index = 0;
  for (const auto nprocs : procs) {
    const auto& two_phase = results[index++].stats;
    const auto& coll_list = results[index++].stats;
    const auto& list_sync = results[index++].stats;
    table.add_row_numeric(std::to_string(nprocs),
                          {two_phase.wall_seconds, coll_list.wall_seconds,
                           list_sync.wall_seconds});
    csv.write_row_numeric(std::to_string(nprocs),
                          {two_phase.wall_seconds, coll_list.wall_seconds,
                           list_sync.wall_seconds});
  }
  std::printf("%s", table.render().c_str());
  std::printf("(csv: results/ablation_coll_list.csv)\n");
  std::printf("\nPaper evidence at 96 procs: WW-List+sync 40.24 s vs WW-Coll"
              "+sync 45.54 s — the list-based collective wins.\n");

  const auto report = write_bench_json("ablation_coll_list", quick, jobs,
                                       results, sweep_seconds);
  std::printf("(bench json: %s)\n", report.c_str());
  return 0;
}
