/// Micro-benchmarks of the simulation substrate itself: host-side cost of
/// the DES kernel, coroutine tasks, channels, barriers, the network model,
/// and the MPI layer.  These bound how large a simulated system the
/// framework can drive.

#include <benchmark/benchmark.h>

#include <vector>

#include "mpi/comm.hpp"
#include "net/network.hpp"
#include "sim/barrier.hpp"
#include "sim/channel.hpp"
#include "sim/lp_scheduler.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"
#include "sim/timer.hpp"

namespace {

using namespace s3asim;
using sim::Process;
using sim::Scheduler;

// --- Kernel fast-path benchmarks (ISSUE 2 acceptance targets) ---------------
// "Schedule/run churn": N interleaved processes each awaiting a child Task
// per step — the dominant pattern in the simulator, where every MPI and I/O
// operation is a Task.  Exercises the coroutine-frame allocator and the
// event queue together with a live heap of ~N entries.
void BM_ScheduleRunChurn(benchmark::State& state) {
  const auto procs = static_cast<int>(state.range(0));
  constexpr int kSteps = 64;
  for (auto _ : state) {
    Scheduler sched;
    auto child = [](Scheduler& s, sim::Time d) -> sim::Task<int> {
      co_await s.delay(d);
      co_return 1;
    };
    auto proc = [&child](Scheduler& s, int id) -> Process {
      for (int i = 0; i < kSteps; ++i)
        (void)co_await child(s, 1 + static_cast<sim::Time>(id % 7));
    };
    for (int p = 0; p < procs; ++p) sched.spawn(proc(sched, p));
    benchmark::DoNotOptimize(sched.run());
  }
  // Each step is one Task frame plus two queue events (child delay, parent
  // resume is symmetric transfer); count the delay events as "items".
  state.SetItemsProcessed(state.iterations() * procs * kSteps);
}
BENCHMARK(BM_ScheduleRunChurn)->Arg(64)->Arg(1'024);

// Timer arm/cancel churn: the fault-detection pattern since PR 1 — one
// timeout armed and cancelled per observed sign of life.  Exercises the
// cancellable-entry path of the event queue.
void BM_TimerArmCancelChurn(benchmark::State& state) {
  const auto rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Scheduler sched;
    sim::Timer timer(sched);
    auto proc = [](Scheduler& s, sim::Timer& t, int n) -> Process {
      for (int i = 0; i < n; ++i) {
        t.arm_in(1'000'000);  // far-future deadline, never reached
        t.cancel();
        co_await s.delay(1);
      }
    };
    sched.spawn(proc(sched, timer, rounds));
    benchmark::DoNotOptimize(sched.run());
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_TimerArmCancelChurn)->Arg(10'000);

// Task spawn churn with deeper call chains: three nested Task frames per
// step, stressing frame allocation/deallocation in LIFO order.
void BM_TaskSpawnChurn(benchmark::State& state) {
  const auto steps = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Scheduler sched;
    auto leaf = [](Scheduler& s) -> sim::Task<int> {
      co_await s.delay(1);
      co_return 1;
    };
    auto mid = [&leaf](Scheduler& s) -> sim::Task<int> {
      co_return co_await leaf(s) + 1;
    };
    auto proc = [&mid](Scheduler& s, int n) -> Process {
      for (int i = 0; i < n; ++i) (void)co_await mid(s);
    };
    sched.spawn(proc(sched, steps));
    benchmark::DoNotOptimize(sched.run());
  }
  state.SetItemsProcessed(state.iterations() * steps);
}
BENCHMARK(BM_TaskSpawnChurn)->Arg(10'000);

void BM_SchedulerDelayEvents(benchmark::State& state) {
  const auto count = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Scheduler sched;
    auto proc = [](Scheduler& s, int n) -> Process {
      for (int i = 0; i < n; ++i) co_await s.delay(10);
    };
    sched.spawn(proc(sched, count));
    benchmark::DoNotOptimize(sched.run());
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_SchedulerDelayEvents)->Arg(1'000)->Arg(100'000);

void BM_ManyProcessesInterleaved(benchmark::State& state) {
  const auto procs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Scheduler sched;
    auto proc = [](Scheduler& s, int id) -> Process {
      for (int i = 0; i < 32; ++i) co_await s.delay(100 + id % 7);
    };
    for (int p = 0; p < procs; ++p) sched.spawn(proc(sched, p));
    benchmark::DoNotOptimize(sched.run());
  }
  state.SetItemsProcessed(state.iterations() * procs * 32);
}
BENCHMARK(BM_ManyProcessesInterleaved)->Arg(100)->Arg(1'000);

void BM_ChannelPingPong(benchmark::State& state) {
  const auto rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Scheduler sched;
    sim::Channel<int> ping(sched), pong(sched);
    auto a = [](Scheduler&, sim::Channel<int>& tx, sim::Channel<int>& rx,
                int n) -> Process {
      for (int i = 0; i < n; ++i) {
        tx.push(i);
        (void)co_await rx.pop();
      }
      tx.close();
    };
    auto b = [](Scheduler&, sim::Channel<int>& rx, sim::Channel<int>& tx)
        -> Process {
      while (auto v = co_await rx.pop()) tx.push(*v);
    };
    sched.spawn(a(sched, ping, pong, rounds));
    sched.spawn(b(sched, ping, pong));
    benchmark::DoNotOptimize(sched.run());
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_ChannelPingPong)->Arg(10'000);

void BM_BarrierCycles(benchmark::State& state) {
  const auto parties = static_cast<std::size_t>(state.range(0));
  constexpr int kCycles = 100;
  for (auto _ : state) {
    Scheduler sched;
    sim::Barrier barrier(sched, parties);
    auto proc = [](Scheduler& s, sim::Barrier& b, std::size_t id) -> Process {
      for (int c = 0; c < kCycles; ++c) {
        co_await s.delay(static_cast<sim::Time>(id + 1));
        co_await b.arrive_and_wait();
      }
    };
    for (std::size_t p = 0; p < parties; ++p) sched.spawn(proc(sched, barrier, p));
    benchmark::DoNotOptimize(sched.run());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(parties) * kCycles);
}
BENCHMARK(BM_BarrierCycles)->Arg(16)->Arg(96);

void BM_NetworkTransfers(benchmark::State& state) {
  const auto transfers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Scheduler sched;
    net::Network network(sched, 4);
    auto proc = [](Scheduler&, net::Network& n, int count) -> Process {
      for (int i = 0; i < count; ++i) co_await n.transfer(0, 1, 4096);
    };
    sched.spawn(proc(sched, network, transfers));
    benchmark::DoNotOptimize(sched.run());
  }
  state.SetItemsProcessed(state.iterations() * transfers);
}
BENCHMARK(BM_NetworkTransfers)->Arg(10'000);

// Parallel-engine frame-pool locality at scale: 1 k LPs, each churning a
// child Task per step across many windows.  The per-LP pools mean every
// step after an LP's first is served from its own free lists regardless of
// which worker thread runs the window, so the reported `pool_hit_rate`
// (reused / total pooled allocations, summed over all LP pools) must sit
// near 1.0 — a drop is a pool-migration regression in the engine.
void BM_LpEnginePoolHitRate(benchmark::State& state) {
  const auto lps = static_cast<std::uint32_t>(state.range(0));
  constexpr int kSteps = 32;
  constexpr sim::Time kLookahead = 1'000;
  std::uint64_t allocations = 0;
  std::uint64_t reused = 0;
  for (auto _ : state) {
    sim::LpScheduler engine({kLookahead, /*threads=*/2});
    auto child = [](sim::Scheduler& s) -> sim::Task<int> {
      co_await s.delay(1);
      co_return 1;
    };
    auto proc = [&child](sim::Scheduler& s, std::uint32_t id) -> Process {
      for (int i = 0; i < kSteps; ++i) {
        (void)co_await child(s);
        co_await s.delay(kLookahead + id % 7);  // spread across windows
      }
    };
    for (std::uint32_t id = 0; id < lps; ++id) {
      sim::Lp& lp = engine.add_lp();
      lp.spawn([&] { return proc(lp.scheduler(), id); });
    }
    benchmark::DoNotOptimize(engine.run());
    for (std::uint32_t id = 0; id < lps; ++id) {
      allocations += engine.lp(id).frame_pool().allocations();
      reused += engine.lp(id).frame_pool().reused();
    }
  }
  state.SetItemsProcessed(state.iterations() * lps * kSteps);
  state.counters["pool_hit_rate"] =
      allocations == 0 ? 0.0
                       : static_cast<double>(reused) /
                             static_cast<double>(allocations);
}
BENCHMARK(BM_LpEnginePoolHitRate)->Arg(1'024);

// Window throughput of the parallel engine itself: same 1 k-LP shape,
// measuring resumptions/second through the claim/steal/barrier machinery.
void BM_LpEngineWindowThroughput(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  constexpr std::uint32_t kLps = 1'024;
  constexpr int kSteps = 16;
  constexpr sim::Time kLookahead = 1'000;
  for (auto _ : state) {
    sim::LpScheduler engine({kLookahead, threads});
    auto proc = [](sim::Scheduler& s, std::uint32_t) -> Process {
      // Land every event on the window grid so the whole cohort is active
      // each window — the engine's intended dense regime.
      for (int i = 0; i < kSteps; ++i) co_await s.delay(kLookahead);
    };
    for (std::uint32_t id = 0; id < kLps; ++id) {
      sim::Lp& lp = engine.add_lp();
      lp.spawn([&] { return proc(lp.scheduler(), id); });
    }
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(state.iterations() * kLps * kSteps);
}
BENCHMARK(BM_LpEngineWindowThroughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_MpiSendRecvPairs(benchmark::State& state) {
  const auto messages = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Scheduler sched;
    net::Network network(sched, 2);
    mpi::Comm comm(sched, network, 2);
    auto sender = [](Scheduler&, mpi::Comm& c, int n) -> Process {
      for (int i = 0; i < n; ++i) co_await c.send(0, 1, 1, 256);
    };
    auto receiver = [](Scheduler&, mpi::Comm& c, int n) -> Process {
      for (int i = 0; i < n; ++i) (void)co_await c.recv(1, 0, 1);
    };
    sched.spawn(sender(sched, comm, messages));
    sched.spawn(receiver(sched, comm, messages));
    benchmark::DoNotOptimize(sched.run());
  }
  state.SetItemsProcessed(state.iterations() * messages);
}
BENCHMARK(BM_MpiSendRecvPairs)->Arg(10'000);

}  // namespace

BENCHMARK_MAIN();
