/// Ablation N — data sieving vs list I/O vs two-phase on the read path
/// (docs/IO_MODEL.md §4, EXPERIMENTS.md Ablation N).  Three workload
/// shapes over an interleaved database (db_chunk_bytes > 0, so fragment
/// loads are strided extent lists):
///   * read-heavy  — large interleaved database, small results: fragment
///     staging dominates, the shape sieving was built for;
///   * write-heavy — no database I/O, larger results: only the write side
///     differs (WW-Sieve RMW vs WW-List pairs vs WW-Coll exchange);
///   * mixed       — moderate database and results.
/// For each shape: list I/O once (it has no buffer knob), and data sieving
/// and two-phase across a 64 KiB / 512 KiB / 4 MiB buffer sweep
/// (sieve_buffer for sieving, cb_buffer_size for two-phase).  The
/// interesting failure mode is honest here: at small buffers sieving's
/// per-window round trips and hole amplification lose to list I/O badly.
/// The run fails (exit 1) unless sieving at its best buffer beats list
/// I/O on the read-heavy shape — the acceptance gate of EXPERIMENTS.md.
///
/// `--engine-parallel` runs every point under the parallel LP engine with
/// 2 threads (CI uses this to cross-check engine determinism on the CSV).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "bench/sweep.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace s3asim;
using namespace s3asim::bench;

namespace {

enum class Method { List, Sieve, TwoPhase };

const char* method_name(Method method) {
  switch (method) {
    case Method::List: return "list";
    case Method::Sieve: return "sieve";
    case Method::TwoPhase: return "two-phase";
  }
  return "?";
}

struct Shape {
  const char* name;
  std::uint64_t database_mib;  ///< 0 = no database I/O
  std::uint64_t chunk_bytes;
  std::uint32_t result_min;
  std::uint32_t result_max;
  std::uint32_t queries_per_flush;
};

core::RunStats run_sieve_point(const Shape& shape, Method method,
                               std::uint64_t buffer, bool quick,
                               bool engine_parallel) {
  auto config = core::paper_config();
  config.nprocs = quick ? 5 : 9;
  config.workload.query_count = quick ? 3 : 6;
  config.workload.fragment_count = 8;
  config.workload.result_count_min = shape.result_min;
  config.workload.result_count_max = shape.result_max;
  config.workload.min_result_bytes = 256;
  config.workload.database_bytes =
      shape.database_mib * util::MiB / (quick ? 4 : 1);
  config.workload.db_chunk_bytes = shape.chunk_bytes;
  config.queries_per_flush = shape.queries_per_flush;
  switch (method) {
    case Method::List:
      config.strategy = core::Strategy::WWList;
      config.read_method = mpiio::NoncontigMethod::ListIo;
      break;
    case Method::Sieve:
      config.strategy = core::Strategy::WWSieve;
      config.read_method = mpiio::NoncontigMethod::Sieve;
      config.hints.sieve_buffer_bytes = buffer;
      break;
    case Method::TwoPhase:
      config.strategy = core::Strategy::WWColl;
      config.read_method = mpiio::NoncontigMethod::ListIo;
      config.hints.cb_buffer_size = buffer;
      break;
  }
  if (engine_parallel) {
    config.engine.mode = core::EngineMode::Parallel;
    config.engine.threads = 2;
  }
  auto stats = core::run_simulation(config);
  require_exact(stats);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const unsigned jobs = sweep_jobs(argc, argv);
  bool engine_parallel = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--engine-parallel") == 0) engine_parallel = true;

  const Shape shapes[] = {
      {"read-heavy", 32, 4 * util::KiB, 40, 80, 1},
      {"write-heavy", 0, 4 * util::KiB, 300, 600, 2},
      {"mixed", 8, 16 * util::KiB, 150, 300, 1},
  };
  const std::vector<std::uint64_t> buffers{64 * util::KiB, 512 * util::KiB,
                                           4 * util::MiB};

  std::printf("S3aSim Ablation N: read-path access methods — list I/O vs "
              "data sieving vs two-phase%s\n",
              engine_parallel ? " (parallel engine, 2 threads)" : "");

  std::vector<SweepPoint> grid;
  for (const Shape& shape : shapes) {
    grid.push_back({std::string(shape.name) + " list",
                    [&shape, quick, engine_parallel] {
                      return run_sieve_point(shape, Method::List, 0, quick,
                                             engine_parallel);
                    }});
    for (const Method method : {Method::Sieve, Method::TwoPhase})
      for (const std::uint64_t buffer : buffers)
        grid.push_back({std::string(shape.name) + " " + method_name(method) +
                            " buf=" + std::to_string(buffer / util::KiB) +
                            "KiB",
                        [&shape, method, buffer, quick, engine_parallel] {
                          return run_sieve_point(shape, method, buffer, quick,
                                                 engine_parallel);
                        }});
  }

  const auto sweep_start = std::chrono::steady_clock::now();
  const auto results = run_sweep(std::move(grid), jobs);
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();

  util::TextTable table({"Point", "Wall (s)", "DB read (MiB)",
                         "Sieve windows", "Amplified (MiB)", "RMW reads"});
  util::CsvWriter csv(csv_path("ablation_sieve.csv"));
  csv.write_row({"shape", "method", "buffer_kib", "wall_s", "db_read_mib",
                 "sieve_windows", "amplified_mib", "rmw_reads"});
  std::size_t index = 0;
  double best_sieve_read_heavy = 0.0;
  double list_read_heavy = 0.0;
  for (const Shape& shape : shapes) {
    struct Row {
      const char* method;
      std::uint64_t buffer_kib;
      const core::RunStats* stats;
    };
    std::vector<Row> rows;
    rows.push_back({"list", 0, &results[index++].stats});
    for (const Method method : {Method::Sieve, Method::TwoPhase})
      for (const std::uint64_t buffer : buffers)
        rows.push_back({method_name(method), buffer / util::KiB,
                        &results[index++].stats});
    for (const Row& row : rows) {
      const core::RunStats& stats = *row.stats;
      const double amplified_mib =
          static_cast<double>((stats.sieve.read_transferred_bytes -
                               stats.sieve.read_useful_bytes) +
                              (stats.sieve.write_transferred_bytes -
                               stats.sieve.write_useful_bytes)) /
          static_cast<double>(util::MiB);
      const double db_read_mib = static_cast<double>(stats.db_bytes_read) /
                                 static_cast<double>(util::MiB);
      const double windows =
          static_cast<double>(stats.sieve.reads + stats.sieve.writes);
      table.add_row_numeric(
          std::string(shape.name) + " " + row.method +
              (row.buffer_kib != 0
                   ? " " + std::to_string(row.buffer_kib) + "KiB"
                   : ""),
          {stats.wall_seconds, db_read_mib, windows, amplified_mib,
           static_cast<double>(stats.sieve.rmw_reads)});
      csv.write_row({std::string(shape.name), row.method,
                     std::to_string(row.buffer_kib),
                     util::format_fixed(stats.wall_seconds, 6),
                     util::format_fixed(db_read_mib, 6),
                     std::to_string(stats.sieve.reads + stats.sieve.writes),
                     util::format_fixed(amplified_mib),
                     std::to_string(stats.sieve.rmw_reads)});
      if (std::string(shape.name) == "read-heavy") {
        if (std::string(row.method) == "list")
          list_read_heavy = stats.wall_seconds;
        else if (std::string(row.method) == "sieve")
          best_sieve_read_heavy =
              best_sieve_read_heavy == 0.0
                  ? stats.wall_seconds
                  : std::min(best_sieve_read_heavy, stats.wall_seconds);
      }
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("(csv: results/ablation_sieve.csv)\n");

  const auto report =
      write_bench_json("sieve", quick, jobs, results, sweep_seconds);
  std::printf("(bench json: %s)\n", report.c_str());

  if (best_sieve_read_heavy >= list_read_heavy) {
    std::fprintf(stderr,
                 "ablation_sieve: GATE FAILED — best sieving %.3fs does not "
                 "beat list I/O %.3fs on the read-heavy shape\n",
                 best_sieve_read_heavy, list_read_heavy);
    return 1;
  }
  std::printf("gate: sieving at its best buffer (%.3fs) beats list I/O "
              "(%.3fs) on the read-heavy shape\n",
              best_sieve_read_heavy, list_read_heavy);
  return 0;
}
