/// Ablation L — offered load vs latency tails and goodput, per strategy.
///
/// The paper measures every I/O strategy under a closed batch (all queries
/// present at t=0; the metric is makespan).  This bench flips the regime to
/// open-loop serving: queries arrive as a Poisson stream and the strategy
/// must keep up.  For each strategy we first measure its closed-batch
/// capacity (queries / makespan), then ramp the offered arrival rate across
/// multiples of that capacity — through and past saturation — and record
/// end-to-end latency percentiles, goodput, and shed counts.  The bounded
/// admission queue makes overload visible as shedding instead of unbounded
/// queueing.
///
/// Determinism: every column of results/serving_load.csv is simulated
/// (arrival times, latencies, shed counts derive only from seed + config),
/// so CI double-runs the bench and requires byte-identical CSVs.  Host-side
/// measurements go to results/BENCH_serving.json only.
///
/// Quick mode: 2 strategies x 3 load points.  Full: all 7 strategies x 6
/// load points (0.25x ... 4x capacity).

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "bench/sweep.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace s3asim;
using namespace s3asim::bench;

namespace {

core::SimConfig serving_base(core::Strategy strategy, std::uint32_t procs,
                             std::uint32_t queries) {
  auto config = core::paper_config();
  config.strategy = strategy;
  config.nprocs = procs;
  config.workload.query_count = queries;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const unsigned jobs = sweep_jobs(argc, argv);
  const std::uint32_t procs = 8;
  const std::uint32_t queries = quick ? 24 : 40;
  const std::uint32_t admit_depth = 8;
  const std::vector<core::Strategy> strategies =
      quick ? std::vector<core::Strategy>{core::Strategy::MW,
                                          core::Strategy::WWList}
            : std::vector<core::Strategy>(std::begin(core::kAllStrategies),
                                          std::end(core::kAllStrategies));
  const std::vector<double> multipliers =
      quick ? std::vector<double>{0.5, 1.0, 2.0}
            : std::vector<double>{0.25, 0.5, 1.0, 1.5, 2.0, 4.0};

  std::printf(
      "S3aSim Ablation L: offered load vs latency/goodput (%u procs, "
      "%u queries per point, admit depth %u)\n",
      procs, queries, admit_depth);

  // Stage 1: closed-batch capacity per strategy (simulated makespan of the
  // same query set) — the yardstick the load multipliers scale from.
  std::vector<SweepPoint> capacity_grid;
  for (const auto strategy : strategies) {
    capacity_grid.push_back(
        {std::string(core::strategy_name(strategy)) + " capacity",
         [strategy, procs, queries] {
           auto stats =
               core::run_simulation(serving_base(strategy, procs, queries));
           require_exact(stats);
           return stats;
         }});
  }
  const auto sweep_start = std::chrono::steady_clock::now();
  const auto capacities = run_sweep(std::move(capacity_grid), jobs);

  // Stage 2: the open-loop sweep.  Offered rate = multiplier x capacity.
  std::vector<SweepPoint> load_grid;
  for (std::size_t s = 0; s < strategies.size(); ++s) {
    const auto strategy = strategies[s];
    const double capacity_qps = static_cast<double>(queries) /
                                capacities[s].stats.wall_seconds;
    for (const double multiplier : multipliers) {
      load_grid.push_back(
          {std::string(core::strategy_name(strategy)) + " @" +
               util::format_fixed(multiplier, 2) + "x",
           [strategy, procs, queries, admit_depth, capacity_qps, multiplier] {
             auto config = serving_base(strategy, procs, queries);
             config.serving.arrival_rate_hz = capacity_qps * multiplier;
             config.serving.admit_depth = admit_depth;
             auto stats = core::run_simulation(config);
             require_exact(stats);
             return stats;
           }});
    }
  }
  const auto loads = run_sweep(std::move(load_grid), jobs);
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();

  util::TextTable table({"Strategy", "Load", "Offered (q/s)", "Shed",
                         "Goodput (q/s)", "p50 (s)", "p95 (s)", "p99 (s)"});
  util::CsvWriter csv(csv_path("serving_load.csv"));
  csv.write_row({"strategy", "load_multiplier", "offered_qps", "offered",
                 "shed", "completed", "goodput_qps", "latency_mean_s",
                 "latency_p50_s", "latency_p95_s", "latency_p99_s"});

  std::size_t index = 0;
  for (std::size_t s = 0; s < strategies.size(); ++s) {
    const auto strategy = strategies[s];
    const double capacity_qps = static_cast<double>(queries) /
                                capacities[s].stats.wall_seconds;
    for (const double multiplier : multipliers) {
      const auto& stats = loads[index++].stats;
      const auto& serving = stats.serving.overall;
      const double offered_qps = capacity_qps * multiplier;
      table.add_row({core::strategy_name(strategy),
                     util::format_fixed(multiplier, 2) + "x",
                     util::format_fixed(offered_qps, 3),
                     std::to_string(serving.shed),
                     util::format_fixed(stats.serving.goodput_qps, 3),
                     util::format_fixed(serving.p50_seconds),
                     util::format_fixed(serving.p95_seconds),
                     util::format_fixed(serving.p99_seconds)});
      csv.write_row_numeric(
          std::string(core::strategy_name(strategy)),
          {multiplier, offered_qps, static_cast<double>(serving.offered),
           static_cast<double>(serving.shed),
           static_cast<double>(serving.completed), stats.serving.goodput_qps,
           serving.mean_seconds, serving.p50_seconds, serving.p95_seconds,
           serving.p99_seconds});
    }
  }
  std::printf("%s(csv: results/serving_load.csv)\n", table.render().c_str());
  std::printf(
      "\nBelow capacity every strategy serves the full stream with flat "
      "tails; past 1x the admission queue fills, latency percentiles climb "
      "toward the queueing limit, and the bounded queue sheds the excess — "
      "goodput plateaus at the strategy's closed-batch capacity.  Strategies "
      "whose writes serialize (MW's master drain, WW-POSIX's per-extent "
      "flushes) collapse earliest.\n");

  auto all = capacities;
  all.insert(all.end(), loads.begin(), loads.end());
  const auto report =
      write_bench_json("serving", quick, jobs, all, sweep_seconds);
  std::printf("(bench json: %s)\n", report.c_str());
  return 0;
}
