/// Ablation C — §4: "A larger file system configuration with more I/O
/// bandwidth may have provided more scalable I/O performance."  Sweeps the
/// PVFS2 server count and strip size for WW-List and WW-POSIX at 64
/// processes.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace s3asim;
using namespace s3asim::bench;

namespace {

core::RunStats run_fs(core::Strategy strategy, std::uint32_t servers,
                      std::uint64_t strip) {
  auto config = core::paper_config();
  config.strategy = strategy;
  config.nprocs = 64;
  config.model.pfs.layout = pfs::Layout(strip, servers);
  auto stats = core::run_simulation(config);
  require_exact(stats);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);

  std::printf("S3aSim Ablation C: file-system scaling (64 processes)\n");

  // Server-count sweep at the paper's 64 KiB strips.
  {
    const std::vector<std::uint32_t> servers =
        quick ? std::vector<std::uint32_t>{4, 16, 64}
              : std::vector<std::uint32_t>{4, 8, 16, 32, 64};
    util::TextTable table({"Servers", "WW-List (s)", "WW-POSIX (s)",
                           "WW-Coll (s)"});
    util::CsvWriter csv(csv_path("ablation_fs_servers.csv"));
    csv.write_row({"servers", "ww_list", "ww_posix", "ww_coll"});
    for (const auto count : servers) {
      const auto list = run_fs(core::Strategy::WWList, count, 64 * util::KiB);
      const auto posix = run_fs(core::Strategy::WWPosix, count, 64 * util::KiB);
      const auto coll = run_fs(core::Strategy::WWColl, count, 64 * util::KiB);
      table.add_row_numeric(std::to_string(count),
                            {list.wall_seconds, posix.wall_seconds,
                             coll.wall_seconds});
      csv.write_row_numeric(std::to_string(count),
                            {list.wall_seconds, posix.wall_seconds,
                             coll.wall_seconds});
    }
    std::printf("\n== Server-count sweep (strip 64 KiB) ==\n%s",
                table.render().c_str());
    std::printf("(csv: results/ablation_fs_servers.csv)\n");
  }

  // Strip-size sweep at the paper's 16 servers.
  {
    const std::vector<std::uint64_t> strips =
        quick ? std::vector<std::uint64_t>{16 * util::KiB, 64 * util::KiB,
                                           1 * util::MiB}
              : std::vector<std::uint64_t>{16 * util::KiB, 32 * util::KiB,
                                           64 * util::KiB, 256 * util::KiB,
                                           1 * util::MiB};
    util::TextTable table({"Strip", "WW-List (s)", "WW-POSIX (s)"});
    util::CsvWriter csv(csv_path("ablation_fs_strips.csv"));
    csv.write_row({"strip_bytes", "ww_list", "ww_posix"});
    for (const auto strip : strips) {
      const auto list = run_fs(core::Strategy::WWList, 16, strip);
      const auto posix = run_fs(core::Strategy::WWPosix, 16, strip);
      table.add_row_numeric(util::format_bytes(strip),
                            {list.wall_seconds, posix.wall_seconds});
      csv.write_row_numeric(std::to_string(strip),
                            {list.wall_seconds, posix.wall_seconds});
    }
    std::printf("\n== Strip-size sweep (16 servers) ==\n%s",
                table.render().c_str());
    std::printf("(csv: results/ablation_fs_strips.csv)\n");
  }
  return 0;
}
