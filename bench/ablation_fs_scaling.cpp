/// Ablation C — §4: "A larger file system configuration with more I/O
/// bandwidth may have provided more scalable I/O performance."  Sweeps the
/// PVFS2 server count and strip size for WW-List and WW-POSIX at 64
/// processes.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "bench/sweep.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace s3asim;
using namespace s3asim::bench;

namespace {

core::RunStats run_fs(core::Strategy strategy, std::uint32_t servers,
                      std::uint64_t strip) {
  auto config = core::paper_config();
  config.strategy = strategy;
  config.nprocs = 64;
  config.model.pfs.layout = pfs::Layout(strip, servers);
  auto stats = core::run_simulation(config);
  require_exact(stats);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const unsigned jobs = sweep_jobs(argc, argv);

  std::printf("S3aSim Ablation C: file-system scaling (64 processes)\n");

  const std::vector<std::uint32_t> servers =
      quick ? std::vector<std::uint32_t>{4, 16, 64}
            : std::vector<std::uint32_t>{4, 8, 16, 32, 64};
  const std::vector<std::uint64_t> strips =
      quick ? std::vector<std::uint64_t>{16 * util::KiB, 64 * util::KiB,
                                         1 * util::MiB}
            : std::vector<std::uint64_t>{16 * util::KiB, 32 * util::KiB,
                                         64 * util::KiB, 256 * util::KiB,
                                         1 * util::MiB};

  // Flat grid: the server sweep's three strategies per count, then the
  // strip sweep's two strategies per size.
  std::vector<SweepPoint> grid;
  for (const auto count : servers) {
    for (const auto strategy : {core::Strategy::WWList, core::Strategy::WWPosix,
                                core::Strategy::WWColl}) {
      grid.push_back({std::string(core::strategy_name(strategy)) +
                          " servers=" + std::to_string(count),
                      [strategy, count] {
                        return run_fs(strategy, count, 64 * util::KiB);
                      }});
    }
  }
  for (const auto strip : strips) {
    for (const auto strategy :
         {core::Strategy::WWList, core::Strategy::WWPosix}) {
      grid.push_back({std::string(core::strategy_name(strategy)) + " strip=" +
                          util::format_bytes(strip),
                      [strategy, strip] {
                        return run_fs(strategy, 16, strip);
                      }});
    }
  }
  const auto sweep_start = std::chrono::steady_clock::now();
  const auto results = run_sweep(std::move(grid), jobs);
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();

  std::size_t index = 0;
  {
    util::TextTable table({"Servers", "WW-List (s)", "WW-POSIX (s)",
                           "WW-Coll (s)"});
    util::CsvWriter csv(csv_path("ablation_fs_servers.csv"));
    csv.write_row({"servers", "ww_list", "ww_posix", "ww_coll"});
    for (const auto count : servers) {
      const auto& list = results[index++].stats;
      const auto& posix = results[index++].stats;
      const auto& coll = results[index++].stats;
      table.add_row_numeric(std::to_string(count),
                            {list.wall_seconds, posix.wall_seconds,
                             coll.wall_seconds});
      csv.write_row_numeric(std::to_string(count),
                            {list.wall_seconds, posix.wall_seconds,
                             coll.wall_seconds});
    }
    std::printf("\n== Server-count sweep (strip 64 KiB) ==\n%s",
                table.render().c_str());
    std::printf("(csv: results/ablation_fs_servers.csv)\n");
  }

  {
    util::TextTable table({"Strip", "WW-List (s)", "WW-POSIX (s)"});
    util::CsvWriter csv(csv_path("ablation_fs_strips.csv"));
    csv.write_row({"strip_bytes", "ww_list", "ww_posix"});
    for (const auto strip : strips) {
      const auto& list = results[index++].stats;
      const auto& posix = results[index++].stats;
      table.add_row_numeric(util::format_bytes(strip),
                            {list.wall_seconds, posix.wall_seconds});
      csv.write_row_numeric(std::to_string(strip),
                            {list.wall_seconds, posix.wall_seconds});
    }
    std::printf("\n== Strip-size sweep (16 servers) ==\n%s",
                table.render().c_str());
    std::printf("(csv: results/ablation_fs_strips.csv)\n");
  }

  const auto report = write_bench_json("ablation_fs_scaling", quick, jobs,
                                       results, sweep_seconds);
  std::printf("(bench json: %s)\n", report.c_str());
  return 0;
}
