#!/usr/bin/env python3
"""Markdown checker for the repo docs (CI `docs-lint` job).

Checks, per file:
  * every relative link/image target resolves to an existing file or
    directory (anchors are stripped; http(s)/mailto links are skipped);
  * in-file anchor links (``#section``) match a heading in that file;
  * fenced code blocks are balanced;
  * no literal tab characters (the docs use spaces).

Usage:  python3 tools/check_markdown.py [root]

Exits 1 and prints ``file:line: message`` for every problem found.
Self-contained: standard library only.
"""

import os
import re
import sys

LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$")
SKIP_DIRS = {".git", "build", "results", "third_party", ".github"}


def anchor_of(heading: str) -> str:
    """GitHub-style anchor: lowercase, spaces to dashes, drop punctuation."""
    text = heading.strip().lower()
    text = re.sub(r"[`*_]", "", text)
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def markdown_files(root: str):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in sorted(filenames):
            if name.lower().endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(path: str, root: str):
    problems = []
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().splitlines()

    anchors = set()
    fence_open = False
    for line in lines:
        if line.lstrip().startswith("```"):
            fence_open = not fence_open
            continue
        if fence_open:
            continue
        match = HEADING.match(line)
        if match:
            anchors.add(anchor_of(match.group(1)))
    if fence_open:
        problems.append((path, len(lines), "unbalanced code fence"))

    fence_open = False
    for number, line in enumerate(lines, start=1):
        if line.lstrip().startswith("```"):
            fence_open = not fence_open
            continue
        if fence_open:
            continue
        if "\t" in line:
            problems.append((path, number, "literal tab character"))
        for match in LINK.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target, _, anchor = target.partition("#")
            if not target:  # in-file anchor
                if anchor and anchor not in anchors:
                    problems.append(
                        (path, number, f"broken anchor '#{anchor}'"))
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target))
            if not os.path.exists(resolved):
                problems.append(
                    (path, number,
                     f"broken link '{target}' -> {os.path.relpath(resolved, root)}"))
    return problems


def main() -> int:
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    problems = []
    count = 0
    for path in markdown_files(root):
        count += 1
        problems.extend(check_file(path, root))
    for path, number, message in problems:
        print(f"{os.path.relpath(path, root)}:{number}: {message}")
    status = "FAIL" if problems else "OK"
    print(f"check_markdown: {count} files, {len(problems)} problems [{status}]")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
