#pragma once

/// \file metrics.hpp
/// The cross-layer metrics registry: counters, gauges, and log2-bucketed
/// histograms (p50/p95/p99) published under stable dotted names
/// ("pfs.write.bytes", "sim.sched.queue_depth", ...).  One registry serves
/// a whole run; `snapshot()` is what benches and the CLI serialize into
/// `results/BENCH_*.json` and the per-run manifest.
///
/// Metrics are *host-side* observations: they never touch simulated time,
/// so attaching a registry cannot perturb a run (see DESIGN.md §8).  The
/// registry is single-threaded like the simulator; parallel sweeps give
/// each job its own registry and `merge()` them afterwards.

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace s3asim::util {
class JsonWriter;
}

namespace s3asim::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written instantaneous value.
class Gauge {
 public:
  void set(double value) noexcept { value_ = value; }
  void add(double delta) noexcept { value_ += delta; }
  [[nodiscard]] double value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Distribution of non-negative samples in power-of-two buckets: bucket i
/// covers [2^(i-kOffset), 2^(i-kOffset+1)), spanning ~3.6e-15 ... ~1.4e14 —
/// wide enough for nanosecond-scale service times in seconds and for byte
/// counts.  Percentiles interpolate inside the landing bucket and are
/// clamped to the exact observed [min, max].
class Histogram {
 public:
  static constexpr int kBuckets = 96;
  static constexpr int kOffset = 48;

  void observe(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// Value at percentile `p` in [0, 100]; 0 when empty.
  [[nodiscard]] double percentile(double p) const noexcept;

  void merge(const Histogram& other) noexcept;
  void reset() noexcept;

 private:
  [[nodiscard]] static int bucket_of(double value) noexcept;

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Point-in-time summary of one histogram.
struct HistogramSummary {
  std::uint64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Point-in-time copy of every metric, sorted by dotted name — the unit of
/// serialization (manifest "metrics" section) and of cross-checking against
/// the docs/OBSERVABILITY.md catalog.
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSummary>> histograms;

  /// Writes the `{"counters":{...},"gauges":{...},"histograms":{...}}`
  /// object at the writer's current position.
  void write_json(util::JsonWriter& json) const;

  /// Every dotted metric name present, sorted (counters + gauges +
  /// histograms).
  [[nodiscard]] std::vector<std::string> names() const;
};

/// Named-metric registry.  Lookup creates on first use; returned references
/// stay valid for the registry's lifetime (node-based storage).
class Registry {
 public:
  Counter& counter(std::string_view name) {
    return counters_[std::string(name)];
  }
  Gauge& gauge(std::string_view name) { return gauges_[std::string(name)]; }
  Histogram& histogram(std::string_view name) {
    return histograms_[std::string(name)];
  }

  [[nodiscard]] Snapshot snapshot() const;

  /// Accumulates `other` into this registry: counters add, gauges add,
  /// histograms merge.  Used to combine per-job registries of a parallel
  /// sweep.
  void merge(const Registry& other);

  /// Zeroes every metric but keeps the name set (so a reset registry still
  /// serializes its full catalog).
  void reset();

  /// Serializes `snapshot()` at the writer's current position.
  void write_json(util::JsonWriter& json) const;

  /// Standalone `{"counters":...}` document.
  [[nodiscard]] std::string to_json() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace s3asim::obs
