#include "obs/schema.hpp"

#include <string>

#include "util/json.hpp"

namespace s3asim::obs {
namespace {

using util::JsonValue;

void check_number_member(const JsonValue& object, const std::string& key,
                         const std::string& where,
                         std::vector<std::string>& errors) {
  if (!object.contains(key) || !object.at(key).is_number())
    errors.push_back(where + ": missing numeric \"" + key + "\"");
}

void check_string_member(const JsonValue& object, const std::string& key,
                         const std::string& where,
                         std::vector<std::string>& errors) {
  if (!object.contains(key) || !object.at(key).is_string())
    errors.push_back(where + ": missing string \"" + key + "\"");
}

void validate_event(const JsonValue& event, std::size_t index,
                    std::vector<std::string>& errors) {
  const std::string where = "traceEvents[" + std::to_string(index) + "]";
  if (!event.is_object()) {
    errors.push_back(where + ": not an object");
    return;
  }
  check_string_member(event, "ph", where, errors);
  check_string_member(event, "name", where, errors);
  check_number_member(event, "pid", where, errors);
  check_number_member(event, "tid", where, errors);
  check_number_member(event, "ts", where, errors);
  if (!event.contains("ph") || !event.at("ph").is_string()) return;
  const std::string& ph = event.at("ph").as_string();
  if (ph == "X") {
    check_number_member(event, "dur", where, errors);
    if (event.contains("dur") && event.at("dur").is_number() &&
        event.at("dur").as_number() < 0.0)
      errors.push_back(where + ": negative \"dur\"");
  } else if (ph == "s" || ph == "f") {
    if (!event.contains("id"))
      errors.push_back(where + ": flow event without \"id\"");
  } else if (ph == "M") {
    if (!event.contains("args") || !event.at("args").is_object() ||
        !event.at("args").contains("name"))
      errors.push_back(where + ": metadata record without args.name");
  } else if (ph != "i") {
    errors.push_back(where + ": unexpected phase \"" + ph + "\"");
  }
}

}  // namespace

std::vector<std::string> validate_chrome_trace(const JsonValue& root) {
  std::vector<std::string> errors;
  if (!root.is_object()) {
    errors.push_back("document: not an object");
    return errors;
  }
  if (!root.contains("traceEvents") || !root.at("traceEvents").is_array()) {
    errors.push_back("document: missing \"traceEvents\" array");
    return errors;
  }
  const auto& events = root.at("traceEvents").items();
  for (std::size_t i = 0; i < events.size(); ++i)
    validate_event(events[i], i, errors);
  return errors;
}

std::vector<std::string> validate_metrics_manifest(const JsonValue& root) {
  std::vector<std::string> errors;
  if (!root.is_object()) {
    errors.push_back("document: not an object");
    return errors;
  }
  if (!root.contains("schema") || !root.at("schema").is_string() ||
      root.at("schema").as_string() != kMetricsSchemaName)
    errors.push_back(std::string("document: \"schema\" must be \"") +
                     kMetricsSchemaName + "\"");
  if (!root.contains("run") || !root.at("run").is_object())
    errors.push_back("document: missing \"run\" object");
  if (!root.contains("trace") || !root.at("trace").is_object() ||
      !root.at("trace").contains("intervals_dropped") ||
      !root.at("trace").at("intervals_dropped").is_number())
    errors.push_back(
        "document: missing \"trace\" object with numeric "
        "\"intervals_dropped\"");
  if (!root.contains("metrics") || !root.at("metrics").is_object()) {
    errors.push_back("document: missing \"metrics\" object");
    return errors;
  }
  const JsonValue& metrics = root.at("metrics");
  for (const char* section : {"counters", "gauges", "histograms"}) {
    if (!metrics.contains(section) || !metrics.at(section).is_object()) {
      errors.push_back(std::string("metrics: missing \"") + section +
                       "\" object");
      continue;
    }
    for (const auto& [name, value] : metrics.at(section).members()) {
      const std::string where = std::string(section) + "." + name;
      if (std::string(section) == "histograms") {
        if (!value.is_object()) {
          errors.push_back(where + ": not an object");
          continue;
        }
        for (const char* field :
             {"count", "sum", "mean", "min", "max", "p50", "p95", "p99"})
          check_number_member(value, field, where, errors);
      } else if (!value.is_number()) {
        errors.push_back(where + ": not a number");
      }
    }
  }
  return errors;
}

}  // namespace s3asim::obs
