#pragma once

/// \file schema.hpp
/// Schema validation for the two observability export formats:
///
///  * Chrome-trace-event JSON (`--trace-json`, `TraceLog::export_chrome_json`)
///    — checked against the subset of the trace-event format the exporter
///    emits (phase slices, instants, flow events, metadata records);
///  * the per-run metrics manifest (`--metrics-json`) — checked for the
///    `s3asim-metrics-v1` layout the registry serializes.
///
/// Validators return a list of human-readable violations (empty = valid);
/// tests and the `obs_validate` tool share them, so the schema the docs
/// describe is the schema CI enforces.

#include <string>
#include <vector>

namespace s3asim::util {
class JsonValue;
}

namespace s3asim::obs {

/// Manifest format identifier written by the CLI and expected by the
/// validator.
inline constexpr char kMetricsSchemaName[] = "s3asim-metrics-v1";

/// Validates a parsed Chrome-trace document.  Checks: top-level object with
/// a "traceEvents" array; every event has string "ph"/"name" and numeric
/// "pid"/"tid"/"ts"; "X" slices carry a non-negative "dur"; "s"/"f" flow
/// events carry an "id"; "M" metadata records carry args.name.
[[nodiscard]] std::vector<std::string> validate_chrome_trace(
    const util::JsonValue& root);

/// Validates a parsed metrics manifest: schema tag, run section, trace
/// section (with intervals_dropped), and a metrics object whose histogram
/// entries each carry count/sum/mean/min/max/p50/p95/p99.
[[nodiscard]] std::vector<std::string> validate_metrics_manifest(
    const util::JsonValue& root);

}  // namespace s3asim::obs
