#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/json.hpp"

namespace s3asim::obs {

int Histogram::bucket_of(double value) noexcept {
  if (!(value > 0.0)) return 0;  // zero, negative, NaN -> underflow bucket
  int exp = 0;
  std::frexp(value, &exp);  // value in [2^(exp-1), 2^exp)
  const int index = exp - 1 + kOffset;
  return std::clamp(index, 0, kBuckets - 1);
}

void Histogram::observe(double value) noexcept {
  if (std::isnan(value)) return;
  ++buckets_[static_cast<std::size_t>(bucket_of(value))];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

double Histogram::percentile(double p) const noexcept {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count_);
  const auto rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(target)));
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t in_bucket = buckets_[static_cast<std::size_t>(i)];
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket >= rank) {
      const double lo = std::ldexp(1.0, i - kOffset);
      const double fraction = static_cast<double>(rank - cumulative) /
                              static_cast<double>(in_bucket);
      const double estimate = lo + lo * fraction;  // within [lo, 2*lo)
      return std::clamp(estimate, min_, max_);
    }
    cumulative += in_bucket;
  }
  return max_;
}

void Histogram::merge(const Histogram& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (int i = 0; i < kBuckets; ++i)
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)];
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::reset() noexcept {
  buckets_.fill(0);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

void Snapshot::write_json(util::JsonWriter& json) const {
  json.begin_object();
  json.key("counters");
  json.begin_object();
  for (const auto& [name, value] : counters) {
    json.key(name);
    json.value(value);
  }
  json.end_object();
  json.key("gauges");
  json.begin_object();
  for (const auto& [name, value] : gauges) {
    json.key(name);
    json.value(value);
  }
  json.end_object();
  json.key("histograms");
  json.begin_object();
  for (const auto& [name, h] : histograms) {
    json.key(name);
    json.begin_object();
    json.key("count");
    json.value(h.count);
    json.key("sum");
    json.value(h.sum);
    json.key("mean");
    json.value(h.mean);
    json.key("min");
    json.value(h.min);
    json.key("max");
    json.value(h.max);
    json.key("p50");
    json.value(h.p50);
    json.key("p95");
    json.value(h.p95);
    json.key("p99");
    json.value(h.p99);
    json.end_object();
  }
  json.end_object();
  json.end_object();
}

std::vector<std::string> Snapshot::names() const {
  std::vector<std::string> all;
  all.reserve(counters.size() + gauges.size() + histograms.size());
  for (const auto& [name, value] : counters) all.push_back(name);
  for (const auto& [name, value] : gauges) all.push_back(name);
  for (const auto& [name, value] : histograms) all.push_back(name);
  std::sort(all.begin(), all.end());
  return all;
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_)
    snap.counters.emplace_back(name, counter.value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_)
    snap.gauges.emplace_back(name, gauge.value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSummary summary;
    summary.count = h.count();
    summary.sum = h.sum();
    summary.mean = h.mean();
    summary.min = h.min();
    summary.max = h.max();
    summary.p50 = h.percentile(50.0);
    summary.p95 = h.percentile(95.0);
    summary.p99 = h.percentile(99.0);
    snap.histograms.emplace_back(name, summary);
  }
  return snap;
}

void Registry::merge(const Registry& other) {
  for (const auto& [name, c] : other.counters_) counter(name).add(c.value());
  for (const auto& [name, g] : other.gauges_) gauge(name).add(g.value());
  for (const auto& [name, h] : other.histograms_) histogram(name).merge(h);
}

void Registry::reset() {
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

void Registry::write_json(util::JsonWriter& json) const {
  snapshot().write_json(json);
}

std::string Registry::to_json() const {
  util::JsonWriter json;
  write_json(json);
  return json.str();
}

}  // namespace s3asim::obs
