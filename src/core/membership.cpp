#include "core/membership.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "core/strategies/registry.hpp"
#include "fault/fault.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace s3asim::core {

namespace {

std::string trim(const std::string& text) {
  const auto first = text.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto last = text.find_last_not_of(" \t\r");
  return text.substr(first, last - first + 1);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::istringstream stream(text);
  std::string part;
  while (std::getline(stream, part, sep)) parts.push_back(part);
  return parts;
}

/// "standard, accel" — error messages list the declared classes so a typo
/// is a one-glance fix.
std::string known_class_names(const std::vector<SpeedClass>& classes) {
  std::string names;
  for (const SpeedClass& cls : classes) {
    if (!names.empty()) names += ", ";
    names += cls.name;
  }
  return names.empty() ? "<none declared>" : names;
}

[[nodiscard]] std::size_t class_index_of(const std::vector<SpeedClass>& classes,
                                         const std::string& name,
                                         const std::string& context) {
  for (std::size_t i = 0; i < classes.size(); ++i)
    if (classes[i].name == name) return i;
  throw std::invalid_argument(context + ": unknown speed class '" + name +
                              "' (known classes: " +
                              known_class_names(classes) + ")");
}

}  // namespace

const char* worker_lifecycle_name(WorkerLifecycle state) noexcept {
  switch (state) {
    case WorkerLifecycle::Standby: return "standby";
    case WorkerLifecycle::Joining: return "joining";
    case WorkerLifecycle::Active: return "active";
    case WorkerLifecycle::Draining: return "draining";
    case WorkerLifecycle::Departed: return "departed";
    case WorkerLifecycle::Dead: return "dead";
  }
  return "?";
}

WorkerRegistry::WorkerRegistry(const MembershipConfig& membership,
                               const std::vector<mpi::Rank>& workers,
                               std::uint64_t seed, double jitter)
    : classes_(membership.classes) {
  // Expand the class counts into one repeating pattern of class indices.
  std::vector<std::uint32_t> pattern;
  for (std::size_t c = 0; c < classes_.size(); ++c)
    for (std::uint32_t i = 0; i < std::max<std::uint32_t>(classes_[c].count, 1);
         ++i)
      pattern.push_back(static_cast<std::uint32_t>(c));

  records_.reserve(workers.size());
  for (std::size_t position = 0; position < workers.size(); ++position) {
    const mpi::Rank rank = workers[position];
    WorkerRecord record;
    record.rank = rank;
    if (!pattern.empty()) record.class_index = pattern[position % pattern.size()];

    for (const JoinSpec& join : membership.joins) {
      if (join.rank != rank) continue;
      record.scheduled_join = join.at;
      record.state = WorkerLifecycle::Standby;
      if (!join.speed_class.empty())
        record.class_index = static_cast<std::uint32_t>(class_index_of(
            classes_, join.speed_class, "joins entry for worker " +
                                            std::to_string(join.rank)));
    }
    if (membership.elastic && membership.min_workers > 0 &&
        position >= membership.min_workers &&
        record.state == WorkerLifecycle::Active)
      record.state = WorkerLifecycle::Standby;

    // The per-rank jitter factor reproduces the pre-registry formula
    // bit-for-bit; the class speed multiplies on top (exactly 1.0 when no
    // classes are configured, so homogeneous runs stay byte-identical).
    double factor = 1.0;
    if (jitter > 0.0) {
      util::Xoshiro256 rng(util::hash_combine(seed ^ 0x48e7e601ULL, rank));
      factor += jitter * (2.0 * rng.uniform() - 1.0);
    }
    const double class_speed =
        classes_.empty() ? 1.0 : classes_[record.class_index].speed;
    record.speed_factor = class_speed * factor;

    if (record.state == WorkerLifecycle::Active) {
      record.participant = true;
      ++participants_;
      ++active_;
    } else {
      record.initially_standby = true;
    }
    records_.push_back(std::move(record));
  }
  peak_active_ = active_;
}

const WorkerRecord& WorkerRegistry::record(mpi::Rank rank) const {
  for (const WorkerRecord& record : records_)
    if (record.rank == rank) return record;
  S3A_REQUIRE_MSG(false, "worker registry: rank " + std::to_string(rank) +
                             " is not a worker of this group");
  S3A_UNREACHABLE();
}

WorkerRecord& WorkerRegistry::mutable_record(mpi::Rank rank) {
  return const_cast<WorkerRecord&>(record(rank));
}

double WorkerRegistry::active_mean_speed() const {
  double sum = 0.0;
  std::uint32_t n = 0;
  for (const WorkerRecord& record : records_) {
    if (record.state != WorkerLifecycle::Active) continue;
    sum += record.speed_factor;
    ++n;
  }
  return n == 0 ? 1.0 : sum / n;
}

bool WorkerRegistry::begin_join(mpi::Rank rank, sim::Time now) {
  WorkerRecord& record = mutable_record(rank);
  if (record.state != WorkerLifecycle::Standby) return false;
  record.state = WorkerLifecycle::Joining;
  record.join_started = now;
  ++epoch_;
  return true;
}

bool WorkerRegistry::activate(mpi::Rank rank, sim::Time now) {
  WorkerRecord& record = mutable_record(rank);
  if (record.state != WorkerLifecycle::Joining) return false;
  record.state = WorkerLifecycle::Active;
  record.join_completed = now;
  record.participant = true;
  ++participants_;
  ++active_;
  peak_active_ = std::max(peak_active_, active_);
  ++joins_completed_;
  join_latencies_.push_back(sim::to_seconds(now - record.join_started));
  ++epoch_;
  return true;
}

bool WorkerRegistry::begin_drain(mpi::Rank rank, sim::Time now) {
  WorkerRecord& record = mutable_record(rank);
  if (record.state != WorkerLifecycle::Active) return false;
  record.state = WorkerLifecycle::Draining;
  (void)now;
  --active_;
  ++epoch_;
  return true;
}

bool WorkerRegistry::complete_drain(mpi::Rank rank, sim::Time now) {
  WorkerRecord& record = mutable_record(rank);
  if (record.state != WorkerLifecycle::Draining) return false;
  record.state = WorkerLifecycle::Departed;
  record.left_at = now;
  ++drains_completed_;
  ++epoch_;
  return true;
}

bool WorkerRegistry::mark_dead(mpi::Rank rank, sim::Time now) {
  WorkerRecord& record = mutable_record(rank);
  switch (record.state) {
    case WorkerLifecycle::Departed:
    case WorkerLifecycle::Dead:
      return false;  // first-wins: already out of the cluster
    case WorkerLifecycle::Active:
      --active_;
      break;
    case WorkerLifecycle::Standby:
    case WorkerLifecycle::Joining:
    case WorkerLifecycle::Draining:
      break;
  }
  record.state = WorkerLifecycle::Dead;
  record.left_at = now;
  ++epoch_;
  return true;
}

std::uint32_t WorkerRegistry::count(WorkerLifecycle state) const {
  std::uint32_t n = 0;
  for (const WorkerRecord& record : records_)
    if (record.state == state) ++n;
  return n;
}

std::optional<mpi::Rank> WorkerRegistry::pick_standby() const {
  std::optional<mpi::Rank> best;
  for (const WorkerRecord& record : records_) {
    if (record.state != WorkerLifecycle::Standby) continue;
    // Never summon a scheduled joiner: its own timer owns the transition.
    if (record.scheduled_join != kNoScheduledJoin) continue;
    if (!best || record.rank < *best) best = record.rank;
  }
  return best;
}

std::optional<mpi::Rank> WorkerRegistry::pick_drain_candidate() const {
  const WorkerRecord* best = nullptr;
  for (const WorkerRecord& record : records_) {
    if (record.state != WorkerLifecycle::Active) continue;
    if (best == nullptr || record.join_completed > best->join_completed ||
        (record.join_completed == best->join_completed &&
         record.rank > best->rank))
      best = &record;
  }
  return best == nullptr ? std::nullopt : std::optional<mpi::Rank>(best->rank);
}

double WorkerRegistry::worker_seconds(sim::Time end) const {
  double total = 0.0;
  for (const WorkerRecord& record : records_) {
    if (!record.participant) continue;
    const bool left = record.state == WorkerLifecycle::Departed ||
                      record.state == WorkerLifecycle::Dead;
    const sim::Time until = left ? record.left_at : end;
    if (until > record.join_completed)
      total += sim::to_seconds(until - record.join_completed);
  }
  return total;
}

std::vector<SpeedClass> parse_worker_classes(std::string_view spec) {
  std::vector<SpeedClass> classes;
  // '|'-separated entries ('#' and ';' start comments in the key=value
  // config format, so neither can appear inside a value).
  for (const std::string& raw : split(std::string(spec), '|')) {
    const std::string entry = trim(raw);
    if (entry.empty()) continue;
    SpeedClass cls;
    const auto colon = entry.find(':');
    cls.name = trim(entry.substr(0, colon));
    if (cls.name.empty())
      throw std::invalid_argument("worker_classes entry '" + entry +
                                  "' is missing a name");
    for (const SpeedClass& existing : classes)
      if (existing.name == cls.name)
        throw std::invalid_argument("duplicate worker class '" + cls.name +
                                    "'");
    if (colon != std::string::npos) {
      for (const std::string& field : split(entry.substr(colon + 1), ',')) {
        const std::string assignment = trim(field);
        if (assignment.empty()) continue;
        const auto equals = assignment.find('=');
        if (equals == std::string::npos)
          throw std::invalid_argument("worker class '" + cls.name +
                                      "': field '" + assignment +
                                      "' is not key=value");
        const std::string key = trim(assignment.substr(0, equals));
        const std::string value = trim(assignment.substr(equals + 1));
        try {
          if (key == "speed") {
            cls.speed = std::stod(value);
          } else if (key == "count") {
            cls.count = static_cast<std::uint32_t>(std::stoul(value));
          } else {
            throw std::invalid_argument("worker class '" + cls.name +
                                        "': unknown field '" + key +
                                        "' (expected speed or count)");
          }
        } catch (const std::invalid_argument&) {
          throw;
        } catch (const std::exception&) {
          throw std::invalid_argument("worker class '" + cls.name +
                                      "': field '" + key +
                                      "' has malformed value '" + value + "'");
        }
      }
    }
    if (!(cls.speed > 0.0))
      throw std::invalid_argument("worker class '" + cls.name +
                                  "': speed must be positive, got " +
                                  std::to_string(cls.speed));
    if (cls.count == 0)
      throw std::invalid_argument("worker class '" + cls.name +
                                  "': count must be at least 1");
    classes.push_back(std::move(cls));
  }
  return classes;
}

std::vector<JoinSpec> parse_joins(std::string_view spec) {
  std::vector<JoinSpec> joins;
  for (const std::string& raw : split(std::string(spec), '|')) {
    const std::string entry = trim(raw);
    if (entry.empty()) continue;
    JoinSpec join;
    bool have_rank = false;
    bool have_at = false;
    for (const std::string& field : split(entry, ',')) {
      const std::string assignment = trim(field);
      if (assignment.empty()) continue;
      const auto equals = assignment.find('=');
      if (equals == std::string::npos)
        throw std::invalid_argument("joins entry '" + entry + "': field '" +
                                    assignment + "' is not key=value");
      const std::string key = trim(assignment.substr(0, equals));
      const std::string value = trim(assignment.substr(equals + 1));
      try {
        if (key == "worker") {
          join.rank = static_cast<std::uint32_t>(std::stoul(value));
          have_rank = true;
        } else if (key == "at") {
          join.at = fault::parse_time(value);
          have_at = true;
        } else if (key == "class") {
          join.speed_class = value;
        } else {
          throw std::invalid_argument("joins entry '" + entry +
                                      "': unknown field '" + key +
                                      "' (expected worker, at, or class)");
        }
      } catch (const std::invalid_argument&) {
        throw;
      } catch (const std::exception&) {
        throw std::invalid_argument("joins entry '" + entry + "': field '" +
                                    key + "' has malformed value '" + value +
                                    "'");
      }
    }
    if (!have_rank)
      throw std::invalid_argument("joins entry '" + entry +
                                  "' is missing worker=");
    if (!have_at)
      throw std::invalid_argument("joins entry '" + entry +
                                  "' is missing at=");
    if (join.at <= 0)
      throw std::invalid_argument("joins entry '" + entry +
                                  "': at must be a positive time");
    for (const JoinSpec& existing : joins)
      if (existing.rank == join.rank)
        throw std::invalid_argument("joins: duplicate worker '" +
                                    std::to_string(join.rank) + "'");
    joins.push_back(std::move(join));
  }
  return joins;
}

void validate_membership(const SimConfig& config) {
  const MembershipConfig& membership = config.membership;
  for (const SpeedClass& cls : membership.classes) {
    S3A_REQUIRE_MSG(cls.speed > 0.0, "worker class '" + cls.name +
                                         "': speed must be positive");
    S3A_REQUIRE_MSG(cls.count >= 1, "worker class '" + cls.name +
                                        "': count must be at least 1");
  }

  for (const JoinSpec& join : membership.joins) {
    S3A_REQUIRE_MSG(
        join.rank >= 1 && join.rank < config.nprocs,
        "joins names worker " + std::to_string(join.rank) +
            ", which is not a worker rank (workers are 1.." +
            std::to_string(config.nprocs - 1) + ")");
    if (!join.speed_class.empty())
      (void)class_index_of(membership.classes, join.speed_class,
                           "joins entry for worker " +
                               std::to_string(join.rank));
    // A scheduled joiner can be killed — elastic composes with the fault
    // subsystem — but only after it has joined; an earlier kill would
    // fail-stop a worker that does not exist yet.
    const sim::Time kill_at = config.fault.kill_time(join.rank);
    S3A_REQUIRE_MSG(kill_at == fault::kNever || kill_at > join.at,
                    "fault plan kills worker " + std::to_string(join.rank) +
                        " before its scheduled join; move the kill after "
                        "at=" +
                        std::to_string(join.at) + "ns or drop the join");
  }

  if (membership.elastic) {
    S3A_REQUIRE_MSG(
        config.serving.enabled(),
        "elastic autoscaling needs the open-loop serving workload "
        "(arrival_rate_hz or arrival_trace) for a queue-depth signal; for "
        "closed-batch mid-run joins use joins=worker=R,at=T instead");
    S3A_REQUIRE_MSG(membership.joins.empty(),
                    "elastic autoscaling and scheduled joins cannot be "
                    "combined: the autoscaler owns the standby pool");
    S3A_REQUIRE_MSG(
        membership.min_workers >= 1 && membership.min_workers < config.nprocs,
        "elastic mode needs min_workers in 1.." +
            std::to_string(config.nprocs - 1) +
            " (the initially-active worker count), got " +
            std::to_string(membership.min_workers));
    S3A_REQUIRE_MSG(membership.autoscale_target > 0.0,
                    "key 'autoscale_target': must be positive (the admission "
                    "queue depth that triggers a scale-up)");
    S3A_REQUIRE_MSG(membership.autoscale_cooldown >= 0,
                    "key 'autoscale_cooldown_ms': must be non-negative");
  } else if (!membership.joins.empty()) {
    S3A_REQUIRE_MSG(!config.serving.enabled(),
                    "scheduled joins are a closed-batch feature; in serving "
                    "mode use elastic=true with min_workers and "
                    "autoscale_target instead");
  }

  if (membership.dynamic()) {
    const auto strategy = make_strategy(config.strategy);
    S3A_REQUIRE_MSG(
        strategy->tolerates_membership_changes(),
        std::string("strategy ") + strategy_name(config.strategy) +
            " synchronizes over a fixed worker cohort (collective writes / "
            "lockstep aggregation groups) and cannot absorb membership "
            "changes mid-run; use an independent-writer strategy such as "
            "WW-List or WW-POSIX, or drop elastic/joins");
    S3A_REQUIRE_MSG(!config.query_sync,
                    "query_sync barriers span a fixed worker cohort and do "
                    "not compose with membership changes; drop query_sync or "
                    "run with fixed membership");
  }
}

}  // namespace s3asim::core
