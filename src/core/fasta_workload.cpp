#include "core/fasta_workload.hpp"

#include <vector>

#include "bio/fasta.hpp"
#include "util/require.hpp"

namespace s3asim::core {

namespace {

std::vector<std::uint64_t> lengths_of(std::span<const bio::Sequence> sequences) {
  std::vector<std::uint64_t> lengths;
  lengths.reserve(sequences.size());
  for (const bio::Sequence& sequence : sequences)
    lengths.push_back(sequence.length());
  return lengths;
}

}  // namespace

void apply_database_sequences(WorkloadConfig& config,
                              std::span<const bio::Sequence> database,
                              unsigned bins) {
  S3A_REQUIRE_MSG(!database.empty(), "database FASTA has no sequences");
  const auto lengths = lengths_of(database);
  config.database_histogram = util::build_histogram(lengths, bins);
  std::uint64_t residues = 0;
  for (const std::uint64_t length : lengths) residues += length;
  // FASTA on disk carries headers and line breaks on top of the residues;
  // ~3% matches typical formatted databases.
  config.database_bytes = residues + residues / 32;
}

void apply_query_sequences(WorkloadConfig& config,
                           std::span<const bio::Sequence> queries,
                           unsigned bins) {
  S3A_REQUIRE_MSG(!queries.empty(), "query FASTA has no sequences");
  config.query_histogram = util::build_histogram(lengths_of(queries), bins);
  config.query_count = static_cast<std::uint32_t>(queries.size());
}

WorkloadConfig workload_from_fasta(const std::string& database_path,
                                   const std::string& query_path,
                                   WorkloadConfig base) {
  const auto database = bio::read_fasta_file(database_path);
  const auto queries = bio::read_fasta_file(query_path);
  apply_database_sequences(base, database);
  apply_query_sequences(base, queries);
  return base;
}

}  // namespace s3asim::core
