#include "core/config_loader.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/membership.hpp"
#include "core/serving.hpp"
#include "util/require.hpp"

namespace s3asim::core {

namespace {

EngineMode parse_engine(const std::string& name) {
  if (name == "serial") return EngineMode::Serial;
  if (name == "parallel") return EngineMode::Parallel;
  throw std::invalid_argument("unknown engine '" + name +
                              "' (expected 'serial' or 'parallel')");
}

mpiio::CollectiveAlgorithm parse_collective(const std::string& name) {
  if (name == "two_phase" || name == "two-phase")
    return mpiio::CollectiveAlgorithm::TwoPhase;
  if (name == "list_sync" || name == "list-sync")
    return mpiio::CollectiveAlgorithm::ListWithSync;
  throw std::invalid_argument("unknown collective_algorithm '" + name + "'");
}

mpiio::NoncontigMethod parse_read_method(const std::string& name) {
  if (name == "posix") return mpiio::NoncontigMethod::Posix;
  if (name == "list") return mpiio::NoncontigMethod::ListIo;
  if (name == "sieve") return mpiio::NoncontigMethod::Sieve;
  throw std::invalid_argument("unknown read_method '" + name +
                              "' (expected 'posix', 'list' or 'sieve')");
}

}  // namespace

SimConfig load_config(const std::string& config_text) {
  const auto keyval = util::KeyValConfig::parse(config_text);
  SimConfig config = paper_config();

  // --- Run shape. -----------------------------------------------------------
  config.nprocs = static_cast<std::uint32_t>(
      keyval.get_int("nprocs", config.nprocs));
  config.strategy =
      parse_strategy(keyval.get_string("strategy", strategy_name(config.strategy)));
  config.query_sync = keyval.get_bool("query_sync", config.query_sync);
  config.compute_speed = keyval.get_double("compute_speed", config.compute_speed);
  config.compute_speed_jitter =
      keyval.get_double("compute_speed_jitter", config.compute_speed_jitter);
  config.queries_per_flush = static_cast<std::uint32_t>(
      keyval.get_int("queries_per_flush", config.queries_per_flush));
  config.sync_after_write =
      keyval.get_bool("sync_after_write", config.sync_after_write);
  config.worker_memory_bytes =
      keyval.get_bytes("worker_memory", config.worker_memory_bytes);
  config.fragment_affinity =
      keyval.get_bool("fragment_affinity", config.fragment_affinity);
  config.mw_nonblocking_io =
      keyval.get_bool("mw_nonblocking_io", config.mw_nonblocking_io);
  const std::int64_t fanin =
      keyval.get_int("aggregator_fanin", config.aggregator_fanin);
  if (fanin < 0)
    throw std::invalid_argument(
        "aggregator_fanin must be non-negative (0 = one group per run)");
  config.aggregator_fanin = static_cast<std::uint32_t>(fanin);

  // --- Engine. ------------------------------------------------------------
  if (keyval.has("engine"))
    config.engine.mode = parse_engine(keyval.get_string("engine", ""));
  const std::int64_t engine_threads =
      keyval.get_int("engine_threads", config.engine.threads);
  if (engine_threads < 0 || engine_threads > 256)
    throw std::invalid_argument(
        "engine_threads must be in 0..256 (0 = one per hardware thread)");
  config.engine.threads = static_cast<std::uint32_t>(engine_threads);

  // --- Workload. --------------------------------------------------------------
  auto& workload = config.workload;
  workload.seed = static_cast<std::uint64_t>(
      keyval.get_int("seed", static_cast<std::int64_t>(workload.seed)));
  workload.query_count = static_cast<std::uint32_t>(
      keyval.get_int("query_count", workload.query_count));
  workload.fragment_count = static_cast<std::uint32_t>(
      keyval.get_int("fragment_count", workload.fragment_count));
  workload.result_count_min = static_cast<std::uint32_t>(
      keyval.get_int("result_count_min", workload.result_count_min));
  workload.result_count_max = static_cast<std::uint32_t>(
      keyval.get_int("result_count_max", workload.result_count_max));
  workload.min_result_bytes =
      keyval.get_bytes("min_result_bytes", workload.min_result_bytes);
  workload.size_scale = keyval.get_double("size_scale", workload.size_scale);
  workload.database_bytes =
      keyval.get_bytes("database_bytes", workload.database_bytes);
  workload.db_chunk_bytes =
      keyval.get_bytes("db_chunk_bytes", workload.db_chunk_bytes);
  if (const auto hist = keyval.get_histogram("query"))
    workload.query_histogram = *hist;
  if (const auto hist = keyval.get_histogram("database"))
    workload.database_histogram = *hist;

  // --- Model. -----------------------------------------------------------------
  auto& model = config.model;
  model.network.latency = sim::microseconds(keyval.get_double(
      "net_latency_us", sim::to_seconds(model.network.latency) * 1e6));
  model.network.bandwidth_bps =
      keyval.get_double("net_bandwidth_mbps",
                        model.network.bandwidth_bps / 1e6) * 1e6;
  const std::uint64_t strip = keyval.get_bytes(
      "strip_size", model.pfs.layout.strip_size());
  const std::uint32_t servers = static_cast<std::uint32_t>(
      keyval.get_int("server_count", model.pfs.layout.server_count()));
  model.pfs.layout = pfs::Layout(strip, servers);

  // --- Client-side cache (ISSUE 8; all optional — default = cache off). ----
  if (keyval.has("cache_capacity") || keyval.has("cache_block") ||
      keyval.has("token_granularity")) {
    auto& cache = model.pfs.cache;
    cache.capacity_bytes =
        keyval.get_bytes("cache_capacity", cache.capacity_bytes);
    cache.block_bytes = keyval.get_bytes("cache_block", cache.block_bytes);
    cache.token_bytes =
        keyval.get_bytes("token_granularity", cache.token_bytes);
    if (cache.capacity_bytes == 0)
      throw std::invalid_argument(
          "key 'cache_capacity': must be positive to enable the client "
          "cache (omit all cache keys to disable it)");
    if (cache.block_bytes == 0 || strip % cache.block_bytes != 0)
      throw std::invalid_argument(
          "key 'cache_block': " + std::to_string(cache.block_bytes) +
          " must be positive and divide strip_size (" + std::to_string(strip) +
          ") so a cache block never straddles servers");
    if (cache.token_bytes < cache.block_bytes ||
        cache.token_bytes % cache.block_bytes != 0)
      throw std::invalid_argument(
          "key 'token_granularity': " + std::to_string(cache.token_bytes) +
          " must be a multiple of cache_block (" +
          std::to_string(cache.block_bytes) +
          ") — a lease boundary must not split a cache block");
    if (cache.capacity_bytes < cache.block_bytes)
      throw std::invalid_argument(
          "key 'cache_capacity': " + std::to_string(cache.capacity_bytes) +
          " must hold at least one cache_block (" +
          std::to_string(cache.block_bytes) + ")");
  }
  model.pfs.disk.bandwidth_bps =
      keyval.get_double("disk_bandwidth_mbps",
                        model.pfs.disk.bandwidth_bps / 1e6) * 1e6;
  model.pfs.disk.per_request = sim::milliseconds(keyval.get_double(
      "disk_per_request_ms", sim::to_milliseconds(model.pfs.disk.per_request)));
  model.pfs.disk.per_pair = sim::milliseconds(keyval.get_double(
      "disk_per_pair_ms", sim::to_milliseconds(model.pfs.disk.per_pair)));
  model.pfs.disk.sync_cost = sim::milliseconds(keyval.get_double(
      "sync_cost_ms", sim::to_milliseconds(model.pfs.disk.sync_cost)));
  // Read-side knobs; zero (the default) inherits the write-side cost.
  model.pfs.disk.read_bandwidth_bps =
      keyval.get_double("disk_read_bandwidth_mbps",
                        model.pfs.disk.read_bandwidth_bps / 1e6) * 1e6;
  model.pfs.disk.read_per_request = sim::milliseconds(keyval.get_double(
      "disk_read_per_request_ms",
      sim::to_milliseconds(model.pfs.disk.read_per_request)));
  model.pfs.disk.read_per_pair = sim::milliseconds(keyval.get_double(
      "disk_read_per_pair_ms",
      sim::to_milliseconds(model.pfs.disk.read_per_pair)));
  model.compute_startup = sim::milliseconds(keyval.get_double(
      "compute_startup_ms", sim::to_milliseconds(model.compute_startup)));
  model.compute_ns_per_result_byte = keyval.get_double(
      "compute_ns_per_byte", model.compute_ns_per_result_byte);

  // --- Hints. -----------------------------------------------------------------
  config.hints.cb_nodes = static_cast<std::uint32_t>(
      keyval.get_int("cb_nodes", config.hints.cb_nodes));
  config.hints.cb_buffer_size =
      keyval.get_bytes("cb_buffer_size", config.hints.cb_buffer_size);
  config.hints.two_phase_round_overhead = sim::milliseconds(keyval.get_double(
      "two_phase_overhead_ms",
      sim::to_milliseconds(config.hints.two_phase_round_overhead)));
  if (keyval.has("collective_algorithm"))
    config.hints.collective_algorithm =
        parse_collective(keyval.get_string("collective_algorithm", ""));
  config.hints.sieve_buffer_bytes =
      keyval.get_bytes("sieve_buffer", config.hints.sieve_buffer_bytes);
  if (config.hints.sieve_buffer_bytes == 0)
    throw std::invalid_argument(
        "key 'sieve_buffer': must be positive — a sieved access transfers "
        "one buffer-sized window per round trip");
  if (model.pfs.cache.enabled() &&
      config.hints.sieve_buffer_bytes < model.pfs.cache.block_bytes)
    throw std::invalid_argument(
        "key 'sieve_buffer': " +
        std::to_string(config.hints.sieve_buffer_bytes) +
        " is smaller than cache_block (" +
        std::to_string(model.pfs.cache.block_bytes) +
        ") — with the cache enabled, sieved accesses go through the cache, "
        "which transfers whole blocks");
  if (keyval.has("read_method"))
    config.read_method =
        parse_read_method(keyval.get_string("read_method", ""));

  // --- Serving (open-loop arrivals; all optional — defaults = closed batch).
  auto& serving = config.serving;
  serving.arrival_rate_hz =
      keyval.get_double("arrival_rate", serving.arrival_rate_hz);
  serving.arrival_trace =
      keyval.get_string("arrival_trace", serving.arrival_trace);
  if (keyval.has("admit_policy"))
    serving.policy =
        parse_admit_policy(keyval.get_string("admit_policy", ""));
  const std::int64_t depth =
      keyval.get_int("admit_depth", serving.admit_depth);
  if (depth < 1)
    throw std::invalid_argument("admit_depth must be at least 1");
  serving.admit_depth = static_cast<std::uint32_t>(depth);
  serving.inflight_watermark_bytes = keyval.get_bytes(
      "inflight_watermark", serving.inflight_watermark_bytes);
  if (keyval.has("tenants"))
    serving.tenants = parse_tenants(keyval.get_string("tenants", ""));
  if (!serving.arrival_trace.empty()) apply_arrival_trace(config);

  // --- Membership (ISSUE 10; all optional — defaults = fixed cluster). ----
  auto& membership = config.membership;
  if (keyval.has("worker_classes"))
    membership.classes =
        parse_worker_classes(keyval.get_string("worker_classes", ""));
  membership.speed_aware =
      keyval.get_bool("speed_aware", membership.speed_aware);
  if (keyval.has("joins"))
    membership.joins = parse_joins(keyval.get_string("joins", ""));
  membership.elastic = keyval.get_bool("elastic", membership.elastic);
  const std::int64_t min_workers =
      keyval.get_int("min_workers", membership.min_workers);
  if (min_workers < 0)
    throw std::invalid_argument("key 'min_workers': must be non-negative");
  membership.min_workers = static_cast<std::uint32_t>(min_workers);
  membership.autoscale_target =
      keyval.get_double("autoscale_target", membership.autoscale_target);
  if (membership.autoscale_target <= 0.0)
    throw std::invalid_argument(
        "key 'autoscale_target': must be positive (the admission queue "
        "depth that triggers a scale-up)");
  const double cooldown_ms = keyval.get_double(
      "autoscale_cooldown_ms",
      sim::to_milliseconds(membership.autoscale_cooldown));
  if (cooldown_ms < 0.0)
    throw std::invalid_argument(
        "key 'autoscale_cooldown_ms': must be non-negative");
  membership.autoscale_cooldown = sim::milliseconds(cooldown_ms);
  for (const JoinSpec& join : membership.joins)
    if (!join.speed_class.empty() && membership.classes.empty())
      throw std::invalid_argument(
          "joins entry for worker " + std::to_string(join.rank) +
          " names a speed class but no worker_classes are declared");

  const auto unused = keyval.unused_keys();
  if (!unused.empty()) {
    std::string message = "unrecognized config keys:";
    for (const auto& key : unused) message += " '" + key + "'";
    throw std::invalid_argument(message);
  }
  return config;
}

SimConfig load_config_file(const std::string& path) {
  std::ifstream input(path);
  if (!input) throw std::runtime_error("cannot open config file: " + path);
  std::ostringstream buffer;
  buffer << input.rdbuf();
  return load_config(buffer.str());
}

}  // namespace s3asim::core
