#pragma once

/// \file protocol.hpp
/// The master/worker wire protocol of Algorithms 1 and 2: message tags and
/// payload types.  Shared by the runtimes and the strategy layer's routing
/// service; tag 5 is reserved for strategy-private traffic (today: WW-Aggr
/// member→aggregator extent shipping).

#include <cstdint>
#include <vector>

#include "mpi/message.hpp"
#include "pfs/pfs.hpp"

namespace s3asim::core {

/// worker → master: "give me work" (Algorithm 2, step 3).
inline constexpr mpi::Tag kTagRequest = 1;
/// master → worker: assignment / done / offsets / finish, one ordered stream.
inline constexpr mpi::Tag kTagMasterToWorker = 2;
/// worker → master: scores (and, for MW, result payloads).
inline constexpr mpi::Tag kTagScores = 3;
/// master → worker: setup variables (Algorithm 1/2, step 1).
inline constexpr mpi::Tag kTagSetup = 4;
/// Reserved for strategy-internal worker↔worker traffic (WW-Aggr).
inline constexpr mpi::Tag kTagStrategy = 5;
/// worker → master: join handshake of an elastic/scheduled joiner
/// (DESIGN.md §12).  The master acknowledges on the ordered
/// kTagMasterToWorker stream with MasterMsg::Kind::Welcome — or with
/// Finish if the run is already tearing down, so a late joiner is turned
/// away instead of deadlocking.
inline constexpr mpi::Tag kTagJoin = 6;
/// Synthetic local event (never on the wire): arrival process → master,
/// "a query arrived (or the stream closed); re-evaluate dispatch".
inline constexpr mpi::Tag kTagArrival = 97;
/// Synthetic local event (never on the wire): reaper → worker, "die now".
inline constexpr mpi::Tag kTagDeath = 98;
/// Synthetic local event (never on the wire): failure detector → master,
/// "this worker's result timeout expired".
inline constexpr mpi::Tag kTagFailure = 99;

/// Payload of a master→worker message.  Queries are identified both by
/// their global id (indexes the WorkloadModel) and their local position in
/// the owning group's query list (drives batching and file layout — under
/// hybrid segmentation a group owns only a subset of the queries).
struct MasterMsg {
  enum class Kind {
    Assign,   ///< (query, fragment) to search
    Done,     ///< no more tasks will be assigned
    Offsets,  ///< offset list for a completed query (possibly empty)
    Finish,   ///< all offsets sent; worker may tear down
    Welcome,  ///< join accepted: stage the fragment cache, then request work
  };
  Kind kind = Kind::Assign;
  std::uint32_t query = 0;        ///< global query id
  std::uint32_t local_query = 0;  ///< position within the group's query list
  std::uint32_t fragment = 0;
  std::vector<pfs::Extent> extents;  // Offsets only
};

/// Payload of a worker→master join-handshake message (kTagJoin).
struct JoinMsg {
  mpi::Rank worker = 0;
  /// Fragment the joiner will pre-stage into its cache before taking
  /// tasks (the master mirrors the touch for affinity scheduling).
  std::uint32_t staged_fragment = 0;
};

/// Payload of a worker→master scores message.
struct ScoresMsg {
  std::uint32_t query = 0;        ///< global query id
  std::uint32_t local_query = 0;  ///< group-local position
  std::uint32_t fragment = 0;
  mpi::Rank worker = 0;
};

}  // namespace s3asim::core
