/// \file simulation.cpp
/// The public drivers: single-master, crash/resume, and hybrid
/// (multi-master) runs.  Everything below is orchestration — World and App
/// construction plus the scheduler run loop; the master/worker algorithms
/// live in master_runtime.cpp / worker_runtime.cpp, the per-strategy I/O
/// policy under strategies/, and the end-of-run accounting in
/// obs_bridge.cpp.

#include "core/simulation.hpp"

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/runtime.hpp"

namespace s3asim::core {

RunStats run_simulation(const SimConfig& config, trace::TraceLog* trace_log) {
  return run_simulation(config, Observability{trace_log, nullptr});
}

namespace {

/// The multi-master drivers are closed-batch facilities: they partition a
/// fixed query set up front, which has no meaning under open-loop arrivals.
void reject_serving(const SimConfig& config, const char* driver) {
  S3A_REQUIRE_MSG(!config.serving.enabled(),
                  std::string(driver) +
                      " is a closed-batch driver; disable the serving "
                      "workload (arrival_rate / arrival_trace) to use it");
}

}  // namespace

RunStats run_simulation(const SimConfig& config, const Observability& observe) {
  S3A_REQUIRE_MSG(config.nprocs >= 2, "need a master and at least one worker");
  std::vector<mpi::Rank> workers;
  for (mpi::Rank rank = 1; rank < config.nprocs; ++rank)
    workers.push_back(rank);
  validate_fault_plan(config, {workers.begin(), workers.end()});
  validate_serving(config);
  validate_membership(config);

  World world(config, config.nprocs);
  world.attach_observability(observe);
  // Closed batch: every query exists up front.  Serving mode: the list
  // starts empty and grows as arrivals are admitted and dispatched.
  std::vector<std::uint32_t> queries;
  if (!config.serving.enabled())
    for (std::uint32_t q = 0; q < config.workload.query_count; ++q)
      queries.push_back(q);

  std::vector<std::unique_ptr<App>> groups;
  groups.push_back(
      std::make_unique<App>(world, 0, std::move(workers), std::move(queries)));
  groups.back()->trace_log = observe.trace_log;
  launch_group(*groups.back());

  run_world(world);
  world.fs.shutdown();
  run_world(world);
  S3A_CHECK_MSG(world.scheduler.live_processes() == 0,
                "simulation did not quiesce");
  return collect_stats(world, groups);
}

ResumeOutcome run_with_resume(const SimConfig& config,
                              trace::TraceLog* trace_log) {
  return run_with_resume(config, Observability{trace_log, nullptr});
}

ResumeOutcome run_with_resume(const SimConfig& config,
                              const Observability& observe) {
  reject_serving(config, "run_with_resume");
  S3A_REQUIRE_MSG(!config.membership.dynamic(),
                  "run_with_resume is a fixed-membership driver; drop "
                  "elastic/joins to use it");
  ResumeOutcome outcome;

  // The run that (possibly) crashes: the configured plan minus the crash
  // itself — replaying it failure-free-to-completion yields both the
  // no-crash baseline and the batch-durability timeline the resume logic
  // needs.
  SimConfig base = config;
  const sim::Time crash_at = config.fault.crash_at;
  base.fault.crash_at = fault::kNever;
  outcome.full = run_simulation(base, observe);

  if (crash_at == fault::kNever ||
      sim::to_seconds(crash_at) >= outcome.full.wall_seconds) {
    // No crash, or the crash lands after the run already finished.
    outcome.total_seconds = outcome.full.wall_seconds;
    return outcome;
  }
  outcome.crashed = true;
  outcome.crashed_seconds = sim::to_seconds(crash_at);

  // Resume from the last flushed query boundary: batches whose results were
  // durable before the crash are never recomputed (§2's rationale for
  // flushing after every query).
  std::uint32_t flushed_batches = 0;
  for (const double at : outcome.full.batch_complete_seconds)
    if (at <= outcome.crashed_seconds) ++flushed_batches;
  const std::uint32_t flushed_queries =
      std::min(config.workload.query_count,
               flushed_batches * config.queries_per_flush);
  outcome.resume_query = flushed_queries;

  if (flushed_queries < config.workload.query_count) {
    // Tail run over the surviving query subset.  The restart is clean: the
    // original fault plan's injected failures already happened in the
    // crashed attempt and are not replayed.
    SimConfig tail = config;
    tail.fault = fault::FaultPlan{};

    World world(tail, tail.nprocs);
    world.attach_observability(observe);
    std::vector<mpi::Rank> workers;
    for (mpi::Rank rank = 1; rank < tail.nprocs; ++rank)
      workers.push_back(rank);
    std::vector<std::uint32_t> queries;
    for (std::uint32_t q = flushed_queries; q < tail.workload.query_count; ++q)
      queries.push_back(q);

    std::vector<std::unique_ptr<App>> groups;
    groups.push_back(std::make_unique<App>(world, 0, std::move(workers),
                                           std::move(queries)));
    launch_group(*groups.back());
    run_world(world);
    world.fs.shutdown();
    run_world(world);
    S3A_CHECK_MSG(world.scheduler.live_processes() == 0,
                  "resumed simulation did not quiesce");
    outcome.resumed = collect_stats(world, groups);
    outcome.resumed_seconds = outcome.resumed.wall_seconds;
  }
  outcome.total_seconds = outcome.crashed_seconds + outcome.resumed_seconds;
  return outcome;
}

RunStats run_hybrid_simulation(const SimConfig& config, std::uint32_t groups,
                               trace::TraceLog* trace_log) {
  return run_hybrid_simulation(config, groups,
                               Observability{trace_log, nullptr});
}

RunStats run_hybrid_simulation(const SimConfig& config, std::uint32_t groups,
                               const Observability& observe) {
  reject_serving(config, "run_hybrid_simulation");
  S3A_REQUIRE_MSG(!config.membership.dynamic(),
                  "run_hybrid_simulation is a fixed-membership driver; drop "
                  "elastic/joins to use it (worker_classes alone are fine)");
  S3A_REQUIRE_MSG(groups >= 1, "need at least one group");
  S3A_REQUIRE_MSG(config.nprocs % groups == 0,
                  "nprocs must be divisible by the group count");
  const std::uint32_t per_group = config.nprocs / groups;
  S3A_REQUIRE_MSG(per_group >= 2,
                  "each group needs a master and at least one worker");
  S3A_REQUIRE_MSG(groups <= config.workload.query_count,
                  "more groups than queries");
  std::set<mpi::Rank> all_workers;
  for (mpi::Rank rank = 0; rank < config.nprocs; ++rank)
    if (rank % per_group != 0) all_workers.insert(rank);
  validate_fault_plan(config, all_workers);
  validate_membership(config);

  World world(config, config.nprocs);
  world.attach_observability(observe);

  std::vector<std::unique_ptr<App>> apps;
  for (std::uint32_t g = 0; g < groups; ++g) {
    const mpi::Rank base = g * per_group;
    std::vector<mpi::Rank> workers;
    for (mpi::Rank rank = base + 1; rank < base + per_group; ++rank)
      workers.push_back(rank);
    // Round-robin query split (query segmentation across groups).
    std::vector<std::uint32_t> queries;
    for (std::uint32_t q = g; q < config.workload.query_count; q += groups)
      queries.push_back(q);
    apps.push_back(std::make_unique<App>(world, base, std::move(workers),
                                         std::move(queries)));
    apps.back()->trace_log = observe.trace_log;
  }
  for (const auto& app : apps) launch_group(*app);

  run_world(world);
  world.fs.shutdown();
  run_world(world);
  S3A_CHECK_MSG(world.scheduler.live_processes() == 0,
                "hybrid simulation did not quiesce");
  return collect_stats(world, apps);
}

}  // namespace s3asim::core
