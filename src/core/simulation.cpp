#include "core/simulation.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <tuple>
#include <vector>

#include "fault/fault.hpp"
#include "mpi/comm.hpp"
#include "mpiio/file.hpp"
#include "pfs/pfs.hpp"
#include "sim/barrier.hpp"
#include "sim/channel.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"
#include "sim/timer.hpp"
#include "sim/wait_group.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/require.hpp"

namespace s3asim::core {

namespace {

// ---------------------------------------------------------------------------
// Message protocol
// ---------------------------------------------------------------------------

/// worker → master: "give me work" (Algorithm 2, step 3).
constexpr mpi::Tag kTagRequest = 1;
/// master → worker: assignment / done / offsets / finish, one ordered stream.
constexpr mpi::Tag kTagMasterToWorker = 2;
/// worker → master: scores (and, for MW, result payloads).
constexpr mpi::Tag kTagScores = 3;
/// master → worker: setup variables (Algorithm 1/2, step 1).
constexpr mpi::Tag kTagSetup = 4;
/// Synthetic local event (never on the wire): reaper → worker, "die now".
constexpr mpi::Tag kTagDeath = 98;
/// Synthetic local event (never on the wire): failure detector → master,
/// "this worker's result timeout expired".
constexpr mpi::Tag kTagFailure = 99;

/// Payload of a master→worker message.  Queries are identified both by
/// their global id (indexes the WorkloadModel) and their local position in
/// the owning group's query list (drives batching and file layout — under
/// hybrid segmentation a group owns only a subset of the queries).
struct MasterMsg {
  enum class Kind {
    Assign,   ///< (query, fragment) to search
    Done,     ///< no more tasks will be assigned
    Offsets,  ///< offset list for a completed query (possibly empty)
    Finish,   ///< all offsets sent; worker may tear down
  };
  Kind kind = Kind::Assign;
  std::uint32_t query = 0;        ///< global query id
  std::uint32_t local_query = 0;  ///< position within the group's query list
  std::uint32_t fragment = 0;
  std::vector<pfs::Extent> extents;  // Offsets only
};

/// Payload of a worker→master scores message.
struct ScoresMsg {
  std::uint32_t query = 0;        ///< global query id
  std::uint32_t local_query = 0;  ///< group-local position
  std::uint32_t fragment = 0;
  mpi::Rank worker = 0;
};

/// LRU set of database fragments a worker holds in memory.  The master
/// mirrors each worker's cache (both sides apply the same `touch` sequence)
/// to implement mpiBLAST-style fragment-affinity scheduling.
class FragmentCache {
 public:
  explicit FragmentCache(std::size_t capacity) : capacity_(capacity) {}

  /// Marks `fragment` most-recently-used; returns true if it was cached.
  bool touch(std::uint32_t fragment) {
    if (capacity_ == 0) return false;
    const auto it = std::find(lru_.begin(), lru_.end(), fragment);
    if (it != lru_.end()) {
      lru_.erase(it);
      lru_.push_back(fragment);
      return true;
    }
    if (lru_.size() == capacity_) lru_.erase(lru_.begin());
    lru_.push_back(fragment);
    return false;
  }

  [[nodiscard]] bool contains(std::uint32_t fragment) const {
    return std::find(lru_.begin(), lru_.end(), fragment) != lru_.end();
  }

 private:
  std::size_t capacity_;
  std::vector<std::uint32_t> lru_;
};

// ---------------------------------------------------------------------------
// Shared world + per-group application state
// ---------------------------------------------------------------------------

/// The cost-model PFS parameters with the fault plan's server faults
/// appended as degradations (the fault module is pfs-agnostic; the
/// translation happens at world construction).
pfs::PfsParams faulted_pfs(const SimConfig& cfg) {
  pfs::PfsParams params = cfg.model.pfs;
  for (const fault::ServerFault& f : cfg.fault.servers)
    params.degradations.push_back(
        pfs::ServerDegradation{f.server, f.from, f.service_factor, f.stall});
  return params;
}

/// Bridges the model layers' observability hooks into the trace log and the
/// metrics registry: PFS request completions become trace spans and
/// per-kind service-time histograms; MPI deliveries become flow events and
/// message-size/latency histograms.  Purely host-side — it reads simulated
/// time but never spends it.
class ObsBridge final : public pfs::RequestObserver,
                        public mpi::MessageObserver {
 public:
  ObsBridge(trace::TraceLog* trace_log, obs::Registry* metrics)
      : trace_(trace_log) {
    if (metrics != nullptr) {
      write_service_ = &metrics->histogram("pfs.write.service_seconds");
      read_service_ = &metrics->histogram("pfs.read.service_seconds");
      sync_service_ = &metrics->histogram("pfs.sync.service_seconds");
      messages_ = &metrics->counter("mpi.messages");
      message_bytes_total_ = &metrics->counter("mpi.bytes");
      message_bytes_ = &metrics->histogram("mpi.message.bytes");
      message_delivery_ =
          &metrics->histogram("mpi.message.delivery_seconds");
    }
  }

  void on_request_serviced(std::uint32_t server, char kind,
                           std::uint64_t pairs, std::uint64_t bytes,
                           sim::Time start, sim::Time end) override {
    if (trace_ != nullptr) trace_->span(server, kind, pairs, bytes, start, end);
    obs::Histogram* histogram = kind == 's'   ? sync_service_
                                : kind == 'r' ? read_service_
                                              : write_service_;
    if (histogram != nullptr) histogram->observe(sim::to_seconds(end - start));
  }

  void on_message_delivered(mpi::Rank src, mpi::Rank dst, mpi::Tag tag,
                            std::uint64_t bytes, sim::Time sent,
                            sim::Time received) override {
    if (trace_ != nullptr) trace_->flow(src, dst, tag, bytes, sent, received);
    if (messages_ != nullptr) {
      messages_->add(1);
      message_bytes_total_->add(bytes);
      message_bytes_->observe(static_cast<double>(bytes));
      message_delivery_->observe(sim::to_seconds(received - sent));
    }
  }

 private:
  trace::TraceLog* trace_ = nullptr;
  obs::Histogram* write_service_ = nullptr;
  obs::Histogram* read_service_ = nullptr;
  obs::Histogram* sync_service_ = nullptr;
  obs::Counter* messages_ = nullptr;
  obs::Counter* message_bytes_total_ = nullptr;
  obs::Histogram* message_bytes_ = nullptr;
  obs::Histogram* message_delivery_ = nullptr;
};

/// Everything shared by all groups: the cluster, the file system, the
/// deterministic workload, and the per-rank statistics.
struct World {
  World(const SimConfig& cfg, std::uint32_t ranks)
      : config(cfg),
        workload(cfg.workload),
        scheduler(),
        network(scheduler, ranks + cfg.model.pfs.layout.server_count(),
                cfg.model.network),
        comm(scheduler, network, ranks),
        fs(scheduler, network, /*server_endpoint_base=*/ranks, faulted_pfs(cfg)),
        rank_stats(ranks) {
    S3A_REQUIRE(cfg.compute_speed > 0.0);
    S3A_REQUIRE(cfg.queries_per_flush >= 1);
  }

  /// Arms the observability sinks (no-op for a default-constructed
  /// `Observability`): wires the PFS/MPI observer bridge, the scheduler
  /// profiler, and the trace log's drop counter.
  void attach_observability(const Observability& observe) {
    trace_log = observe.trace_log;
    metrics = observe.metrics;
    if (observe.metrics != nullptr) {
      scheduler.attach_profiler(observe.metrics);
      if (observe.trace_log != nullptr)
        observe.trace_log->attach_registry(observe.metrics);
    }
    if (observe.enabled()) {
      obs_bridge =
          std::make_unique<ObsBridge>(observe.trace_log, observe.metrics);
      fs.set_observer(obs_bridge.get());
      comm.set_observer(obs_bridge.get());
    }
  }

  const SimConfig& config;
  WorkloadModel workload;
  sim::Scheduler scheduler;
  net::Network network;
  mpi::Comm comm;
  pfs::Pfs fs;
  std::vector<RankStats> rank_stats;
  trace::TraceLog* trace_log = nullptr;
  obs::Registry* metrics = nullptr;
  std::unique_ptr<ObsBridge> obs_bridge;
};

/// One master/worker group: under plain database segmentation there is a
/// single group spanning all ranks and all queries; under hybrid query/
/// database segmentation (paper §5 future work) each group owns a slice of
/// the queries, its own master, and its own output file.
struct App {
  App(World& w, mpi::Rank master_rank, std::vector<mpi::Rank> worker_ranks,
      std::vector<std::uint32_t> query_ids)
      : world(w),
        config(w.config),
        workload(w.workload),
        scheduler(w.scheduler),
        network(w.network),
        comm(w.comm),
        fs(w.fs),
        rank_stats(w.rank_stats),
        master(master_rank),
        workers(std::move(worker_ranks)),
        queries(std::move(query_ids)),
        query_barrier(w.scheduler, std::max<std::size_t>(workers.size(), 1)) {
    S3A_REQUIRE_MSG(!workers.empty(), "a group needs at least one worker");
    S3A_REQUIRE_MSG(!queries.empty(), "a group needs at least one query");
    for (const mpi::Rank rank : workers)
      events.emplace(rank,
                     std::make_unique<sim::Channel<mpi::Message>>(scheduler));
    request_wake = std::make_unique<sim::Channel<int>>(scheduler);
    scores_wake = std::make_unique<sim::Channel<int>>(scheduler);
    recovery_mode = config.fault.perturbs_workers();
    if (recovery_mode) {
      for (const mpi::Rank rank : workers) {
        auto probe = std::make_unique<ProbeCtl>();
        probe->timer = std::make_unique<sim::Timer>(scheduler);
        probe->armed = std::make_unique<sim::Channel<int>>(scheduler);
        probes.emplace(rank, std::move(probe));
      }
    }
    // Group-local file layout: the group's queries packed back to back.
    region_bases.reserve(queries.size());
    std::uint64_t cursor = 0;
    for (const std::uint32_t query : queries) {
      region_bases.push_back(cursor);
      cursor += workload.query(query).total_bytes;
    }
    group_output_bytes = cursor;
  }

  World& world;
  const SimConfig& config;
  WorkloadModel& workload;
  sim::Scheduler& scheduler;
  net::Network& network;
  mpi::Comm& comm;
  pfs::Pfs& fs;
  std::vector<RankStats>& rank_stats;
  trace::TraceLog* trace_log = nullptr;

  mpi::Rank master;
  std::vector<mpi::Rank> workers;
  std::vector<std::uint32_t> queries;  ///< global query ids, ascending
  sim::Barrier query_barrier;  ///< the "query sync" barrier (§3.3: workers only)
  std::vector<std::uint64_t> region_bases;  ///< group-file offset per local query
  std::uint64_t group_output_bytes = 0;

  /// Per-worker inbound event queues fed by pump processes.
  std::map<mpi::Rank, std::unique_ptr<sim::Channel<mpi::Message>>> events;

  /// Master-side priority split: Algorithm 1 *blocks* on work requests
  /// (step 3) and only *tests* score receives (step 10), so requests are
  /// served before queued score processing.  Pumps deposit messages here
  /// and push a wake token into the matching wake channel.
  std::deque<mpi::Message> master_requests;
  std::deque<mpi::Message> master_scores;
  std::unique_ptr<sim::Channel<int>> request_wake;
  std::unique_ptr<sim::Channel<int>> scores_wake;

  // ---- Fault-injection / recovery state (inert on failure-free runs). ----
  /// True when the plan perturbs workers: the master runs its
  /// recovery-capable loop and arms per-worker failure detectors.
  bool recovery_mode = false;
  /// Per-worker failure detector: the master arms `timer` whenever the
  /// worker owes results and pushes a token into `armed`; the probe process
  /// pops the token, waits out the timer, and on expiry injects a synthetic
  /// kTagFailure message into the master's request queue.
  struct ProbeCtl {
    std::unique_ptr<sim::Timer> timer;
    std::unique_ptr<sim::Channel<int>> armed;
  };
  std::map<mpi::Rank, std::unique_ptr<ProbeCtl>> probes;
  /// One cancellable timer per planned kill (owned here so the master can
  /// disarm stragglers at teardown without inflating the wall clock).
  std::vector<std::unique_ptr<sim::Timer>> reaper_timers;
  std::set<mpi::Rank> dead;                 ///< workers that fail-stopped
  std::map<mpi::Rank, sim::Time> death_times;
  FaultStats faults;
  /// Simulated instant each flushed batch was retired by the master (MW:
  /// after the durable region write; WW: when the offset lists were
  /// dispatched — workers flush immediately after).  Feeds resume-from-flush.
  std::vector<sim::Time> batch_complete_times;

  std::unique_ptr<mpiio::File> file;
  /// The on-disk database, present when workload.database_bytes > 0.
  std::unique_ptr<mpiio::File> database_file;
  /// WW-FilePerProc: each worker's private output file.
  std::map<mpi::Rank, std::unique_ptr<mpiio::File>> worker_files;

  // Database-streaming model.
  [[nodiscard]] bool models_database_io() const noexcept {
    return config.workload.database_bytes > 0;
  }
  [[nodiscard]] std::uint64_t fragment_bytes() const noexcept {
    return config.workload.database_bytes / config.workload.fragment_count;
  }
  [[nodiscard]] std::size_t cache_capacity() const noexcept {
    if (!models_database_io() || fragment_bytes() == 0) return 0;
    return static_cast<std::size_t>(config.worker_memory_bytes /
                                    fragment_bytes());
  }

  // Derived mode flags.
  [[nodiscard]] bool per_query_msgs_to_all() const noexcept {
    return config.query_sync || is_collective(config.strategy);
  }
  [[nodiscard]] std::uint32_t nworkers() const noexcept {
    return static_cast<std::uint32_t>(workers.size());
  }
  [[nodiscard]] std::uint32_t query_count() const noexcept {
    return static_cast<std::uint32_t>(queries.size());
  }
  [[nodiscard]] std::uint32_t batch_of(std::uint32_t local_query) const noexcept {
    return local_query / config.queries_per_flush;
  }
  [[nodiscard]] std::uint32_t batch_last_query(std::uint32_t batch) const noexcept {
    return std::min(query_count(), (batch + 1) * config.queries_per_flush) - 1;
  }

  /// Offset of local query q's region within the group's output file.
  [[nodiscard]] std::uint64_t region_base(std::uint32_t local_query) const {
    return region_bases[local_query];
  }

  /// Worker `rank`'s effective search speed: the global multiplier scaled
  /// by a deterministic per-rank heterogeneity factor.
  [[nodiscard]] double worker_speed(mpi::Rank rank) const {
    double factor = 1.0;
    if (config.compute_speed_jitter > 0.0) {
      util::Xoshiro256 rng(
          util::hash_combine(config.workload.seed ^ 0x48e7e601ULL, rank));
      factor += config.compute_speed_jitter * (2.0 * rng.uniform() - 1.0);
    }
    return config.compute_speed * factor;
  }

  [[nodiscard]] sim::Time compute_time(std::uint32_t query,
                                       std::uint32_t fragment,
                                       mpi::Rank rank) const {
    const std::uint64_t bytes = workload.fragment_result_bytes(query, fragment);
    const double nanos =
        static_cast<double>(config.model.compute_startup) +
        static_cast<double>(bytes) * config.model.compute_ns_per_result_byte;
    // Injected stragglers: active slowdowns multiply the search time.
    const double slow = config.fault.slow_factor(rank, scheduler.now());
    return static_cast<sim::Time>(
        std::llround(nanos * slow / worker_speed(rank)));
  }

  void record_phase(mpi::Rank rank, Phase phase, sim::Time start, sim::Time end) {
    rank_stats[rank].phases.add(phase, end - start);
    if (trace_log != nullptr && end > start)
      trace_log->record(rank, phase_name(phase), start, end);
  }
};

/// Scoped-ish phase timing around co_await points.
#define S3A_PHASE(app, rank, phase, ...)                          \
  do {                                                            \
    const sim::Time s3a_phase_start__ = (app).scheduler.now();    \
    __VA_ARGS__;                                                  \
    (app).record_phase((rank), (phase), s3a_phase_start__,        \
                       (app).scheduler.now());                    \
  } while (0)

// ---------------------------------------------------------------------------
// Pumps: turn MPI matching into per-rank ordered event streams
// ---------------------------------------------------------------------------

sim::Process worker_stream_pump(App& app, mpi::Rank rank) {
  while (true) {
    mpi::Message message =
        co_await app.comm.recv(rank, app.master, kTagMasterToWorker);
    if (message.cancelled) break;  // torn down at teardown (dead worker)
    const bool finish =
        message.as<MasterMsg>().kind == MasterMsg::Kind::Finish;
    app.events.at(rank)->push(std::move(message));
    if (finish) break;
  }
  app.events.at(rank)->close();
}

/// With faults the message counts are not known up front (reassignment,
/// drops, retirements), so both master pumps run until the master cancels
/// their posted receives at teardown (MPI_Cancel).
sim::Process master_request_pump(App& app) {
  while (true) {
    mpi::Message message =
        co_await app.comm.recv(app.master, mpi::kAnySource, kTagRequest);
    if (message.cancelled) break;
    app.master_requests.push_back(std::move(message));
    app.request_wake->push(0);
  }
}

sim::Process master_scores_pump(App& app) {
  while (true) {
    mpi::Message message =
        co_await app.comm.recv(app.master, mpi::kAnySource, kTagScores);
    if (message.cancelled) break;
    app.master_scores.push_back(std::move(message));
    app.scores_wake->push(0);
    // The recovery loop blocks on a single wake stream; mirror the token.
    if (app.recovery_mode) app.request_wake->push(0);
  }
}

// ---------------------------------------------------------------------------
// Fault processes: reapers (planned kills) and probes (failure detectors)
// ---------------------------------------------------------------------------

/// Sleeps until the planned kill time and injects a death event into the
/// worker's stream.  The worker acts on it at its next event-loop visit;
/// deaths landing mid-search are handled by the worker itself (partial
/// compute, no score).  Cancelled at teardown if the run ends first.
sim::Process worker_reaper(App& app, mpi::Rank rank, sim::Time kill_at,
                           sim::Timer& timer) {
  timer.arm_at(kill_at);
  if (co_await timer.wait()) {
    sim::Channel<mpi::Message>& events = *app.events.at(rank);
    if (!events.closed())
      events.push(mpi::Message{.source = rank, .tag = kTagDeath});
  }
}

/// Failure detector for one worker: every token in `armed` covers one timer
/// arming by the master.  Expiry injects a synthetic failure notice into
/// the master's request queue (a local decision — no simulated traffic).
sim::Process worker_probe(App& app, mpi::Rank rank) {
  App::ProbeCtl& probe = *app.probes.at(rank);
  while (true) {
    const auto token = co_await probe.armed->pop();
    if (!token) break;  // closed at teardown
    const bool fired = co_await probe.timer->wait();
    if (!fired) continue;  // sign of life (or re-arm) cancelled the wait
    app.master_requests.push_back(
        mpi::Message{.source = rank, .tag = kTagFailure});
    app.request_wake->push(0);
  }
}

// ---------------------------------------------------------------------------
// Master process (Algorithm 1)
// ---------------------------------------------------------------------------

/// One assigned-but-unacknowledged (query, fragment) task.
struct Outstanding {
  std::uint32_t local = 0;     ///< group-local query index
  std::uint32_t query = 0;     ///< global query id
  std::uint32_t fragment = 0;
};

struct MasterState {
  explicit MasterState(sim::Scheduler& scheduler) : pending_writes(scheduler) {}

  std::uint32_t next_query = 0;  ///< local index of the query being assigned
  /// Unassigned fragments of `next_query` (affinity scheduling may pick any).
  std::vector<std::uint32_t> pending_fragments;
  std::uint64_t tasks_assigned = 0;
  std::uint64_t tasks_completed = 0;
  std::uint32_t done_sent = 0;
  /// Master's mirror of each worker's fragment cache (affinity scheduling).
  std::map<mpi::Rank, FragmentCache> worker_caches;
  /// Outstanding nonblocking MW batch writes (mw_nonblocking_io): one
  /// counting latch instead of one heap gate per batch.
  sim::WaitGroup pending_writes;

  /// Per local query: fragments completed and (worker, fragment) pairs.
  std::vector<std::uint32_t> fragments_done;
  std::vector<std::vector<std::pair<mpi::Rank, std::uint32_t>>> contributors;
  /// Next local query awaiting in-order region processing.
  std::uint32_t next_inorder = 0;
  /// Local queries completed but blocked behind an earlier incomplete one.
  std::set<std::uint32_t> completed_out_of_order;

  // ---- Recovery bookkeeping (recovery_mode only). ------------------------
  /// Tasks each worker has been assigned and not yet returned scores for.
  std::map<mpi::Rank, std::vector<Outstanding>> outstanding;
  /// Workers the failure detector declared dead; they get Done on any
  /// further request and are never assigned again.
  std::set<mpi::Rank> retired;
  /// Live workers with an unanswered work request (nothing to hand out when
  /// they asked); unparked when reassigned work appears.
  std::deque<mpi::Rank> parked;
  /// Tasks reclaimed from retired workers, re-issued FIFO before fresh work.
  std::deque<Outstanding> reassign;
  /// Per local query: fragments whose scores were accepted (first-wins
  /// dedup — a reassigned task may complete twice but only one completion
  /// contributes, keeping the output layout overlap-free).
  std::vector<std::set<std::uint32_t>> done_frags;
};

/// Extents (in the group file) of local query `local`'s results produced by
/// one worker, in file order.
std::vector<pfs::Extent> worker_extents(const App& app, std::uint32_t local,
                                        const std::vector<std::uint32_t>& fragments) {
  const QueryWorkload& workload = app.workload.query(app.queries[local]);
  const std::uint64_t base = app.region_base(local);
  std::vector<std::uint32_t> indices;
  for (const std::uint32_t fragment : fragments)
    for (const std::uint32_t index : workload.by_fragment[fragment])
      indices.push_back(index);
  std::sort(indices.begin(), indices.end());
  std::vector<pfs::Extent> extents;
  extents.reserve(indices.size());
  for (const std::uint32_t index : indices) {
    const std::uint64_t offset = base + workload.offsets[index];
    const std::uint64_t length = workload.results[index].bytes;
    if (!extents.empty() && extents.back().end() == offset)
      extents.back().length += length;  // coalesce adjacent results
    else
      extents.push_back(pfs::Extent{offset, length});
  }
  return extents;
}

/// Sends the offset lists (or empty per-query notifications) for a
/// completed query, per strategy/sync mode.  Gather-results bookkeeping has
/// already happened; this is Algorithm 1, step 15.
sim::Task<void> master_dispatch_query(App& app, MasterState& state,
                                      std::uint32_t local) {
  const ModelParams& model = app.config.model;
  if (app.config.strategy == Strategy::MW ||
      app.config.strategy == Strategy::WWFilePerProcess) {
    // MW/file-per-process sync modes still notify workers per query (after
    // the batch boundary, handled by the caller); no offset lists — the
    // master writes itself (MW) or workers append position-free (N-N).
    co_return;
  }
  // Group the query's fragments per contributing worker.
  std::map<mpi::Rank, std::vector<std::uint32_t>> fragments_by_worker;
  for (const auto& [worker, fragment] : state.contributors[local])
    fragments_by_worker[worker].push_back(fragment);

  for (const mpi::Rank worker : app.workers) {
    const auto it = fragments_by_worker.find(worker);
    const bool contributes = it != fragments_by_worker.end();
    if (!contributes && !app.per_query_msgs_to_all()) continue;
    MasterMsg msg;
    msg.kind = MasterMsg::Kind::Offsets;
    msg.query = app.queries[local];
    msg.local_query = local;
    if (contributes) msg.extents = worker_extents(app, local, it->second);
    const std::uint64_t bytes =
        model.control_message_bytes +
        model.bytes_per_offset_entry * msg.extents.size();
    (void)app.comm.isend(app.master, worker, kTagMasterToWorker, bytes,
                         std::move(msg));
  }
  co_return;
}

/// MW: write a batch of completed query regions as one contiguous call.
sim::Task<void> master_write_batch(App& app, std::uint32_t first_local,
                                   std::uint32_t last_local,
                                   bool record_io_phase = true) {
  const std::uint64_t base = app.region_base(first_local);
  const std::uint64_t end =
      app.region_base(last_local) +
      app.workload.query(app.queries[last_local]).total_bytes;
  const sim::Time start = app.scheduler.now();
  co_await app.file->write_at(app.master, base, end - base, first_local);
  if (app.config.sync_after_write) co_await app.file->sync(app.master);
  // Asynchronous (mw_nonblocking_io) writes overlap the master's other
  // phases; only the blocking variant charges the I/O phase here.
  if (record_io_phase)
    app.record_phase(app.master, Phase::Io, start, app.scheduler.now());
  app.rank_stats[app.master].bytes_written += end - base;
  ++app.rank_stats[app.master].writes_issued;
}

/// In MW + sync mode workers still need per-query notifications so they can
/// join the per-batch barrier.
void master_notify_batch(App& app, std::uint32_t first_local,
                         std::uint32_t last_local) {
  for (std::uint32_t local = first_local; local <= last_local; ++local) {
    for (const mpi::Rank worker : app.workers) {
      MasterMsg msg;
      msg.kind = MasterMsg::Kind::Offsets;
      msg.query = app.queries[local];
      msg.local_query = local;
      (void)app.comm.isend(app.master, worker, kTagMasterToWorker,
                           app.config.model.control_message_bytes, msg);
    }
  }
}

sim::Process master_process(App& app) {
  MasterState state{app.scheduler};
  const std::uint32_t queries = app.query_count();
  const std::uint32_t fragments = app.config.workload.fragment_count;
  const std::uint64_t total_tasks =
      static_cast<std::uint64_t>(queries) * fragments;
  state.fragments_done.assign(queries, 0);
  state.contributors.assign(queries, {});
  state.done_frags.assign(queries, {});
  for (const mpi::Rank worker : app.workers)
    state.worker_caches.emplace(worker, FragmentCache(app.cache_capacity()));

  // ---- Setup: create the output file, broadcast input variables. ---------
  {
    const sim::Time start = app.scheduler.now();
    const auto handle = co_await app.fs.create_file(
        app.comm.endpoint_of(app.master),
        "results." + std::to_string(app.master) + ".out");
    mpiio::Hints hints = app.config.hints;
    if (app.config.strategy == Strategy::WWCollList)
      hints.collective_algorithm = mpiio::CollectiveAlgorithm::ListWithSync;
    app.file = std::make_unique<mpiio::File>(app.scheduler, app.network, app.fs,
                                             app.comm, handle, app.workers,
                                             hints);
    if (app.models_database_io()) {
      const auto db_handle = co_await app.fs.create_file(
          app.comm.endpoint_of(app.master),
          "database." + std::to_string(app.master));
      app.database_file = std::make_unique<mpiio::File>(
          app.scheduler, app.network, app.fs, app.comm, db_handle, app.workers,
          mpiio::Hints{});
    }
    if (app.config.strategy == Strategy::WWFilePerProcess) {
      for (const mpi::Rank worker : app.workers) {
        const auto worker_handle = co_await app.fs.create_file(
            app.comm.endpoint_of(app.master),
            "results." + std::to_string(worker) + ".part");
        app.worker_files.emplace(
            worker, std::make_unique<mpiio::File>(
                        app.scheduler, app.network, app.fs, app.comm,
                        worker_handle, std::vector<mpi::Rank>{worker},
                        mpiio::Hints{}));
      }
    }
    for (const mpi::Rank worker : app.workers)
      co_await app.comm.send(app.master, worker, kTagSetup,
                             app.config.model.setup_message_bytes);
    app.record_phase(app.master, Phase::Setup, start, app.scheduler.now());
  }

  const bool sync_mode = app.config.query_sync;
  const Strategy strategy = app.config.strategy;

  // ---- Task source shared by the failure-free and recovery loops. --------
  // Picks the next fresh (query, fragment) for `worker` (with fragment
  // affinity), updating assignment bookkeeping; nullopt when the workload
  // is fully assigned.
  auto fresh_task = [&app, &state, fragments,
                     total_tasks](mpi::Rank worker) -> std::optional<Outstanding> {
    if (state.tasks_assigned >= total_tasks) return std::nullopt;
    if (state.pending_fragments.empty()) {
      state.pending_fragments.resize(fragments);
      for (std::uint32_t f = 0; f < fragments; ++f)
        state.pending_fragments[f] = f;
    }
    // mpiBLAST-style fragment affinity: within the current query, prefer a
    // fragment the requesting worker already has in memory.
    std::size_t pick = 0;
    if (app.config.fragment_affinity && app.models_database_io()) {
      for (std::size_t i = 0; i < state.pending_fragments.size(); ++i) {
        if (state.worker_caches.at(worker).contains(
                state.pending_fragments[i])) {
          pick = i;
          break;
        }
      }
    }
    Outstanding task;
    task.local = state.next_query;
    task.query = app.queries[state.next_query];
    task.fragment = state.pending_fragments[pick];
    state.pending_fragments.erase(state.pending_fragments.begin() +
                                  static_cast<std::ptrdiff_t>(pick));
    if (app.models_database_io())
      (void)state.worker_caches.at(worker).touch(task.fragment);
    if (state.pending_fragments.empty()) ++state.next_query;
    ++state.tasks_assigned;
    return task;
  };

  // ---- Failure-detector helpers (recovery_mode only). --------------------
  auto arm_probe = [&app](mpi::Rank worker) {
    App::ProbeCtl& probe = *app.probes.at(worker);
    probe.timer->arm_in(app.config.fault_detection_timeout);
    probe.armed->push(0);
  };
  auto disarm_probe = [&app](mpi::Rank worker) {
    app.probes.at(worker)->timer->cancel();
  };

  // Algorithm 1, step 10: process one completed score receive — merge it
  // (for MW including the full result payload), then handle any queries
  // that completed, in query order (steps 14–18).
  auto handle_score = [&app, &state, fragments, sync_mode, strategy,
                       &arm_probe, &disarm_probe]() -> sim::Task<void> {
    mpi::Message event = std::move(app.master_scores.front());
    app.master_scores.pop_front();
    S3A_CHECK(event.tag == kTagScores);
    const auto& scores = event.as<ScoresMsg>();
    if (app.recovery_mode) {
      // Sign of life: the worker returned results — clear the matching
      // outstanding entry and re-arm (or disarm) its failure detector.
      auto& owed = state.outstanding[scores.worker];
      const auto it = std::find_if(
          owed.begin(), owed.end(), [&scores](const Outstanding& task) {
            return task.local == scores.local_query &&
                   task.fragment == scores.fragment;
          });
      if (it != owed.end()) owed.erase(it);
      if (!state.retired.contains(scores.worker)) {
        disarm_probe(scores.worker);
        if (!owed.empty()) arm_probe(scores.worker);
      }
    }
    {
      const sim::Time merge_start = app.scheduler.now();
      const auto count = static_cast<sim::Time>(
          app.workload.query(scores.query).by_fragment[scores.fragment].size());
      sim::Time merge_time = count * app.config.model.master_merge_per_entry;
      if (strategy == Strategy::MW) {
        const std::uint64_t payload =
            app.workload.fragment_result_bytes(scores.query, scores.fragment);
        merge_time += static_cast<sim::Time>(
            std::llround(static_cast<double>(payload) *
                         app.config.model.master_result_ns_per_byte));
      }
      co_await app.scheduler.delay(merge_time);
      app.record_phase(app.master, Phase::GatherResults, merge_start,
                       app.scheduler.now());
    }
    if (app.recovery_mode &&
        !state.done_frags[scores.local_query].insert(scores.fragment).second) {
      // A reassigned task completed twice (the original owner was slow, not
      // dead).  The master already paid the merge; the late copy must not
      // contribute — its extents would overlap the first completion's.
      ++app.faults.duplicate_completions;
      co_return;
    }
    state.contributors[scores.local_query].emplace_back(scores.worker,
                                                        scores.fragment);
    ++state.tasks_completed;
    if (++state.fragments_done[scores.local_query] == fragments)
      state.completed_out_of_order.insert(scores.local_query);

    while (state.completed_out_of_order.contains(state.next_inorder)) {
      const std::uint32_t local = state.next_inorder;
      state.completed_out_of_order.erase(local);
      ++state.next_inorder;

      co_await master_dispatch_query(app, state, local);

      const std::uint32_t batch = app.batch_of(local);
      if (local == app.batch_last_query(batch)) {
        const std::uint32_t first = batch * app.config.queries_per_flush;
        if (strategy == Strategy::MW) {
          if (app.config.mw_nonblocking_io) {
            // §2.1 ablation: issue the write asynchronously and keep
            // serving requests; completion is collected at teardown.
            auto writer = [](App& a, std::uint32_t lo, std::uint32_t hi,
                             sim::WaitGroup& done) -> sim::Process {
              co_await master_write_batch(a, lo, hi, /*record_io_phase=*/false);
              done.done();
            };
            state.pending_writes.add();
            app.scheduler.spawn(writer(app, first, local, state.pending_writes));
          } else {
            co_await master_write_batch(app, first, local);
          }
          if (sync_mode) master_notify_batch(app, first, local);
        } else if (strategy == Strategy::WWFilePerProcess && sync_mode) {
          master_notify_batch(app, first, local);
        }
        // §3.3: the query-sync barrier is among the *worker* nodes; the
        // master keeps distributing work.
        app.batch_complete_times.push_back(app.scheduler.now());
      }
    }
  };

  if (!app.recovery_mode) {
    // ---- Failure-free master loop (Algorithm 1, byte-identical to the
    //      pre-fault-subsystem behavior). --------------------------------
    while (true) {
      const bool everything_done = state.tasks_completed == total_tasks &&
                                   state.done_sent == app.nworkers() &&
                                   state.next_inorder == queries;
      if (everything_done) break;

      // ---- Step 3: the master *blocks* receiving work requests and only
      // *tests* score receives — requests are answered first, and the score
      // backlog is drained after each reply (steps 8, 10).
      const bool requests_exhausted = state.done_sent == app.nworkers();
      if (!requests_exhausted) {
        const sim::Time wait_start = app.scheduler.now();
        auto token = co_await app.request_wake->pop();
        S3A_CHECK_MSG(token.has_value(), "master request stream closed early");
        app.record_phase(app.master, Phase::DataDistribution, wait_start,
                         app.scheduler.now());

        // ---- Steps 4-9: assign work or notify completion. ----------------
        S3A_CHECK(!app.master_requests.empty());
        mpi::Message event = std::move(app.master_requests.front());
        app.master_requests.pop_front();
        const mpi::Rank worker = event.source;
        const sim::Time send_start = app.scheduler.now();
        MasterMsg reply;
        if (const auto task = fresh_task(worker)) {
          reply.kind = MasterMsg::Kind::Assign;
          reply.query = task->query;
          reply.local_query = task->local;
          reply.fragment = task->fragment;
        } else {
          reply.kind = MasterMsg::Kind::Done;
          ++state.done_sent;
        }
        co_await app.comm.send(app.master, worker, kTagMasterToWorker,
                               app.config.model.control_message_bytes, reply);
        app.record_phase(app.master, Phase::DataDistribution, send_start,
                         app.scheduler.now());
        // Step 10: after serving the request, drain the completed receives.
        while (!app.master_scores.empty()) co_await handle_score();
      } else {
        // No more requests will come; block on the remaining score receives.
        const sim::Time wait_start = app.scheduler.now();
        auto token = co_await app.scores_wake->pop();
        S3A_CHECK_MSG(token.has_value(), "master score stream closed early");
        app.record_phase(app.master, Phase::GatherResults, wait_start,
                         app.scheduler.now());
        // The token may be stale if an earlier drain already consumed the
        // message; every queued message is guaranteed a token, so just skip.
        if (!app.master_scores.empty()) co_await handle_score();
      }
    }
  } else {
    // ---- Recovery-capable master loop. ---------------------------------
    // Same protocol, plus: every assignment arms the worker's failure
    // detector; timeouts retire the worker and requeue its outstanding
    // tasks; late duplicate completions are discarded (handle_score).
    // Completion is judged by results, not by Done handshakes — retired
    // workers may never request again.

    // Next task for `worker`: reclaimed tasks first (FIFO), then fresh.
    auto pop_task = [&app, &state,
                     &fresh_task](mpi::Rank worker) -> std::optional<Outstanding> {
      if (!state.reassign.empty()) {
        const Outstanding task = state.reassign.front();
        state.reassign.pop_front();
        if (app.models_database_io())
          (void)state.worker_caches.at(worker).touch(task.fragment);
        return task;
      }
      return fresh_task(worker);
    };

    auto assign_task = [&app, &state, &arm_probe](
                           mpi::Rank worker,
                           Outstanding task) -> sim::Task<void> {
      state.outstanding[worker].push_back(task);
      arm_probe(worker);  // arming cancels any previous deadline
      MasterMsg reply;
      reply.kind = MasterMsg::Kind::Assign;
      reply.query = task.query;
      reply.local_query = task.local;
      reply.fragment = task.fragment;
      const sim::Time send_start = app.scheduler.now();
      co_await app.comm.send(app.master, worker, kTagMasterToWorker,
                             app.config.model.control_message_bytes, reply);
      app.record_phase(app.master, Phase::DataDistribution, send_start,
                       app.scheduler.now());
    };

    auto serve_request = [&app, &state, &pop_task,
                          &assign_task](mpi::Rank worker) -> sim::Task<void> {
      if (state.retired.contains(worker)) {
        // A worker retired by timeout that turns out to be alive (e.g. its
        // scores were dropped): wave it off.
        MasterMsg reply;
        reply.kind = MasterMsg::Kind::Done;
        const sim::Time send_start = app.scheduler.now();
        co_await app.comm.send(app.master, worker, kTagMasterToWorker,
                               app.config.model.control_message_bytes, reply);
        app.record_phase(app.master, Phase::DataDistribution, send_start,
                         app.scheduler.now());
        co_return;
      }
      if (const auto task = pop_task(worker)) {
        co_await assign_task(worker, *task);
      } else {
        // Nothing to hand out right now; the request stays unanswered until
        // reassigned work appears or the run finishes (Finish releases it).
        state.parked.push_back(worker);
      }
    };

    auto handle_failure = [&app, &state, &arm_probe, &pop_task,
                           &assign_task](mpi::Rank worker) -> sim::Task<void> {
      if (state.retired.contains(worker)) co_return;
      auto& owed = state.outstanding[worker];
      if (owed.empty()) co_return;  // everything accounted for; stale expiry
      // A score from this worker may already be queued (in-flight when the
      // timer expired): treat it as a sign of life and give it another
      // detection window instead of retiring.
      for (const mpi::Message& queued : app.master_scores) {
        if (queued.as<ScoresMsg>().worker == worker) {
          arm_probe(worker);
          co_return;
        }
      }
      // Collective strategies (§2.3): a worker whose owed tasks all belong
      // to batches past the flush frontier is defer-blocked behind the
      // pending collective write — it cannot produce a score no matter how
      // healthy it is.  Silence is not evidence of death there; keep
      // polling until its work reaches the frontier.
      if (is_collective(app.config.strategy) &&
          state.next_inorder < app.query_count()) {
        const std::uint32_t frontier = app.batch_of(state.next_inorder);
        const bool frontier_work =
            std::any_of(owed.begin(), owed.end(),
                        [&app, frontier](const Outstanding& task) {
                          return app.batch_of(task.local) <= frontier;
                        });
        if (!frontier_work) {
          arm_probe(worker);
          co_return;
        }
      }
      // Retire the worker and reclaim everything it still owes.
      state.retired.insert(worker);
      ++app.faults.workers_retired;
      if (app.trace_log != nullptr)
        app.trace_log->event(app.master, "Retire", app.scheduler.now());
      app.faults.tasks_reassigned += owed.size();
      for (const Outstanding& task : owed) state.reassign.push_back(task);
      owed.clear();
      S3A_REQUIRE_MSG(state.retired.size() < app.workers.size(),
                      "unrecoverable: every worker of a group failed");
      // If the retiree was parked (scores dropped, then asked for work we
      // did not have), release it so it can reach the final barrier.
      const auto parked_it =
          std::find(state.parked.begin(), state.parked.end(), worker);
      if (parked_it != state.parked.end()) {
        state.parked.erase(parked_it);
        MasterMsg reply;
        reply.kind = MasterMsg::Kind::Done;
        co_await app.comm.send(app.master, worker, kTagMasterToWorker,
                               app.config.model.control_message_bytes, reply);
      }
      // Feed the reclaimed tasks to survivors that are waiting for work.
      while (!state.reassign.empty() && !state.parked.empty()) {
        const mpi::Rank survivor = state.parked.front();
        state.parked.pop_front();
        const auto task = pop_task(survivor);
        S3A_CHECK(task.has_value());
        co_await assign_task(survivor, *task);
      }
      // Collective strategies: the survivors may all be defer-blocked (no
      // parked requests, and none coming — a deferred worker only requests
      // again once the stuck collective completes).  Push the reclaimed
      // frontier tasks to them unsolicited; they are executable immediately
      // and their scores unstick the batch.  Reclaimed tasks for later
      // batches stay queued for the request path — delivering those
      // unsolicited would just defer at the receiver too.
      if (is_collective(app.config.strategy) && !state.reassign.empty() &&
          state.next_inorder < app.query_count()) {
        const std::uint32_t frontier = app.batch_of(state.next_inorder);
        std::vector<Outstanding> urgent;
        for (auto it = state.reassign.begin(); it != state.reassign.end();) {
          if (app.batch_of(it->local) <= frontier) {
            urgent.push_back(*it);
            it = state.reassign.erase(it);
          } else {
            ++it;
          }
        }
        std::size_t cursor = 0;
        for (const Outstanding& task : urgent) {
          mpi::Rank survivor;  // round-robin over non-retired workers; the
          do {                 // REQUIRE above guarantees one exists
            survivor = app.workers[cursor % app.workers.size()];
            ++cursor;
          } while (state.retired.contains(survivor));
          if (app.models_database_io())
            (void)state.worker_caches.at(survivor).touch(task.fragment);
          co_await assign_task(survivor, task);
        }
      }
    };

    while (!(state.tasks_completed == total_tasks &&
             state.next_inorder == queries)) {
      const sim::Time wait_start = app.scheduler.now();
      auto token = co_await app.request_wake->pop();
      S3A_CHECK_MSG(token.has_value(), "master wake stream closed early");
      app.record_phase(app.master, Phase::DataDistribution, wait_start,
                       app.scheduler.now());
      // Requests (and failure notices) before scores, as in Algorithm 1.
      while (!app.master_requests.empty()) {
        mpi::Message event = std::move(app.master_requests.front());
        app.master_requests.pop_front();
        if (event.tag == kTagFailure) {
          co_await handle_failure(event.source);
        } else {
          S3A_CHECK(event.tag == kTagRequest);
          co_await serve_request(event.source);
        }
      }
      while (!app.master_scores.empty()) {
        co_await handle_score();
        if (!app.master_requests.empty()) break;  // requests take priority
      }
    }
  }

  // ---- Teardown: drain async writes, tell every worker the stream is
  //      over, then sync.  (The old per-gate drain recorded one Io span per
  //      batch; those spans were contiguous, so the single WaitGroup span
  //      charges the identical total.) --------------------------------------
  if (state.pending_writes.pending() > 0) {
    const sim::Time io_start = app.scheduler.now();
    co_await state.pending_writes.wait();
    app.record_phase(app.master, Phase::Io, io_start, app.scheduler.now());
  }
  if (strategy == Strategy::WWFilePerProcess) {
    // N-N merge: read every worker's private file back and list-write its
    // results into their sorted positions in the final file.
    const sim::Time merge_start = app.scheduler.now();
    for (const mpi::Rank worker : app.workers) {
      std::vector<pfs::Extent> extents;
      for (std::uint32_t local = 0; local < queries; ++local) {
        std::vector<std::uint32_t> worker_fragments;
        for (const auto& [contributor, fragment] : state.contributors[local])
          if (contributor == worker) worker_fragments.push_back(fragment);
        if (worker_fragments.empty()) continue;
        const auto query_extents = worker_extents(app, local, worker_fragments);
        extents.insert(extents.end(), query_extents.begin(),
                       query_extents.end());
      }
      std::uint64_t bytes = 0;
      for (const pfs::Extent& extent : extents) bytes += extent.length;
      if (bytes == 0) continue;
      co_await app.worker_files.at(worker)->read_at(app.master, 0, bytes);
      co_await app.file->write_noncontig(app.master, std::move(extents),
                                         mpiio::NoncontigMethod::ListIo);
      app.rank_stats[app.master].bytes_written += bytes;
      ++app.rank_stats[app.master].writes_issued;
    }
    if (app.config.sync_after_write) co_await app.file->sync(app.master);
    app.record_phase(app.master, Phase::Io, merge_start, app.scheduler.now());
  }
  for (const mpi::Rank worker : app.workers) {
    MasterMsg msg;
    msg.kind = MasterMsg::Kind::Finish;
    (void)app.comm.isend(app.master, worker, kTagMasterToWorker,
                         app.config.model.control_message_bytes, msg);
  }
  {
    const sim::Time barrier_start = app.scheduler.now();
    co_await app.comm.barrier();
    app.record_phase(app.master, Phase::Sync, barrier_start,
                     app.scheduler.now());
  }
  if (app.recovery_mode) {
    // ---- Gap repair: workers that died after being sent offset lists but
    // before writing leave holes in the group file.  Every surviving
    // writer has flushed by now (the barrier above), so whatever is still
    // uncovered is genuinely lost — the master regenerates it from the
    // gathered scores and list-writes it into place.  This runs after the
    // barrier precisely so it cannot overlap a late survivor flush.
    const std::vector<pfs::Extent> holes =
        app.fs.image(app.file->handle()).gaps(app.group_output_bytes);
    if (!holes.empty()) {
      const sim::Time repair_start = app.scheduler.now();
      std::uint64_t bytes = 0;
      for (const pfs::Extent& hole : holes) bytes += hole.length;
      // Reformatting the lost results costs the same per-byte handling as
      // MW's centralized result processing.
      co_await app.scheduler.delay(static_cast<sim::Time>(
          std::llround(static_cast<double>(bytes) *
                       app.config.model.master_result_ns_per_byte)));
      co_await app.file->write_noncontig(app.master, holes,
                                         mpiio::NoncontigMethod::ListIo);
      if (app.config.sync_after_write) co_await app.file->sync(app.master);
      app.record_phase(app.master, Phase::Io, repair_start,
                       app.scheduler.now());
      if (app.trace_log != nullptr)
        app.trace_log->record(app.master, "Recovery", repair_start,
                              app.scheduler.now());
      app.faults.repaired_bytes += bytes;
      app.rank_stats[app.master].bytes_written += bytes;
      ++app.rank_stats[app.master].writes_issued;
    }
    // Disarm the failure detectors and any reapers that never fired, so
    // their queued deadlines are discarded without advancing the clock.
    for (auto& [rank, probe] : app.probes) {
      probe->timer->cancel();
      probe->armed->close();
    }
    for (const auto& timer : app.reaper_timers) timer->cancel();
  }
  // The pumps run open-ended; tear down their posted receives (MPI_Cancel)
  // so the simulation can quiesce.
  app.comm.cancel_posted(app.master);
  app.rank_stats[app.master].wall = app.scheduler.now();
  app.rank_stats[app.master].phases.finish(app.rank_stats[app.master].wall);
}

// ---------------------------------------------------------------------------
// Worker process (Algorithm 2)
// ---------------------------------------------------------------------------

struct WorkerState {
  bool done = false;                ///< master said no more tasks
  bool awaiting_response = false;   ///< a work request is outstanding
  std::vector<pfs::Extent> pending; ///< extents accumulated for current flush
  std::uint32_t pending_batch = 0;  ///< batch the pending extents belong to
  std::uint32_t batch_msgs = 0;     ///< per-query messages seen this batch
  std::uint32_t current_batch = 0;  ///< next batch expected (per-query mode)
  std::set<std::uint32_t> merged_queries;  ///< queries with previous results
  std::uint64_t own_file_cursor = 0;  ///< append position (WW-FilePerProc)
  /// Score messages initiated so far (drives the deterministic per-send
  /// drop hash; counts dropped sends too).
  std::uint64_t scores_sent = 0;
  /// WW-Coll only (§2.3): assignments for upcoming queries that cannot
  /// start until the pending collective I/O completes.  Each entry stores
  /// (local query, global query, fragment).  Usually at most one; the
  /// master's recovery reassignment can push a frontier task unsolicited
  /// while one is held, whose follow-up request may defer a second.
  std::deque<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> deferred;
  /// Database fragments held in memory (when database I/O is modeled).
  FragmentCache cache{0};
};

/// Injected score-message latency: holds the payload back before it enters
/// the network (the isend itself then models the transfer as usual).
sim::Process delayed_score_send(App& app, mpi::Rank rank, sim::Time by,
                                std::uint64_t bytes, ScoresMsg scores) {
  co_await app.scheduler.delay(by);
  (void)app.comm.isend(rank, app.master, kTagScores, bytes, scores);
}

/// Writes the worker's accumulated extents with the strategy's method.
sim::Task<void> worker_flush(App& app, mpi::Rank rank, WorkerState& state,
                             std::uint32_t query_tag) {
  const Strategy strategy = app.config.strategy;
  const sim::Time start = app.scheduler.now();
  std::uint64_t bytes = 0;
  for (const pfs::Extent& extent : state.pending) bytes += extent.length;

  if (is_collective(strategy)) {
    co_await app.file->write_at_all(rank, std::move(state.pending), query_tag);
    if (app.config.sync_after_write) co_await app.file->sync(rank);
  } else if (!state.pending.empty()) {
    const auto method = strategy == Strategy::WWPosix
                            ? mpiio::NoncontigMethod::Posix
                            : mpiio::NoncontigMethod::ListIo;
    co_await app.file->write_noncontig(rank, std::move(state.pending), method,
                                       query_tag);
    if (app.config.sync_after_write) co_await app.file->sync(rank);
  }
  state.pending.clear();
  app.record_phase(rank, Phase::Io, start, app.scheduler.now());
  app.rank_stats[rank].bytes_written += bytes;
  if (bytes > 0 || is_collective(strategy)) ++app.rank_stats[rank].writes_issued;

  if (app.config.query_sync) {
    const sim::Time barrier_start = app.scheduler.now();
    co_await app.query_barrier.arrive_and_wait();
    app.record_phase(rank, Phase::Sync, barrier_start, app.scheduler.now());
  }
}

sim::Process worker_process(App& app, mpi::Rank rank) {
  WorkerState state;
  state.cache = FragmentCache(app.cache_capacity());
  const ModelParams& model = app.config.model;
  const sim::Time death_at = app.config.fault.kill_time(rank);

  // Fail-stop: leave every synchronization structure so the survivors can
  // proceed (ULFM-style shrink), then cease to exist.  Called either from
  // the event loop (a reaper's death notice) or mid-search.
  auto die = [&app, rank]() {
    app.dead.insert(rank);
    app.death_times[rank] = app.scheduler.now();
    ++app.faults.workers_died;
    app.query_barrier.leave();
    app.comm.barrier_leave();
    if (app.file != nullptr && is_collective(app.config.strategy))
      app.file->deactivate(rank);
    app.rank_stats[rank].wall = app.scheduler.now();
    app.rank_stats[rank].phases.finish(app.rank_stats[rank].wall);
  };

  // Steps 6-10 of Algorithm 2 for one (query, fragment) assignment:
  // search, merge, ship scores (and results for MW), request the next task.
  // Returns true if the worker's planned death interrupted the search (the
  // caller must then die() and stop).
  auto process_assignment =
      [&app, &state, &model, rank,
       death_at](std::uint32_t local, std::uint32_t query,
                 std::uint32_t fragment) -> sim::Task<bool> {
    // ---- Database staging: stream the fragment in unless cached. -------
    if (app.models_database_io()) {
      if (state.cache.touch(fragment)) {
        ++app.rank_stats[rank].fragment_hits;
      } else {
        ++app.rank_stats[rank].fragment_loads;
        const sim::Time start = app.scheduler.now();
        co_await app.database_file->read_at(
            rank, static_cast<std::uint64_t>(fragment) * app.fragment_bytes(),
            app.fragment_bytes());
        app.record_phase(rank, Phase::Io, start, app.scheduler.now());
      }
    }

    // ---- Step 6: the search itself. ------------------------------------
    const sim::Time search_time = app.compute_time(query, fragment, rank);
    if (death_at != fault::kNever &&
        app.scheduler.now() + search_time >= death_at) {
      // The planned kill lands inside this search: burn the partial
      // compute, produce nothing.  The master's timeout reclaims the task.
      const sim::Time partial =
          death_at > app.scheduler.now() ? death_at - app.scheduler.now() : 0;
      S3A_PHASE(app, rank, Phase::Compute,
                co_await app.scheduler.delay(partial));
      co_return true;
    }
    S3A_PHASE(app, rank, Phase::Compute,
              co_await app.scheduler.delay(search_time));
    ++app.rank_stats[rank].tasks_processed;

    const std::uint64_t result_bytes =
        app.workload.fragment_result_bytes(query, fragment);
    const std::uint64_t count =
        app.workload.query(query).by_fragment[fragment].size();

    // ---- Step 8: merge with previous results for this query. -----------
    if (worker_writes(app.config.strategy)) {
      if (!state.merged_queries.insert(query).second) {
        const auto merge_ns = static_cast<sim::Time>(std::llround(
            static_cast<double>(result_bytes) * model.merge_ns_per_byte));
        S3A_PHASE(app, rank, Phase::MergeResults,
                  co_await app.scheduler.delay(merge_ns));
      }
    }

    // ---- Step 10: send scores (and results if MW) to the master. -------
    {
      const sim::Time start = app.scheduler.now();
      std::uint64_t bytes =
          model.control_message_bytes + count * model.bytes_per_score_entry;
      if (app.config.strategy == Strategy::MW) bytes += result_bytes;
      ScoresMsg scores{query, local, fragment, rank};
      // Injected message faults: a deterministic per-send hash decides
      // drops (same seed + same plan ⇒ same losses); delays hold the
      // message back before it enters the network.
      const double drop_p =
          app.config.fault.drop_probability(rank, app.scheduler.now());
      bool dropped = false;
      if (drop_p > 0.0) {
        util::Xoshiro256 rng(util::hash_combine(
            util::hash_combine(app.config.workload.seed ^ 0x5c0fed70ULL, rank),
            state.scores_sent));
        dropped = rng.uniform() < drop_p;
      }
      ++state.scores_sent;
      if (dropped) {
        ++app.faults.scores_dropped;
      } else if (const sim::Time hold =
                     app.config.fault.score_delay(rank, app.scheduler.now());
                 hold > 0) {
        app.scheduler.spawn(delayed_score_send(app, rank, hold, bytes, scores));
      } else {
        (void)app.comm.isend(rank, app.master, kTagScores, bytes, scores);
      }
      // MPI_Isend initiation cost; the transfer itself is asynchronous.
      co_await app.scheduler.delay(model.network.per_message_overhead);
      app.record_phase(rank, Phase::GatherResults, start, app.scheduler.now());
    }

    // ---- N-N extension: append results to the private file immediately —
    // contiguous, position-free, no offset list to wait for. --------------
    if (app.config.strategy == Strategy::WWFilePerProcess && result_bytes > 0) {
      const sim::Time start = app.scheduler.now();
      mpiio::File& own = *app.worker_files.at(rank);
      co_await own.write_at(rank, state.own_file_cursor, result_bytes, query);
      state.own_file_cursor += result_bytes;
      if (app.config.sync_after_write) co_await own.sync(rank);
      app.record_phase(rank, Phase::Io, start, app.scheduler.now());
      app.rank_stats[rank].bytes_written += result_bytes;
      ++app.rank_stats[rank].writes_issued;
    }

    // ---- Step 3 again: request the next task. ---------------------------
    {
      const sim::Time start = app.scheduler.now();
      co_await app.comm.send(rank, app.master, kTagRequest,
                             model.control_message_bytes);
      state.awaiting_response = true;
      app.record_phase(rank, Phase::DataDistribution, start,
                       app.scheduler.now());
    }
    co_return false;
  };

  // ---- Step 1: receive input variables. ----------------------------------
  {
    const sim::Time start = app.scheduler.now();
    (void)co_await app.comm.recv(rank, app.master, kTagSetup);
    app.record_phase(rank, Phase::Setup, start, app.scheduler.now());
  }

  // First work request.
  {
    const sim::Time start = app.scheduler.now();
    co_await app.comm.send(rank, app.master, kTagRequest,
                           model.control_message_bytes);
    state.awaiting_response = true;
    app.record_phase(rank, Phase::DataDistribution, start, app.scheduler.now());
  }

  while (true) {
    const sim::Time wait_start = app.scheduler.now();
    auto event = co_await app.events.at(rank)->pop();
    const sim::Time wait_end = app.scheduler.now();
    if (!event) break;  // stream closed right after Finish
    if (event->tag == kTagDeath) {
      die();
      co_return;
    }
    const auto& msg = event->as<MasterMsg>();

    switch (msg.kind) {
      case MasterMsg::Kind::Assign: {
        app.record_phase(rank, Phase::DataDistribution, wait_start, wait_end);
        state.awaiting_response = false;
        if (is_collective(app.config.strategy) &&
            app.batch_of(msg.local_query) > state.current_batch) {
          // §2.3: collective I/O blocks the process, so an assignment for an
          // upcoming query cannot start until the pending collective write
          // completes.  Hold it; the flush handler resumes it.
          state.deferred.emplace_back(msg.local_query, msg.query, msg.fragment);
        } else {
          if (co_await process_assignment(msg.local_query, msg.query,
                                          msg.fragment)) {
            die();
            co_return;
          }
        }
        break;
      }

      case MasterMsg::Kind::Done: {
        app.record_phase(rank, Phase::DataDistribution, wait_start, wait_end);
        state.awaiting_response = false;
        state.done = true;
        break;
      }

      case MasterMsg::Kind::Offsets: {
        // Waiting time while a work request is outstanding — or while an
        // assignment is stalled behind a pending collective (§4: "wasting
        // time, which shows up in the data distribution time") — counts as
        // data distribution; afterwards it is unattributed (→ Other).
        if (state.awaiting_response || !state.deferred.empty())
          app.record_phase(rank, Phase::DataDistribution, wait_start, wait_end);

        if (app.per_query_msgs_to_all()) {
          // One message per query, for everyone: flush on batch boundary.
          state.pending.insert(state.pending.end(), msg.extents.begin(),
                               msg.extents.end());
          ++state.batch_msgs;
          const std::uint32_t batch = app.batch_of(msg.local_query);
          S3A_CHECK_MSG(batch == state.current_batch,
                        "per-query offset messages out of order");
          const std::uint32_t batch_first =
              batch * app.config.queries_per_flush;
          const std::uint32_t batch_size =
              app.batch_last_query(batch) - batch_first + 1;
          if (state.batch_msgs == batch_size) {
            state.batch_msgs = 0;
            ++state.current_batch;
            if (app.config.strategy == Strategy::MW ||
                app.config.strategy == Strategy::WWFilePerProcess) {
              state.pending.clear();  // notification only; nothing to place
              if (app.config.query_sync) {
                const sim::Time start = app.scheduler.now();
                co_await app.query_barrier.arrive_and_wait();
                app.record_phase(rank, Phase::Sync, start, app.scheduler.now());
              }
            } else {
              co_await worker_flush(app, rank, state, msg.local_query);
            }
            // Resume assignments that were blocked on this collective.
            // Deferred entries are not necessarily batch-ordered (a
            // reclaimed task for an earlier query can arrive after a fresh
            // one for a later query), so scan rather than pop the front.
            bool progressed = true;
            while (progressed) {
              progressed = false;
              for (auto it = state.deferred.begin(); it != state.deferred.end();
                   ++it) {
                if (app.batch_of(std::get<0>(*it)) > state.current_batch)
                  continue;
                const auto [local, query, fragment] = *it;
                state.deferred.erase(it);
                if (co_await process_assignment(local, query, fragment)) {
                  die();
                  co_return;
                }
                progressed = true;
                break;  // the erase invalidated the iterator; rescan
              }
            }
          }
        } else {
          // Contributor-only mode: flush when the batch boundary is crossed.
          const std::uint32_t batch = app.batch_of(msg.local_query);
          if (!state.pending.empty() && batch != state.pending_batch)
            co_await worker_flush(app, rank, state, msg.local_query);
          state.pending_batch = batch;
          state.pending.insert(state.pending.end(), msg.extents.begin(),
                               msg.extents.end());
          if (app.config.queries_per_flush == 1)
            co_await worker_flush(app, rank, state, msg.local_query);
        }
        break;
      }

      case MasterMsg::Kind::Finish: {
        if (!state.pending.empty())
          co_await worker_flush(app, rank, state, app.query_count() - 1);
        break;
      }
    }
    if (msg.kind == MasterMsg::Kind::Finish) break;
  }

  // ---- Final synchronization (Sync phase). -------------------------------
  {
    const sim::Time start = app.scheduler.now();
    co_await app.comm.barrier();
    app.record_phase(rank, Phase::Sync, start, app.scheduler.now());
  }
  app.rank_stats[rank].wall = app.scheduler.now();
  app.rank_stats[rank].phases.finish(app.rank_stats[rank].wall);
}

/// Spawns one group's master, workers, pumps, and (under a fault plan) the
/// per-worker reapers and failure detectors.
void launch_group(App& app) {
  app.scheduler.spawn(master_process(app));
  app.scheduler.spawn(master_request_pump(app));
  app.scheduler.spawn(master_scores_pump(app));
  for (const mpi::Rank rank : app.workers) {
    app.scheduler.spawn(worker_process(app, rank));
    app.scheduler.spawn(worker_stream_pump(app, rank));
    if (app.recovery_mode) {
      app.scheduler.spawn(worker_probe(app, rank));
      const sim::Time kill_at = app.config.fault.kill_time(rank);
      if (kill_at != fault::kNever) {
        app.reaper_timers.push_back(
            std::make_unique<sim::Timer>(app.scheduler));
        app.scheduler.spawn(
            worker_reaper(app, rank, kill_at, *app.reaper_timers.back()));
      }
    }
  }
}

/// Rejects fault plans that name ranks outside the worker set: masters are
/// single points of failure by design (the paper's model), and a fault
/// against a nonexistent rank is a spec typo the user should hear about.
/// Called before the World is built — spawned server processes would
/// outlive a throwing constructor path.
void validate_fault_plan(const SimConfig& config,
                         const std::set<mpi::Rank>& valid) {
  const auto check = [&valid](std::uint32_t rank) {
    S3A_REQUIRE_MSG(valid.contains(rank),
                    "fault plan names a rank that is not a worker");
  };
  for (const fault::WorkerKill& kill : config.fault.kills) check(kill.rank);
  for (const fault::WorkerSlow& slow : config.fault.slowdowns) check(slow.rank);
  for (const fault::ScoreDelay& delay : config.fault.delays) check(delay.rank);
  for (const fault::ScoreDrop& drop : config.fault.drops) check(drop.rank);
}

/// Publishes every layer's end-of-run aggregates into the registry under
/// the stable dotted names of the docs/OBSERVABILITY.md catalog.  Counters
/// *add* (so a crash+resume invocation accumulates across its runs);
/// gauges describe the whole invocation so far.  The live histograms
/// ("pfs.*.service_seconds", "mpi.message.*", "sim.sched.*") were filled
/// during the run by the observer bridge and scheduler profiler.
void publish_metrics(World& world,
                     const std::vector<std::unique_ptr<App>>& groups,
                     const RunStats& stats,
                     const pfs::ServerStats& fs_total) {
  obs::Registry& registry = *world.metrics;

  // core.* — application-level outcome.
  registry.gauge("core.wall_seconds").add(stats.wall_seconds);
  registry.counter("core.output_bytes").add(stats.output_bytes);
  registry.counter("core.db_bytes_read").add(stats.db_bytes_read);
  registry.gauge("core.file_exact").set(stats.file_exact ? 1.0 : 0.0);
  std::uint64_t tasks = 0;
  std::uint64_t fragment_loads = 0;
  std::uint64_t fragment_hits = 0;
  for (const RankStats& rank : stats.ranks) {
    tasks += rank.tasks_processed;
    fragment_loads += rank.fragment_loads;
    fragment_hits += rank.fragment_hits;
  }
  registry.counter("core.tasks_processed").add(tasks);
  registry.counter("core.fragment_loads").add(fragment_loads);
  registry.counter("core.fragment_hits").add(fragment_hits);
  for (const Phase phase : all_phases()) {
    // "Data Distribution" -> data_distribution, "I/O" -> io: dotted metric
    // names stay lowercase [a-z0-9_].
    std::string key;
    for (const char c : std::string_view(phase_name(phase))) {
      if (std::isalnum(static_cast<unsigned char>(c)))
        key += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      else if (c == ' ')
        key += '_';
    }
    registry.gauge("core.phase." + key + "_seconds")
        .add(stats.worker_mean_seconds(phase));
  }

  // sim.* — DES-kernel totals (the profiler's histograms ride alongside).
  registry.counter("sim.sched.events")
      .add(world.scheduler.events_processed());
  registry.counter("sim.sched.finished_processes")
      .add(world.scheduler.finished_processes());
  registry.gauge("sim.sched.cancel_slots")
      .set(static_cast<double>(world.scheduler.cancel_slots_allocated()));

  // pfs.* — the per-server counters, aggregated (ServerStats-style
  // hand-aggregation now feeds the registry instead of ad-hoc callers).
  registry.counter("pfs.write.requests").add(fs_total.requests);
  registry.counter("pfs.write.pairs").add(fs_total.pairs);
  registry.counter("pfs.write.bytes").add(fs_total.bytes);
  registry.counter("pfs.read.requests").add(fs_total.reads);
  registry.counter("pfs.read.bytes").add(fs_total.read_bytes);
  registry.counter("pfs.sync.requests").add(fs_total.syncs);
  registry.gauge("pfs.busy_seconds").add(sim::to_seconds(fs_total.busy));

  // net.* — NIC totals over every endpoint (ranks and servers).
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  sim::Time tx_busy = 0;
  sim::Time rx_busy = 0;
  for (std::uint32_t id = 0; id < world.network.endpoint_count(); ++id) {
    const net::EndpointCounters& counters = world.network.counters(id);
    sent += counters.messages_sent;
    received += counters.messages_received;
    bytes_sent += counters.bytes_sent;
    bytes_received += counters.bytes_received;
    tx_busy += counters.tx_busy;
    rx_busy += counters.rx_busy;
  }
  registry.counter("net.messages_sent").add(sent);
  registry.counter("net.messages_received").add(received);
  registry.counter("net.bytes_sent").add(bytes_sent);
  registry.counter("net.bytes_received").add(bytes_received);
  registry.gauge("net.tx_busy_seconds").add(sim::to_seconds(tx_busy));
  registry.gauge("net.rx_busy_seconds").add(sim::to_seconds(rx_busy));

  // mpiio.* — collective stall, summed over every file of every group.
  sim::Time collective_wait = 0;
  for (const auto& app : groups) {
    if (app->file) collective_wait += app->file->total_collective_wait();
    if (app->database_file)
      collective_wait += app->database_file->total_collective_wait();
    for (const auto& [rank, file] : app->worker_files)
      collective_wait += file->total_collective_wait();
  }
  registry.gauge("mpiio.collective_wait_seconds")
      .add(sim::to_seconds(collective_wait));

  // fault.* — recovery-subsystem outcome.
  registry.counter("fault.workers_died").add(stats.faults.workers_died);
  registry.counter("fault.workers_retired").add(stats.faults.workers_retired);
  registry.counter("fault.tasks_reassigned")
      .add(stats.faults.tasks_reassigned);
  registry.counter("fault.duplicate_completions")
      .add(stats.faults.duplicate_completions);
  registry.counter("fault.scores_dropped").add(stats.faults.scores_dropped);
  registry.counter("fault.repaired_bytes").add(stats.faults.repaired_bytes);

  // trace.* — the drop counter is incremented live via
  // TraceLog::attach_registry; materialize it here so drop-free (or
  // trace-less) runs still carry an explicit zero in the manifest.
  registry.counter("trace.intervals_dropped").add(0);
}

/// Collects run-wide statistics after the scheduler has drained.
RunStats collect_stats(World& world, const std::vector<std::unique_ptr<App>>& groups) {
  RunStats stats;
  stats.strategy = world.config.strategy;
  stats.nprocs = static_cast<std::uint32_t>(world.rank_stats.size());
  stats.query_sync = world.config.query_sync;
  stats.compute_speed = world.config.compute_speed;
  stats.groups = static_cast<std::uint32_t>(groups.size());
  stats.wall_seconds = sim::to_seconds(world.scheduler.now());
  stats.events = world.scheduler.events_processed();
  stats.ranks = std::move(world.rank_stats);

  // Expected output = the sum of the groups' regions (equals the workload
  // total for full runs; smaller for a resumed tail over a query subset).
  stats.output_bytes = 0;
  stats.file_exact = true;
  for (const auto& app : groups) {
    stats.output_bytes += app->group_output_bytes;
    const pfs::FileImage& image = world.fs.image(app->file->handle());
    stats.bytes_covered += image.covered_bytes();
    stats.overlap_count += image.overlap_count();
    if (!image.covers_exactly(app->group_output_bytes)) stats.file_exact = false;
    if (app->database_file)
      stats.db_bytes_read += world.fs.bytes_read(app->database_file->handle());

    stats.faults.workers_died += app->faults.workers_died;
    stats.faults.workers_retired += app->faults.workers_retired;
    stats.faults.tasks_reassigned += app->faults.tasks_reassigned;
    stats.faults.duplicate_completions += app->faults.duplicate_completions;
    stats.faults.scores_dropped += app->faults.scores_dropped;
    stats.faults.repaired_bytes += app->faults.repaired_bytes;
    for (const sim::Time at : app->batch_complete_times)
      stats.batch_complete_seconds.push_back(sim::to_seconds(at));
    if (world.trace_log != nullptr) {
      for (const auto& [rank, at] : app->death_times)
        world.trace_log->record(rank, "Dead", at, world.scheduler.now());
    }
  }
  std::sort(stats.batch_complete_seconds.begin(),
            stats.batch_complete_seconds.end());
  if (stats.bytes_covered != stats.output_bytes) stats.file_exact = false;

  const pfs::ServerStats fs_total = world.fs.aggregate_stats();
  stats.fs.server_requests = fs_total.requests;
  stats.fs.server_pairs = fs_total.pairs;
  stats.fs.server_bytes = fs_total.bytes;
  stats.fs.server_syncs = fs_total.syncs;
  stats.fs.server_busy_seconds = sim::to_seconds(fs_total.busy);

  if (world.metrics != nullptr)
    publish_metrics(world, groups, stats, fs_total);

  S3A_LOG_INFO(stats.summary());
  return stats;
}

}  // namespace

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

RunStats run_simulation(const SimConfig& config, trace::TraceLog* trace_log) {
  return run_simulation(config, Observability{trace_log, nullptr});
}

RunStats run_simulation(const SimConfig& config, const Observability& observe) {
  S3A_REQUIRE_MSG(config.nprocs >= 2, "need a master and at least one worker");
  std::vector<mpi::Rank> workers;
  for (mpi::Rank rank = 1; rank < config.nprocs; ++rank)
    workers.push_back(rank);
  validate_fault_plan(config, {workers.begin(), workers.end()});

  World world(config, config.nprocs);
  world.attach_observability(observe);
  std::vector<std::uint32_t> queries;
  for (std::uint32_t q = 0; q < config.workload.query_count; ++q)
    queries.push_back(q);

  std::vector<std::unique_ptr<App>> groups;
  groups.push_back(
      std::make_unique<App>(world, 0, std::move(workers), std::move(queries)));
  groups.back()->trace_log = observe.trace_log;
  launch_group(*groups.back());

  world.scheduler.run();
  world.fs.shutdown();
  world.scheduler.run();
  S3A_CHECK_MSG(world.scheduler.live_processes() == 0,
                "simulation did not quiesce");
  return collect_stats(world, groups);
}

ResumeOutcome run_with_resume(const SimConfig& config,
                              trace::TraceLog* trace_log) {
  return run_with_resume(config, Observability{trace_log, nullptr});
}

ResumeOutcome run_with_resume(const SimConfig& config,
                              const Observability& observe) {
  ResumeOutcome outcome;

  // The run that (possibly) crashes: the configured plan minus the crash
  // itself — replaying it failure-free-to-completion yields both the
  // no-crash baseline and the batch-durability timeline the resume logic
  // needs.
  SimConfig base = config;
  const sim::Time crash_at = config.fault.crash_at;
  base.fault.crash_at = fault::kNever;
  outcome.full = run_simulation(base, observe);

  if (crash_at == fault::kNever ||
      sim::to_seconds(crash_at) >= outcome.full.wall_seconds) {
    // No crash, or the crash lands after the run already finished.
    outcome.total_seconds = outcome.full.wall_seconds;
    return outcome;
  }
  outcome.crashed = true;
  outcome.crashed_seconds = sim::to_seconds(crash_at);

  // Resume from the last flushed query boundary: batches whose results were
  // durable before the crash are never recomputed (§2's rationale for
  // flushing after every query).
  std::uint32_t flushed_batches = 0;
  for (const double at : outcome.full.batch_complete_seconds)
    if (at <= outcome.crashed_seconds) ++flushed_batches;
  const std::uint32_t flushed_queries =
      std::min(config.workload.query_count,
               flushed_batches * config.queries_per_flush);
  outcome.resume_query = flushed_queries;

  if (flushed_queries < config.workload.query_count) {
    // Tail run over the surviving query subset.  The restart is clean: the
    // original fault plan's injected failures already happened in the
    // crashed attempt and are not replayed.
    SimConfig tail = config;
    tail.fault = fault::FaultPlan{};

    World world(tail, tail.nprocs);
    world.attach_observability(observe);
    std::vector<mpi::Rank> workers;
    for (mpi::Rank rank = 1; rank < tail.nprocs; ++rank)
      workers.push_back(rank);
    std::vector<std::uint32_t> queries;
    for (std::uint32_t q = flushed_queries; q < tail.workload.query_count; ++q)
      queries.push_back(q);

    std::vector<std::unique_ptr<App>> groups;
    groups.push_back(std::make_unique<App>(world, 0, std::move(workers),
                                           std::move(queries)));
    launch_group(*groups.back());
    world.scheduler.run();
    world.fs.shutdown();
    world.scheduler.run();
    S3A_CHECK_MSG(world.scheduler.live_processes() == 0,
                  "resumed simulation did not quiesce");
    outcome.resumed = collect_stats(world, groups);
    outcome.resumed_seconds = outcome.resumed.wall_seconds;
  }
  outcome.total_seconds = outcome.crashed_seconds + outcome.resumed_seconds;
  return outcome;
}

RunStats run_hybrid_simulation(const SimConfig& config, std::uint32_t groups,
                               trace::TraceLog* trace_log) {
  return run_hybrid_simulation(config, groups,
                               Observability{trace_log, nullptr});
}

RunStats run_hybrid_simulation(const SimConfig& config, std::uint32_t groups,
                               const Observability& observe) {
  S3A_REQUIRE_MSG(groups >= 1, "need at least one group");
  S3A_REQUIRE_MSG(config.nprocs % groups == 0,
                  "nprocs must be divisible by the group count");
  const std::uint32_t per_group = config.nprocs / groups;
  S3A_REQUIRE_MSG(per_group >= 2,
                  "each group needs a master and at least one worker");
  S3A_REQUIRE_MSG(groups <= config.workload.query_count,
                  "more groups than queries");
  std::set<mpi::Rank> all_workers;
  for (mpi::Rank rank = 0; rank < config.nprocs; ++rank)
    if (rank % per_group != 0) all_workers.insert(rank);
  validate_fault_plan(config, all_workers);

  World world(config, config.nprocs);
  world.attach_observability(observe);

  std::vector<std::unique_ptr<App>> apps;
  for (std::uint32_t g = 0; g < groups; ++g) {
    const mpi::Rank base = g * per_group;
    std::vector<mpi::Rank> workers;
    for (mpi::Rank rank = base + 1; rank < base + per_group; ++rank)
      workers.push_back(rank);
    // Round-robin query split (query segmentation across groups).
    std::vector<std::uint32_t> queries;
    for (std::uint32_t q = g; q < config.workload.query_count; q += groups)
      queries.push_back(q);
    apps.push_back(std::make_unique<App>(world, base, std::move(workers),
                                         std::move(queries)));
    apps.back()->trace_log = observe.trace_log;
  }
  for (const auto& app : apps) launch_group(*app);

  world.scheduler.run();
  world.fs.shutdown();
  world.scheduler.run();
  S3A_CHECK_MSG(world.scheduler.live_processes() == 0,
                "hybrid simulation did not quiesce");
  return collect_stats(world, apps);
}

}  // namespace s3asim::core
