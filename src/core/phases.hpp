#pragma once

/// \file phases.hpp
/// The eight timing phases of S3aSim (paper §3) and per-rank accumulators.

#include <array>
#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace s3asim::core {

/// Paper §3 timing phases, in presentation order (Figures 3/4/6/7 stack
/// them bottom-up as Setup, Data Distribution, Compute, Merge Results,
/// Gather Results, I/O, Sync, Other).
enum class Phase : std::uint8_t {
  Setup = 0,
  DataDistribution,
  Compute,
  MergeResults,
  GatherResults,
  Io,
  Sync,
  Other,
};

inline constexpr std::size_t kPhaseCount = 8;

[[nodiscard]] constexpr const char* phase_name(Phase phase) noexcept {
  switch (phase) {
    case Phase::Setup: return "Setup";
    case Phase::DataDistribution: return "Data Distribution";
    case Phase::Compute: return "Compute";
    case Phase::MergeResults: return "Merge Results";
    case Phase::GatherResults: return "Gather Results";
    case Phase::Io: return "I/O";
    case Phase::Sync: return "Sync";
    case Phase::Other: return "Other";
  }
  return "?";
}

[[nodiscard]] constexpr std::array<Phase, kPhaseCount> all_phases() noexcept {
  return {Phase::Setup,        Phase::DataDistribution, Phase::Compute,
          Phase::MergeResults, Phase::GatherResults,    Phase::Io,
          Phase::Sync,         Phase::Other};
}

/// Per-rank phase-time accumulator.  `Other` is derived at the end as the
/// wall time not attributed to any explicit phase.
class PhaseTimers {
 public:
  void add(Phase phase, sim::Time duration) noexcept {
    if (duration > 0) times_[static_cast<std::size_t>(phase)] += duration;
  }

  [[nodiscard]] sim::Time get(Phase phase) const noexcept {
    return times_[static_cast<std::size_t>(phase)];
  }
  [[nodiscard]] double seconds(Phase phase) const noexcept {
    return sim::to_seconds(get(phase));
  }

  /// Sum of all explicitly-attributed phases (excluding Other).
  [[nodiscard]] sim::Time attributed() const noexcept {
    sim::Time total = 0;
    for (const Phase phase : all_phases())
      if (phase != Phase::Other) total += get(phase);
    return total;
  }

  /// Sets Other := wall − attributed (clamped at 0).
  void finish(sim::Time wall) noexcept {
    const sim::Time rest = wall - attributed();
    times_[static_cast<std::size_t>(Phase::Other)] = rest > 0 ? rest : 0;
  }

  /// Sum over every phase including Other.
  [[nodiscard]] sim::Time total() const noexcept {
    sim::Time sum = 0;
    for (const Phase phase : all_phases()) sum += get(phase);
    return sum;
  }

 private:
  std::array<sim::Time, kPhaseCount> times_{};
};

}  // namespace s3asim::core
