#pragma once

/// \file obs_bridge.hpp
/// The observability bridge between the model layers' hook interfaces and
/// the trace/metrics sinks.  Split out of the simulation monolith; the
/// publishing side (end-of-run aggregates, stats collection) lives in
/// obs_bridge.cpp.

#include "mpi/comm.hpp"
#include "obs/metrics.hpp"
#include "pfs/pfs.hpp"
#include "sim/time.hpp"
#include "trace/trace.hpp"

namespace s3asim::core {

/// Bridges the model layers' observability hooks into the trace log and the
/// metrics registry: PFS request completions become trace spans and
/// per-kind service-time histograms; MPI deliveries become flow events and
/// message-size/latency histograms.  Purely host-side — it reads simulated
/// time but never spends it.
class ObsBridge final : public pfs::RequestObserver,
                        public mpi::MessageObserver {
 public:
  ObsBridge(trace::TraceLog* trace_log, obs::Registry* metrics)
      : trace_(trace_log) {
    if (metrics != nullptr) {
      write_service_ = &metrics->histogram("pfs.write.service_seconds");
      read_service_ = &metrics->histogram("pfs.read.service_seconds");
      sync_service_ = &metrics->histogram("pfs.sync.service_seconds");
      messages_ = &metrics->counter("mpi.messages");
      message_bytes_total_ = &metrics->counter("mpi.bytes");
      message_bytes_ = &metrics->histogram("mpi.message.bytes");
      message_delivery_ =
          &metrics->histogram("mpi.message.delivery_seconds");
    }
  }

  void on_request_serviced(std::uint32_t server, char kind,
                           std::uint64_t pairs, std::uint64_t bytes,
                           sim::Time start, sim::Time end) override {
    if (trace_ != nullptr) trace_->span(server, kind, pairs, bytes, start, end);
    obs::Histogram* histogram = kind == 's'   ? sync_service_
                                : kind == 'r' ? read_service_
                                              : write_service_;
    if (histogram != nullptr) histogram->observe(sim::to_seconds(end - start));
  }

  void on_message_delivered(mpi::Rank src, mpi::Rank dst, mpi::Tag tag,
                            std::uint64_t bytes, sim::Time sent,
                            sim::Time received) override {
    if (trace_ != nullptr) trace_->flow(src, dst, tag, bytes, sent, received);
    if (messages_ != nullptr) {
      messages_->add(1);
      message_bytes_total_->add(bytes);
      message_bytes_->observe(static_cast<double>(bytes));
      message_delivery_->observe(sim::to_seconds(received - sent));
    }
  }

 private:
  trace::TraceLog* trace_ = nullptr;
  obs::Histogram* write_service_ = nullptr;
  obs::Histogram* read_service_ = nullptr;
  obs::Histogram* sync_service_ = nullptr;
  obs::Counter* messages_ = nullptr;
  obs::Counter* message_bytes_total_ = nullptr;
  obs::Histogram* message_bytes_ = nullptr;
  obs::Histogram* message_delivery_ = nullptr;
};

}  // namespace s3asim::core
