/// \file master_runtime.cpp
/// The master runtime (Algorithm 1): task distribution with fragment
/// affinity, score gathering, in-order query completion, batch retirement,
/// failure detection and recovery.  Strategy-specific policy (routing,
/// writing, teardown assembly) is delegated to the group's `IoStrategy`.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/fragment_cache.hpp"
#include "core/protocol.hpp"
#include "core/runtime.hpp"

namespace s3asim::core {

namespace {

/// One assigned-but-unacknowledged (query, fragment) task.
struct Outstanding {
  std::uint32_t local = 0;     ///< group-local query index
  std::uint32_t query = 0;     ///< global query id
  std::uint32_t fragment = 0;
};

struct MasterState {
  std::uint32_t next_query = 0;  ///< local index of the query being assigned
  /// Unassigned fragments of `next_query` (affinity scheduling may pick any).
  std::vector<std::uint32_t> pending_fragments;
  std::uint64_t tasks_assigned = 0;
  std::uint64_t tasks_completed = 0;
  std::uint32_t done_sent = 0;
  /// Master's mirror of each worker's fragment cache (affinity scheduling).
  std::map<mpi::Rank, FragmentCache> worker_caches;

  /// Per local query: fragments completed and (worker, fragment) pairs.
  std::vector<std::uint32_t> fragments_done;
  std::vector<QueryContributors> contributors;
  /// Next local query awaiting in-order region processing.
  std::uint32_t next_inorder = 0;
  /// Local queries completed but blocked behind an earlier incomplete one.
  std::set<std::uint32_t> completed_out_of_order;

  // ---- Recovery bookkeeping (recovery_mode only). ------------------------
  /// Tasks each worker has been assigned and not yet returned scores for.
  std::map<mpi::Rank, std::vector<Outstanding>> outstanding;
  /// Workers the failure detector declared dead; they get Done on any
  /// further request and are never assigned again.
  std::set<mpi::Rank> retired;
  /// Live workers with an unanswered work request (nothing to hand out when
  /// they asked); unparked when reassigned work appears.
  std::deque<mpi::Rank> parked;
  /// Tasks reclaimed from retired workers, re-issued FIFO before fresh work.
  std::deque<Outstanding> reassign;
  /// Per local query: fragments whose scores were accepted (first-wins
  /// dedup — a reassigned task may complete twice but only one completion
  /// contributes, keeping the output layout overlap-free).
  std::vector<std::set<std::uint32_t>> done_frags;
};

/// Serving mode: moves the next admitted query (if any, and backpressure
/// permitting) into the dispatch path — assigns it the next local index,
/// extends the group's file layout by its region, and grows the master's
/// per-query bookkeeping.  Shed queries never reach here, so the output
/// file packs exactly the admitted queries in dispatch order.
bool serving_admit(App& app, MasterState& state) {
  ServingContext& serving = *app.serving;
  if (serving.queue.empty() || serving.backpressured()) return false;
  const Admitted next = serving.queue.pop();
  state.next_query = app.query_count();
  app.queries.push_back(next.query);
  app.region_bases.push_back(app.group_output_bytes);
  const std::uint64_t bytes = app.workload.query(next.query).total_bytes;
  app.group_output_bytes += bytes;
  state.fragments_done.push_back(0);
  state.contributors.emplace_back();
  state.done_frags.emplace_back();
  serving.on_dispatch(bytes);
  return true;
}

}  // namespace

// The ingress pumps (request/scores/join), the serving arrival replayer,
// and the per-worker failure probes live in master_pumps.cpp.

sim::Process master_process(App& app) {
  MasterState state;
  IoStrategy& strategy = *app.strategy;
  StrategyEnv& env = *app.env;
  const std::uint32_t queries = app.query_count();
  const std::uint32_t fragments = app.config.workload.fragment_count;
  const std::uint64_t total_tasks =
      static_cast<std::uint64_t>(queries) * fragments;
  state.fragments_done.assign(queries, 0);
  state.contributors.assign(queries, {});
  state.done_frags.assign(queries, {});
  for (const mpi::Rank worker : app.workers)
    state.worker_caches.emplace(worker, FragmentCache(app.cache_capacity()));

  // ---- Setup: create the output file, broadcast input variables. ---------
  {
    const sim::Time start = app.scheduler.now();
    const auto handle = co_await app.fs.create_file(
        app.comm.endpoint_of(app.master),
        "results." + std::to_string(app.master) + ".out");
    app.file = std::make_unique<mpiio::File>(
        app.scheduler, app.network, app.fs, app.comm, handle, app.workers,
        strategy.file_hints(app.config));
    env.file = app.file.get();
    if (app.models_database_io()) {
      const auto db_handle = co_await app.fs.create_file(
          app.comm.endpoint_of(app.master),
          "database." + std::to_string(app.master));
      // The config's hints, not Hints{}: `--sieve-buffer` must reach the
      // database file's sieved reads.
      app.database_file = std::make_unique<mpiio::File>(
          app.scheduler, app.network, app.fs, app.comm, db_handle, app.workers,
          app.config.hints);
    }
    co_await strategy.master_setup(env);
    // Standbys (scheduled joiners, elastic pool) are outside the cluster:
    // their setup rides the Welcome of the join handshake instead.
    for (const mpi::Rank worker : app.workers)
      if (!app.registry->initially_standby(worker))
        co_await app.comm.send(app.master, worker, kTagSetup,
                               app.config.model.setup_message_bytes);
    app.record_phase(app.master, Phase::Setup, start, app.scheduler.now());
  }

  // ---- Task source shared by the failure-free and recovery loops. --------
  // Picks the next fresh (query, fragment) for `worker` (with fragment
  // affinity), updating assignment bookkeeping; nullopt when the workload
  // is fully assigned.
  auto fresh_task = [&app, &state, fragments,
                     total_tasks](mpi::Rank worker) -> std::optional<Outstanding> {
    if (app.serving != nullptr) {
      // Open-loop: tasks come from the admission queue, one query at a
      // time; a query's fragments drain before the next one is admitted.
      if (state.pending_fragments.empty() && !serving_admit(app, state))
        return std::nullopt;
    } else if (state.tasks_assigned >= total_tasks) {
      return std::nullopt;
    }
    if (state.pending_fragments.empty()) {
      state.pending_fragments.resize(fragments);
      for (std::uint32_t f = 0; f < fragments; ++f)
        state.pending_fragments[f] = f;
    }
    // mpiBLAST-style fragment affinity: within the current query, prefer a
    // fragment the requesting worker already has in memory.
    std::size_t pick = 0;
    bool affinity_hit = false;
    if (app.config.fragment_affinity && app.models_database_io()) {
      for (std::size_t i = 0; i < state.pending_fragments.size(); ++i) {
        if (state.worker_caches.at(worker).contains(
                state.pending_fragments[i])) {
          pick = i;
          affinity_hit = true;
          break;
        }
      }
    }
    // Speed-aware dispatch (heterogeneous classes only): longest-
    // processing-time-first — every request takes the costliest pending
    // fragment, except a slow worker (speed below the active mean) at the
    // query's tail (no more pending fragments than active workers), which
    // takes the cheapest so it never anchors the critical path.  Affinity
    // still wins — a warm cache beats a better size match.
    if (!affinity_hit && app.config.membership.speed_aware &&
        !app.config.membership.classes.empty() &&
        state.pending_fragments.size() > 1) {
      const std::uint32_t query = app.queries[state.next_query];
      const bool slow = app.registry->speed_factor(worker) <
                        app.registry->active_mean_speed();
      const bool tail =
          state.pending_fragments.size() <= app.registry->active_count();
      const bool take_largest = !(slow && tail);
      std::uint64_t best = app.workload.fragment_result_bytes(
          query, state.pending_fragments[0]);
      for (std::size_t i = 1; i < state.pending_fragments.size(); ++i) {
        const std::uint64_t cost = app.workload.fragment_result_bytes(
            query, state.pending_fragments[i]);
        if (take_largest ? cost > best : cost < best) {
          best = cost;
          pick = i;
        }
      }
    }
    Outstanding task;
    task.local = state.next_query;
    task.query = app.queries[state.next_query];
    task.fragment = state.pending_fragments[pick];
    state.pending_fragments.erase(state.pending_fragments.begin() +
                                  static_cast<std::ptrdiff_t>(pick));
    if (app.models_database_io())
      (void)state.worker_caches.at(worker).touch(task.fragment);
    if (state.pending_fragments.empty()) ++state.next_query;
    ++state.tasks_assigned;
    return task;
  };

  // ---- Failure-detector helpers (recovery_mode only). --------------------
  auto arm_probe = [&app](mpi::Rank worker) {
    App::ProbeCtl& probe = *app.probes.at(worker);
    probe.timer->arm_in(app.config.fault_detection_timeout);
    probe.armed->push(0);
  };
  auto disarm_probe = [&app](mpi::Rank worker) {
    app.probes.at(worker)->timer->cancel();
  };

  // Algorithm 1, step 10: process one completed score receive — merge it
  // (for MW including the full result payload), then handle any queries
  // that completed, in query order (steps 14–18).
  auto handle_score = [&app, &state, &strategy, &env, fragments, &arm_probe,
                       &disarm_probe]() -> sim::Task<void> {
    mpi::Message event = std::move(app.master_scores.front());
    app.master_scores.pop_front();
    S3A_CHECK(event.tag == kTagScores);
    const auto& scores = event.as<ScoresMsg>();
    if (app.recovery_mode) {
      // Sign of life: the worker returned results — clear the matching
      // outstanding entry and re-arm (or disarm) its failure detector.
      auto& owed = state.outstanding[scores.worker];
      const auto it = std::find_if(
          owed.begin(), owed.end(), [&scores](const Outstanding& task) {
            return task.local == scores.local_query &&
                   task.fragment == scores.fragment;
          });
      if (it != owed.end()) owed.erase(it);
      if (!state.retired.contains(scores.worker)) {
        disarm_probe(scores.worker);
        if (!owed.empty()) arm_probe(scores.worker);
      }
    }
    {
      const sim::Time merge_start = app.scheduler.now();
      const auto count = static_cast<sim::Time>(
          app.workload.query(scores.query).by_fragment[scores.fragment].size());
      sim::Time merge_time = count * app.config.model.master_merge_per_entry;
      merge_time +=
          strategy.master_merge_extra(env, scores.query, scores.fragment);
      co_await app.scheduler.delay(merge_time);
      app.record_phase(app.master, Phase::GatherResults, merge_start,
                       app.scheduler.now());
    }
    if (app.recovery_mode &&
        !state.done_frags[scores.local_query].insert(scores.fragment).second) {
      // A reassigned task completed twice (the original owner was slow, not
      // dead).  The master already paid the merge; the late copy must not
      // contribute — its extents would overlap the first completion's.
      ++app.faults.duplicate_completions;
      co_return;
    }
    state.contributors[scores.local_query].emplace_back(scores.worker,
                                                        scores.fragment);
    ++state.tasks_completed;
    if (++state.fragments_done[scores.local_query] == fragments)
      state.completed_out_of_order.insert(scores.local_query);

    while (state.completed_out_of_order.contains(state.next_inorder)) {
      const std::uint32_t local = state.next_inorder;
      state.completed_out_of_order.erase(local);
      ++state.next_inorder;

      co_await strategy.route_query_results(env, local,
                                            state.contributors[local]);

      const std::uint32_t batch = app.batch_of(local);
      if (local == app.batch_last_query(batch)) {
        const std::uint32_t first = batch * app.config.queries_per_flush;
        co_await strategy.retire_batch(env, first, local);
        // §3.3: the query-sync barrier is among the *worker* nodes; the
        // master keeps distributing work.
        app.batch_complete_times.push_back(app.scheduler.now());
        if (app.serving != nullptr)
          app.serving->on_retired(
              app.queries[local], app.scheduler.now(),
              app.workload.query(app.queries[local]).total_bytes);
      }
    }
  };

  // ---- Join handshake (dynamic membership only). -------------------------
  // The joiner pre-staged `staged_fragment` before taking work; mirror the
  // touch so affinity scheduling sees the warm cache, then acknowledge on
  // the ordered master→worker stream (Welcome — or, after the main loop
  // has exited, the universal Finish turns the joiner away instead).
  auto handle_join = [&app, &state](mpi::Message event) -> sim::Task<void> {
    const auto& join = event.as<JoinMsg>();
    if (app.models_database_io())
      (void)state.worker_caches.at(join.worker).touch(join.staged_fragment);
    MasterMsg reply;
    reply.kind = MasterMsg::Kind::Welcome;
    const sim::Time send_start = app.scheduler.now();
    co_await app.comm.send(app.master, join.worker, kTagMasterToWorker,
                           app.config.model.control_message_bytes, reply);
    app.record_phase(app.master, Phase::DataDistribution, send_start,
                     app.scheduler.now());
  };

  if (app.serving != nullptr) {
    // ---- Open-loop serving master loop (online arrivals). ---------------
    // Same protocol as the failure-free loop, but the task source is the
    // admission queue: a request finding no dispatchable work parks until
    // an arrival (or a retirement releasing backpressure) frees some, and
    // Done is only sent once the arrival stream is closed and drained.
    ServingContext& serving = *app.serving;
    auto send_reply = [&app](mpi::Rank worker,
                             const MasterMsg& reply) -> sim::Task<void> {
      const sim::Time send_start = app.scheduler.now();
      co_await app.comm.send(app.master, worker, kTagMasterToWorker,
                             app.config.model.control_message_bytes, reply);
      app.record_phase(app.master, Phase::DataDistribution, send_start,
                       app.scheduler.now());
    };
    // True once no task can ever become available again.
    auto stream_over = [&state, &serving]() {
      return serving.drained() && state.pending_fragments.empty();
    };
    auto assign_reply = [](const Outstanding& task) {
      MasterMsg reply;
      reply.kind = MasterMsg::Kind::Assign;
      reply.query = task.query;
      reply.local_query = task.local;
      reply.fragment = task.fragment;
      return reply;
    };
    auto serve_request = [&app, &state, &stream_over, &fresh_task,
                          &assign_reply,
                          &send_reply](mpi::Rank worker) -> sim::Task<void> {
      if (app.registry->state(worker) == WorkerLifecycle::Draining) {
        // Scale-down: the worker finished its outstanding task; wave it
        // off and complete the drain.
        MasterMsg reply;
        reply.kind = MasterMsg::Kind::Done;
        ++state.done_sent;
        (void)app.registry->complete_drain(worker, app.scheduler.now());
        co_await send_reply(worker, reply);
        co_return;
      }
      if (const auto task = fresh_task(worker)) {
        co_await send_reply(worker, assign_reply(*task));
      } else if (stream_over()) {
        MasterMsg reply;
        reply.kind = MasterMsg::Kind::Done;
        ++state.done_sent;
        co_await send_reply(worker, reply);
      } else {
        state.parked.push_back(worker);
      }
    };
    // Unpark waiting workers while dispatchable work (or a final Done
    // verdict) exists for them.
    auto feed_parked = [&app, &state, &stream_over, &fresh_task,
                        &assign_reply, &send_reply]() -> sim::Task<void> {
      while (!state.parked.empty()) {
        const mpi::Rank worker = state.parked.front();
        if (app.registry->state(worker) == WorkerLifecycle::Draining) {
          state.parked.pop_front();
          MasterMsg reply;
          reply.kind = MasterMsg::Kind::Done;
          ++state.done_sent;
          (void)app.registry->complete_drain(worker, app.scheduler.now());
          co_await send_reply(worker, reply);
          continue;
        }
        if (const auto task = fresh_task(worker)) {
          state.parked.pop_front();
          co_await send_reply(worker, assign_reply(*task));
        } else if (stream_over()) {
          state.parked.pop_front();
          MasterMsg reply;
          reply.kind = MasterMsg::Kind::Done;
          ++state.done_sent;
          co_await send_reply(worker, reply);
        } else {
          break;
        }
      }
    };
    // Elastic autoscaling: one policy step per wake — summon the
    // lowest-rank standby into the cluster, or drain the most recently
    // joined active worker (releasing it immediately when parked: a
    // parked worker will never request again on its own).
    auto autoscale_step = [&app, &state, &serving,
                           &send_reply]() -> sim::Task<void> {
      if (app.autoscaler == nullptr) co_return;
      WorkerRegistry& registry = *app.registry;
      // Demand = queued + dispatched-but-unretired queries, so a lone
      // in-service query can still summon help mid-query (its remaining
      // fragments redistribute to the joiners).
      const std::size_t demand =
          serving.queue.size() + (app.query_count() - state.next_inorder);
      const int dir = app.autoscaler->decide(
          demand, registry.active_count(),
          registry.count(WorkerLifecycle::Joining),
          app.config.membership.min_workers, serving.arrivals_open,
          app.scheduler.now());
      if (dir > 0) {
        if (const auto standby = registry.pick_standby()) {
          (void)registry.begin_join(*standby, app.scheduler.now());
          app.activations.at(*standby)->push(0);
        }
      } else if (dir < 0) {
        if (const auto victim = registry.pick_drain_candidate()) {
          (void)registry.begin_drain(*victim, app.scheduler.now());
          const auto parked_it =
              std::find(state.parked.begin(), state.parked.end(), *victim);
          if (parked_it != state.parked.end()) {
            state.parked.erase(parked_it);
            MasterMsg reply;
            reply.kind = MasterMsg::Kind::Done;
            ++state.done_sent;
            (void)registry.complete_drain(*victim, app.scheduler.now());
            co_await send_reply(*victim, reply);
          }
        }
      }
    };
    // Termination counts Done handshakes against *participants* (workers
    // that ever reached Active): never-summoned standbys are released by
    // the teardown Finish instead.  Equal to nworkers() when non-elastic.
    while (!(stream_over() && state.tasks_completed == state.tasks_assigned &&
             state.next_inorder == app.query_count() &&
             state.done_sent == app.registry->participant_count())) {
      const sim::Time wait_start = app.scheduler.now();
      auto token = co_await app.request_wake->pop();
      S3A_CHECK_MSG(token.has_value(), "master wake stream closed early");
      app.record_phase(app.master, Phase::DataDistribution, wait_start,
                       app.scheduler.now());
      while (!app.master_requests.empty()) {
        mpi::Message event = std::move(app.master_requests.front());
        app.master_requests.pop_front();
        // An arrival notice carries no reply of its own; the feed_parked
        // pass below reacts to the new (or newly closed) stream state.
        if (event.tag == kTagArrival) continue;
        if (event.tag == kTagJoin) {
          co_await handle_join(std::move(event));
          continue;
        }
        S3A_CHECK(event.tag == kTagRequest);
        co_await serve_request(event.source);
      }
      while (!app.master_scores.empty()) {
        co_await handle_score();
        if (!app.master_requests.empty()) break;  // requests take priority
      }
      co_await feed_parked();
      co_await autoscale_step();
    }
  } else if (!app.recovery_mode) {
    // ---- Failure-free master loop (Algorithm 1, byte-identical to the
    //      pre-fault-subsystem behavior). --------------------------------
    while (true) {
      const bool everything_done = state.tasks_completed == total_tasks &&
                                   state.done_sent == app.nworkers() &&
                                   state.next_inorder == queries;
      if (everything_done) break;

      // ---- Step 3: the master *blocks* receiving work requests and only
      // *tests* score receives — requests are answered first, and the score
      // backlog is drained after each reply (steps 8, 10).
      const bool requests_exhausted = state.done_sent == app.nworkers();
      if (!requests_exhausted) {
        const sim::Time wait_start = app.scheduler.now();
        auto token = co_await app.request_wake->pop();
        S3A_CHECK_MSG(token.has_value(), "master request stream closed early");
        app.record_phase(app.master, Phase::DataDistribution, wait_start,
                         app.scheduler.now());

        // ---- Steps 4-9: assign work or notify completion. ----------------
        S3A_CHECK(!app.master_requests.empty());
        mpi::Message event = std::move(app.master_requests.front());
        app.master_requests.pop_front();
        const mpi::Rank worker = event.source;
        const sim::Time send_start = app.scheduler.now();
        MasterMsg reply;
        if (const auto task = fresh_task(worker)) {
          reply.kind = MasterMsg::Kind::Assign;
          reply.query = task->query;
          reply.local_query = task->local;
          reply.fragment = task->fragment;
        } else {
          reply.kind = MasterMsg::Kind::Done;
          ++state.done_sent;
        }
        co_await app.comm.send(app.master, worker, kTagMasterToWorker,
                               app.config.model.control_message_bytes, reply);
        app.record_phase(app.master, Phase::DataDistribution, send_start,
                         app.scheduler.now());
        // Step 10: after serving the request, drain the completed receives.
        while (!app.master_scores.empty()) co_await handle_score();
      } else {
        // No more requests will come; block on the remaining score receives.
        const sim::Time wait_start = app.scheduler.now();
        auto token = co_await app.scores_wake->pop();
        S3A_CHECK_MSG(token.has_value(), "master score stream closed early");
        app.record_phase(app.master, Phase::GatherResults, wait_start,
                         app.scheduler.now());
        // The token may be stale if an earlier drain already consumed the
        // message; every queued message is guaranteed a token, so just skip.
        if (!app.master_scores.empty()) co_await handle_score();
      }
    }
  } else {
    // ---- Recovery-capable master loop. ---------------------------------
    // Same protocol, plus: every assignment arms the worker's failure
    // detector; timeouts retire the worker and requeue its outstanding
    // tasks; late duplicate completions are discarded (handle_score).
    // Completion is judged by results, not by Done handshakes — retired
    // workers may never request again.

    // Next task for `worker`: reclaimed tasks first (FIFO), then fresh.
    auto pop_task = [&app, &state,
                     &fresh_task](mpi::Rank worker) -> std::optional<Outstanding> {
      if (!state.reassign.empty()) {
        const Outstanding task = state.reassign.front();
        state.reassign.pop_front();
        if (app.models_database_io())
          (void)state.worker_caches.at(worker).touch(task.fragment);
        return task;
      }
      return fresh_task(worker);
    };

    auto assign_task = [&app, &state, &arm_probe](
                           mpi::Rank worker,
                           Outstanding task) -> sim::Task<void> {
      state.outstanding[worker].push_back(task);
      arm_probe(worker);  // arming cancels any previous deadline
      MasterMsg reply;
      reply.kind = MasterMsg::Kind::Assign;
      reply.query = task.query;
      reply.local_query = task.local;
      reply.fragment = task.fragment;
      const sim::Time send_start = app.scheduler.now();
      co_await app.comm.send(app.master, worker, kTagMasterToWorker,
                             app.config.model.control_message_bytes, reply);
      app.record_phase(app.master, Phase::DataDistribution, send_start,
                       app.scheduler.now());
    };

    auto serve_request = [&app, &state, &pop_task,
                          &assign_task](mpi::Rank worker) -> sim::Task<void> {
      if (state.retired.contains(worker)) {
        // A worker retired by timeout that turns out to be alive (e.g. its
        // scores were dropped): wave it off.
        MasterMsg reply;
        reply.kind = MasterMsg::Kind::Done;
        const sim::Time send_start = app.scheduler.now();
        co_await app.comm.send(app.master, worker, kTagMasterToWorker,
                               app.config.model.control_message_bytes, reply);
        app.record_phase(app.master, Phase::DataDistribution, send_start,
                         app.scheduler.now());
        co_return;
      }
      if (const auto task = pop_task(worker)) {
        co_await assign_task(worker, *task);
      } else {
        // Nothing to hand out right now; the request stays unanswered until
        // reassigned work appears or the run finishes (Finish releases it).
        state.parked.push_back(worker);
      }
    };

    auto handle_failure = [&app, &state, &strategy, &arm_probe, &pop_task,
                           &assign_task](mpi::Rank worker) -> sim::Task<void> {
      if (state.retired.contains(worker)) co_return;
      auto& owed = state.outstanding[worker];
      if (owed.empty()) co_return;  // everything accounted for; stale expiry
      // A score from this worker may already be queued (in-flight when the
      // timer expired): treat it as a sign of life and give it another
      // detection window instead of retiring.
      for (const mpi::Message& queued : app.master_scores) {
        if (queued.as<ScoresMsg>().worker == worker) {
          arm_probe(worker);
          co_return;
        }
      }
      // Flush-blocking strategies (§2.3): a worker whose owed tasks all
      // belong to batches past the flush frontier is defer-blocked behind
      // the pending collective write — it cannot produce a score no matter
      // how healthy it is.  Silence is not evidence of death there; keep
      // polling until its work reaches the frontier.
      if (strategy.flush_blocks_process() &&
          state.next_inorder < app.query_count()) {
        const std::uint32_t frontier = app.batch_of(state.next_inorder);
        const bool frontier_work =
            std::any_of(owed.begin(), owed.end(),
                        [&app, frontier](const Outstanding& task) {
                          return app.batch_of(task.local) <= frontier;
                        });
        if (!frontier_work) {
          arm_probe(worker);
          co_return;
        }
      }
      // Retire the worker and reclaim everything it still owes.  Removal
      // is a registry transition — fail-stop and elastic leave share one
      // path, and the worker-side death dedups first-wins.
      state.retired.insert(worker);
      (void)app.registry->mark_dead(worker, app.scheduler.now());
      ++app.faults.workers_retired;
      if (app.trace_log != nullptr)
        app.trace_log->event(app.master, "Retire", app.scheduler.now());
      app.faults.tasks_reassigned += owed.size();
      for (const Outstanding& task : owed) state.reassign.push_back(task);
      owed.clear();
      S3A_REQUIRE_MSG(state.retired.size() < app.workers.size(),
                      "unrecoverable: every worker of a group failed");
      // If the retiree was parked (scores dropped, then asked for work we
      // did not have), release it so it can reach the final barrier.
      const auto parked_it =
          std::find(state.parked.begin(), state.parked.end(), worker);
      if (parked_it != state.parked.end()) {
        state.parked.erase(parked_it);
        MasterMsg reply;
        reply.kind = MasterMsg::Kind::Done;
        co_await app.comm.send(app.master, worker, kTagMasterToWorker,
                               app.config.model.control_message_bytes, reply);
      }
      // Feed the reclaimed tasks to survivors that are waiting for work.
      while (!state.reassign.empty() && !state.parked.empty()) {
        const mpi::Rank survivor = state.parked.front();
        state.parked.pop_front();
        const auto task = pop_task(survivor);
        S3A_CHECK(task.has_value());
        co_await assign_task(survivor, *task);
      }
      // Flush-blocking strategies: the survivors may all be defer-blocked
      // (no parked requests, and none coming — a deferred worker only
      // requests again once the stuck collective completes).  Push the
      // reclaimed frontier tasks to them unsolicited; they are executable
      // immediately and their scores unstick the batch.  Reclaimed tasks
      // for later batches stay queued for the request path — delivering
      // those unsolicited would just defer at the receiver too.
      if (strategy.flush_blocks_process() && !state.reassign.empty() &&
          state.next_inorder < app.query_count()) {
        const std::uint32_t frontier = app.batch_of(state.next_inorder);
        std::vector<Outstanding> urgent;
        for (auto it = state.reassign.begin(); it != state.reassign.end();) {
          if (app.batch_of(it->local) <= frontier) {
            urgent.push_back(*it);
            it = state.reassign.erase(it);
          } else {
            ++it;
          }
        }
        std::size_t cursor = 0;
        for (const Outstanding& task : urgent) {
          mpi::Rank survivor;  // round-robin over non-retired workers; the
          do {                 // REQUIRE above guarantees one exists
            survivor = app.workers[cursor % app.workers.size()];
            ++cursor;
          } while (state.retired.contains(survivor));
          if (app.models_database_io())
            (void)state.worker_caches.at(survivor).touch(task.fragment);
          co_await assign_task(survivor, task);
        }
      }
    };

    while (!(state.tasks_completed == total_tasks &&
             state.next_inorder == queries)) {
      const sim::Time wait_start = app.scheduler.now();
      auto token = co_await app.request_wake->pop();
      S3A_CHECK_MSG(token.has_value(), "master wake stream closed early");
      app.record_phase(app.master, Phase::DataDistribution, wait_start,
                       app.scheduler.now());
      // Requests (and failure notices) before scores, as in Algorithm 1.
      while (!app.master_requests.empty()) {
        mpi::Message event = std::move(app.master_requests.front());
        app.master_requests.pop_front();
        if (event.tag == kTagFailure) {
          co_await handle_failure(event.source);
        } else if (event.tag == kTagJoin) {
          co_await handle_join(std::move(event));
        } else {
          S3A_CHECK(event.tag == kTagRequest);
          co_await serve_request(event.source);
        }
      }
      while (!app.master_scores.empty()) {
        co_await handle_score();
        if (!app.master_requests.empty()) break;  // requests take priority
      }
    }
  }

  // ---- Teardown: strategy drain/assembly, tell every worker the stream is
  //      over, then sync. --------------------------------------------------
  // Membership teardown first: cancel unfired join timers and close the
  // activation channels so every worker still outside the cluster unblocks
  // and can meet the Finish below at the final barrier.  A kTagJoin still
  // queued (or in flight) is never served past this point — the universal
  // Finish turns the late joiner away instead of a Welcome.
  for (auto& [rank, timer] : app.join_timers) timer->cancel();
  for (auto& [rank, channel] : app.activations) channel->close();
  co_await strategy.master_teardown(env, state.contributors);
  // Close the master's client cache (MW and gap-repair writes go through
  // it) before the workers are told to finish, so every lease conflict is
  // settled ahead of the final barrier.
  if (app.fs.cache_enabled()) co_await app.fs.release_client(app.master);
  for (const mpi::Rank worker : app.workers) {
    MasterMsg msg;
    msg.kind = MasterMsg::Kind::Finish;
    (void)app.comm.isend(app.master, worker, kTagMasterToWorker,
                         app.config.model.control_message_bytes, msg);
  }
  {
    const sim::Time barrier_start = app.scheduler.now();
    co_await app.comm.barrier();
    app.record_phase(app.master, Phase::Sync, barrier_start,
                     app.scheduler.now());
  }
  if (app.recovery_mode) {
    // ---- Gap repair: workers that died after being sent offset lists but
    // before writing leave holes in the group file.  Every surviving
    // writer has flushed by now (the barrier above), so whatever is still
    // uncovered is genuinely lost — the master regenerates it from the
    // gathered scores and list-writes it into place.  This runs after the
    // barrier precisely so it cannot overlap a late survivor flush.
    const std::vector<pfs::Extent> holes =
        app.fs.image(app.file->handle()).gaps(app.group_output_bytes);
    if (!holes.empty()) {
      const sim::Time repair_start = app.scheduler.now();
      std::uint64_t bytes = 0;
      for (const pfs::Extent& hole : holes) bytes += hole.length;
      // Reformatting the lost results costs the same per-byte handling as
      // MW's centralized result processing.
      co_await app.scheduler.delay(static_cast<sim::Time>(
          std::llround(static_cast<double>(bytes) *
                       app.config.model.master_result_ns_per_byte)));
      co_await app.file->write_noncontig(app.master, holes,
                                         mpiio::NoncontigMethod::ListIo);
      if (app.config.sync_after_write) co_await app.file->sync(app.master);
      app.record_phase(app.master, Phase::Io, repair_start,
                       app.scheduler.now());
      if (app.trace_log != nullptr)
        app.trace_log->record(app.master, "Recovery", repair_start,
                              app.scheduler.now());
      app.faults.repaired_bytes += bytes;
      app.rank_stats[app.master].bytes_written += bytes;
      ++app.rank_stats[app.master].writes_issued;
    }
    // Disarm the failure detectors and any reapers that never fired, so
    // their queued deadlines are discarded without advancing the clock.
    for (auto& [rank, probe] : app.probes) {
      probe->timer->cancel();
      probe->armed->close();
    }
    for (const auto& timer : app.reaper_timers) timer->cancel();
  }
  // The pumps run open-ended; tear down their posted receives (MPI_Cancel)
  // so the simulation can quiesce.
  app.comm.cancel_posted(app.master);
  app.rank_stats[app.master].wall = app.scheduler.now();
  app.rank_stats[app.master].phases.finish(app.rank_stats[app.master].wall);
}

}  // namespace s3asim::core
