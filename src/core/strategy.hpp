#pragma once

/// \file strategy.hpp
/// The I/O strategies compared in the paper (§2), plus the extensions its
/// conclusion proposes.  This header is only the *identity* of a strategy
/// (enumerator, canonical name, parser, coarse classification); the
/// behavior lives behind the `IoStrategy` interface in
/// `core/strategies/io_strategy.hpp`, selected via
/// `core/strategies/registry.hpp`.

#include <algorithm>
#include <cctype>
#include <string>

#include "util/require.hpp"

namespace s3asim::core {

enum class Strategy {
  /// Master-writing: workers ship scores *and* result data to the master,
  /// which writes each completed query region contiguously (§2.1).
  MW,
  /// Worker-writing with per-extent POSIX I/O (§2.3).
  WWPosix,
  /// Worker-writing with PVFS2-native list I/O (§2.3).
  WWList,
  /// Worker-writing with collective two-phase I/O, à la pioBLAST (§2.2).
  WWColl,
  /// Extension (paper §5): collective implemented as list I/O bracketed by
  /// synchronization, instead of ROMIO's two-phase.
  WWCollList,
  /// Extension ("new I/O algorithms", §5): file-per-process (N-N) — each
  /// worker appends its results contiguously to a private file as soon as
  /// they are computed (no offset lists, no waiting); the master assembles
  /// the final sorted file at the end by reading every private file back
  /// and list-writing it into place.
  WWFilePerProcess,
  /// Extension ("new I/O algorithms", §5): worker-side aggregation — a
  /// data-sieving/two-phase hybrid in the spirit of Thakur et al.'s
  /// noncontiguous-access work.  Workers are partitioned into groups of
  /// `aggregator_fanin`; at each flush the members ship their extents and
  /// result data to the group's aggregator, which coalesces adjacent
  /// extents and issues one sorted list write on everyone's behalf.
  WWAggr,
  /// Extension (docs/IO_MODEL.md §4): independent worker writes through
  /// ROMIO data sieving — each flush is converted into contiguous
  /// sieve-buffer windows; windows containing holes are pre-read so the
  /// gaps are written back unchanged (read-modify-write hole protection).
  WWSieve,
};

/// Every enumerator, in declaration order (tests and sweeps iterate this
/// instead of hand-maintaining lists).
inline constexpr Strategy kAllStrategies[] = {
    Strategy::MW,         Strategy::WWPosix,          Strategy::WWList,
    Strategy::WWColl,     Strategy::WWCollList,       Strategy::WWFilePerProcess,
    Strategy::WWAggr,     Strategy::WWSieve,
};

[[nodiscard]] constexpr const char* strategy_name(Strategy strategy) noexcept {
  switch (strategy) {
    case Strategy::MW: return "MW";
    case Strategy::WWPosix: return "WW-POSIX";
    case Strategy::WWList: return "WW-List";
    case Strategy::WWColl: return "WW-Coll";
    case Strategy::WWCollList: return "WW-CollList";
    case Strategy::WWFilePerProcess: return "WW-FilePerProc";
    case Strategy::WWAggr: return "WW-Aggr";
    case Strategy::WWSieve: return "WW-Sieve";
  }
  return "?";
}

/// True for every strategy where workers write their own results.
[[nodiscard]] constexpr bool worker_writes(Strategy strategy) noexcept {
  return strategy != Strategy::MW;
}

/// True when the write path is a collective operation (all workers
/// participate in every I/O round).
[[nodiscard]] constexpr bool is_collective(Strategy strategy) noexcept {
  return strategy == Strategy::WWColl || strategy == Strategy::WWCollList;
}

/// Parses a strategy name: the canonical `strategy_name` spelling (any
/// case) or one of the short aliases.  Throws std::invalid_argument (via
/// S3A_REQUIRE) on an unknown name, listing the canonical spellings.
[[nodiscard]] inline Strategy parse_strategy(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (lower == "mw") return Strategy::MW;
  if (lower == "ww-posix" || lower == "posix") return Strategy::WWPosix;
  if (lower == "ww-list" || lower == "list") return Strategy::WWList;
  if (lower == "ww-coll" || lower == "coll") return Strategy::WWColl;
  if (lower == "ww-colllist" || lower == "colllist") return Strategy::WWCollList;
  if (lower == "ww-fileperproc" || lower == "nn" || lower == "file-per-process")
    return Strategy::WWFilePerProcess;
  if (lower == "ww-aggr" || lower == "aggr" || lower == "aggregate")
    return Strategy::WWAggr;
  if (lower == "ww-sieve" || lower == "sieve") return Strategy::WWSieve;
  S3A_REQUIRE_MSG(false,
                  "unknown strategy '" + name +
                      "' (expected one of: MW, WW-POSIX, WW-List, WW-Coll, "
                      "WW-CollList, WW-FilePerProc, WW-Aggr, WW-Sieve)");
  S3A_UNREACHABLE();
}

}  // namespace s3asim::core
