#pragma once

/// \file strategy.hpp
/// The I/O strategies compared in the paper (§2), plus the extension its
/// conclusion proposes.

#include <string>

#include "util/require.hpp"

namespace s3asim::core {

enum class Strategy {
  /// Master-writing: workers ship scores *and* result data to the master,
  /// which writes each completed query region contiguously (§2.1).
  MW,
  /// Worker-writing with per-extent POSIX I/O (§2.3).
  WWPosix,
  /// Worker-writing with PVFS2-native list I/O (§2.3).
  WWList,
  /// Worker-writing with collective two-phase I/O, à la pioBLAST (§2.2).
  WWColl,
  /// Extension (paper §5): collective implemented as list I/O bracketed by
  /// synchronization, instead of ROMIO's two-phase.
  WWCollList,
  /// Extension ("new I/O algorithms", §5): file-per-process (N-N) — each
  /// worker appends its results contiguously to a private file as soon as
  /// they are computed (no offset lists, no waiting); the master assembles
  /// the final sorted file at the end by reading every private file back
  /// and list-writing it into place.
  WWFilePerProcess,
};

[[nodiscard]] constexpr const char* strategy_name(Strategy strategy) noexcept {
  switch (strategy) {
    case Strategy::MW: return "MW";
    case Strategy::WWPosix: return "WW-POSIX";
    case Strategy::WWList: return "WW-List";
    case Strategy::WWColl: return "WW-Coll";
    case Strategy::WWCollList: return "WW-CollList";
    case Strategy::WWFilePerProcess: return "WW-FilePerProc";
  }
  return "?";
}

/// True for every strategy where workers write their own results.
[[nodiscard]] constexpr bool worker_writes(Strategy strategy) noexcept {
  return strategy != Strategy::MW;
}

/// True when the write path is a collective operation (all workers
/// participate in every I/O round).
[[nodiscard]] constexpr bool is_collective(Strategy strategy) noexcept {
  return strategy == Strategy::WWColl || strategy == Strategy::WWCollList;
}

[[nodiscard]] inline Strategy parse_strategy(const std::string& name) {
  if (name == "MW" || name == "mw") return Strategy::MW;
  if (name == "WW-POSIX" || name == "ww-posix" || name == "posix")
    return Strategy::WWPosix;
  if (name == "WW-List" || name == "ww-list" || name == "list")
    return Strategy::WWList;
  if (name == "WW-Coll" || name == "ww-coll" || name == "coll")
    return Strategy::WWColl;
  if (name == "WW-CollList" || name == "ww-colllist" || name == "colllist")
    return Strategy::WWCollList;
  if (name == "WW-FilePerProc" || name == "ww-fileperproc" || name == "nn" ||
      name == "file-per-process")
    return Strategy::WWFilePerProcess;
  S3A_REQUIRE_MSG(false, "unknown strategy '" + name + "'");
  return Strategy::MW;  // unreachable
}

}  // namespace s3asim::core
