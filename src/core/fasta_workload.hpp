#pragma once

/// \file fasta_workload.hpp
/// Bridges real sequence data into the simulator: derives a WorkloadConfig's
/// histograms, query count, and database size from FASTA files (or parsed
/// sequences), the way the paper derived its workload from the NCBI NT
/// database ("In order to get the characteristics of an NCBI database, we
/// chose the NT database ... We used the same histogram to represent our
/// input query set", §3.3).

#include <span>
#include <string>

#include "bio/sequence.hpp"
#include "core/config.hpp"

namespace s3asim::core {

/// Replaces `config`'s database histogram and on-disk size with statistics
/// measured from `database` (length histogram over `bins` geometric bins;
/// database_bytes = total residues).
void apply_database_sequences(WorkloadConfig& config,
                              std::span<const bio::Sequence> database,
                              unsigned bins = 16);

/// Replaces `config`'s query histogram and query count with statistics from
/// `queries`.
void apply_query_sequences(WorkloadConfig& config,
                           std::span<const bio::Sequence> queries,
                           unsigned bins = 8);

/// Convenience: reads both FASTA files and applies them on top of `base`.
/// Throws std::runtime_error on unreadable files, std::invalid_argument on
/// empty ones.
[[nodiscard]] WorkloadConfig workload_from_fasta(
    const std::string& database_path, const std::string& query_path,
    WorkloadConfig base = {});

}  // namespace s3asim::core
