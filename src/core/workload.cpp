#include "core/workload.hpp"

#include <algorithm>
#include <numeric>

#include "util/require.hpp"

namespace s3asim::core {

WorkloadModel::WorkloadModel(WorkloadConfig config) : config_(std::move(config)) {
  S3A_REQUIRE(config_.query_count >= 1);
  S3A_REQUIRE(config_.fragment_count >= 1);
  S3A_REQUIRE(config_.result_count_min >= 1);
  S3A_REQUIRE(config_.result_count_min <= config_.result_count_max);
  S3A_REQUIRE(config_.size_scale > 0.0);
  S3A_REQUIRE_MSG(config_.query_lengths.empty() ||
                      config_.query_lengths.size() == config_.query_count,
                  "query_lengths must be empty or one entry per query");
  cache_.resize(config_.query_count);
  region_base_cache_.assign(config_.query_count, UINT64_MAX);
}

void WorkloadModel::generate(std::uint32_t q) const {
  S3A_REQUIRE(q < config_.query_count);
  if (cache_[q]) return;

  // Independent stream per query: results do not depend on generation order.
  util::Xoshiro256 root(config_.seed);
  util::Xoshiro256 rng = root.fork(util::hash_combine(0x51e5, q));

  auto workload = std::make_unique<QueryWorkload>();
  // Trace replay pins each query's length to the trace's `query_size`
  // column; the histogram path (and its RNG draw order) is untouched when
  // no override is present, keeping closed-batch workloads byte-identical.
  workload->query_length = config_.query_lengths.empty()
                               ? config_.query_histogram.sample(rng)
                               : config_.query_lengths[q];

  const std::uint32_t count = static_cast<std::uint32_t>(
      rng.uniform_u64(config_.result_count_min, config_.result_count_max));
  workload->results.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ResultInfo result;
    result.score = rng();
    const std::uint64_t db_len = config_.database_histogram.sample(rng);
    // Paper §3: result size ranges from the minimum result size up to
    // 3 × max(query length, matching database sequence length).
    const double raw_cap =
        config_.size_scale *
        3.0 * static_cast<double>(std::max(workload->query_length, db_len));
    const auto cap = std::max(
        config_.min_result_bytes,
        static_cast<std::uint64_t>(raw_cap));
    result.bytes = rng.uniform_u64(config_.min_result_bytes, cap);
    result.fragment = static_cast<std::uint32_t>(
        rng.uniform_u64(0, config_.fragment_count - 1));
    workload->results.push_back(result);
  }

  // Final file order: descending score (stable tiebreak on index keeps the
  // order deterministic even under score collisions).
  std::vector<std::uint32_t> order(workload->results.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return workload->results[a].score >
                            workload->results[b].score;
                   });
  std::vector<ResultInfo> sorted;
  sorted.reserve(workload->results.size());
  for (const std::uint32_t index : order)
    sorted.push_back(workload->results[index]);
  workload->results = std::move(sorted);

  workload->offsets.resize(workload->results.size());
  workload->by_fragment.assign(config_.fragment_count, {});
  std::uint64_t cursor = 0;
  for (std::uint32_t i = 0; i < workload->results.size(); ++i) {
    workload->offsets[i] = cursor;
    cursor += workload->results[i].bytes;
    workload->by_fragment[workload->results[i].fragment].push_back(i);
  }
  workload->total_bytes = cursor;
  cache_[q] = std::move(workload);
}

const QueryWorkload& WorkloadModel::query(std::uint32_t q) const {
  generate(q);
  return *cache_[q];
}

std::uint64_t WorkloadModel::region_base(std::uint32_t q) const {
  S3A_REQUIRE(q < config_.query_count);
  if (region_base_cache_[q] != UINT64_MAX) return region_base_cache_[q];
  std::uint64_t base = 0;
  for (std::uint32_t earlier = 0; earlier < q; ++earlier)
    base += query(earlier).total_bytes;
  region_base_cache_[q] = base;
  return base;
}

std::uint64_t WorkloadModel::total_output_bytes() const {
  const std::uint32_t last = config_.query_count - 1;
  return region_base(last) + query(last).total_bytes;
}

std::uint64_t WorkloadModel::total_result_count() const {
  std::uint64_t total = 0;
  for (std::uint32_t q = 0; q < config_.query_count; ++q)
    total += query(q).results.size();
  return total;
}

std::uint64_t WorkloadModel::fragment_result_bytes(std::uint32_t q,
                                                   std::uint32_t fragment) const {
  S3A_REQUIRE(fragment < config_.fragment_count);
  const QueryWorkload& workload = query(q);
  std::uint64_t total = 0;
  for (const std::uint32_t index : workload.by_fragment[fragment])
    total += workload.results[index].bytes;
  return total;
}

}  // namespace s3asim::core
