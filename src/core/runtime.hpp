#pragma once

/// \file runtime.hpp
/// The *mechanism* layer of the simulation: the shared `World`, the
/// per-group `App`, and the master/worker runtimes (Algorithms 1 and 2)
/// split across `master_runtime.cpp` / `worker_runtime.cpp`.  The runtimes
/// own scheduling, fault detection/recovery, pumps, and phase accounting;
/// everything strategy-specific is delegated to the group's `IoStrategy`
/// (see strategies/io_strategy.hpp).  Internal to core — not part of the
/// public simulation API (that is simulation.hpp).

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "core/membership.hpp"
#include "core/obs_bridge.hpp"
#include "core/serving.hpp"
#include "core/simulation.hpp"
#include "core/strategies/io_strategy.hpp"
#include "fault/fault.hpp"
#include "mpi/comm.hpp"
#include "mpiio/file.hpp"
#include "pfs/pfs.hpp"
#include "sim/barrier.hpp"
#include "sim/channel.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"
#include "sim/timer.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace s3asim::core {

/// The cost-model PFS parameters with the fault plan's server faults
/// appended as degradations (the fault module is pfs-agnostic; the
/// translation happens at world construction).
[[nodiscard]] pfs::PfsParams faulted_pfs(const SimConfig& cfg);

/// Everything shared by all groups: the cluster, the file system, the
/// deterministic workload, and the per-rank statistics.
struct World {
  World(const SimConfig& cfg, std::uint32_t ranks);

  /// Arms the observability sinks (no-op for a default-constructed
  /// `Observability`): wires the PFS/MPI observer bridge, the scheduler
  /// profiler, and the trace log's drop counter.
  void attach_observability(const Observability& observe);

  const SimConfig& config;
  WorkloadModel workload;
  sim::Scheduler scheduler;
  net::Network network;
  mpi::Comm comm;
  pfs::Pfs fs;
  std::vector<RankStats> rank_stats;
  trace::TraceLog* trace_log = nullptr;
  obs::Registry* metrics = nullptr;
  std::unique_ptr<ObsBridge> obs_bridge;
};

/// One master/worker group: under plain database segmentation there is a
/// single group spanning all ranks and all queries; under hybrid query/
/// database segmentation (paper §5 future work) each group owns a slice of
/// the queries, its own master, and its own output file.
struct App {
  App(World& w, mpi::Rank master_rank, std::vector<mpi::Rank> worker_ranks,
      std::vector<std::uint32_t> query_ids);

  World& world;
  const SimConfig& config;
  WorkloadModel& workload;
  sim::Scheduler& scheduler;
  net::Network& network;
  mpi::Comm& comm;
  pfs::Pfs& fs;
  std::vector<RankStats>& rank_stats;
  trace::TraceLog* trace_log = nullptr;

  mpi::Rank master;
  std::vector<mpi::Rank> workers;
  /// Global query ids.  Closed batch: fixed at construction, ascending.
  /// Serving mode: starts empty and grows in dispatch order (shed queries
  /// never appear) — `region_bases` and `group_output_bytes` grow in step,
  /// so the file layout packs admitted queries back to back.
  std::vector<std::uint32_t> queries;
  sim::Barrier query_barrier;  ///< the "query sync" barrier (§3.3: workers only)
  std::vector<std::uint64_t> region_bases;  ///< group-file offset per local query
  std::uint64_t group_output_bytes = 0;

  /// The group's I/O policy and the capability bundle its hooks see.  The
  /// env's trace_log is synced from `trace_log` in `launch_group` (drivers
  /// assign the app's after construction — and the resume tail leaves it
  /// null on purpose).
  std::unique_ptr<IoStrategy> strategy;
  std::unique_ptr<StrategyEnv> env;

  /// Per-worker inbound event queues fed by pump processes.
  std::map<mpi::Rank, std::unique_ptr<sim::Channel<mpi::Message>>> events;

  /// Master-side priority split: Algorithm 1 *blocks* on work requests
  /// (step 3) and only *tests* score receives (step 10), so requests are
  /// served before queued score processing.  Pumps deposit messages here
  /// and push a wake token into the matching wake channel.
  std::deque<mpi::Message> master_requests;
  std::deque<mpi::Message> master_scores;
  std::unique_ptr<sim::Channel<int>> request_wake;
  std::unique_ptr<sim::Channel<int>> scores_wake;

  /// Open-loop serving state (ISSUE 6): non-null only when
  /// `config.serving.enabled()` — the master runs its serving loop and an
  /// arrival process feeds the admission queue.  Closed-batch runs never
  /// consult it.
  std::unique_ptr<ServingContext> serving;

  // ---- Cluster membership (ISSUE 10). ------------------------------------
  /// The group's membership ledger: lifecycle, speed classes, epoch.
  /// Always present; on a fixed-membership run every worker is Active from
  /// t=0 and the registry is pure host-side bookkeeping.
  std::unique_ptr<WorkerRegistry> registry;
  /// One cancellable timer per scheduled joiner (`joins = …`): the worker
  /// waits it out, then starts the join handshake.  Cancelled at master
  /// teardown so stragglers never inflate the wall clock.
  std::map<mpi::Rank, std::unique_ptr<sim::Timer>> join_timers;
  /// One activation channel per elastic standby: the autoscaler pushes a
  /// token to summon the worker into the cluster; closed at teardown.
  std::map<mpi::Rank, std::unique_ptr<sim::Channel<int>>> activations;
  /// Elastic autoscaler (serving mode): queue-depth target + cooldown.
  std::unique_ptr<AutoscalePolicy> autoscaler;

  // ---- Fault-injection / recovery state (inert on failure-free runs). ----
  /// True when the plan perturbs workers: the master runs its
  /// recovery-capable loop and arms per-worker failure detectors.
  bool recovery_mode = false;
  /// Per-worker failure detector: the master arms `timer` whenever the
  /// worker owes results and pushes a token into `armed`; the probe process
  /// pops the token, waits out the timer, and on expiry injects a synthetic
  /// kTagFailure message into the master's request queue.
  struct ProbeCtl {
    std::unique_ptr<sim::Timer> timer;
    std::unique_ptr<sim::Channel<int>> armed;
  };
  std::map<mpi::Rank, std::unique_ptr<ProbeCtl>> probes;
  /// One cancellable timer per planned kill (owned here so the master can
  /// disarm stragglers at teardown without inflating the wall clock).
  std::vector<std::unique_ptr<sim::Timer>> reaper_timers;
  std::set<mpi::Rank> dead;                 ///< workers that fail-stopped
  std::map<mpi::Rank, sim::Time> death_times;
  FaultStats faults;
  /// Simulated instant each flushed batch was retired by the master (MW:
  /// after the durable region write; WW: when the offset lists were
  /// dispatched — workers flush immediately after).  Feeds resume-from-flush.
  std::vector<sim::Time> batch_complete_times;

  std::unique_ptr<mpiio::File> file;
  /// The on-disk database, present when workload.database_bytes > 0.
  std::unique_ptr<mpiio::File> database_file;

  // Database-streaming model.
  [[nodiscard]] bool models_database_io() const noexcept {
    return config.workload.database_bytes > 0;
  }
  [[nodiscard]] std::uint64_t fragment_bytes() const noexcept {
    return config.workload.database_bytes / config.workload.fragment_count;
  }
  [[nodiscard]] std::size_t cache_capacity() const noexcept {
    if (!models_database_io() || fragment_bytes() == 0) return 0;
    return static_cast<std::size_t>(config.worker_memory_bytes /
                                    fragment_bytes());
  }
  /// True when `db_chunk_bytes` interleaves the database file: fragment
  /// loads become strided extent lists instead of one contiguous read.
  [[nodiscard]] bool interleaved_database() const noexcept {
    return models_database_io() && config.workload.db_chunk_bytes > 0 &&
           config.workload.db_chunk_bytes < fragment_bytes();
  }
  /// The extent list of one fragment under the interleaved layout: chunk c
  /// belongs to fragment c mod F, so fragment f owns chunks f, f+F, f+2F, …
  /// clipped to database_bytes.  Requires `interleaved_database()`.
  [[nodiscard]] std::vector<pfs::Extent> fragment_extents(
      std::uint32_t fragment) const {
    const std::uint64_t chunk = config.workload.db_chunk_bytes;
    const std::uint64_t db = config.workload.database_bytes;
    const std::uint32_t count = config.workload.fragment_count;
    std::vector<pfs::Extent> extents;
    for (std::uint64_t c = fragment; c * chunk < db; c += count)
      extents.push_back(
          {c * chunk, std::min<std::uint64_t>(chunk, db - c * chunk)});
    return extents;
  }

  // Derived mode flags.
  [[nodiscard]] bool per_query_msgs_to_all() const noexcept {
    return env->per_query_msgs_to_all;
  }
  [[nodiscard]] std::uint32_t nworkers() const noexcept {
    return static_cast<std::uint32_t>(workers.size());
  }
  [[nodiscard]] std::uint32_t query_count() const noexcept {
    return static_cast<std::uint32_t>(queries.size());
  }
  [[nodiscard]] std::uint32_t batch_of(std::uint32_t local_query) const noexcept {
    return local_query / config.queries_per_flush;
  }
  [[nodiscard]] std::uint32_t batch_last_query(std::uint32_t batch) const noexcept {
    return std::min(query_count(), (batch + 1) * config.queries_per_flush) - 1;
  }

  /// Offset of local query q's region within the group's output file.
  [[nodiscard]] std::uint64_t region_base(std::uint32_t local_query) const {
    return region_bases[local_query];
  }

  /// Worker `rank`'s effective search speed: the global multiplier scaled
  /// by the registry's capability factor (speed class × the deterministic
  /// per-rank jitter; `1.0 × jitter` exactly when no classes are
  /// configured, so homogeneous runs are bit-identical to the
  /// pre-registry formula).
  [[nodiscard]] double worker_speed(mpi::Rank rank) const {
    return config.compute_speed * registry->speed_factor(rank);
  }

  [[nodiscard]] sim::Time compute_time(std::uint32_t query,
                                       std::uint32_t fragment,
                                       mpi::Rank rank) const;

  void record_phase(mpi::Rank rank, Phase phase, sim::Time start, sim::Time end) {
    rank_stats[rank].phases.add(phase, end - start);
    if (trace_log != nullptr && end > start)
      trace_log->record(rank, phase_name(phase), start, end);
  }
};

/// Scoped-ish phase timing around co_await points.
#define S3A_PHASE(app, rank, phase, ...)                          \
  do {                                                            \
    const sim::Time s3a_phase_start__ = (app).scheduler.now();    \
    __VA_ARGS__;                                                  \
    (app).record_phase((rank), (phase), s3a_phase_start__,        \
                       (app).scheduler.now());                    \
  } while (0)

// ---- master_runtime.cpp (Algorithm 1) -------------------------------------
sim::Process master_process(App& app);
sim::Process master_request_pump(App& app);
sim::Process master_scores_pump(App& app);
/// Dynamic membership only: receives kTagJoin handshakes and queues them
/// on the master's request stream (joins are served with request priority).
sim::Process master_join_pump(App& app);
sim::Process worker_probe(App& app, mpi::Rank rank);
/// Serving mode only: fires each arrival at its simulated time, admits or
/// sheds it, and wakes the master's serving loop.
sim::Process serving_arrival_process(App& app);

// ---- worker_runtime.cpp (Algorithm 2) -------------------------------------
sim::Process worker_process(App& app, mpi::Rank rank);
sim::Process worker_stream_pump(App& app, mpi::Rank rank);
sim::Process worker_reaper(App& app, mpi::Rank rank, sim::Time kill_at,
                           sim::Timer& timer);

// ---- runtime.cpp ----------------------------------------------------------
/// Spawns one group's master, workers, pumps, and (under a fault plan) the
/// per-worker reapers and failure detectors.
void launch_group(App& app);

/// Runs the world's event loop to quiescence under the configured engine
/// (`config.engine`): serial mode calls `scheduler.run()` directly;
/// parallel mode executes the same scheduler through `sim::LpScheduler`'s
/// lookahead windows, which retires events in the identical (time, seq)
/// order — bit-identical results by construction.
///
/// Process→LP assignment: the full S3aSim model forms a *single* cluster
/// LP today.  The mpi/pfs capability layer shares state across ranks at
/// zero simulated offset (a send's Request completes at delivery time and
/// wakes the sender, a PFS server's Gate open wakes its client in the same
/// instant, the scratch pool and FileImage are shared), so no cut along
/// rank boundaries satisfies the engine's lookahead contract.  Models
/// built natively on LPs (core/scale_model.hpp) partition per rank/server
/// and are where multi-threaded windows pay off; see DESIGN.md §9.
std::size_t run_world(World& world);

/// Rejects fault plans that name ranks outside the worker set, and
/// strategy/fault combinations that cannot make progress.  Called before
/// the World is built — spawned server processes would outlive a throwing
/// constructor path.
void validate_fault_plan(const SimConfig& config,
                         const std::set<mpi::Rank>& valid);

// ---- obs_bridge.cpp -------------------------------------------------------
/// Collects run-wide statistics after the scheduler has drained (and, when
/// a metrics registry is attached, publishes the end-of-run aggregates).
RunStats collect_stats(World& world,
                       const std::vector<std::unique_ptr<App>>& groups);

}  // namespace s3asim::core
