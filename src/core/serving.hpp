#pragma once

/// \file serving.hpp
/// The open-loop serving layer (online multi-tenant query streams).
///
/// The paper evaluates each I/O strategy under a closed batch: every query
/// exists at t=0 and the metric is makespan.  A production search service
/// sees the opposite regime — queries *arrive* continuously from multiple
/// tenants, and the metrics are end-to-end latency tails and goodput under
/// offered load.  This header holds the pure data structures of that
/// regime: deterministic arrival generation (per-tenant Poisson streams or
/// trace replay), the bounded admission queue with its dispatch policies,
/// and the master-side serving context.  The simulated-time glue (the
/// arrival process and the serving master loop) lives in the runtime.
///
/// Everything here is inert unless `SimConfig::serving.enabled()` —
/// closed-batch runs take none of these paths and stay byte-identical.

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "sim/time.hpp"

namespace s3asim::core {

/// One offered query of the open-loop stream.  Arrivals are time-sorted
/// and the vector index *is* the global query id, so the workload model's
/// per-query determinism carries over unchanged.
struct Arrival {
  sim::Time at = 0;
  std::uint32_t tenant = 0;
};

/// One parsed arrival-trace row (`t_seconds, tenant, query_size`).
struct TraceArrival {
  double seconds = 0.0;
  std::uint32_t tenant = 0;
  std::uint64_t query_bytes = 0;
};

/// The tenant set a serving run actually uses: the configured tenants, or
/// a single synthetic "default" tenant when none were declared.
[[nodiscard]] std::vector<TenantConfig> effective_tenants(
    const ServingConfig& serving);

/// Absolute per-tenant Poisson rates in queries/second.  When the
/// aggregate `arrival_rate_hz` is set alongside explicit tenants, the
/// per-tenant `rate_hz` values are treated as relative shares of it.
[[nodiscard]] std::vector<double> tenant_rates(const ServingConfig& serving);

/// The full arrival list of a run, one entry per offered query: trace rows
/// when replaying, else `workload.query_count` arrivals drawn from the
/// per-tenant Poisson streams (exponential gaps from forked RNG streams,
/// k-way merged by time with the tenant index as tie-break).  Depends only
/// on (seed, serving config) — never on strategy or scheduling.
[[nodiscard]] std::vector<Arrival> generate_arrivals(
    const ServingConfig& serving, const WorkloadConfig& workload);

/// Parses a `tenants` config value: '|'-separated
/// `name:rate=R,weight=W,priority=P` entries (every field after the name
/// optional).  Throws std::invalid_argument on malformed input.
[[nodiscard]] std::vector<TenantConfig> parse_tenants(const std::string& spec);

/// Parses arrival-trace text (CSV `t_seconds, tenant, query_size`; blank
/// lines and `#` comments skipped).  Timestamps must be non-decreasing and
/// sizes positive.  Tenant names resolve against `tenants`; when the list
/// starts empty, tenants are registered in first-appearance order,
/// otherwise an unknown name is rejected with the declared set named in
/// the error.  Throws std::invalid_argument with 1-based line info.
[[nodiscard]] std::vector<TraceArrival> parse_arrival_trace(
    const std::string& text, std::vector<TenantConfig>& tenants);

/// Loads `config.serving.arrival_trace` from disk and rewrites the config
/// for replay: `trace_arrivals`, the tenant set, `workload.query_count`,
/// and `workload.query_lengths`.  Called by the config loader; throws
/// std::runtime_error when the file is unreadable.
void apply_arrival_trace(SimConfig& config);

[[nodiscard]] AdmitPolicy parse_admit_policy(const std::string& name);
[[nodiscard]] const char* admit_policy_name(AdmitPolicy policy) noexcept;

/// Rejects serving configurations the runtime cannot honor, with
/// actionable messages (queries_per_flush != 1, fault plans, unloaded
/// traces, degenerate tenant sets).  No-op when serving is disabled.
void validate_serving(const SimConfig& config);

/// An admitted-but-undispatched query.
struct Admitted {
  std::uint32_t query = 0;  ///< global query id
  std::uint32_t tenant = 0;
  sim::Time arrived = 0;
  double virtual_finish = 0.0;  ///< weighted-fair ordering key
  std::uint64_t seq = 0;        ///< admission order (FIFO key / tie-break)
};

/// Bounded admission queue with pluggable dispatch order.  An arrival that
/// finds `depth` queries already waiting is shed (counted per tenant,
/// never dispatched).  Pop order: FIFO = admission order; WeightedFair =
/// start-time fair queuing over tenant weights (virtual finish times);
/// Priority = lowest tenant priority class first, FIFO within a class.
class AdmissionQueue {
 public:
  AdmissionQueue(AdmitPolicy policy, std::uint32_t depth,
                 std::vector<TenantConfig> tenants);

  /// Admits or sheds one arrival; returns true when admitted.
  bool offer(std::uint32_t query, std::uint32_t tenant, sim::Time arrived);

  /// Pops the next query per policy; the queue must not be empty.
  [[nodiscard]] Admitted pop();

  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::uint64_t shed_total() const noexcept {
    return shed_total_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& shed_by_tenant()
      const noexcept {
    return shed_;
  }

 private:
  AdmitPolicy policy_;
  std::uint32_t depth_;
  std::vector<TenantConfig> tenants_;
  std::deque<Admitted> entries_;  ///< admission order; pop scans per policy
  std::vector<double> tenant_finish_;  ///< WFQ per-tenant virtual finish
  double virtual_time_ = 0.0;          ///< WFQ virtual clock
  std::uint64_t seq_ = 0;
  std::vector<std::uint64_t> shed_;
  std::uint64_t shed_total_ = 0;
};

/// Master-side serving state: the arrival stream, the admission queue,
/// backpressure accounting, and the per-tenant latency record.  Owned by
/// the App; mutated only by the arrival process and the serving master
/// loop (both simulated-time, single group — no synchronization needed).
struct ServingContext {
  explicit ServingContext(const SimConfig& config);

  std::vector<TenantConfig> tenants;  ///< normalized (at least one entry)
  std::vector<Arrival> arrivals;      ///< arrivals[q] = offered query q
  std::uint64_t inflight_watermark = 0;  ///< 0 = backpressure disabled

  AdmissionQueue queue;

  std::uint32_t next_arrival = 0;  ///< cursor of the arrival process
  bool arrivals_open = true;       ///< false once every arrival has fired
  std::uint64_t inflight_bytes = 0;  ///< dispatched-but-unretired output
  std::uint64_t inflight_peak_bytes = 0;
  std::uint32_t dispatched = 0;

  std::vector<std::uint64_t> offered;    ///< per tenant
  std::vector<std::uint64_t> completed;  ///< per tenant
  /// Per-tenant end-to-end latencies (arrival → final retirement), in
  /// completion order.
  std::vector<std::vector<sim::Time>> latencies;

  /// Arrival `query` fires: admit or shed.  Returns true when admitted.
  bool offer(std::uint32_t query);

  /// A query's region was handed to the dispatch path.
  void on_dispatch(std::uint64_t region_bytes);

  /// A query's results were durably retired: record latency, release
  /// backpressure bytes.
  void on_retired(std::uint32_t query, sim::Time now,
                  std::uint64_t region_bytes);

  /// Dispatch of *new* queries pauses while in-flight bytes sit at or
  /// above the watermark (retirements release it).
  [[nodiscard]] bool backpressured() const noexcept {
    return inflight_watermark > 0 && inflight_bytes >= inflight_watermark;
  }

  /// No query will ever be admitted again.
  [[nodiscard]] bool drained() const noexcept {
    return !arrivals_open && queue.empty();
  }

  [[nodiscard]] std::uint64_t offered_total() const noexcept;
  [[nodiscard]] std::uint64_t completed_total() const noexcept;
};

/// Elastic scaling policy (ISSUE 10): holds a demand target and a
/// cooldown, and decides — one step per serving-loop wake — whether to
/// summon a standby (+1), drain the most recently joined active worker
/// (−1), or hold (0).  Pure arithmetic over the registry's counters;
/// the master owns the actual transitions.
class AutoscalePolicy {
 public:
  AutoscalePolicy(double target_depth, sim::Time cooldown)
      : target_depth_(target_depth), cooldown_(cooldown) {}

  /// `demand` is the outstanding work the cluster is answerable for:
  /// admission-queue length plus dispatched-but-unretired queries.
  /// Counting the in-service query matters — a lone arrival dispatches
  /// immediately (queue depth stays 0), yet with `target <= 1` the
  /// summoned workers still accelerate it mid-query, because fragments
  /// of the running query redistribute to every joiner.  `joining`
  /// gates both directions (one membership change in flight at a time
  /// keeps the signal honest).  Scale-up needs the stream open and
  /// demand at/over target; scale-down needs zero demand and more than
  /// `min_active` workers.  Each decision re-arms the cooldown.
  [[nodiscard]] int decide(std::size_t demand, std::uint32_t active,
                           std::uint32_t joining, std::uint32_t min_active,
                           bool arrivals_open, sim::Time now) {
    if (joining > 0) return 0;
    if (now < ready_at_) return 0;
    if (arrivals_open && static_cast<double>(demand) >= target_depth_) {
      ready_at_ = now + cooldown_;
      return +1;
    }
    if (demand == 0 && active > min_active) {
      ready_at_ = now + cooldown_;
      return -1;
    }
    return 0;
  }

  [[nodiscard]] double target_depth() const noexcept { return target_depth_; }

 private:
  double target_depth_;
  sim::Time cooldown_;
  sim::Time ready_at_ = 0;
};

}  // namespace s3asim::core
