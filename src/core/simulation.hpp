#pragma once

/// \file simulation.hpp
/// The S3aSim application: master (Algorithm 1) + workers (Algorithm 2)
/// over the simulated MPI / MPI-IO / PVFS2 stack, for any of the I/O
/// strategies of §2.  `run_simulation` executes one full run and returns
/// the per-phase statistics the paper's figures are built from.

#include "core/config.hpp"
#include "core/stats.hpp"
#include "core/workload.hpp"
#include "trace/trace.hpp"

namespace s3asim::core {

/// Runs one simulation to completion.
///
/// Invariants verified on return (see DESIGN.md §5):
///  * the output file is covered exactly [0, total) with zero overlap
///    (reported in RunStats; asserted by callers/tests);
///  * per-rank phase times sum to that rank's wall time.
///
/// If `trace` is non-null, every phase interval of every rank is recorded.
[[nodiscard]] RunStats run_simulation(const SimConfig& config,
                                      trace::TraceLog* trace_log = nullptr);

/// Hybrid query/database segmentation (§5 future work): the ranks are split
/// into `groups` independent master/worker teams sharing the cluster and
/// the file system; the queries are divided round-robin across teams
/// (query segmentation), and each team database-segments its searches
/// internally.  Each team writes its own output file.
///
/// Requirements: nprocs divisible by `groups`, ≥ 2 ranks per group, and at
/// least one query per group.
[[nodiscard]] RunStats run_hybrid_simulation(const SimConfig& config,
                                             std::uint32_t groups,
                                             trace::TraceLog* trace_log = nullptr);

}  // namespace s3asim::core
