#pragma once

/// \file simulation.hpp
/// The S3aSim application: master (Algorithm 1) + workers (Algorithm 2)
/// over the simulated MPI / MPI-IO / PVFS2 stack, for any of the I/O
/// strategies of §2.  `run_simulation` executes one full run and returns
/// the per-phase statistics the paper's figures are built from.

#include "core/config.hpp"
#include "core/stats.hpp"
#include "core/workload.hpp"
#include "obs/metrics.hpp"
#include "trace/trace.hpp"

namespace s3asim::core {

/// Observability sinks for one run; both optional and host-side only —
/// attaching them never perturbs simulated time or event order, so traced/
/// metered runs produce bit-identical results (DESIGN.md §8).
///
///  * `trace_log` — phase intervals, PFS request spans, MPI flow events,
///    fault/retirement markers (export: CSV, Gantt, Chrome trace JSON).
///  * `metrics`   — the dotted-name registry every layer publishes into
///    (live service-time/message histograms + end-of-run aggregates; see
///    docs/OBSERVABILITY.md for the catalog).
struct Observability {
  trace::TraceLog* trace_log = nullptr;
  obs::Registry* metrics = nullptr;

  [[nodiscard]] bool enabled() const noexcept {
    return trace_log != nullptr || metrics != nullptr;
  }
};

/// Runs one simulation to completion.
///
/// Invariants verified on return (see DESIGN.md §5):
///  * the output file is covered exactly [0, total) with zero overlap
///    (reported in RunStats; asserted by callers/tests);
///  * per-rank phase times sum to that rank's wall time.
///
/// If `trace` is non-null, every phase interval of every rank is recorded.
[[nodiscard]] RunStats run_simulation(const SimConfig& config,
                                      trace::TraceLog* trace_log = nullptr);

/// As above, with full observability sinks (trace + metrics registry).
[[nodiscard]] RunStats run_simulation(const SimConfig& config,
                                      const Observability& observe);

/// Hybrid query/database segmentation (§5 future work): the ranks are split
/// into `groups` independent master/worker teams sharing the cluster and
/// the file system; the queries are divided round-robin across teams
/// (query segmentation), and each team database-segments its searches
/// internally.  Each team writes its own output file.
///
/// Requirements: nprocs divisible by `groups`, ≥ 2 ranks per group, and at
/// least one query per group.
[[nodiscard]] RunStats run_hybrid_simulation(const SimConfig& config,
                                             std::uint32_t groups,
                                             trace::TraceLog* trace_log = nullptr);

/// As above, with full observability sinks.
[[nodiscard]] RunStats run_hybrid_simulation(const SimConfig& config,
                                             std::uint32_t groups,
                                             const Observability& observe);

/// Result of a crash/resume experiment (`config.fault.crash_at`).
struct ResumeOutcome {
  bool crashed = false;          ///< the crash landed before completion
  std::uint32_t resume_query = 0;  ///< first query recomputed after restart
  double crashed_seconds = 0.0;  ///< simulated time lost to the failed run
  double resumed_seconds = 0.0;  ///< wall time of the resumed tail run
  double total_seconds = 0.0;    ///< crashed + resumed (or full wall if no crash)
  RunStats full;     ///< the run replayed without the crash (baseline + batch timeline)
  RunStats resumed;  ///< the tail run (valid only when crashed and work remained)
};

/// Driver-level resume-from-flush (the fault plan's `crash:at=T` clause):
/// runs the workload, and if the crash time precedes completion, restarts
/// from the last query batch whose results were durably flushed before the
/// crash, re-running only the remaining queries (single-group runs only).
/// Injected worker/server faults apply to the crashed attempt, not the
/// clean restart.
[[nodiscard]] ResumeOutcome run_with_resume(const SimConfig& config,
                                            trace::TraceLog* trace_log = nullptr);

/// As above, with full observability sinks (counters accumulate across the
/// crashed attempt and the resumed tail).
[[nodiscard]] ResumeOutcome run_with_resume(const SimConfig& config,
                                            const Observability& observe);

}  // namespace s3asim::core
