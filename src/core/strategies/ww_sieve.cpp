/// \file ww_sieve.cpp
/// WW-Sieve (docs/IO_MODEL.md §4): independent worker writes through ROMIO
/// data sieving — contiguous sieve-buffer windows with read-modify-write
/// hole protection.

#include "core/strategies/registry.hpp"
#include "core/strategies/ww_independent.hpp"

namespace s3asim::core {

namespace {

class WwSieveStrategy final : public WwIndependentStrategy {
 public:
  WwSieveStrategy() : WwIndependentStrategy(mpiio::NoncontigMethod::Sieve) {}
  [[nodiscard]] Strategy id() const noexcept override {
    return Strategy::WWSieve;
  }
};

}  // namespace

std::unique_ptr<IoStrategy> make_ww_sieve_strategy() {
  return std::make_unique<WwSieveStrategy>();
}

}  // namespace s3asim::core
