/// \file ww_list.cpp
/// WW-List (§2.3): independent worker writes through PVFS2-native list I/O
/// — all of a flush's extents in one request.

#include "core/strategies/registry.hpp"
#include "core/strategies/ww_independent.hpp"

namespace s3asim::core {

namespace {

class WwListStrategy final : public WwIndependentStrategy {
 public:
  WwListStrategy() : WwIndependentStrategy(mpiio::NoncontigMethod::ListIo) {}
  [[nodiscard]] Strategy id() const noexcept override {
    return Strategy::WWList;
  }
};

}  // namespace

std::unique_ptr<IoStrategy> make_ww_list_strategy() {
  return std::make_unique<WwListStrategy>();
}

}  // namespace s3asim::core
