/// \file ww_coll.cpp
/// WW-Coll (§2.2): collective two-phase worker writes (ROMIO-style
/// `write_at_all`), à la pioBLAST.

#include "core/strategies/registry.hpp"
#include "core/strategies/ww_collective.hpp"

namespace s3asim::core {

namespace {

class WwCollStrategy final : public WwCollectiveStrategy {
 public:
  [[nodiscard]] Strategy id() const noexcept override {
    return Strategy::WWColl;
  }
};

}  // namespace

std::unique_ptr<IoStrategy> make_ww_coll_strategy() {
  return std::make_unique<WwCollStrategy>();
}

}  // namespace s3asim::core
