/// \file mw.cpp
/// Master-writing (§2.1): workers ship scores *and* full result payloads;
/// the master merges everything centrally and writes each completed batch
/// of query regions as one contiguous call.  The per-query messages workers
/// see under query sync are pure notifications.  `mw_nonblocking_io`
/// ablates §2.1's blocking-I/O observation: batch writes are spawned
/// asynchronously and drained at teardown.

#include <cmath>

#include "core/strategies/registry.hpp"
#include "sim/wait_group.hpp"

namespace s3asim::core {

namespace {

class MwStrategy;

sim::Process mw_async_write(MwStrategy& self, StrategyEnv& env,
                            std::uint32_t first_local, std::uint32_t last_local,
                            sim::WaitGroup& done);

class MwStrategy final : public IoStrategy {
 public:
  [[nodiscard]] Strategy id() const noexcept override { return Strategy::MW; }
  [[nodiscard]] bool worker_writes() const noexcept override { return false; }
  [[nodiscard]] bool offsets_are_notifications() const noexcept override {
    return true;
  }

  void attach(StrategyEnv& env) override {
    pending_writes_ = std::make_unique<sim::WaitGroup>(env.scheduler);
  }

  /// Write a batch of completed query regions as one contiguous call.
  sim::Task<void> write_batch(StrategyEnv& env, std::uint32_t first_local,
                              std::uint32_t last_local, bool record_io_phase) {
    const std::uint64_t base = env.offsets.region_base(first_local);
    const std::uint64_t end = env.offsets.region_base(last_local) +
                              env.offsets.region_length(last_local);
    const sim::Time start = env.now();
    co_await env.file->write_at(env.master, base, end - base, first_local);
    if (env.config.sync_after_write) co_await env.file->sync(env.master);
    // Asynchronous (mw_nonblocking_io) writes overlap the master's other
    // phases; only the blocking variant charges the I/O phase here.
    if (record_io_phase)
      env.record_phase(env.master, Phase::Io, start, env.now());
    env.count_write(env.master, end - base);
  }

  sim::Task<void> route_query_results(StrategyEnv& env, std::uint32_t local,
                                      const QueryContributors& contributors)
      override {
    // The master writes itself; per-query notifications (sync mode) go out
    // after the batch boundary, from retire_batch.
    (void)env;
    (void)local;
    (void)contributors;
    co_return;
  }

  sim::Task<void> retire_batch(StrategyEnv& env, std::uint32_t first_local,
                               std::uint32_t last_local) override {
    if (env.config.mw_nonblocking_io) {
      // §2.1 ablation: issue the write asynchronously and keep serving
      // requests; completion is collected at teardown.
      pending_writes_->add();
      env.scheduler.spawn(
          mw_async_write(*this, env, first_local, last_local, *pending_writes_));
    } else {
      co_await write_batch(env, first_local, last_local,
                           /*record_io_phase=*/true);
    }
    if (env.config.query_sync) notify_batch(env, first_local, last_local);
  }

  [[nodiscard]] sim::Time master_merge_extra(
      const StrategyEnv& env, std::uint32_t query,
      std::uint32_t fragment) const override {
    // Centralized result handling: the master pays per-byte processing of
    // the full shipped payload (§2.1).
    const std::uint64_t payload = env.offsets.result_bytes(query, fragment);
    return static_cast<sim::Time>(
        std::llround(static_cast<double>(payload) *
                     env.config.model.master_result_ns_per_byte));
  }

  sim::Task<void> master_teardown(
      StrategyEnv& env,
      const std::vector<QueryContributors>& contributors) override {
    (void)contributors;
    // Drain the outstanding nonblocking batch writes.  (The old per-gate
    // drain recorded one Io span per batch; those spans were contiguous, so
    // the single WaitGroup span charges the identical total.)
    if (pending_writes_->pending() > 0) {
      const sim::Time io_start = env.now();
      co_await pending_writes_->wait();
      env.record_phase(env.master, Phase::Io, io_start, env.now());
    }
  }

  [[nodiscard]] std::uint64_t score_payload_bytes(
      const StrategyEnv& env, std::uint32_t query,
      std::uint32_t fragment) const override {
    // Workers ship the result data itself alongside the scores.
    return env.offsets.result_bytes(query, fragment);
  }

  sim::Task<void> flush(StrategyEnv& env, mpi::Rank rank,
                        std::vector<pfs::Extent> extents,
                        std::uint32_t query_tag) override {
    (void)env;
    (void)rank;
    (void)extents;
    (void)query_tag;
    S3A_UNREACHABLE();  // notification-only: workers never flush under MW
    co_return;
  }

 private:
  /// Outstanding nonblocking batch writes (mw_nonblocking_io): one counting
  /// latch instead of one heap gate per batch.
  std::unique_ptr<sim::WaitGroup> pending_writes_;
};

sim::Process mw_async_write(MwStrategy& self, StrategyEnv& env,
                            std::uint32_t first_local, std::uint32_t last_local,
                            sim::WaitGroup& done) {
  co_await self.write_batch(env, first_local, last_local,
                            /*record_io_phase=*/false);
  done.done();
}

}  // namespace

std::unique_ptr<IoStrategy> make_mw_strategy() {
  return std::make_unique<MwStrategy>();
}

}  // namespace s3asim::core
