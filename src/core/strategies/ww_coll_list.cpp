/// \file ww_coll_list.cpp
/// WW-CollList (paper §5 extension): the collective implemented as list
/// I/O bracketed by synchronization instead of ROMIO's two-phase exchange —
/// selected purely through the file's MPI-IO hints.

#include "core/strategies/registry.hpp"
#include "core/strategies/ww_collective.hpp"

namespace s3asim::core {

namespace {

class WwCollListStrategy final : public WwCollectiveStrategy {
 public:
  [[nodiscard]] Strategy id() const noexcept override {
    return Strategy::WWCollList;
  }
  [[nodiscard]] mpiio::Hints file_hints(const SimConfig& config) const override {
    mpiio::Hints hints = config.hints;
    hints.collective_algorithm = mpiio::CollectiveAlgorithm::ListWithSync;
    return hints;
  }
};

}  // namespace

std::unique_ptr<IoStrategy> make_ww_coll_list_strategy() {
  return std::make_unique<WwCollListStrategy>();
}

}  // namespace s3asim::core
