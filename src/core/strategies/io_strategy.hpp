#pragma once

/// \file io_strategy.hpp
/// The pluggable I/O-strategy interface (ISSUE 5 / paper §2).
///
/// A strategy is the *policy* layer of one master/worker group: how result
/// regions are routed (offset lists vs. full payloads), how and by whom the
/// output file is written, and what happens at batch boundaries and at
/// teardown.  The *mechanism* — task scheduling, fault detection and
/// recovery, phase accounting, pumps — lives in the runtimes
/// (`master_runtime.cpp` / `worker_runtime.cpp`), which call the paired
/// hooks below.
///
/// Strategy implementations live one-per-translation-unit under
/// `src/core/strategies/` and are instantiated per group through
/// `make_strategy` (registry.hpp).  They see only the narrow capability
/// handles bundled in `StrategyEnv` — the offset service, the result
/// router, the group's shared file, and the model-layer handles — never
/// the runtime's `App`/`World` internals.

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/phases.hpp"
#include "core/stats.hpp"
#include "core/workload.hpp"
#include "mpi/comm.hpp"
#include "mpiio/file.hpp"
#include "net/network.hpp"
#include "pfs/pfs.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"
#include "trace/trace.hpp"

namespace s3asim::core {

/// (worker, fragment) pairs that contributed to one completed query.
using QueryContributors = std::vector<std::pair<mpi::Rank, std::uint32_t>>;

/// Offset service: the group's output-file layout.  Maps a group-local
/// query to its region and expands a worker's contributed fragments into
/// the coalesced file extents of its results (the offset lists of §2.2).
class OffsetService {
 public:
  OffsetService(const WorkloadModel& workload,
                const std::vector<std::uint32_t>& queries,
                const std::vector<std::uint64_t>& region_bases)
      : workload_(&workload), queries_(&queries), region_bases_(&region_bases) {}

  [[nodiscard]] std::uint32_t query_count() const noexcept {
    return static_cast<std::uint32_t>(queries_->size());
  }
  [[nodiscard]] std::uint32_t global_query(std::uint32_t local) const {
    return (*queries_)[local];
  }
  /// Offset of local query `local`'s region within the group's output file.
  [[nodiscard]] std::uint64_t region_base(std::uint32_t local) const {
    return (*region_bases_)[local];
  }
  [[nodiscard]] std::uint64_t region_length(std::uint32_t local) const {
    return workload_->query((*queries_)[local]).total_bytes;
  }
  /// Formatted size of one (query, fragment) result block (global query id).
  [[nodiscard]] std::uint64_t result_bytes(std::uint32_t query,
                                           std::uint32_t fragment) const {
    return workload_->fragment_result_bytes(query, fragment);
  }

  /// Extents (in the group file) of local query `local`'s results produced
  /// by one worker, in file order, adjacent results coalesced.
  [[nodiscard]] std::vector<pfs::Extent> worker_extents(
      std::uint32_t local, const std::vector<std::uint32_t>& fragments) const;

 private:
  const WorkloadModel* workload_;
  const std::vector<std::uint32_t>* queries_;
  const std::vector<std::uint64_t>* region_bases_;
};

/// Result router: master→worker control-stream sends (tag
/// kTagMasterToWorker) for offset lists and per-query notifications.  The
/// wire cost model (control bytes + per-offset-entry bytes) is applied
/// here so strategies never touch the protocol structs.
class ResultRouter {
 public:
  ResultRouter(mpi::Comm& comm, const ModelParams& model, mpi::Rank master,
               const std::vector<std::uint32_t>& queries)
      : comm_(&comm), model_(&model), master_(master), queries_(&queries) {}

  /// Fire-and-forget isend of local query `local`'s offset list to
  /// `worker`; an empty list is a per-query notification (MW/N-N sync
  /// modes).
  void send_offsets(mpi::Rank worker, std::uint32_t local,
                    std::vector<pfs::Extent> extents) const;

 private:
  mpi::Comm* comm_;
  const ModelParams* model_;
  mpi::Rank master_;
  const std::vector<std::uint32_t>* queries_;
};

/// The narrow capability bundle handed to strategy hooks — one per group,
/// assembled by the runtime.  Everything a strategy may touch is here.
struct StrategyEnv {
  StrategyEnv(sim::Scheduler& sched, const SimConfig& cfg, mpi::Comm& comm_ref,
              pfs::Pfs& fs_ref, net::Network& net_ref, mpi::Rank master_rank,
              const std::vector<mpi::Rank>& worker_ranks,
              std::vector<RankStats>& stats, OffsetService offset_service,
              ResultRouter result_router)
      : scheduler(sched),
        config(cfg),
        comm(comm_ref),
        fs(fs_ref),
        network(net_ref),
        master(master_rank),
        workers(worker_ranks),
        rank_stats(stats),
        offsets(offset_service),
        router(result_router) {}

  sim::Scheduler& scheduler;
  const SimConfig& config;
  mpi::Comm& comm;
  pfs::Pfs& fs;
  net::Network& network;
  mpi::Rank master;
  const std::vector<mpi::Rank>& workers;
  std::vector<RankStats>& rank_stats;
  OffsetService offsets;
  ResultRouter router;

  /// The group's shared output file; set by the runtime during master
  /// setup, before any worker passes its setup receive.
  mpiio::File* file = nullptr;
  /// Phase-interval sink; synced from the runtime at launch (null when the
  /// run is untraced — resumed tail runs stay untraced by design).
  trace::TraceLog* trace_log = nullptr;
  /// True when every worker receives a per-query offsets message
  /// (query-sync mode or a broadcasting strategy) — drives default routing.
  bool per_query_msgs_to_all = false;

  [[nodiscard]] sim::Time now() const { return scheduler.now(); }

  void record_phase(mpi::Rank rank, Phase phase, sim::Time start,
                    sim::Time end) const {
    rank_stats[rank].phases.add(phase, end - start);
    if (trace_log != nullptr && end > start)
      trace_log->record(rank, phase_name(phase), start, end);
  }

  void count_write(mpi::Rank rank, std::uint64_t bytes,
                   std::uint64_t writes = 1) const {
    rank_stats[rank].bytes_written += bytes;
    rank_stats[rank].writes_issued += writes;
  }
};

/// Paired master-side and worker-side hooks of one I/O strategy.  One
/// instance per group per run; instances may hold per-run state (private
/// files, pending-write latches, aggregation rounds).
///
/// The defaults implement the common worker-writing shape: offset lists
/// routed to contributors (to everyone in broadcast mode), no master
/// writes, no auxiliary files.  See DESIGN.md §2 for the hook-by-hook
/// walkthrough and the "adding a strategy" guide.
class IoStrategy {
 public:
  virtual ~IoStrategy() = default;

  [[nodiscard]] virtual Strategy id() const noexcept = 0;

  // ---- Traits: how the runtimes drive this strategy. ----------------------

  /// Workers write their own results (false only for MW).
  [[nodiscard]] virtual bool worker_writes() const noexcept { return true; }
  /// Every worker must receive a per-query offsets message even without
  /// contributing (collectives: everyone joins each round; WW-Aggr:
  /// aggregation groups advance in lockstep).
  [[nodiscard]] virtual bool broadcasts_offsets() const noexcept {
    return false;
  }
  /// The flush path blocks the worker process (collective or aggregated
  /// I/O): assignments for queries past the current batch are deferred
  /// until the pending flush completes (§2.3), and the master's failure
  /// detector treats flush-blocked silence as healthy.
  [[nodiscard]] virtual bool flush_blocks_process() const noexcept {
    return false;
  }
  /// Per-query messages carry no extents to place (MW, N-N): the worker
  /// treats them as batch-boundary notifications and never flushes.
  [[nodiscard]] virtual bool offsets_are_notifications() const noexcept {
    return false;
  }
  /// Whether the strategy can absorb mid-run membership changes (elastic
  /// autoscaling, scheduled joins).  Strategies that synchronize over a
  /// fixed worker cohort — collective write rounds, lockstep aggregation
  /// groups — must return false; validate_membership turns that into an
  /// actionable config error before the run starts.
  [[nodiscard]] virtual bool tolerates_membership_changes() const noexcept {
    return true;
  }

  // ---- Master-side hooks (Algorithm 1). -----------------------------------

  /// MPI-IO hints for the group's output file (WW-CollList swaps the
  /// collective algorithm).
  [[nodiscard]] virtual mpiio::Hints file_hints(const SimConfig& config) const {
    return config.hints;
  }

  /// Called once after the runtime is wired, before any simulated work.
  virtual void attach(StrategyEnv& env) { (void)env; }

  /// Setup-phase hook, after the group file (and database file) exist:
  /// create auxiliary files (N-N per-worker files).
  virtual sim::Task<void> master_setup(StrategyEnv& env);

  /// Result routing for one completed query (Algorithm 1, step 15):
  /// default sends offset lists to contributors (to all workers in
  /// broadcast mode); MW/N-N route nothing here.
  virtual sim::Task<void> route_query_results(
      StrategyEnv& env, std::uint32_t local, const QueryContributors& contributors);

  /// Batch retirement, after the batch's last query was routed: MW writes
  /// the region batch (and notifies under query sync); N-N notifies.
  virtual sim::Task<void> retire_batch(StrategyEnv& env, std::uint32_t first_local,
                                       std::uint32_t last_local);

  /// Extra master-side merge time for one incoming score message (MW pays
  /// per-byte handling of the shipped result payload).
  [[nodiscard]] virtual sim::Time master_merge_extra(
      const StrategyEnv& env, std::uint32_t query, std::uint32_t fragment) const {
    (void)env;
    (void)query;
    (void)fragment;
    return 0;
  }

  /// Teardown, before Finish is sent: drain asynchronous writes (MW
  /// nonblocking mode), assemble the final file (N-N merge).
  virtual sim::Task<void> master_teardown(
      StrategyEnv& env, const std::vector<QueryContributors>& contributors);

  // ---- Worker-side hooks (Algorithm 2). -----------------------------------

  /// Extra bytes shipped with one score message (MW ships the results).
  [[nodiscard]] virtual std::uint64_t score_payload_bytes(
      const StrategyEnv& env, std::uint32_t query, std::uint32_t fragment) const {
    (void)env;
    (void)query;
    (void)fragment;
    return 0;
  }

  /// After a (query, fragment) search completes and its scores are on the
  /// wire: N-N appends the results to the worker's private file.
  virtual sim::Task<void> on_results_ready(StrategyEnv& env, mpi::Rank rank,
                                           std::uint32_t query,
                                           std::uint64_t result_bytes);

  /// The write path: flush the worker's accumulated extents (the I/O
  /// phase proper).  Called at batch boundaries; in broadcast mode the
  /// extent list may be empty (a non-contributing collective participant
  /// still joins the round).
  virtual sim::Task<void> flush(StrategyEnv& env, mpi::Rank rank,
                                std::vector<pfs::Extent> extents,
                                std::uint32_t query_tag) = 0;

  /// Fail-stop: the worker leaves every synchronization structure
  /// (collectives deactivate the rank so surviving rounds can complete).
  virtual void on_worker_death(StrategyEnv& env, mpi::Rank rank) {
    (void)env;
    (void)rank;
  }

  /// Collective-wait accumulated in strategy-private auxiliary files
  /// (reported alongside the group file's in the metrics registry).
  [[nodiscard]] virtual sim::Time aux_collective_wait() const { return 0; }

 protected:
  /// Empty per-query notifications for every (query, worker) of a batch —
  /// under query sync, non-placing strategies (MW, N-N) still need workers
  /// to hear about each query so they can join the per-batch barrier.
  static void notify_batch(StrategyEnv& env, std::uint32_t first_local,
                           std::uint32_t last_local);
};

}  // namespace s3asim::core
