#pragma once

/// \file ww_collective.hpp
/// Shared behavior of the collective worker-writing strategies (§2.2, à la
/// pioBLAST): every worker joins every write round (`write_at_all`), so
/// offsets are broadcast, the flush blocks the worker process (assignments
/// past the batch frontier are deferred), and a dying rank must deactivate
/// itself from the collective so surviving rounds can complete.

#include "core/strategies/io_strategy.hpp"

namespace s3asim::core {

class WwCollectiveStrategy : public IoStrategy {
 public:
  [[nodiscard]] bool broadcasts_offsets() const noexcept override {
    return true;
  }
  [[nodiscard]] bool flush_blocks_process() const noexcept override {
    return true;
  }
  /// `write_at_all` rounds span a fixed communicator; a worker joining or
  /// draining mid-round would deadlock the collective.
  [[nodiscard]] bool tolerates_membership_changes() const noexcept override {
    return false;
  }

  sim::Task<void> flush(StrategyEnv& env, mpi::Rank rank,
                        std::vector<pfs::Extent> extents,
                        std::uint32_t query_tag) override {
    const sim::Time start = env.now();
    std::uint64_t bytes = 0;
    for (const pfs::Extent& extent : extents) bytes += extent.length;
    co_await env.file->write_at_all(rank, std::move(extents), query_tag);
    if (env.config.sync_after_write) co_await env.file->sync(rank);
    env.record_phase(rank, Phase::Io, start, env.now());
    env.rank_stats[rank].bytes_written += bytes;
    // A collective round is a write issued even when this rank contributed
    // nothing — it still participated in the exchange.
    ++env.rank_stats[rank].writes_issued;
  }

  void on_worker_death(StrategyEnv& env, mpi::Rank rank) override {
    if (env.file != nullptr) env.file->deactivate(rank);
  }
};

}  // namespace s3asim::core
