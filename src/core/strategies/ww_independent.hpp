#pragma once

/// \file ww_independent.hpp
/// Shared behavior of the independent worker-writing strategies (§2.3):
/// each contributor receives its offset list and issues its own
/// noncontiguous write — WW-POSIX as one POSIX call per extent, WW-List as
/// a single PVFS2 list-I/O call.  No cross-worker coordination: only
/// contributors flush, and an empty flush is a no-op.

#include "core/strategies/io_strategy.hpp"

namespace s3asim::core {

class WwIndependentStrategy : public IoStrategy {
 public:
  explicit WwIndependentStrategy(mpiio::NoncontigMethod method)
      : method_(method) {}

  sim::Task<void> flush(StrategyEnv& env, mpi::Rank rank,
                        std::vector<pfs::Extent> extents,
                        std::uint32_t query_tag) override {
    const sim::Time start = env.now();
    std::uint64_t bytes = 0;
    for (const pfs::Extent& extent : extents) bytes += extent.length;
    if (!extents.empty()) {
      co_await env.file->write_noncontig(rank, std::move(extents), method_,
                                         query_tag);
      if (env.config.sync_after_write) co_await env.file->sync(rank);
    }
    env.record_phase(rank, Phase::Io, start, env.now());
    env.rank_stats[rank].bytes_written += bytes;
    if (bytes > 0) ++env.rank_stats[rank].writes_issued;
  }

 private:
  mpiio::NoncontigMethod method_;
};

}  // namespace s3asim::core
