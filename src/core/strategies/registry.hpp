#pragma once

/// \file registry.hpp
/// The strategy registry: maps a `core::Strategy` enumerator to the factory
/// of its `IoStrategy` implementation.  Each strategy lives in its own
/// translation unit and exposes exactly one factory here; the table in
/// registry.cpp is the single place a new strategy must be wired into the
/// core (CLI/config/sweep pick it up through `parse_strategy`).

#include <memory>

#include "core/strategies/io_strategy.hpp"
#include "core/strategy.hpp"

namespace s3asim::core {

/// Instantiates the `IoStrategy` registered for `strategy` (one fresh
/// instance per group per run — strategies may hold per-run state).
[[nodiscard]] std::unique_ptr<IoStrategy> make_strategy(Strategy strategy);

// Per-TU factories (strategies/<name>.cpp), wired into the table in
// registry.cpp.
[[nodiscard]] std::unique_ptr<IoStrategy> make_mw_strategy();
[[nodiscard]] std::unique_ptr<IoStrategy> make_ww_posix_strategy();
[[nodiscard]] std::unique_ptr<IoStrategy> make_ww_list_strategy();
[[nodiscard]] std::unique_ptr<IoStrategy> make_ww_coll_strategy();
[[nodiscard]] std::unique_ptr<IoStrategy> make_ww_coll_list_strategy();
[[nodiscard]] std::unique_ptr<IoStrategy> make_ww_file_per_process_strategy();
[[nodiscard]] std::unique_ptr<IoStrategy> make_ww_aggr_strategy();
[[nodiscard]] std::unique_ptr<IoStrategy> make_ww_sieve_strategy();

}  // namespace s3asim::core
