#include "core/strategies/io_strategy.hpp"

#include <algorithm>
#include <map>

#include "core/protocol.hpp"

namespace s3asim::core {

std::vector<pfs::Extent> OffsetService::worker_extents(
    std::uint32_t local, const std::vector<std::uint32_t>& fragments) const {
  const QueryWorkload& workload = workload_->query((*queries_)[local]);
  const std::uint64_t base = (*region_bases_)[local];
  std::vector<std::uint32_t> indices;
  for (const std::uint32_t fragment : fragments)
    for (const std::uint32_t index : workload.by_fragment[fragment])
      indices.push_back(index);
  std::sort(indices.begin(), indices.end());
  std::vector<pfs::Extent> extents;
  extents.reserve(indices.size());
  for (const std::uint32_t index : indices) {
    const std::uint64_t offset = base + workload.offsets[index];
    const std::uint64_t length = workload.results[index].bytes;
    if (!extents.empty() && extents.back().end() == offset)
      extents.back().length += length;  // coalesce adjacent results
    else
      extents.push_back(pfs::Extent{offset, length});
  }
  return extents;
}

void ResultRouter::send_offsets(mpi::Rank worker, std::uint32_t local,
                                std::vector<pfs::Extent> extents) const {
  MasterMsg msg;
  msg.kind = MasterMsg::Kind::Offsets;
  msg.query = (*queries_)[local];
  msg.local_query = local;
  msg.extents = std::move(extents);
  const std::uint64_t bytes =
      model_->control_message_bytes +
      model_->bytes_per_offset_entry * msg.extents.size();
  (void)comm_->isend(master_, worker, kTagMasterToWorker, bytes,
                     std::move(msg));
}

sim::Task<void> IoStrategy::master_setup(StrategyEnv& env) {
  (void)env;
  co_return;
}

sim::Task<void> IoStrategy::route_query_results(
    StrategyEnv& env, std::uint32_t local, const QueryContributors& contributors) {
  // Algorithm 1, step 15 (worker-writing default): group the query's
  // fragments per contributing worker, then ship each worker its offset
  // list — and, in broadcast mode, an empty list to every bystander.
  std::map<mpi::Rank, std::vector<std::uint32_t>> fragments_by_worker;
  for (const auto& [worker, fragment] : contributors)
    fragments_by_worker[worker].push_back(fragment);

  for (const mpi::Rank worker : env.workers) {
    const auto it = fragments_by_worker.find(worker);
    const bool contributes = it != fragments_by_worker.end();
    if (!contributes && !env.per_query_msgs_to_all) continue;
    std::vector<pfs::Extent> extents;
    if (contributes) extents = env.offsets.worker_extents(local, it->second);
    env.router.send_offsets(worker, local, std::move(extents));
  }
  co_return;
}

sim::Task<void> IoStrategy::retire_batch(StrategyEnv& env,
                                         std::uint32_t first_local,
                                         std::uint32_t last_local) {
  (void)env;
  (void)first_local;
  (void)last_local;
  co_return;
}

sim::Task<void> IoStrategy::master_teardown(
    StrategyEnv& env, const std::vector<QueryContributors>& contributors) {
  (void)env;
  (void)contributors;
  co_return;
}

sim::Task<void> IoStrategy::on_results_ready(StrategyEnv& env, mpi::Rank rank,
                                             std::uint32_t query,
                                             std::uint64_t result_bytes) {
  (void)env;
  (void)rank;
  (void)query;
  (void)result_bytes;
  co_return;
}

void IoStrategy::notify_batch(StrategyEnv& env, std::uint32_t first_local,
                              std::uint32_t last_local) {
  for (std::uint32_t local = first_local; local <= last_local; ++local)
    for (const mpi::Rank worker : env.workers)
      env.router.send_offsets(worker, local, {});
}

}  // namespace s3asim::core
