#include "core/strategies/registry.hpp"

#include <string>

#include "util/require.hpp"

namespace s3asim::core {

namespace {

using Factory = std::unique_ptr<IoStrategy> (*)();

struct Entry {
  Strategy id;
  Factory make;
};

constexpr Entry kRegistry[] = {
    {Strategy::MW, &make_mw_strategy},
    {Strategy::WWPosix, &make_ww_posix_strategy},
    {Strategy::WWList, &make_ww_list_strategy},
    {Strategy::WWColl, &make_ww_coll_strategy},
    {Strategy::WWCollList, &make_ww_coll_list_strategy},
    {Strategy::WWFilePerProcess, &make_ww_file_per_process_strategy},
    {Strategy::WWAggr, &make_ww_aggr_strategy},
    {Strategy::WWSieve, &make_ww_sieve_strategy},
};

}  // namespace

std::unique_ptr<IoStrategy> make_strategy(Strategy strategy) {
  for (const Entry& entry : kRegistry)
    if (entry.id == strategy) {
      auto made = entry.make();
      S3A_CHECK_MSG(made->id() == strategy,
                    "strategy registry entry returned the wrong strategy");
      return made;
    }
  S3A_REQUIRE_MSG(false, std::string("no IoStrategy registered for '") +
                             strategy_name(strategy) + "'");
  S3A_UNREACHABLE();
}

}  // namespace s3asim::core
