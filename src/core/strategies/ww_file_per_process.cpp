/// \file ww_file_per_process.cpp
/// WW-FilePerProc ("new I/O algorithms", §5): file-per-process (N-N) —
/// each worker appends its results contiguously to a private file the
/// moment they are computed (no offset lists, no waiting); the master
/// assembles the final sorted file at teardown by reading every private
/// file back and list-writing it into place.  The per-query messages of
/// sync mode are pure notifications.

#include <map>
#include <string>

#include "core/strategies/registry.hpp"

namespace s3asim::core {

namespace {

class WwFilePerProcessStrategy final : public IoStrategy {
 public:
  [[nodiscard]] Strategy id() const noexcept override {
    return Strategy::WWFilePerProcess;
  }
  [[nodiscard]] bool offsets_are_notifications() const noexcept override {
    return true;
  }

  sim::Task<void> master_setup(StrategyEnv& env) override {
    for (const mpi::Rank worker : env.workers) {
      const auto worker_handle = co_await env.fs.create_file(
          env.comm.endpoint_of(env.master),
          "results." + std::to_string(worker) + ".part");
      worker_files_.emplace(
          worker, std::make_unique<mpiio::File>(
                      env.scheduler, env.network, env.fs, env.comm,
                      worker_handle, std::vector<mpi::Rank>{worker},
                      mpiio::Hints{}));
    }
  }

  sim::Task<void> route_query_results(StrategyEnv& env, std::uint32_t local,
                                      const QueryContributors& contributors)
      override {
    // Workers append position-free; nothing to route per query (sync-mode
    // notifications go out from retire_batch).
    (void)env;
    (void)local;
    (void)contributors;
    co_return;
  }

  sim::Task<void> retire_batch(StrategyEnv& env, std::uint32_t first_local,
                               std::uint32_t last_local) override {
    if (env.config.query_sync) notify_batch(env, first_local, last_local);
    co_return;
  }

  sim::Task<void> on_results_ready(StrategyEnv& env, mpi::Rank rank,
                                   std::uint32_t query,
                                   std::uint64_t result_bytes) override {
    // Append to the private file immediately — contiguous, position-free,
    // no offset list to wait for.
    if (result_bytes == 0) co_return;
    const sim::Time start = env.now();
    mpiio::File& own = *worker_files_.at(rank);
    co_await own.write_at(rank, cursors_[rank], result_bytes, query);
    cursors_[rank] += result_bytes;
    if (env.config.sync_after_write) co_await own.sync(rank);
    env.record_phase(rank, Phase::Io, start, env.now());
    env.count_write(rank, result_bytes);
  }

  sim::Task<void> master_teardown(
      StrategyEnv& env,
      const std::vector<QueryContributors>& contributors) override {
    // N-N merge: read every worker's private file back and list-write its
    // results into their sorted positions in the final file.
    const sim::Time merge_start = env.now();
    for (const mpi::Rank worker : env.workers) {
      std::vector<pfs::Extent> extents;
      for (std::uint32_t local = 0; local < env.offsets.query_count();
           ++local) {
        std::vector<std::uint32_t> worker_fragments;
        for (const auto& [contributor, fragment] : contributors[local])
          if (contributor == worker) worker_fragments.push_back(fragment);
        if (worker_fragments.empty()) continue;
        const auto query_extents =
            env.offsets.worker_extents(local, worker_fragments);
        extents.insert(extents.end(), query_extents.begin(),
                       query_extents.end());
      }
      std::uint64_t bytes = 0;
      for (const pfs::Extent& extent : extents) bytes += extent.length;
      if (bytes == 0) continue;
      co_await worker_files_.at(worker)->read_at(env.master, 0, bytes);
      co_await env.file->write_noncontig(env.master, std::move(extents),
                                         mpiio::NoncontigMethod::ListIo);
      env.count_write(env.master, bytes);
    }
    if (env.config.sync_after_write) co_await env.file->sync(env.master);
    env.record_phase(env.master, Phase::Io, merge_start, env.now());
  }

  sim::Task<void> flush(StrategyEnv& env, mpi::Rank rank,
                        std::vector<pfs::Extent> extents,
                        std::uint32_t query_tag) override {
    (void)env;
    (void)rank;
    (void)extents;
    (void)query_tag;
    S3A_UNREACHABLE();  // notification-only: the group file is written by
                        // the master's teardown merge, never by a flush
    co_return;
  }

  [[nodiscard]] sim::Time aux_collective_wait() const override {
    sim::Time total = 0;
    for (const auto& [rank, file] : worker_files_)
      total += file->total_collective_wait();
    return total;
  }

 private:
  /// Each worker's private output file, created by the master at setup.
  std::map<mpi::Rank, std::unique_ptr<mpiio::File>> worker_files_;
  /// Append position per worker.
  std::map<mpi::Rank, std::uint64_t> cursors_;
};

}  // namespace

std::unique_ptr<IoStrategy> make_ww_file_per_process_strategy() {
  return std::make_unique<WwFilePerProcessStrategy>();
}

}  // namespace s3asim::core
