/// \file ww_posix.cpp
/// WW-POSIX (§2.3): independent worker writes, one POSIX call per extent —
/// the noncontiguous access pattern served worst by the file system.

#include "core/strategies/registry.hpp"
#include "core/strategies/ww_independent.hpp"

namespace s3asim::core {

namespace {

class WwPosixStrategy final : public WwIndependentStrategy {
 public:
  WwPosixStrategy() : WwIndependentStrategy(mpiio::NoncontigMethod::Posix) {}
  [[nodiscard]] Strategy id() const noexcept override {
    return Strategy::WWPosix;
  }
};

}  // namespace

std::unique_ptr<IoStrategy> make_ww_posix_strategy() {
  return std::make_unique<WwPosixStrategy>();
}

}  // namespace s3asim::core
