/// \file ww_aggr.cpp
/// WW-Aggr ("new I/O algorithms", §5): worker-side aggregation — a
/// data-sieving/two-phase hybrid in the spirit of Thakur et al.'s
/// noncontiguous-access work, built entirely on the strategy interface (no
/// runtime changes; its wire traffic rides the reserved kTagStrategy).
///
/// Workers are partitioned into groups of `config.aggregator_fanin`; the
/// first worker of each group is its aggregator.  At every flush the
/// members ship their offset lists *and* result data to the aggregator,
/// which coalesces all adjacent extents and issues one sorted list write on
/// the whole group's behalf — fewer, larger, better-sorted requests at the
/// file system for the price of intra-group shipping.
///
/// Offsets are broadcast and the flush blocks the worker process, so every
/// worker flushes every batch exactly once, in batch order: the
/// aggregator's per-member receives match the members' sends round for
/// round (per-(src,dst,tag) FIFO), and no cycle master↔aggregation-group
/// exists — the master never waits on a flush-blocked worker.  Worker
/// fault plans *would* deadlock a waiting aggregator, so
/// `validate_fault_plan` rejects the combination up front.

#include <algorithm>
#include <cmath>

#include "core/protocol.hpp"
#include "core/strategies/registry.hpp"

namespace s3asim::core {

namespace {

/// member → aggregator: one flush round's extents (the result data rides
/// along as modeled wire bytes).
struct AggrMsg {
  std::uint32_t batch = 0;
  std::vector<pfs::Extent> extents;
};

class WwAggrStrategy final : public IoStrategy {
 public:
  [[nodiscard]] Strategy id() const noexcept override {
    return Strategy::WWAggr;
  }
  [[nodiscard]] bool broadcasts_offsets() const noexcept override {
    return true;  // aggregation groups advance in batch lockstep
  }
  [[nodiscard]] bool flush_blocks_process() const noexcept override {
    return true;  // members block shipping; aggregators block collecting
  }
  [[nodiscard]] bool tolerates_membership_changes() const noexcept override {
    return false;  // aggregation groups are fixed at setup
  }

  void attach(StrategyEnv& env) override {
    fanin_ = env.config.aggregator_fanin;
    if (fanin_ == 0 || fanin_ >= env.workers.size())
      fanin_ = env.workers.size();
  }

  sim::Task<void> flush(StrategyEnv& env, mpi::Rank rank,
                        std::vector<pfs::Extent> extents,
                        std::uint32_t query_tag) override {
    const ModelParams& model = env.config.model;
    const std::uint32_t batch = query_tag / env.config.queries_per_flush;
    const std::size_t index = worker_index(env, rank);
    const std::size_t group_first = (index / fanin_) * fanin_;
    const sim::Time start = env.now();

    if (index != group_first) {
      // ---- Member: ship this round's extents and data, then return to
      // the event loop (the aggregator writes on our behalf).
      std::uint64_t data_bytes = 0;
      for (const pfs::Extent& extent : extents) data_bytes += extent.length;
      AggrMsg msg;
      msg.batch = batch;
      msg.extents = std::move(extents);
      const std::uint64_t wire_bytes =
          model.control_message_bytes +
          model.bytes_per_offset_entry * msg.extents.size() + data_bytes;
      (void)env.comm.isend(rank, env.workers[group_first], kTagStrategy,
                           wire_bytes, std::move(msg));
      // MPI_Isend initiation cost; the transfer itself is asynchronous.
      co_await env.scheduler.delay(model.network.per_message_overhead);
      env.record_phase(rank, Phase::Io, start, env.now());
      co_return;
    }

    // ---- Aggregator: collect every member's round, coalesce, write once.
    std::uint64_t own_bytes = 0;
    for (const pfs::Extent& extent : extents) own_bytes += extent.length;
    std::uint64_t received_bytes = 0;
    const std::size_t group_end =
        std::min(group_first + fanin_, env.workers.size());
    for (std::size_t i = group_first + 1; i < group_end; ++i) {
      mpi::Message message =
          co_await env.comm.recv(rank, env.workers[i], kTagStrategy);
      const auto& msg = message.as<AggrMsg>();
      S3A_CHECK_MSG(msg.batch == batch,
                    "aggregation rounds out of lockstep");
      for (const pfs::Extent& extent : msg.extents)
        received_bytes += extent.length;
      extents.insert(extents.end(), msg.extents.begin(), msg.extents.end());
    }
    // Staging the members' shipped results into the exchange buffer costs
    // the same per-byte handling as a worker-side merge.
    if (received_bytes > 0)
      co_await env.scheduler.delay(static_cast<sim::Time>(
          std::llround(static_cast<double>(received_bytes) *
                       model.merge_ns_per_byte)));
    std::sort(extents.begin(), extents.end(),
              [](const pfs::Extent& a, const pfs::Extent& b) {
                return a.offset < b.offset;
              });
    std::vector<pfs::Extent> coalesced;
    coalesced.reserve(extents.size());
    for (const pfs::Extent& extent : extents) {
      if (!coalesced.empty() && coalesced.back().end() == extent.offset)
        coalesced.back().length += extent.length;
      else
        coalesced.push_back(extent);
    }
    const std::uint64_t total_bytes = own_bytes + received_bytes;
    if (!coalesced.empty()) {
      co_await env.file->write_noncontig(rank, std::move(coalesced),
                                         mpiio::NoncontigMethod::ListIo,
                                         query_tag);
      if (env.config.sync_after_write) co_await env.file->sync(rank);
    }
    env.record_phase(rank, Phase::Io, start, env.now());
    env.rank_stats[rank].bytes_written += total_bytes;
    if (total_bytes > 0) ++env.rank_stats[rank].writes_issued;
  }

 private:
  [[nodiscard]] static std::size_t worker_index(const StrategyEnv& env,
                                                mpi::Rank rank) {
    const auto it =
        std::find(env.workers.begin(), env.workers.end(), rank);
    S3A_CHECK(it != env.workers.end());
    return static_cast<std::size_t>(it - env.workers.begin());
  }

  std::size_t fanin_ = 0;
};

}  // namespace

std::unique_ptr<IoStrategy> make_ww_aggr_strategy() {
  return std::make_unique<WwAggrStrategy>();
}

}  // namespace s3asim::core
