/// \file worker_runtime.cpp
/// The worker runtime (Algorithm 2): task processing, database staging,
/// score shipping (with injected message faults), batch tracking, and
/// fail-stop death.  The write path itself — what a "flush" means — is the
/// group strategy's `flush` hook; notification-only strategies (MW, N-N)
/// never flush at all.

#include <cmath>
#include <deque>
#include <set>
#include <tuple>
#include <vector>

#include "core/fragment_cache.hpp"
#include "core/protocol.hpp"
#include "core/runtime.hpp"

namespace s3asim::core {

namespace {

struct WorkerState {
  bool done = false;                ///< master said no more tasks
  bool awaiting_response = false;   ///< a work request is outstanding
  std::vector<pfs::Extent> pending; ///< extents accumulated for current flush
  std::uint32_t pending_batch = 0;  ///< batch the pending extents belong to
  std::uint32_t batch_msgs = 0;     ///< per-query messages seen this batch
  std::uint32_t current_batch = 0;  ///< next batch expected (per-query mode)
  std::set<std::uint32_t> merged_queries;  ///< queries with previous results
  /// Score messages initiated so far (drives the deterministic per-send
  /// drop hash; counts dropped sends too).
  std::uint64_t scores_sent = 0;
  /// Flush-blocking strategies only (§2.3): assignments for upcoming
  /// queries that cannot start until the pending collective I/O completes.
  /// Each entry stores (local query, global query, fragment).  Usually at
  /// most one; the master's recovery reassignment can push a frontier task
  /// unsolicited while one is held, whose follow-up request may defer a
  /// second.
  std::deque<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> deferred;
  /// Database fragments held in memory (when database I/O is modeled).
  FragmentCache cache{0};
};

/// Injected score-message latency: holds the payload back before it enters
/// the network (the isend itself then models the transfer as usual).
sim::Process delayed_score_send(App& app, mpi::Rank rank, sim::Time by,
                                std::uint64_t bytes, ScoresMsg scores) {
  co_await app.scheduler.delay(by);
  (void)app.comm.isend(rank, app.master, kTagScores, bytes, scores);
}

/// Hands the accumulated extents to the strategy's write path, then joins
/// the query-sync barrier if configured.
sim::Task<void> worker_flush(App& app, mpi::Rank rank, WorkerState& state,
                             std::uint32_t query_tag) {
  std::vector<pfs::Extent> extents = std::move(state.pending);
  state.pending.clear();
  co_await app.strategy->flush(*app.env, rank, std::move(extents), query_tag);

  if (app.config.query_sync) {
    const sim::Time barrier_start = app.scheduler.now();
    co_await app.query_barrier.arrive_and_wait();
    app.record_phase(rank, Phase::Sync, barrier_start, app.scheduler.now());
  }
}

}  // namespace

sim::Process worker_stream_pump(App& app, mpi::Rank rank) {
  while (true) {
    mpi::Message message =
        co_await app.comm.recv(rank, app.master, kTagMasterToWorker);
    if (message.cancelled) break;  // torn down at teardown (dead worker)
    const bool finish =
        message.as<MasterMsg>().kind == MasterMsg::Kind::Finish;
    app.events.at(rank)->push(std::move(message));
    if (finish) break;
  }
  app.events.at(rank)->close();
}

/// Sleeps until the planned kill time and injects a death event into the
/// worker's stream.  The worker acts on it at its next event-loop visit;
/// deaths landing mid-search are handled by the worker itself (partial
/// compute, no score).  Cancelled at teardown if the run ends first.
sim::Process worker_reaper(App& app, mpi::Rank rank, sim::Time kill_at,
                           sim::Timer& timer) {
  timer.arm_at(kill_at);
  if (co_await timer.wait()) {
    sim::Channel<mpi::Message>& events = *app.events.at(rank);
    if (!events.closed())
      events.push(mpi::Message{.source = rank, .tag = kTagDeath});
  }
}

sim::Process worker_process(App& app, mpi::Rank rank) {
  WorkerState state;
  state.cache = FragmentCache(app.cache_capacity());
  IoStrategy& strategy = *app.strategy;
  StrategyEnv& env = *app.env;
  const ModelParams& model = app.config.model;
  const sim::Time death_at = app.config.fault.kill_time(rank);

  // Fail-stop: leave every synchronization structure so the survivors can
  // proceed (ULFM-style shrink), then cease to exist.  Called either from
  // the event loop (a reaper's death notice) or mid-search.
  auto die = [&app, &strategy, &env, rank]() {
    app.dead.insert(rank);
    app.death_times[rank] = app.scheduler.now();
    // Removal is a registry transition (first-wins with the master's
    // timeout retirement) — kill/crash and elastic leave share one path.
    (void)app.registry->mark_dead(rank, app.scheduler.now());
    ++app.faults.workers_died;
    app.query_barrier.leave();
    app.comm.barrier_leave();
    strategy.on_worker_death(env, rank);
    app.rank_stats[rank].wall = app.scheduler.now();
    app.rank_stats[rank].phases.finish(app.rank_stats[rank].wall);
  };

  // Steps 6-10 of Algorithm 2 for one (query, fragment) assignment:
  // search, merge, ship scores (and results for MW), request the next task.
  // Returns true if the worker's planned death interrupted the search (the
  // caller must then die() and stop).
  auto process_assignment =
      [&app, &state, &strategy, &env, &model, rank,
       death_at](std::uint32_t local, std::uint32_t query,
                 std::uint32_t fragment) -> sim::Task<bool> {
    // ---- Database staging: stream the fragment in unless cached. -------
    if (app.models_database_io()) {
      if (state.cache.touch(fragment)) {
        ++app.rank_stats[rank].fragment_hits;
      } else {
        ++app.rank_stats[rank].fragment_loads;
        const sim::Time start = app.scheduler.now();
        if (app.interleaved_database()) {
          // formatdb-style round-robin layout: the fragment is a strided
          // extent list, served by the configured noncontiguous read
          // method (posix / list / sieve — docs/IO_MODEL.md §3).
          co_await app.database_file->read_noncontig(
              rank, app.fragment_extents(fragment), app.config.read_method);
        } else {
          co_await app.database_file->read_at(
              rank,
              static_cast<std::uint64_t>(fragment) * app.fragment_bytes(),
              app.fragment_bytes());
        }
        app.record_phase(rank, Phase::Io, start, app.scheduler.now());
      }
    }

    // ---- Step 6: the search itself. ------------------------------------
    const sim::Time search_time = app.compute_time(query, fragment, rank);
    if (death_at != fault::kNever &&
        app.scheduler.now() + search_time >= death_at) {
      // The planned kill lands inside this search: burn the partial
      // compute, produce nothing.  The master's timeout reclaims the task.
      const sim::Time partial =
          death_at > app.scheduler.now() ? death_at - app.scheduler.now() : 0;
      S3A_PHASE(app, rank, Phase::Compute,
                co_await app.scheduler.delay(partial));
      co_return true;
    }
    S3A_PHASE(app, rank, Phase::Compute,
              co_await app.scheduler.delay(search_time));
    ++app.rank_stats[rank].tasks_processed;

    const std::uint64_t result_bytes =
        app.workload.fragment_result_bytes(query, fragment);
    const std::uint64_t count =
        app.workload.query(query).by_fragment[fragment].size();

    // ---- Step 8: merge with previous results for this query. -----------
    if (strategy.worker_writes()) {
      if (!state.merged_queries.insert(query).second) {
        const auto merge_ns = static_cast<sim::Time>(std::llround(
            static_cast<double>(result_bytes) * model.merge_ns_per_byte));
        S3A_PHASE(app, rank, Phase::MergeResults,
                  co_await app.scheduler.delay(merge_ns));
      }
    }

    // ---- Step 10: send scores (and results if MW) to the master. -------
    {
      const sim::Time start = app.scheduler.now();
      std::uint64_t bytes =
          model.control_message_bytes + count * model.bytes_per_score_entry;
      bytes += strategy.score_payload_bytes(env, query, fragment);
      ScoresMsg scores{query, local, fragment, rank};
      // Injected message faults: a deterministic per-send hash decides
      // drops (same seed + same plan ⇒ same losses); delays hold the
      // message back before it enters the network.
      const double drop_p =
          app.config.fault.drop_probability(rank, app.scheduler.now());
      bool dropped = false;
      if (drop_p > 0.0) {
        util::Xoshiro256 rng(util::hash_combine(
            util::hash_combine(app.config.workload.seed ^ 0x5c0fed70ULL, rank),
            state.scores_sent));
        dropped = rng.uniform() < drop_p;
      }
      ++state.scores_sent;
      if (dropped) {
        ++app.faults.scores_dropped;
      } else if (const sim::Time hold =
                     app.config.fault.score_delay(rank, app.scheduler.now());
                 hold > 0) {
        app.scheduler.spawn(delayed_score_send(app, rank, hold, bytes, scores));
      } else {
        (void)app.comm.isend(rank, app.master, kTagScores, bytes, scores);
      }
      // MPI_Isend initiation cost; the transfer itself is asynchronous.
      co_await app.scheduler.delay(model.network.per_message_overhead);
      app.record_phase(rank, Phase::GatherResults, start, app.scheduler.now());
    }

    // ---- Strategy hook: results are computed and the scores are on the
    // wire (N-N appends to its private file here). ------------------------
    co_await strategy.on_results_ready(env, rank, query, result_bytes);

    // ---- Step 3 again: request the next task. ---------------------------
    {
      const sim::Time start = app.scheduler.now();
      co_await app.comm.send(rank, app.master, kTagRequest,
                             model.control_message_bytes);
      state.awaiting_response = true;
      app.record_phase(rank, Phase::DataDistribution, start,
                       app.scheduler.now());
    }
    co_return false;
  };

  // ---- Step 1: receive input variables — or, for a worker provisioned
  // outside the cluster (scheduled joiner / elastic standby), wait for the
  // join trigger and open the handshake instead.  The handshake is
  // deadlock-free by construction: after kTagJoin the worker simply enters
  // the event loop, where the master's ordered stream delivers either
  // Welcome (join accepted) or Finish (the run ended first — turned away).
  if (app.registry->initially_standby(rank)) {
    bool join = false;
    if (const auto timer_it = app.join_timers.find(rank);
        timer_it != app.join_timers.end()) {
      // Scheduled joiner: sleep until the configured join time (cancelled
      // at master teardown if the run finishes first).
      timer_it->second->arm_at(app.registry->scheduled_join(rank));
      join = co_await timer_it->second->wait();
      if (join) (void)app.registry->begin_join(rank, app.scheduler.now());
    } else {
      // Elastic standby: block until the autoscaler's summons (begin_join
      // was recorded master-side); nullopt means the run ended unsummoned.
      const auto token = co_await app.activations.at(rank)->pop();
      join = token.has_value();
    }
    if (join) {
      const sim::Time start = app.scheduler.now();
      JoinMsg msg;
      msg.worker = rank;
      if (app.models_database_io())
        msg.staged_fragment = rank % app.config.workload.fragment_count;
      co_await app.comm.send(rank, app.master, kTagJoin,
                             model.control_message_bytes, msg);
      app.record_phase(rank, Phase::Setup, start, app.scheduler.now());
    }
  } else {
    {
      const sim::Time start = app.scheduler.now();
      (void)co_await app.comm.recv(rank, app.master, kTagSetup);
      app.record_phase(rank, Phase::Setup, start, app.scheduler.now());
    }

    // First work request.
    {
      const sim::Time start = app.scheduler.now();
      co_await app.comm.send(rank, app.master, kTagRequest,
                             model.control_message_bytes);
      state.awaiting_response = true;
      app.record_phase(rank, Phase::DataDistribution, start,
                       app.scheduler.now());
    }
  }

  while (true) {
    const sim::Time wait_start = app.scheduler.now();
    auto event = co_await app.events.at(rank)->pop();
    const sim::Time wait_end = app.scheduler.now();
    if (!event) break;  // stream closed right after Finish
    if (event->tag == kTagDeath) {
      die();
      co_return;
    }
    const auto& msg = event->as<MasterMsg>();

    switch (msg.kind) {
      case MasterMsg::Kind::Assign: {
        app.record_phase(rank, Phase::DataDistribution, wait_start, wait_end);
        state.awaiting_response = false;
        if (strategy.flush_blocks_process() &&
            app.batch_of(msg.local_query) > state.current_batch) {
          // §2.3: the flush blocks the process, so an assignment for an
          // upcoming query cannot start until the pending write completes.
          // Hold it; the flush handler resumes it.
          state.deferred.emplace_back(msg.local_query, msg.query, msg.fragment);
        } else {
          if (co_await process_assignment(msg.local_query, msg.query,
                                          msg.fragment)) {
            die();
            co_return;
          }
        }
        break;
      }

      case MasterMsg::Kind::Done: {
        app.record_phase(rank, Phase::DataDistribution, wait_start, wait_end);
        state.awaiting_response = false;
        state.done = true;
        break;
      }

      case MasterMsg::Kind::Offsets: {
        // Waiting time while a work request is outstanding — or while an
        // assignment is stalled behind a pending collective (§4: "wasting
        // time, which shows up in the data distribution time") — counts as
        // data distribution; afterwards it is unattributed (→ Other).
        if (state.awaiting_response || !state.deferred.empty())
          app.record_phase(rank, Phase::DataDistribution, wait_start, wait_end);

        if (app.per_query_msgs_to_all()) {
          // One message per query, for everyone: flush on batch boundary.
          state.pending.insert(state.pending.end(), msg.extents.begin(),
                               msg.extents.end());
          ++state.batch_msgs;
          const std::uint32_t batch = app.batch_of(msg.local_query);
          S3A_CHECK_MSG(batch == state.current_batch,
                        "per-query offset messages out of order");
          const std::uint32_t batch_first =
              batch * app.config.queries_per_flush;
          const std::uint32_t batch_size =
              app.batch_last_query(batch) - batch_first + 1;
          if (state.batch_msgs == batch_size) {
            state.batch_msgs = 0;
            ++state.current_batch;
            if (strategy.offsets_are_notifications()) {
              state.pending.clear();  // notification only; nothing to place
              if (app.config.query_sync) {
                const sim::Time start = app.scheduler.now();
                co_await app.query_barrier.arrive_and_wait();
                app.record_phase(rank, Phase::Sync, start, app.scheduler.now());
              }
            } else {
              co_await worker_flush(app, rank, state, msg.local_query);
            }
            // Resume assignments that were blocked on this flush.
            // Deferred entries are not necessarily batch-ordered (a
            // reclaimed task for an earlier query can arrive after a fresh
            // one for a later query), so scan rather than pop the front.
            bool progressed = true;
            while (progressed) {
              progressed = false;
              for (auto it = state.deferred.begin(); it != state.deferred.end();
                   ++it) {
                if (app.batch_of(std::get<0>(*it)) > state.current_batch)
                  continue;
                const auto [local, query, fragment] = *it;
                state.deferred.erase(it);
                if (co_await process_assignment(local, query, fragment)) {
                  die();
                  co_return;
                }
                progressed = true;
                break;  // the erase invalidated the iterator; rescan
              }
            }
          }
        } else {
          // Contributor-only mode: flush when the batch boundary is crossed.
          const std::uint32_t batch = app.batch_of(msg.local_query);
          if (!state.pending.empty() && batch != state.pending_batch)
            co_await worker_flush(app, rank, state, msg.local_query);
          state.pending_batch = batch;
          state.pending.insert(state.pending.end(), msg.extents.begin(),
                               msg.extents.end());
          if (app.config.queries_per_flush == 1)
            co_await worker_flush(app, rank, state, msg.local_query);
        }
        break;
      }

      case MasterMsg::Kind::Welcome: {
        app.record_phase(rank, Phase::Setup, wait_start, wait_end);
        // Late-joiner staging: load the announced fragment before taking
        // any task, so the first assignments hit a warm cache instead of
        // stampeding the database servers mid-run.
        if (app.models_database_io()) {
          const std::uint32_t fragment =
              rank % app.config.workload.fragment_count;
          if (!state.cache.touch(fragment)) {
            ++app.rank_stats[rank].fragment_loads;
            const sim::Time start = app.scheduler.now();
            if (app.interleaved_database()) {
              co_await app.database_file->read_noncontig(
                  rank, app.fragment_extents(fragment),
                  app.config.read_method);
            } else {
              co_await app.database_file->read_at(
                  rank,
                  static_cast<std::uint64_t>(fragment) * app.fragment_bytes(),
                  app.fragment_bytes());
            }
            app.record_phase(rank, Phase::Io, start, app.scheduler.now());
          }
        }
        (void)app.registry->activate(rank, app.scheduler.now());
        // Now a full cluster member: request the first task.
        {
          const sim::Time start = app.scheduler.now();
          co_await app.comm.send(rank, app.master, kTagRequest,
                                 model.control_message_bytes);
          state.awaiting_response = true;
          app.record_phase(rank, Phase::DataDistribution, start,
                           app.scheduler.now());
        }
        break;
      }

      case MasterMsg::Kind::Finish: {
        if (!state.pending.empty())
          co_await worker_flush(app, rank, state, app.query_count() - 1);
        // Close the client cache before the final barrier: write back any
        // dirty blocks and return the byte-range leases (DESIGN.md §10).
        if (app.fs.cache_enabled()) co_await app.fs.release_client(rank);
        break;
      }
    }
    if (msg.kind == MasterMsg::Kind::Finish) break;
  }

  // ---- Final synchronization (Sync phase). -------------------------------
  {
    const sim::Time start = app.scheduler.now();
    co_await app.comm.barrier();
    app.record_phase(rank, Phase::Sync, start, app.scheduler.now());
  }
  app.rank_stats[rank].wall = app.scheduler.now();
  app.rank_stats[rank].phases.finish(app.rank_stats[rank].wall);
}

}  // namespace s3asim::core
