#pragma once

/// \file scale_model.hpp
/// Native-LP cluster model for the scale-out experiments (1024/4096 ranks).
///
/// The full S3aSim model shares mpi/pfs state across ranks at zero
/// simulated offset, so it forms a single LP under the parallel engine
/// (core/runtime.hpp `run_world`).  This model is the other extreme: it is
/// written *natively* against `sim::LpScheduler` — one LP per simulated
/// rank and one per PFS server, interacting only through timestamped
/// messages whose delivery always pays at least the network latency (the
/// lookahead) — so thousands of LPs execute concurrently and the engine's
/// windowed parallelism translates into real wall-clock speedup.
///
/// It keeps the paper's cost constants (Myrinet link, PVFS2-style striped
/// servers, per-request disk costs) and the I/O strategies' *message
/// patterns*:
///
///   MW             workers funnel result payloads through the master,
///                  which writes on their behalf (one LP serializes)
///   WW-POSIX       each worker writes its region as per-strip requests,
///                  striped round-robin over all servers
///   WW-List        each worker sends one list request per server
///   WW-Coll        two-phase: shards to cb_nodes aggregators, which write
///                  strided strips (plus the per-round exchange overhead)
///   WW-CollList    two-phase exchange, aggregators write one list/server
///   WW-FilePerProc one file per worker: a single request to a home server
///   WW-Aggr        fan-in groups forward shards to a group aggregator,
///                  which writes one list per server (lockstep groups)
///
/// Results are deterministic and bit-identical for any engine thread
/// count; `ScaleStats::fingerprint` folds every worker's completion time
/// and byte count so the cross-thread identity tests catch any divergence.

#include <cstdint>
#include <string>
#include <vector>

#include "core/strategy.hpp"
#include "net/model.hpp"
#include "sim/time.hpp"

namespace s3asim::core {

struct ScaleConfig {
  /// Total ranks: 1 master + (nprocs − 1) workers.  LP layout: LP 0 is the
  /// master, LPs 1..nprocs−1 the workers, then one LP per server.
  std::uint32_t nprocs = 1024;
  std::uint32_t servers = 16;
  Strategy strategy = Strategy::WWList;
  bool query_sync = false;
  std::uint32_t queries = 4;
  std::uint64_t seed = 20060627;

  /// Per-(worker, query) result volume, uniform in [min, max] (bytes).
  std::uint64_t result_bytes_min = 256 * 1024;
  std::uint64_t result_bytes_max = 512 * 1024;
  /// Per-(worker, query) search time, uniform in [min, max].
  sim::Time compute_min = sim::milliseconds(20);
  sim::Time compute_max = sim::milliseconds(60);
  /// Search-kernel polling quantum.  Workers advance their compute in
  /// slices *aligned to a global grid* (multiples of this quantum), so
  /// every window packs the whole computing cohort instead of one
  /// straggler — the difference between ~1 and ~1000 LPs per window.
  sim::Time compute_slice = sim::microseconds(200);
  /// Host CPU hash rounds per compute slice: the actual scoring work the
  /// engine parallelizes, and the feed for the determinism fingerprint.
  std::uint32_t score_rounds_per_slice = 4000;

  /// Substrate (paper defaults: Myrinet + PVFS2-style striping).
  net::LinkParams network = net::LinkParams::myrinet2000();
  std::uint64_t strip_bytes = 64 * 1024;
  double disk_bandwidth_bps = 66.0 * 1024 * 1024;
  sim::Time disk_per_request = sim::microseconds(400);

  /// WW-Coll / WW-CollList: aggregator count and per-round overhead.
  std::uint32_t cb_nodes = 16;
  sim::Time two_phase_round_overhead = sim::milliseconds(1);
  /// WW-Aggr: workers per aggregation group.
  std::uint32_t aggregator_fanin = 8;

  /// Heterogeneous speed classes (ISSUE 10): worker w's compute divides by
  /// `class_speeds[(w − 1) % size]`.  Empty = homogeneous (and the divide
  /// is skipped entirely, keeping legacy runs bit-identical).
  std::vector<double> class_speeds;
  /// Per-worker scheduled join delay (indexed w − 1; missing/0 = present
  /// from t=0).  One LP exists per *potential* worker regardless, so the
  /// LP layout — and with it the engine's determinism contract — does not
  /// depend on who joins when.
  std::vector<sim::Time> join_times;

  [[nodiscard]] std::uint32_t workers() const noexcept { return nprocs - 1; }
  /// Speed multiplier of worker `w` (1-based rank).
  [[nodiscard]] double worker_class_speed(std::uint32_t w) const noexcept {
    if (class_speeds.empty()) return 1.0;
    return class_speeds[(w - 1) % class_speeds.size()];
  }
  /// Scheduled join delay of worker `w` (1-based rank); 0 = founding member.
  [[nodiscard]] sim::Time worker_join_time(std::uint32_t w) const noexcept {
    if (join_times.empty() || w - 1 >= join_times.size()) return 0;
    return join_times[w - 1];
  }
};

struct ScaleStats {
  double makespan_seconds = 0.0;     ///< simulated completion time
  std::uint64_t total_result_bytes = 0;
  std::uint64_t events = 0;          ///< resumptions across all LPs
  std::uint64_t windows = 0;         ///< lookahead windows executed
  std::uint64_t cross_lp_messages = 0;
  std::uint64_t lp_count = 0;
  std::uint64_t fingerprint = 0;  ///< folds per-worker times/bytes/scores

  /// Canonical serialization for byte-identity comparisons.
  [[nodiscard]] std::string to_json() const;
};

/// Runs the scale model on the parallel engine with `threads` execution
/// threads (1 = the inline path — the serial baseline of the speedup
/// experiments).  Deterministic: the returned stats are bit-identical for
/// any `threads` value.
[[nodiscard]] ScaleStats run_scale_model(const ScaleConfig& config,
                                         unsigned threads);

}  // namespace s3asim::core
