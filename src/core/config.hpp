#pragma once

/// \file config.hpp
/// All knobs of a simulation run.  `paper_config()` reproduces the test
/// setup of §3.3 exactly: 20 queries, 128 fragments, NT histograms,
/// 1000–2000 results per query, write-after-every-query, MPI_File_sync
/// after every write, 16 PVFS2 servers with 64 KiB strips.

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/strategy.hpp"
#include "fault/fault.hpp"
#include "mpiio/hints.hpp"
#include "net/model.hpp"
#include "pfs/pfs.hpp"
#include "sim/time.hpp"
#include "util/histogram.hpp"

namespace s3asim::core {

/// Workload description (what the searched data "looks like").
struct WorkloadConfig {
  std::uint64_t seed = 20060627;  // HPDC'06 presentation date
  std::uint32_t query_count = 20;
  std::uint32_t fragment_count = 128;
  util::BoxHistogram query_histogram = util::nt_query_histogram();
  util::BoxHistogram database_histogram = util::nt_database_histogram();
  /// Results per query over the whole database, uniform in [min, max].
  std::uint32_t result_count_min = 1000;
  std::uint32_t result_count_max = 2000;
  /// Lower bound on one result's formatted size.
  std::uint64_t min_result_bytes = 512;
  /// On-disk size of the (formatted) sequence database.  0 disables
  /// database-I/O modeling (the paper's S3aSim starts after the database is
  /// distributed).  When set, a worker assigned a fragment it has not
  /// cached must first stream `database_bytes / fragment_count` from the
  /// file system — §1's "repeated I/O introduced by loading sequence data
  /// back and forth between the file system and the main memory".
  std::uint64_t database_bytes = 0;
  /// Database interleave granularity.  0 (default) stores each fragment
  /// contiguously, so a fragment load is one contiguous read.  >0 models a
  /// formatdb-style round-robin layout: the database file is cut into
  /// chunks of this many bytes and chunk c belongs to fragment
  /// c mod fragment_count, so loading fragment f means reading the strided
  /// extent list {f, f+F, f+2F, …} — the noncontiguous read shape that
  /// `read_method` (list I/O vs data sieving) exists to serve
  /// (docs/IO_MODEL.md §3).  Config key `db_chunk_bytes`.
  std::uint64_t db_chunk_bytes = 0;
  /// Result size is uniform in [min_result_bytes, cap] where cap =
  /// size_scale × 3 × max(query_len, db_sequence_len) — the paper's model
  /// ("anywhere from the minimum input size to three times the maximum of
  /// the input query and the matching database sequence").  size_scale
  /// calibrates the aggregate output volume (~208 MB for the paper setup).
  double size_scale = 0.715;
  /// Per-query length override (arrival-trace replay: the trace's
  /// `query_size` column).  Empty (the default) samples every length from
  /// `query_histogram`; when set it must have exactly `query_count`
  /// entries and query q's length is `query_lengths[q]`.
  std::vector<std::uint64_t> query_lengths{};
};

/// One tenant of the online-serving workload: a named query stream with an
/// arrival rate (Poisson mode), a fair-share weight (weighted-fair
/// admission) and a priority class (strict-priority admission; lower value
/// = more urgent).
struct TenantConfig {
  std::string name = "default";
  /// Poisson arrival rate in queries/simulated-second.  When the aggregate
  /// `arrival_rate_hz` is also set, per-tenant rates are relative shares of
  /// that aggregate; otherwise they are absolute rates.
  double rate_hz = 1.0;
  double weight = 1.0;       ///< weighted-fair share (> 0)
  std::uint32_t priority = 0;  ///< strict-priority class (0 = highest)
};

/// Admission-queue dispatch order.
enum class AdmitPolicy {
  Fifo,          ///< global arrival order
  WeightedFair,  ///< start-time fair queuing over tenant weights
  Priority,      ///< strict priority classes, FIFO within a class
};

/// Open-loop serving workload (ISSUE 6): queries arrive continuously at
/// the master instead of being a fixed batch.  Disabled by default —
/// `enabled()` false leaves every closed-batch code path untouched
/// (byte-identical results).
struct ServingConfig {
  /// Aggregate Poisson arrival rate in queries/simulated-second; 0 together
  /// with an empty `arrival_trace` means the paper's closed batch.
  double arrival_rate_hz = 0.0;
  /// Trace-replay file (CSV: `t_seconds, tenant, query_size`); overrides
  /// Poisson generation.  Loaded by `apply_arrival_trace` into
  /// `trace_arrivals` + the workload's `query_lengths`.
  std::string arrival_trace;
  /// Parsed trace rows (seconds + tenant index), one per query in time
  /// order.  Filled by `apply_arrival_trace`; empty in Poisson mode.
  std::vector<std::pair<double, std::uint32_t>> trace_arrivals;
  /// Tenant set.  Empty = a single "default" tenant (rate =
  /// `arrival_rate_hz`).
  std::vector<TenantConfig> tenants;
  AdmitPolicy policy = AdmitPolicy::Fifo;
  /// Bounded admission queue: an arrival finding this many queries already
  /// admitted-but-undispatched is shed (recorded, never run).
  std::uint32_t admit_depth = 64;
  /// Backpressure watermark: dispatch of new queries pauses while the
  /// output bytes of dispatched-but-unretired queries exceed this.  0
  /// disables backpressure.
  std::uint64_t inflight_watermark_bytes = 0;

  [[nodiscard]] bool enabled() const noexcept {
    return arrival_rate_hz > 0.0 || !arrival_trace.empty() ||
           !trace_arrivals.empty();
  }
};

/// One named capability class of a heterogeneous worker mix
/// (`worker_classes` config key, DESIGN.md §12).  Classes repeat
/// cyclically over the worker ranks: with `standard:speed=1,count=3|
/// accel:speed=4,count=1` every fourth worker searches 4× as fast
/// (cf. SWAPHI's accelerator-class Xeon Phi workers).
struct SpeedClass {
  std::string name = "standard";
  double speed = 1.0;        ///< relative compute-speed multiplier (> 0)
  std::uint32_t count = 1;   ///< pattern slots per cycle (>= 1)
};

/// One scheduled mid-run join (`joins` config key): worker `rank` is a
/// standby until simulated time `at`, then runs the join handshake and
/// starts taking tasks — the inverse of a kill fault.
struct JoinSpec {
  std::uint32_t rank = 0;
  sim::Time at = 0;
  /// Optional speed-class override (by name); empty keeps the worker's
  /// positional class from the `worker_classes` cycle.
  std::string speed_class;
};

/// Cluster-membership configuration (ROADMAP item 5; membership.hpp has
/// the registry that interprets it).  Default-constructed = the paper's
/// fixed homogeneous cluster, byte-identical to the pre-membership tree.
struct MembershipConfig {
  /// Named speed classes, cycled over worker ranks; empty = homogeneous.
  std::vector<SpeedClass> classes;
  /// Speed-aware dispatch: prefer handing larger fragments to faster
  /// workers (only consulted when `classes` is non-empty; the `false`
  /// arm is the blind-dispatch baseline of Ablation O).
  bool speed_aware = true;
  /// Scheduled mid-run joins (closed-batch runs only).
  std::vector<JoinSpec> joins;
  /// Elastic autoscaling (serving mode only): workers beyond
  /// `min_workers` start as standbys and the AutoscalePolicy summons or
  /// drains them against the admission-queue depth.
  bool elastic = false;
  /// Initially-active worker count in elastic mode (1 … nprocs−1).
  std::uint32_t min_workers = 0;
  /// Queue depth that triggers a scale-up (`autoscale_target`, > 0).
  double autoscale_target = 4.0;
  /// Minimum time between autoscaling actions (`autoscale_cooldown_ms`).
  sim::Time autoscale_cooldown = sim::seconds(2);

  [[nodiscard]] bool heterogeneous() const noexcept {
    return !classes.empty();
  }
  /// Membership can change mid-run (either elastic mechanism).
  [[nodiscard]] bool dynamic() const noexcept {
    return elastic || !joins.empty();
  }
  [[nodiscard]] bool configured() const noexcept {
    return dynamic() || heterogeneous();
  }
};

/// Which DES executor runs the event loop (DESIGN.md §9).
enum class EngineMode {
  Serial,    ///< the single-threaded scheduler (every prior release)
  Parallel,  ///< lookahead-windowed LP executor (sim::LpScheduler); results
             ///< are bit-identical to serial for any thread count
};

/// Execution-engine selection (`engine` / `engine_threads` config keys,
/// `--engine` / `--engine-threads` CLI flags).
struct EngineConfig {
  EngineMode mode = EngineMode::Serial;
  /// Worker threads for the parallel engine; 0 = one per hardware thread.
  std::uint32_t threads = 0;

  [[nodiscard]] std::uint32_t resolved_threads() const {
    if (threads != 0) return threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
  }
};

/// Hardware / substrate cost model (see DESIGN.md §4 for calibration).
struct ModelParams {
  net::LinkParams network = net::LinkParams::myrinet2000();
  pfs::PfsParams pfs{};
  /// Compute model (paper §3): per-(query,fragment) search time =
  /// (startup + result_bytes × per_result_byte) / compute_speed.
  sim::Time compute_startup = sim::milliseconds(24);
  double compute_ns_per_result_byte = 1350.0;
  /// Worker-side merge of a query's new results into its sorted list.
  double merge_ns_per_byte = 6.0;
  /// Master-side merge of an incoming score list (per entry).
  sim::Time master_merge_per_entry = sim::microseconds(1.2);
  /// MW only: master-side handling of the full result payloads — buffer
  /// copies, merge shifting, and output formatting of every result byte.
  /// This is the centralization cost of master-writing (§2.1: "Only a
  /// single process is gathering all the results and doing the writing on
  /// behalf of all the workers"); workers in WW strategies do the same
  /// work, but spread over P−1 processes where it overlaps with compute.
  double master_result_ns_per_byte = 420.0;
  /// Message payload sizes.
  std::uint64_t bytes_per_score_entry = 16;  // score + size
  std::uint64_t bytes_per_offset_entry = 8;  // 64-bit offsets (paper §2.2)
  std::uint64_t control_message_bytes = 64;  // work requests/assignments
  std::uint64_t setup_message_bytes = 1024;  // input-variable broadcast
};

/// One full simulation configuration.
struct SimConfig {
  /// Total MPI ranks: 1 master + (nprocs − 1) workers.
  std::uint32_t nprocs = 16;
  Strategy strategy = Strategy::WWList;
  /// The paper's "query sync" option: all processes synchronize after the
  /// results of each query are written.
  bool query_sync = false;
  /// Search speed multiplier (paper Figures 5–7 sweep 0.1 … 25.6).
  double compute_speed = 1.0;
  /// Per-worker heterogeneity: worker w's speed is compute_speed scaled by
  /// a deterministic factor uniform in [1-jitter, 1+jitter].  0 = the
  /// paper's homogeneous Europa-nodes setup; >0 models mixed hardware
  /// ("variable simulated compute speeds", §3).
  double compute_speed_jitter = 0.0;
  /// Flush results every n queries (1 = after every query, as in the paper
  /// evaluation; query_count = write-at-end, like mpiBLAST 1.2/pioBLAST).
  std::uint32_t queries_per_flush = 1;
  /// Call MPI_File_sync after every write (always on in the paper).
  bool sync_after_write = true;
  /// Per-worker memory available for caching database fragments (Feynman
  /// nodes: 1 GB RDRAM).  Only used when workload.database_bytes > 0.
  std::uint64_t worker_memory_bytes = util::GiB;
  /// Access method for noncontiguous database-fragment reads (only reached
  /// when `workload.db_chunk_bytes` > 0 makes fragment loads noncontiguous):
  /// Posix, ListIo, or Sieve with `hints.sieve_buffer_bytes` windows.
  /// Config key `read_method`, CLI `--read-method`.
  mpiio::NoncontigMethod read_method = mpiio::NoncontigMethod::ListIo;
  /// Master prefers assigning fragments a worker already holds in memory
  /// (mpiBLAST-style fragment affinity).  Only affects runs that model
  /// database I/O.
  bool fragment_affinity = true;
  /// MW only: the master issues its batch writes asynchronously and keeps
  /// serving work requests (§2.1: "While nonblocking I/O could reduce this
  /// overhead, blocking I/O is commonly used in a MW strategy").
  bool mw_nonblocking_io = false;
  /// WW-Aggr only: workers per aggregation group.  Each group's first
  /// worker acts as the aggregator that coalesces and writes the group's
  /// extents every flush.  0 (or ≥ the worker count) means one group — a
  /// single aggregator writes for everyone.
  std::uint32_t aggregator_fanin = 4;
  /// Injected faults (empty = the paper's failure-free runs).  Worker faults
  /// switch the master to its recovery-capable scheduling loop; server
  /// faults translate to pfs::ServerDegradation; `crash_at` drives
  /// run_with_resume.
  fault::FaultPlan fault{};
  /// Failure detector: a worker with outstanding work and no sign of life
  /// (no score received) for this long is declared dead and its outstanding
  /// (query, fragment) tasks are reassigned.  Only consulted when the fault
  /// plan perturbs workers.
  sim::Time fault_detection_timeout = sim::seconds(10);
  /// DES executor: serial (default) or the lookahead-windowed parallel
  /// engine.  Simulated results are bit-identical either way — the choice
  /// only affects host wall clock (DESIGN.md §9).
  EngineConfig engine{};
  /// Open-loop serving workload (disabled by default: closed batch).
  ServingConfig serving{};
  /// Cluster membership: speed classes, scheduled joins, elastic
  /// autoscaling (default = fixed homogeneous membership).
  MembershipConfig membership{};
  WorkloadConfig workload{};
  ModelParams model{};
  mpiio::Hints hints{};
};

/// The exact evaluation setup of §3.3.
[[nodiscard]] inline SimConfig paper_config() {
  SimConfig config;
  config.nprocs = 16;
  config.strategy = Strategy::WWList;
  config.query_sync = false;
  config.compute_speed = 1.0;
  return config;
}

/// A scaled-down configuration for unit/integration tests: 4 queries,
/// 8 fragments, small results — runs in milliseconds of host time.
[[nodiscard]] inline SimConfig test_config() {
  SimConfig config;
  config.nprocs = 5;
  config.workload.query_count = 4;
  config.workload.fragment_count = 8;
  config.workload.result_count_min = 40;
  config.workload.result_count_max = 80;
  config.workload.query_histogram = util::BoxHistogram{{{500, 4000, 1.0}}};
  config.workload.database_histogram = util::BoxHistogram{{{200, 8000, 1.0}}};
  config.workload.min_result_bytes = 256;
  config.model.pfs.layout = pfs::Layout(16 * util::KiB, 4);
  return config;
}

}  // namespace s3asim::core
