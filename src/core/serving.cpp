#include "core/serving.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <fstream>
#include <iterator>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "fault/fault.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace s3asim::core {

namespace {

/// Stream-id salt for per-tenant arrival RNGs (disjoint from the workload
/// model's 0x51e5 query streams and every fault/jitter salt).
constexpr std::uint64_t kArrivalSalt = 0xa4417a1eULL;

std::string trim(const std::string& text) {
  const auto first = text.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto last = text.find_last_not_of(" \t\r");
  return text.substr(first, last - first + 1);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::istringstream stream(text);
  std::string part;
  while (std::getline(stream, part, sep)) parts.push_back(part);
  return parts;
}

[[noreturn]] void trace_error(std::size_t line, const std::string& message) {
  throw std::invalid_argument("arrival trace line " + std::to_string(line) +
                              ": " + message);
}

}  // namespace

std::vector<TenantConfig> effective_tenants(const ServingConfig& serving) {
  if (!serving.tenants.empty()) return serving.tenants;
  TenantConfig tenant;
  tenant.name = "default";
  tenant.rate_hz = serving.arrival_rate_hz;
  return {tenant};
}

std::vector<double> tenant_rates(const ServingConfig& serving) {
  const std::vector<TenantConfig> tenants = effective_tenants(serving);
  std::vector<double> rates(tenants.size(), 0.0);
  double share_sum = 0.0;
  for (const TenantConfig& tenant : tenants) share_sum += tenant.rate_hz;
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    if (!serving.tenants.empty() && serving.arrival_rate_hz > 0.0) {
      // Aggregate rate set alongside explicit tenants: per-tenant rates
      // are relative shares of the aggregate.
      rates[t] = share_sum > 0.0 ? serving.arrival_rate_hz *
                                       tenants[t].rate_hz / share_sum
                                 : 0.0;
    } else {
      rates[t] = tenants[t].rate_hz;
    }
  }
  return rates;
}

std::vector<Arrival> generate_arrivals(const ServingConfig& serving,
                                       const WorkloadConfig& workload) {
  std::vector<Arrival> arrivals;
  if (!serving.trace_arrivals.empty()) {
    arrivals.reserve(serving.trace_arrivals.size());
    for (const auto& [seconds, tenant] : serving.trace_arrivals)
      arrivals.push_back(Arrival{sim::seconds(seconds), tenant});
    return arrivals;
  }

  const std::vector<double> rates = tenant_rates(serving);
  const std::uint32_t count = workload.query_count;
  arrivals.reserve(count);

  // One independent exponential-gap stream per tenant (forked from the
  // workload seed, so the arrival pattern is part of the same determinism
  // contract), k-way merged by time with the tenant index as tie-break.
  util::Xoshiro256 root(workload.seed);
  std::vector<util::Xoshiro256> rngs;
  std::vector<double> next_at(rates.size(),
                              std::numeric_limits<double>::infinity());
  rngs.reserve(rates.size());
  auto exp_gap = [](util::Xoshiro256& rng, double rate) {
    // Inverse-CDF sampling; 1 - uniform() is in (0, 1], so the log is
    // finite and the gap strictly positive.
    return -std::log(1.0 - rng.uniform()) / rate;
  };
  for (std::size_t t = 0; t < rates.size(); ++t) {
    rngs.push_back(root.fork(util::hash_combine(kArrivalSalt, t)));
    if (rates[t] > 0.0) next_at[t] = exp_gap(rngs[t], rates[t]);
  }
  for (std::uint32_t q = 0; q < count; ++q) {
    std::size_t pick = 0;
    for (std::size_t t = 1; t < rates.size(); ++t)
      if (next_at[t] < next_at[pick]) pick = t;
    S3A_CHECK_MSG(std::isfinite(next_at[pick]),
                  "no tenant has a positive arrival rate");
    arrivals.push_back(
        Arrival{sim::seconds(next_at[pick]), static_cast<std::uint32_t>(pick)});
    next_at[pick] += exp_gap(rngs[pick], rates[pick]);
  }
  return arrivals;
}

std::vector<TenantConfig> parse_tenants(const std::string& spec) {
  std::vector<TenantConfig> tenants;
  // '|'-separated entries ('#' and ';' start comments in the key=value
  // config format, so neither can appear inside a value).
  for (const std::string& raw : split(spec, '|')) {
    const std::string entry = trim(raw);
    if (entry.empty()) continue;
    TenantConfig tenant;
    const auto colon = entry.find(':');
    tenant.name = trim(entry.substr(0, colon));
    if (tenant.name.empty())
      throw std::invalid_argument("tenants entry '" + entry +
                                  "' is missing a name");
    for (const TenantConfig& existing : tenants)
      if (existing.name == tenant.name)
        throw std::invalid_argument("duplicate tenant '" + tenant.name + "'");
    if (colon != std::string::npos) {
      for (const std::string& field : split(entry.substr(colon + 1), ',')) {
        const std::string assignment = trim(field);
        if (assignment.empty()) continue;
        const auto equals = assignment.find('=');
        if (equals == std::string::npos)
          throw std::invalid_argument("tenant '" + tenant.name +
                                      "': field '" + assignment +
                                      "' is not key=value");
        const std::string key = trim(assignment.substr(0, equals));
        const std::string value = trim(assignment.substr(equals + 1));
        try {
          if (key == "rate") {
            tenant.rate_hz = std::stod(value);
          } else if (key == "weight") {
            tenant.weight = std::stod(value);
          } else if (key == "priority") {
            tenant.priority = static_cast<std::uint32_t>(std::stoul(value));
          } else {
            throw std::invalid_argument(
                "tenant '" + tenant.name + "': unknown field '" + key +
                "' (expected rate, weight, or priority)");
          }
        } catch (const std::invalid_argument&) {
          throw;
        } catch (const std::exception&) {
          throw std::invalid_argument("tenant '" + tenant.name + "': field '" +
                                      key + "' has malformed value '" + value +
                                      "'");
        }
      }
    }
    tenants.push_back(std::move(tenant));
  }
  return tenants;
}

std::vector<TraceArrival> parse_arrival_trace(
    const std::string& text, std::vector<TenantConfig>& tenants) {
  const bool tenants_declared = !tenants.empty();
  std::vector<TraceArrival> rows;
  std::istringstream lines(text);
  std::string line;
  std::size_t line_no = 0;
  double previous = -std::numeric_limits<double>::infinity();
  while (std::getline(lines, line)) {
    ++line_no;
    const std::string content = trim(line);
    if (content.empty() || content[0] == '#') continue;
    const std::vector<std::string> fields = split(content, ',');
    if (fields.size() != 3)
      trace_error(line_no, "expected 3 fields 't_seconds, tenant, query_size'"
                           ", got " +
                               std::to_string(fields.size()));
    TraceArrival row;
    const std::string t_field = trim(fields[0]);
    try {
      std::size_t used = 0;
      row.seconds = std::stod(t_field, &used);
      if (used != t_field.size()) throw std::invalid_argument(t_field);
    } catch (const std::exception&) {
      trace_error(line_no, "malformed timestamp '" + t_field + "'");
    }
    if (row.seconds < 0.0)
      trace_error(line_no, "negative timestamp " + t_field);
    if (row.seconds < previous)
      trace_error(line_no,
                  "timestamp " + t_field + " decreases below the previous "
                  "arrival; arrival traces must be sorted by time");
    previous = row.seconds;

    const std::string name = trim(fields[1]);
    if (name.empty()) trace_error(line_no, "empty tenant name");
    auto found = std::find_if(
        tenants.begin(), tenants.end(),
        [&name](const TenantConfig& tenant) { return tenant.name == name; });
    if (found == tenants.end()) {
      if (tenants_declared) {
        std::string declared;
        for (const TenantConfig& tenant : tenants)
          declared += (declared.empty() ? "" : ", ") + tenant.name;
        trace_error(line_no, "unknown tenant '" + name +
                                 "' (declared tenants: " + declared +
                                 "); declare it in the 'tenants' key or fix "
                                 "the trace");
      }
      TenantConfig tenant;
      tenant.name = name;
      tenant.rate_hz = 0.0;  // replay provides the timing
      tenants.push_back(tenant);
      found = std::prev(tenants.end());
    }
    row.tenant = static_cast<std::uint32_t>(found - tenants.begin());

    const std::string size_field = trim(fields[2]);
    try {
      std::size_t used = 0;
      const long long parsed = std::stoll(size_field, &used);
      if (used != size_field.size() || parsed <= 0)
        throw std::invalid_argument(size_field);
      row.query_bytes = static_cast<std::uint64_t>(parsed);
    } catch (const std::exception&) {
      trace_error(line_no, "query_size '" + size_field +
                               "' is not a positive integer");
    }
    rows.push_back(row);
  }
  if (rows.empty())
    throw std::invalid_argument(
        "arrival trace has no arrivals (every line is blank or a comment)");
  return rows;
}

void apply_arrival_trace(SimConfig& config) {
  ServingConfig& serving = config.serving;
  std::ifstream input(serving.arrival_trace);
  if (!input)
    throw std::runtime_error("cannot open arrival trace: " +
                             serving.arrival_trace);
  std::ostringstream buffer;
  buffer << input.rdbuf();
  const std::vector<TraceArrival> rows =
      parse_arrival_trace(buffer.str(), serving.tenants);
  serving.trace_arrivals.clear();
  serving.trace_arrivals.reserve(rows.size());
  config.workload.query_lengths.clear();
  config.workload.query_lengths.reserve(rows.size());
  for (const TraceArrival& row : rows) {
    serving.trace_arrivals.emplace_back(row.seconds, row.tenant);
    config.workload.query_lengths.push_back(row.query_bytes);
  }
  config.workload.query_count = static_cast<std::uint32_t>(rows.size());
}

AdmitPolicy parse_admit_policy(const std::string& name) {
  if (name == "fifo" || name == "FIFO") return AdmitPolicy::Fifo;
  if (name == "wfq" || name == "weighted-fair" || name == "weighted_fair")
    return AdmitPolicy::WeightedFair;
  if (name == "priority") return AdmitPolicy::Priority;
  throw std::invalid_argument("unknown admit_policy '" + name +
                              "' (expected fifo, weighted-fair, or priority)");
}

const char* admit_policy_name(AdmitPolicy policy) noexcept {
  switch (policy) {
    case AdmitPolicy::Fifo:
      return "fifo";
    case AdmitPolicy::WeightedFair:
      return "weighted-fair";
    case AdmitPolicy::Priority:
      return "priority";
  }
  return "?";
}

void validate_serving(const SimConfig& config) {
  const ServingConfig& serving = config.serving;
  if (!serving.enabled()) return;
  S3A_REQUIRE_MSG(config.queries_per_flush == 1,
                  "serving mode retires every query as its own durable "
                  "batch; set queries_per_flush = 1 (got " +
                      std::to_string(config.queries_per_flush) + ")");
  S3A_REQUIRE_MSG(config.fault.empty(),
                  "serving mode does not compose with fault injection; drop "
                  "the fault plan or run the closed-batch workload");
  S3A_REQUIRE_MSG(serving.admit_depth >= 1,
                  "admit_depth must be at least 1 (0 would shed every query)");
  S3A_REQUIRE_MSG(
      !(!serving.arrival_trace.empty() && serving.trace_arrivals.empty()),
      "arrival_trace is set but not loaded; load the configuration through "
      "load_config (or call apply_arrival_trace) before running");
  const std::vector<TenantConfig> tenants = effective_tenants(serving);
  for (const TenantConfig& tenant : tenants) {
    S3A_REQUIRE_MSG(tenant.weight > 0.0,
                    "tenant '" + tenant.name + "' has non-positive weight");
    S3A_REQUIRE_MSG(tenant.rate_hz >= 0.0,
                    "tenant '" + tenant.name + "' has a negative rate");
  }
  if (serving.trace_arrivals.empty()) {
    const std::vector<double> rates = tenant_rates(serving);
    double total = 0.0;
    for (const double rate : rates) total += rate;
    S3A_REQUIRE_MSG(total > 0.0,
                    "Poisson serving needs a positive arrival rate "
                    "(arrival_rate or a tenant rate)");
  }
  S3A_REQUIRE_MSG(config.workload.query_lengths.empty() ||
                      config.workload.query_lengths.size() ==
                          config.workload.query_count,
                  "workload.query_lengths must be empty or have exactly "
                  "query_count entries");
}

AdmissionQueue::AdmissionQueue(AdmitPolicy policy, std::uint32_t depth,
                               std::vector<TenantConfig> tenants)
    : policy_(policy),
      depth_(depth),
      tenants_(std::move(tenants)),
      tenant_finish_(tenants_.size(), 0.0),
      shed_(tenants_.size(), 0) {
  S3A_REQUIRE(!tenants_.empty());
  S3A_REQUIRE(depth_ >= 1);
}

bool AdmissionQueue::offer(std::uint32_t query, std::uint32_t tenant,
                           sim::Time arrived) {
  S3A_REQUIRE(tenant < tenants_.size());
  if (entries_.size() >= depth_) {
    ++shed_[tenant];
    ++shed_total_;
    return false;
  }
  Admitted entry;
  entry.query = query;
  entry.tenant = tenant;
  entry.arrived = arrived;
  entry.seq = seq_++;
  // Start-time fair queuing: the tenant's virtual finish advances by the
  // inverse of its weight per admitted query, never behind the virtual
  // clock (an idle tenant does not bank credit).
  tenant_finish_[tenant] = std::max(tenant_finish_[tenant], virtual_time_) +
                           1.0 / tenants_[tenant].weight;
  entry.virtual_finish = tenant_finish_[tenant];
  entries_.push_back(entry);
  return true;
}

Admitted AdmissionQueue::pop() {
  S3A_CHECK_MSG(!entries_.empty(), "pop from an empty admission queue");
  std::size_t pick = 0;
  switch (policy_) {
    case AdmitPolicy::Fifo:
      break;  // admission order — the front
    case AdmitPolicy::WeightedFair:
      for (std::size_t i = 1; i < entries_.size(); ++i)
        if (entries_[i].virtual_finish < entries_[pick].virtual_finish)
          pick = i;
      break;
    case AdmitPolicy::Priority:
      for (std::size_t i = 1; i < entries_.size(); ++i)
        if (tenants_[entries_[i].tenant].priority <
            tenants_[entries_[pick].tenant].priority)
          pick = i;
      break;
  }
  const Admitted entry = entries_[pick];
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(pick));
  if (policy_ == AdmitPolicy::WeightedFair)
    virtual_time_ = std::max(virtual_time_, entry.virtual_finish);
  return entry;
}

ServingContext::ServingContext(const SimConfig& config)
    : tenants(effective_tenants(config.serving)),
      arrivals(generate_arrivals(config.serving, config.workload)),
      inflight_watermark(config.serving.inflight_watermark_bytes),
      queue(config.serving.policy, config.serving.admit_depth, tenants),
      offered(tenants.size(), 0),
      completed(tenants.size(), 0),
      latencies(tenants.size()) {
  S3A_REQUIRE_MSG(arrivals.size() == config.workload.query_count,
                  "arrival list does not match the workload's query count");
}

bool ServingContext::offer(std::uint32_t query) {
  const Arrival& arrival = arrivals[query];
  ++offered[arrival.tenant];
  return queue.offer(query, arrival.tenant, arrival.at);
}

void ServingContext::on_dispatch(std::uint64_t region_bytes) {
  ++dispatched;
  inflight_bytes += region_bytes;
  inflight_peak_bytes = std::max(inflight_peak_bytes, inflight_bytes);
}

void ServingContext::on_retired(std::uint32_t query, sim::Time now,
                                std::uint64_t region_bytes) {
  const Arrival& arrival = arrivals[query];
  ++completed[arrival.tenant];
  latencies[arrival.tenant].push_back(now - arrival.at);
  S3A_CHECK(inflight_bytes >= region_bytes);
  inflight_bytes -= region_bytes;
}

std::uint64_t ServingContext::offered_total() const noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t count : offered) total += count;
  return total;
}

std::uint64_t ServingContext::completed_total() const noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t count : completed) total += count;
  return total;
}

}  // namespace s3asim::core
