#pragma once

/// \file config_loader.hpp
/// Builds a SimConfig from a key=value configuration (file or text) — the
/// CLI driver's front end.  Unknown keys are reported as errors so typos
/// cannot silently run the wrong experiment.

#include <string>

#include "core/config.hpp"
#include "util/keyval.hpp"

namespace s3asim::core {

/// Applies every recognized key of `config_text` on top of paper_config().
/// Throws std::invalid_argument on malformed values or unrecognized keys.
///
/// Recognized keys (all optional):
///   nprocs, strategy, query_sync, compute_speed, queries_per_flush,
///   sync_after_write, worker_memory, fragment_affinity, mw_nonblocking_io,
///   seed, query_count, fragment_count, result_count_min, result_count_max,
///   min_result_bytes, size_scale, database_bytes,
///   net_latency_us, net_bandwidth_mbps, strip_size, server_count,
///   disk_bandwidth_mbps, disk_per_request_ms, disk_per_pair_ms,
///   sync_cost_ms, compute_startup_ms, compute_ns_per_byte,
///   cb_nodes, cb_buffer_size, two_phase_overhead_ms, collective_algorithm
/// plus histogram sections `[histogram query]` and `[histogram database]`.
[[nodiscard]] SimConfig load_config(const std::string& config_text);

/// File variant of load_config.
[[nodiscard]] SimConfig load_config_file(const std::string& path);

}  // namespace s3asim::core
