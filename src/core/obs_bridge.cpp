/// \file obs_bridge.cpp
/// The publishing side of observability: wiring the sinks into a World,
/// collecting the end-of-run statistics, and materializing every layer's
/// aggregates into the metrics registry.  Zero-perturbation contract:
/// nothing here runs inside simulated time.

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/runtime.hpp"
#include "util/log.hpp"

namespace s3asim::core {

void World::attach_observability(const Observability& observe) {
  trace_log = observe.trace_log;
  metrics = observe.metrics;
  if (observe.metrics != nullptr) {
    scheduler.attach_profiler(observe.metrics);
    if (observe.trace_log != nullptr)
      observe.trace_log->attach_registry(observe.metrics);
  }
  if (observe.enabled()) {
    obs_bridge =
        std::make_unique<ObsBridge>(observe.trace_log, observe.metrics);
    fs.set_observer(obs_bridge.get());
    comm.set_observer(obs_bridge.get());
  }
}

namespace {

/// Exact nearest-rank percentile over an ascending latency list (no
/// interpolation: reported tails are observed samples).
double latency_percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

TenantServingStats tenant_serving_stats(std::string name,
                                        std::uint64_t offered,
                                        std::uint64_t shed,
                                        std::uint64_t completed,
                                        std::vector<double> latencies) {
  TenantServingStats out;
  out.name = std::move(name);
  out.offered = offered;
  out.shed = shed;
  out.admitted = offered - shed;
  out.completed = completed;
  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) {
    double sum = 0.0;
    for (const double v : latencies) sum += v;
    out.mean_seconds = sum / static_cast<double>(latencies.size());
    out.p50_seconds = latency_percentile(latencies, 50.0);
    out.p95_seconds = latency_percentile(latencies, 95.0);
    out.p99_seconds = latency_percentile(latencies, 99.0);
    out.max_seconds = latencies.back();
  }
  return out;
}

/// Folds one group's serving context into the run's serving aggregates
/// (per-tenant and overall latency distributions, stream accounting).
void fill_serving_stats(RunStats& stats, const ServingContext& serving) {
  stats.serving.enabled = true;
  stats.serving.inflight_peak_bytes = serving.inflight_peak_bytes;
  std::vector<double> all;
  for (std::size_t t = 0; t < serving.tenants.size(); ++t) {
    std::vector<double> lat;
    lat.reserve(serving.latencies[t].size());
    for (const sim::Time l : serving.latencies[t])
      lat.push_back(sim::to_seconds(l));
    all.insert(all.end(), lat.begin(), lat.end());
    stats.serving.tenants.push_back(tenant_serving_stats(
        serving.tenants[t].name, serving.offered[t],
        serving.queue.shed_by_tenant()[t], serving.completed[t],
        std::move(lat)));
  }
  stats.serving.overall = tenant_serving_stats(
      "all", serving.offered_total(), serving.queue.shed_total(),
      serving.completed_total(), std::move(all));
  if (stats.wall_seconds > 0.0)
    stats.serving.goodput_qps =
        static_cast<double>(serving.completed_total()) / stats.wall_seconds;
}

/// Folds the groups' worker registries into the run's membership block:
/// lifecycle outcome, provisioning cost, join latencies, and the actual
/// per-worker effective speeds (compute_speed × speed_factor — fixing the
/// stats echo that reported only the base compute_speed under jitter).
/// Emitted when membership is configured or jitter makes speeds
/// heterogeneous; plain runs carry no block and stay byte-identical.
void fill_membership_stats(RunStats& stats, const World& world,
                           const std::vector<std::unique_ptr<App>>& groups) {
  const SimConfig& config = world.config;
  if (!config.membership.configured() && config.compute_speed_jitter <= 0.0)
    return;
  MembershipStats& membership = stats.membership;
  membership.enabled = true;
  for (const SpeedClass& cls : config.membership.classes)
    membership.classes.push_back({cls.name, cls.speed, 0});
  double speed_sum = 0.0;
  std::uint32_t speed_count = 0;
  double latency_sum = 0.0;
  std::uint32_t latency_count = 0;
  const sim::Time end = world.scheduler.now();
  for (const auto& app : groups) {
    const WorkerRegistry& registry = *app->registry;
    membership.epoch += registry.epoch();
    membership.participants += registry.participant_count();
    membership.peak_active += registry.peak_active();
    membership.final_active += registry.active_count();
    membership.joins += registry.joins_completed();
    membership.drains += registry.drains_completed();
    membership.deaths += registry.count(WorkerLifecycle::Dead);
    membership.worker_seconds += registry.worker_seconds(end);
    for (const double latency : registry.join_latencies()) {
      latency_sum += latency;
      membership.join_latency_max_seconds =
          std::max(membership.join_latency_max_seconds, latency);
      ++latency_count;
    }
    for (const WorkerRecord& record : registry.records()) {
      const double speed = config.compute_speed * record.speed_factor;
      if (speed_count == 0) {
        membership.speed_min = speed;
        membership.speed_max = speed;
      } else {
        membership.speed_min = std::min(membership.speed_min, speed);
        membership.speed_max = std::max(membership.speed_max, speed);
      }
      speed_sum += speed;
      ++speed_count;
      if (record.class_index < membership.classes.size())
        ++membership.classes[record.class_index].workers;
    }
  }
  if (speed_count > 0)
    membership.speed_mean = speed_sum / static_cast<double>(speed_count);
  if (latency_count > 0)
    membership.join_latency_mean_seconds =
        latency_sum / static_cast<double>(latency_count);
}

/// Publishes every layer's end-of-run aggregates into the registry under
/// the stable dotted names of the docs/OBSERVABILITY.md catalog.  Counters
/// *add* (so a crash+resume invocation accumulates across its runs);
/// gauges describe the whole invocation so far.  The live histograms
/// ("pfs.*.service_seconds", "mpi.message.*", "sim.sched.*") were filled
/// during the run by the observer bridge and scheduler profiler.
void publish_metrics(World& world,
                     const std::vector<std::unique_ptr<App>>& groups,
                     const RunStats& stats,
                     const pfs::ServerStats& fs_total) {
  obs::Registry& registry = *world.metrics;

  // core.* — application-level outcome.
  registry.gauge("core.wall_seconds").add(stats.wall_seconds);
  registry.counter("core.output_bytes").add(stats.output_bytes);
  registry.counter("core.db_bytes_read").add(stats.db_bytes_read);
  registry.gauge("core.file_exact").set(stats.file_exact ? 1.0 : 0.0);
  std::uint64_t tasks = 0;
  std::uint64_t fragment_loads = 0;
  std::uint64_t fragment_hits = 0;
  for (const RankStats& rank : stats.ranks) {
    tasks += rank.tasks_processed;
    fragment_loads += rank.fragment_loads;
    fragment_hits += rank.fragment_hits;
  }
  registry.counter("core.tasks_processed").add(tasks);
  registry.counter("core.fragment_loads").add(fragment_loads);
  registry.counter("core.fragment_hits").add(fragment_hits);
  for (const Phase phase : all_phases()) {
    // "Data Distribution" -> data_distribution, "I/O" -> io: dotted metric
    // names stay lowercase [a-z0-9_].
    std::string key;
    for (const char c : std::string_view(phase_name(phase))) {
      if (std::isalnum(static_cast<unsigned char>(c)))
        key += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      else if (c == ' ')
        key += '_';
    }
    registry.gauge("core.phase." + key + "_seconds")
        .add(stats.worker_mean_seconds(phase));
  }

  // sim.* — DES-kernel totals (the profiler's histograms ride alongside).
  registry.counter("sim.sched.events")
      .add(world.scheduler.events_processed());
  registry.counter("sim.sched.finished_processes")
      .add(world.scheduler.finished_processes());
  registry.gauge("sim.sched.cancel_slots")
      .set(static_cast<double>(world.scheduler.cancel_slots_allocated()));

  // pfs.* — the per-server counters, aggregated (ServerStats-style
  // hand-aggregation now feeds the registry instead of ad-hoc callers).
  registry.counter("pfs.write.requests").add(fs_total.requests);
  registry.counter("pfs.write.pairs").add(fs_total.pairs);
  registry.counter("pfs.write.bytes").add(fs_total.bytes);
  registry.counter("pfs.read.requests").add(fs_total.reads);
  registry.counter("pfs.read.bytes").add(fs_total.read_bytes);
  // Present only when the run actually read (write-only manifests stay
  // byte-identical to pre-read-path builds).
  if (fs_total.reads > 0)
    registry.counter("pfs.read.pairs").add(fs_total.read_pairs);
  registry.counter("pfs.sync.requests").add(fs_total.syncs);
  registry.gauge("pfs.busy_seconds").add(sim::to_seconds(fs_total.busy));

  // pfs.cache.* / pfs.metadata.* — client-cache and token-consistency
  // counters (absent when the cache is off, keeping cache-off manifests
  // byte-identical to pre-cache builds).
  if (stats.cache.enabled) {
    registry.counter("pfs.cache.read_hits").add(stats.cache.read_hits);
    registry.counter("pfs.cache.read_misses").add(stats.cache.read_misses);
    registry.counter("pfs.cache.write_hits").add(stats.cache.write_hits);
    registry.counter("pfs.cache.write_misses").add(stats.cache.write_misses);
    registry.counter("pfs.cache.evictions").add(stats.cache.evictions);
    registry.counter("pfs.cache.writebacks").add(stats.cache.writebacks);
    registry.counter("pfs.cache.writeback_bytes")
        .add(stats.cache.writeback_bytes);
    registry.counter("pfs.cache.invalidations")
        .add(stats.cache.invalidations);
    registry.counter("pfs.cache.close_writebacks")
        .add(stats.cache.close_writebacks);
    registry.counter("pfs.cache.token_grants").add(stats.cache.token_grants);
    registry.counter("pfs.cache.token_revocations")
        .add(stats.cache.token_revocations);
    registry.counter("pfs.cache.token_conflicts")
        .add(stats.cache.token_conflicts);
    registry.counter("pfs.metadata.requests").add(stats.cache.metadata_ops);
    registry.gauge("pfs.metadata.busy_seconds")
        .add(stats.cache.metadata_busy_seconds);
  }

  // pfs.sieve.* — data-sieving counters (absent unless a sieved access
  // ran, keeping sieve-free manifests byte-identical).
  if (stats.sieve.enabled) {
    registry.counter("pfs.sieve.reads").add(stats.sieve.reads);
    registry.counter("pfs.sieve.writes").add(stats.sieve.writes);
    registry.counter("pfs.sieve.rmw_reads").add(stats.sieve.rmw_reads);
    registry.counter("pfs.sieve.holes_protected")
        .add(stats.sieve.holes_protected);
    registry.counter("pfs.sieve.read_bytes_amplified")
        .add(stats.sieve.read_transferred_bytes - stats.sieve.read_useful_bytes);
    registry.counter("pfs.sieve.write_bytes_amplified")
        .add(stats.sieve.write_transferred_bytes -
             stats.sieve.write_useful_bytes);
  }

  // net.* — NIC totals over every endpoint (ranks and servers).
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  sim::Time tx_busy = 0;
  sim::Time rx_busy = 0;
  for (std::uint32_t id = 0; id < world.network.endpoint_count(); ++id) {
    const net::EndpointCounters& counters = world.network.counters(id);
    sent += counters.messages_sent;
    received += counters.messages_received;
    bytes_sent += counters.bytes_sent;
    bytes_received += counters.bytes_received;
    tx_busy += counters.tx_busy;
    rx_busy += counters.rx_busy;
  }
  registry.counter("net.messages_sent").add(sent);
  registry.counter("net.messages_received").add(received);
  registry.counter("net.bytes_sent").add(bytes_sent);
  registry.counter("net.bytes_received").add(bytes_received);
  registry.gauge("net.tx_busy_seconds").add(sim::to_seconds(tx_busy));
  registry.gauge("net.rx_busy_seconds").add(sim::to_seconds(rx_busy));

  // mpiio.* — collective stall, summed over every file of every group
  // (strategy-private files — N-N parts — report through the strategy).
  sim::Time collective_wait = 0;
  for (const auto& app : groups) {
    if (app->file) collective_wait += app->file->total_collective_wait();
    if (app->database_file)
      collective_wait += app->database_file->total_collective_wait();
    collective_wait += app->strategy->aux_collective_wait();
  }
  registry.gauge("mpiio.collective_wait_seconds")
      .add(sim::to_seconds(collective_wait));

  // fault.* — recovery-subsystem outcome.
  registry.counter("fault.workers_died").add(stats.faults.workers_died);
  registry.counter("fault.workers_retired").add(stats.faults.workers_retired);
  registry.counter("fault.tasks_reassigned")
      .add(stats.faults.tasks_reassigned);
  registry.counter("fault.duplicate_completions")
      .add(stats.faults.duplicate_completions);
  registry.counter("fault.scores_dropped").add(stats.faults.scores_dropped);
  registry.counter("fault.repaired_bytes").add(stats.faults.repaired_bytes);

  // serving.* — open-loop workload outcome (absent on closed-batch runs,
  // keeping their manifests byte-identical).
  if (stats.serving.enabled) {
    registry.counter("serving.offered").add(stats.serving.overall.offered);
    registry.counter("serving.admitted").add(stats.serving.overall.admitted);
    registry.counter("serving.shed").add(stats.serving.overall.shed);
    registry.counter("serving.completed").add(stats.serving.overall.completed);
    registry.gauge("serving.goodput_qps").add(stats.serving.goodput_qps);
    registry.gauge("serving.inflight_peak_bytes")
        .set(static_cast<double>(stats.serving.inflight_peak_bytes));
    obs::Histogram& overall = registry.histogram("serving.latency_seconds");
    for (const auto& app : groups) {
      if (app->serving == nullptr) continue;
      const ServingContext& serving = *app->serving;
      for (std::size_t t = 0; t < serving.tenants.size(); ++t) {
        obs::Histogram& tenant = registry.histogram(
            "serving.tenant." + serving.tenants[t].name + ".latency_seconds");
        for (const sim::Time l : serving.latencies[t]) {
          const double seconds = sim::to_seconds(l);
          overall.observe(seconds);
          tenant.observe(seconds);
        }
      }
    }
  }

  // membership.* — cluster-membership outcome (absent on fixed
  // homogeneous runs, keeping their manifests byte-identical).
  if (stats.membership.enabled) {
    registry.counter("membership.epoch").add(stats.membership.epoch);
    registry.gauge("membership.participants")
        .set(static_cast<double>(stats.membership.participants));
    registry.gauge("membership.peak_active")
        .set(static_cast<double>(stats.membership.peak_active));
    registry.gauge("membership.final_active")
        .set(static_cast<double>(stats.membership.final_active));
    std::uint32_t draining = 0;
    for (const auto& app : groups)
      draining += app->registry->count(WorkerLifecycle::Draining);
    registry.gauge("membership.draining").set(static_cast<double>(draining));
    registry.counter("membership.joins").add(stats.membership.joins);
    registry.counter("membership.drains").add(stats.membership.drains);
    registry.counter("membership.deaths").add(stats.membership.deaths);
    registry.gauge("membership.worker_seconds")
        .add(stats.membership.worker_seconds);
    obs::Histogram& join_latency =
        registry.histogram("membership.join_latency_seconds");
    for (const auto& app : groups)
      for (const double latency : app->registry->join_latencies())
        join_latency.observe(latency);
    registry.gauge("membership.speed_min").set(stats.membership.speed_min);
    registry.gauge("membership.speed_max").set(stats.membership.speed_max);
    registry.gauge("membership.speed_mean").set(stats.membership.speed_mean);
    for (const ClassStats& cls : stats.membership.classes) {
      registry.gauge("membership.class." + cls.name + ".speed")
          .set(cls.speed);
      registry.gauge("membership.class." + cls.name + ".workers")
          .set(static_cast<double>(cls.workers));
    }
  }

  // trace.* — the drop counter is incremented live via
  // TraceLog::attach_registry; materialize it here so drop-free (or
  // trace-less) runs still carry an explicit zero in the manifest.
  registry.counter("trace.intervals_dropped").add(0);
}

}  // namespace

RunStats collect_stats(World& world,
                       const std::vector<std::unique_ptr<App>>& groups) {
  RunStats stats;
  stats.strategy = world.config.strategy;
  stats.nprocs = static_cast<std::uint32_t>(world.rank_stats.size());
  stats.query_sync = world.config.query_sync;
  stats.compute_speed = world.config.compute_speed;
  stats.groups = static_cast<std::uint32_t>(groups.size());
  stats.wall_seconds = sim::to_seconds(world.scheduler.now());
  stats.events = world.scheduler.events_processed();
  stats.ranks = std::move(world.rank_stats);

  // Expected output = the sum of the groups' regions (equals the workload
  // total for full runs; smaller for a resumed tail over a query subset).
  stats.output_bytes = 0;
  stats.file_exact = true;
  for (const auto& app : groups) {
    stats.output_bytes += app->group_output_bytes;
    const pfs::FileImage& image = world.fs.image(app->file->handle());
    stats.bytes_covered += image.covered_bytes();
    stats.overlap_count += image.overlap_count();
    if (!image.covers_exactly(app->group_output_bytes)) stats.file_exact = false;
    if (app->database_file)
      stats.db_bytes_read += world.fs.bytes_read(app->database_file->handle());

    stats.faults.workers_died += app->faults.workers_died;
    stats.faults.workers_retired += app->faults.workers_retired;
    stats.faults.tasks_reassigned += app->faults.tasks_reassigned;
    stats.faults.duplicate_completions += app->faults.duplicate_completions;
    stats.faults.scores_dropped += app->faults.scores_dropped;
    stats.faults.repaired_bytes += app->faults.repaired_bytes;
    for (const sim::Time at : app->batch_complete_times)
      stats.batch_complete_seconds.push_back(sim::to_seconds(at));
    if (app->serving != nullptr) fill_serving_stats(stats, *app->serving);
    if (world.trace_log != nullptr) {
      for (const auto& [rank, at] : app->death_times)
        world.trace_log->record(rank, "Dead", at, world.scheduler.now());
    }
  }
  std::sort(stats.batch_complete_seconds.begin(),
            stats.batch_complete_seconds.end());
  if (stats.bytes_covered != stats.output_bytes) stats.file_exact = false;
  fill_membership_stats(stats, world, groups);

  const pfs::ServerStats fs_total = world.fs.aggregate_stats();
  stats.fs.server_requests = fs_total.requests;
  stats.fs.server_pairs = fs_total.pairs;
  stats.fs.server_bytes = fs_total.bytes;
  stats.fs.server_syncs = fs_total.syncs;
  stats.fs.server_busy_seconds = sim::to_seconds(fs_total.busy);

  if (world.fs.cache_enabled()) {
    const pfs::CacheStats cache_total = world.fs.cache_stats();
    stats.cache.enabled = true;
    stats.cache.read_hits = cache_total.read_hits;
    stats.cache.read_misses = cache_total.read_misses;
    stats.cache.write_hits = cache_total.write_hits;
    stats.cache.write_misses = cache_total.write_misses;
    stats.cache.evictions = cache_total.evictions;
    stats.cache.writebacks = cache_total.writebacks;
    stats.cache.writeback_bytes = cache_total.writeback_bytes;
    stats.cache.invalidations = cache_total.invalidations;
    stats.cache.close_writebacks = cache_total.close_writebacks;
    stats.cache.token_grants = cache_total.token_grants;
    stats.cache.token_revocations = cache_total.token_revocations;
    stats.cache.token_conflicts = cache_total.token_conflicts;
    stats.cache.metadata_ops = fs_total.metadata_ops;
    stats.cache.metadata_busy_seconds = sim::to_seconds(fs_total.metadata_busy);
  }

  const pfs::SieveStats& sieve_total = world.fs.sieve_stats();
  if (sieve_total.used()) {
    stats.sieve.enabled = true;
    stats.sieve.reads = sieve_total.reads;
    stats.sieve.writes = sieve_total.writes;
    stats.sieve.rmw_reads = sieve_total.rmw_reads;
    stats.sieve.holes_protected = sieve_total.holes_protected;
    stats.sieve.read_useful_bytes = sieve_total.read_useful_bytes;
    stats.sieve.read_transferred_bytes = sieve_total.read_transferred_bytes;
    stats.sieve.write_useful_bytes = sieve_total.write_useful_bytes;
    stats.sieve.write_transferred_bytes = sieve_total.write_transferred_bytes;
  }

  if (world.metrics != nullptr)
    publish_metrics(world, groups, stats, fs_total);

  S3A_LOG_INFO(stats.summary());
  return stats;
}

}  // namespace s3asim::core
