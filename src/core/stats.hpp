#pragma once

/// \file stats.hpp
/// Per-run statistics: per-rank phase breakdowns (the stacked bars of
/// Figures 3/4/6/7), output-file verification, and file-system counters.

#include <cstdint>
#include <string>
#include <vector>

#include "core/phases.hpp"
#include "core/strategy.hpp"
#include "sim/time.hpp"

namespace s3asim::core {

struct RankStats {
  PhaseTimers phases;
  sim::Time wall = 0;
  std::uint64_t tasks_processed = 0;   ///< (query, fragment) pairs searched
  std::uint64_t bytes_written = 0;     ///< bytes this rank wrote to the file
  std::uint64_t writes_issued = 0;     ///< write calls this rank issued
  std::uint64_t fragment_loads = 0;    ///< database fragments streamed from FS
  std::uint64_t fragment_hits = 0;     ///< fragment assignments served from cache
};

struct FsStats {
  std::uint64_t server_requests = 0;
  std::uint64_t server_pairs = 0;
  std::uint64_t server_bytes = 0;
  std::uint64_t server_syncs = 0;
  double server_busy_seconds = 0.0;
};

/// Counters of the fault-injection / recovery machinery (all zero on
/// failure-free runs).
struct FaultStats {
  std::uint64_t workers_died = 0;       ///< workers killed by the fault plan
  std::uint64_t workers_retired = 0;    ///< workers the detector declared dead
  std::uint64_t tasks_reassigned = 0;   ///< (query, fragment) pairs re-run
  std::uint64_t duplicate_completions = 0;  ///< late results discarded
  std::uint64_t scores_dropped = 0;     ///< score messages lost in transit
  std::uint64_t repaired_bytes = 0;     ///< file gaps rewritten by the master
};

/// One tenant's (or the overall) serving aggregates: stream accounting and
/// the end-to-end latency distribution (arrival → durable retirement).
struct TenantServingStats {
  std::string name;
  std::uint64_t offered = 0;    ///< arrivals that fired
  std::uint64_t admitted = 0;   ///< offered − shed
  std::uint64_t shed = 0;       ///< rejected by the bounded admission queue
  std::uint64_t completed = 0;  ///< durably retired
  double mean_seconds = 0.0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
  double max_seconds = 0.0;
};

/// Open-loop serving aggregates.  `enabled` gates the JSON emission, so
/// closed-batch dumps stay byte-identical to pre-serving builds.
struct ServingStats {
  bool enabled = false;
  TenantServingStats overall;
  std::vector<TenantServingStats> tenants;
  double goodput_qps = 0.0;  ///< completed queries / simulated wall second
  std::uint64_t inflight_peak_bytes = 0;
};

/// Client-cache / token-consistency aggregates (ISSUE 8).  `enabled` gates
/// the JSON emission, so cache-off dumps stay byte-identical to pre-cache
/// builds.  Counter semantics match pfs::CacheStats; the metadata fields
/// mirror server 0's `metadata_ops`/`metadata_busy`.
struct CacheRunStats {
  bool enabled = false;
  std::uint64_t read_hits = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_hits = 0;
  std::uint64_t write_misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t writeback_bytes = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t close_writebacks = 0;
  std::uint64_t token_grants = 0;
  std::uint64_t token_revocations = 0;
  std::uint64_t token_conflicts = 0;
  std::uint64_t metadata_ops = 0;
  double metadata_busy_seconds = 0.0;
};

/// One speed class's aggregate in the membership block.
struct ClassStats {
  std::string name;
  double speed = 1.0;        ///< configured relative multiplier
  std::uint32_t workers = 0;  ///< ranks assigned to this class
};

/// Cluster-membership aggregates (ISSUE 10).  `enabled` gates the JSON
/// emission: fixed-membership homogeneous runs emit no `membership` block,
/// so pre-membership dumps stay byte-identical.  Heterogeneous runs
/// (classes or jitter) and dynamic runs (joins/elastic) emit it — the
/// effective-speed fields fix obs_bridge only reporting the base
/// compute_speed.
struct MembershipStats {
  bool enabled = false;
  std::uint64_t epoch = 0;            ///< accepted transitions
  std::uint32_t participants = 0;     ///< workers that ever reached Active
  std::uint32_t peak_active = 0;
  std::uint32_t final_active = 0;
  std::uint32_t joins = 0;            ///< completed mid-run joins
  std::uint32_t drains = 0;           ///< clean elastic departures
  std::uint32_t deaths = 0;           ///< fail-stopped members
  double worker_seconds = 0.0;        ///< Σ active spans (provisioning cost)
  double join_latency_mean_seconds = 0.0;
  double join_latency_max_seconds = 0.0;
  // Effective per-worker speeds (compute_speed × speed_factor).
  double speed_min = 0.0;
  double speed_max = 0.0;
  double speed_mean = 0.0;
  std::vector<ClassStats> classes;
};

/// Data-sieving aggregates (docs/IO_MODEL.md §4).  `enabled` gates the
/// JSON emission — no sieved access in the run means no `sieve` block, so
/// pre-sieve dumps stay byte-identical.  Counter semantics match
/// pfs::SieveStats.
struct SieveRunStats {
  bool enabled = false;
  std::uint64_t reads = 0;            ///< sieve-buffer read windows issued
  std::uint64_t writes = 0;           ///< sieve-buffer write windows issued
  std::uint64_t rmw_reads = 0;        ///< write windows that pre-read (RMW)
  std::uint64_t holes_protected = 0;  ///< holes covered by RMW pre-reads
  std::uint64_t read_useful_bytes = 0;
  std::uint64_t read_transferred_bytes = 0;
  std::uint64_t write_useful_bytes = 0;
  std::uint64_t write_transferred_bytes = 0;
};

struct RunStats {
  Strategy strategy = Strategy::MW;
  std::uint32_t nprocs = 0;
  bool query_sync = false;
  double compute_speed = 1.0;
  /// Master/worker groups (1 = plain database segmentation; >1 = hybrid
  /// query/database segmentation).
  std::uint32_t groups = 1;

  double wall_seconds = 0.0;           ///< overall execution time (the paper's y-axis)
  std::uint64_t events = 0;            ///< scheduler resumptions driving the run
  std::vector<RankStats> ranks;        ///< [0] = master, [1..] = workers

  // Output-file verification.
  std::uint64_t output_bytes = 0;      ///< expected file size
  std::uint64_t bytes_covered = 0;
  std::uint64_t overlap_count = 0;
  bool file_exact = false;             ///< covers [0, output_bytes) exactly

  /// Database streaming (only when workload.database_bytes > 0).
  std::uint64_t db_bytes_read = 0;

  FsStats fs;
  FaultStats faults;
  ServingStats serving;
  MembershipStats membership;
  CacheRunStats cache;
  SieveRunStats sieve;

  /// Simulated second at which each flushed batch of queries became durable
  /// (in query order).  run_with_resume uses this to find the last flushed
  /// query boundary before a crash.
  std::vector<double> batch_complete_seconds;

  /// Mean over worker ranks of a phase's time, in seconds (the worker-
  /// process view the paper's breakdown figures use).
  [[nodiscard]] double worker_mean_seconds(Phase phase) const;

  /// Master's time in a phase, in seconds.
  [[nodiscard]] double master_seconds(Phase phase) const;

  /// Renders the per-phase worker breakdown as an ASCII table row set.
  [[nodiscard]] std::string phase_table() const;

  /// One-line summary for logs.
  [[nodiscard]] std::string summary() const;

  /// Full machine-readable dump (configuration echo, per-rank phase times,
  /// file-system counters, verification verdict) as a JSON document.
  [[nodiscard]] std::string to_json() const;
};

}  // namespace s3asim::core
