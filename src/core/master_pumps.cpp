/// \file master_pumps.cpp
/// The master's ingress processes: receive pumps that funnel worker
/// requests, score returns, and join handshakes into the master's event
/// queues, the serving-mode arrival replayer, and the per-worker failure
/// probes.  The master loop itself lives in master_runtime.cpp.

#include <string>
#include <utility>

#include "core/protocol.hpp"
#include "core/runtime.hpp"

namespace s3asim::core {

/// With faults the message counts are not known up front (reassignment,
/// drops, retirements), so both master pumps run until the master cancels
/// their posted receives at teardown (MPI_Cancel).
sim::Process master_request_pump(App& app) {
  while (true) {
    mpi::Message message =
        co_await app.comm.recv(app.master, mpi::kAnySource, kTagRequest);
    if (message.cancelled) break;
    app.master_requests.push_back(std::move(message));
    app.request_wake->push(0);
  }
}

sim::Process master_scores_pump(App& app) {
  while (true) {
    mpi::Message message =
        co_await app.comm.recv(app.master, mpi::kAnySource, kTagScores);
    if (message.cancelled) break;
    app.master_scores.push_back(std::move(message));
    app.scores_wake->push(0);
    // The recovery and serving loops block on a single wake stream; mirror
    // the token.
    if (app.recovery_mode || app.serving != nullptr)
      app.request_wake->push(0);
  }
}

/// Dynamic membership: join handshakes share the master's request stream
/// (a join is served with request priority — the sooner the Welcome goes
/// out, the sooner the joiner's staging read starts).
sim::Process master_join_pump(App& app) {
  while (true) {
    mpi::Message message =
        co_await app.comm.recv(app.master, mpi::kAnySource, kTagJoin);
    if (message.cancelled) break;
    app.master_requests.push_back(std::move(message));
    app.request_wake->push(0);
  }
}

/// Serving mode: replays the precomputed arrival list in simulated time.
/// Each firing admits (or sheds) the query and wakes the master's serving
/// loop with a synthetic arrival notice; one final notice marks the stream
/// closed so the master can re-evaluate its termination condition.
sim::Process serving_arrival_process(App& app) {
  ServingContext& serving = *app.serving;
  const auto total = static_cast<std::uint32_t>(serving.arrivals.size());
  while (serving.next_arrival < total) {
    const Arrival& next = serving.arrivals[serving.next_arrival];
    if (next.at > app.scheduler.now())
      co_await app.scheduler.delay(next.at - app.scheduler.now());
    const std::uint32_t query = serving.next_arrival++;
    (void)serving.offer(query);
    app.master_requests.push_back(
        mpi::Message{.source = app.master, .tag = kTagArrival});
    app.request_wake->push(0);
  }
  serving.arrivals_open = false;
  app.master_requests.push_back(
      mpi::Message{.source = app.master, .tag = kTagArrival});
  app.request_wake->push(0);
}

/// Failure detector for one worker: every token in `armed` covers one timer
/// arming by the master.  Expiry injects a synthetic failure notice into
/// the master's request queue (a local decision — no simulated traffic).
sim::Process worker_probe(App& app, mpi::Rank rank) {
  App::ProbeCtl& probe = *app.probes.at(rank);
  while (true) {
    const auto token = co_await probe.armed->pop();
    if (!token) break;  // closed at teardown
    const bool fired = co_await probe.timer->wait();
    if (!fired) continue;  // sign of life (or re-arm) cancelled the wait
    app.master_requests.push_back(
        mpi::Message{.source = rank, .tag = kTagFailure});
    app.request_wake->push(0);
  }
}

}  // namespace s3asim::core
