#include "core/runtime.hpp"

#include <algorithm>
#include <cmath>

#include "core/strategies/registry.hpp"
#include "sim/lp_scheduler.hpp"

namespace s3asim::core {

pfs::PfsParams faulted_pfs(const SimConfig& cfg) {
  pfs::PfsParams params = cfg.model.pfs;
  for (const fault::ServerFault& f : cfg.fault.servers)
    params.degradations.push_back(
        pfs::ServerDegradation{f.server, f.from, f.service_factor, f.stall});
  return params;
}

World::World(const SimConfig& cfg, std::uint32_t ranks)
    : config(cfg),
      workload(cfg.workload),
      scheduler(),
      network(scheduler, ranks + cfg.model.pfs.layout.server_count(),
              cfg.model.network),
      comm(scheduler, network, ranks),
      fs(scheduler, network, /*server_endpoint_base=*/ranks, faulted_pfs(cfg)),
      rank_stats(ranks) {
  S3A_REQUIRE(cfg.compute_speed > 0.0);
  S3A_REQUIRE(cfg.queries_per_flush >= 1);
}

App::App(World& w, mpi::Rank master_rank, std::vector<mpi::Rank> worker_ranks,
         std::vector<std::uint32_t> query_ids)
    : world(w),
      config(w.config),
      workload(w.workload),
      scheduler(w.scheduler),
      network(w.network),
      comm(w.comm),
      fs(w.fs),
      rank_stats(w.rank_stats),
      master(master_rank),
      workers(std::move(worker_ranks)),
      queries(std::move(query_ids)),
      query_barrier(w.scheduler, std::max<std::size_t>(workers.size(), 1)) {
  S3A_REQUIRE_MSG(!workers.empty(), "a group needs at least one worker");
  S3A_REQUIRE_MSG(!queries.empty() || config.serving.enabled(),
                  "a group needs at least one query");
  for (const mpi::Rank rank : workers)
    events.emplace(rank,
                   std::make_unique<sim::Channel<mpi::Message>>(scheduler));
  request_wake = std::make_unique<sim::Channel<int>>(scheduler);
  scores_wake = std::make_unique<sim::Channel<int>>(scheduler);
  if (config.serving.enabled()) {
    serving = std::make_unique<ServingContext>(config);
  }
  // Membership ledger before anything queries worker_speed.  On a
  // fixed-membership run everyone is Active from t=0 and the registry is
  // pure host-side bookkeeping (byte-identity preserved).
  registry = std::make_unique<WorkerRegistry>(
      config.membership, workers, config.workload.seed,
      config.compute_speed_jitter);
  for (const mpi::Rank rank : workers) {
    const WorkerRecord& record = registry->record(rank);
    if (record.scheduled_join != kNoScheduledJoin)
      join_timers.emplace(rank, std::make_unique<sim::Timer>(scheduler));
    else if (record.initially_standby)
      activations.emplace(rank,
                          std::make_unique<sim::Channel<int>>(scheduler));
  }
  if (config.membership.elastic)
    autoscaler = std::make_unique<AutoscalePolicy>(
        config.membership.autoscale_target,
        config.membership.autoscale_cooldown);
  // Scheduled closed-batch joins ride the recovery loop (its termination
  // condition counts results, not workers); elastic rides the serving loop.
  recovery_mode = config.fault.perturbs_workers() ||
                  (config.membership.dynamic() && !config.serving.enabled());
  if (recovery_mode) {
    for (const mpi::Rank rank : workers) {
      auto probe = std::make_unique<ProbeCtl>();
      probe->timer = std::make_unique<sim::Timer>(scheduler);
      probe->armed = std::make_unique<sim::Channel<int>>(scheduler);
      probes.emplace(rank, std::move(probe));
    }
  }
  // Group-local file layout: the group's queries packed back to back.
  region_bases.reserve(queries.size());
  std::uint64_t cursor = 0;
  for (const std::uint32_t query : queries) {
    region_bases.push_back(cursor);
    cursor += workload.query(query).total_bytes;
  }
  group_output_bytes = cursor;

  // The group's I/O policy, behind its capability bundle.  The env's
  // trace_log and file are wired later (launch_group / master setup).
  strategy = make_strategy(config.strategy);
  env = std::make_unique<StrategyEnv>(
      scheduler, config, comm, fs, network, master, workers, rank_stats,
      OffsetService(workload, queries, region_bases),
      ResultRouter(comm, config.model, master, queries));
  env->per_query_msgs_to_all =
      config.query_sync || strategy->broadcasts_offsets();
  strategy->attach(*env);
}

sim::Time App::compute_time(std::uint32_t query, std::uint32_t fragment,
                            mpi::Rank rank) const {
  const std::uint64_t bytes = workload.fragment_result_bytes(query, fragment);
  const double nanos =
      static_cast<double>(config.model.compute_startup) +
      static_cast<double>(bytes) * config.model.compute_ns_per_result_byte;
  // Injected stragglers: active slowdowns multiply the search time.
  const double slow = config.fault.slow_factor(rank, scheduler.now());
  return static_cast<sim::Time>(
      std::llround(nanos * slow / worker_speed(rank)));
}

void launch_group(App& app) {
  // The drivers assign the app's trace sink after construction (and the
  // resume tail deliberately leaves it null); sync the strategies' view
  // here, at the last host-side moment before simulated work starts.
  app.env->trace_log = app.trace_log;
  app.scheduler.spawn(master_process(app));
  app.scheduler.spawn(master_request_pump(app));
  app.scheduler.spawn(master_scores_pump(app));
  if (app.serving != nullptr) app.scheduler.spawn(serving_arrival_process(app));
  if (app.config.membership.dynamic())
    app.scheduler.spawn(master_join_pump(app));
  for (const mpi::Rank rank : app.workers) {
    app.scheduler.spawn(worker_process(app, rank));
    app.scheduler.spawn(worker_stream_pump(app, rank));
    if (app.recovery_mode) {
      app.scheduler.spawn(worker_probe(app, rank));
      const sim::Time kill_at = app.config.fault.kill_time(rank);
      if (kill_at != fault::kNever) {
        app.reaper_timers.push_back(
            std::make_unique<sim::Timer>(app.scheduler));
        app.scheduler.spawn(
            worker_reaper(app, rank, kill_at, *app.reaper_timers.back()));
      }
    }
  }
}

std::size_t run_world(World& world) {
  if (world.config.engine.mode == EngineMode::Serial)
    return world.scheduler.run();
  sim::LpScheduler engine(sim::LpScheduler::Options{
      world.network.lookahead(), world.config.engine.resolved_threads()});
  engine.attach_metrics(world.metrics);
  engine.adopt_lp(world.scheduler);
  return engine.run();
}

/// Masters are single points of failure by design (the paper's model), and
/// a fault against a nonexistent rank is a spec typo the user should hear
/// about.  WW-Aggr's lockstep aggregation cannot survive perturbed workers
/// (a waiting aggregator would deadlock), so that combination is rejected
/// too — with a pointer at the alternatives.
void validate_fault_plan(const SimConfig& config,
                         const std::set<mpi::Rank>& valid) {
  // The client cache holds dirty data that a killed worker (or a
  // whole-run crash) would silently lose while the file image already
  // recorded it at absorb time — output verification would falsely pass.
  // Until revocation-on-death is modeled, reject the combination; slow /
  // delay / drop / server faults leave every client alive to flush and
  // remain allowed.
  S3A_REQUIRE_MSG(!(config.model.pfs.cache.enabled() &&
                    (!config.fault.kills.empty() ||
                     config.fault.crash_at != fault::kNever)),
                  "worker-kill and crash fault plans are not supported with "
                  "the client cache (cache_capacity > 0): a dead client's "
                  "write-back data would be lost silently; disable the cache "
                  "or use slow/delay/drop/server faults");
  S3A_REQUIRE_MSG(
      !(config.strategy == Strategy::WWAggr &&
        config.fault.perturbs_workers()),
      "WW-Aggr aggregation groups advance in lockstep, so worker "
      "kill/slowdown/drop/delay plans would deadlock the aggregator; use a "
      "server fault or crash/resume plan, or pick another strategy (e.g. "
      "WW-List)");
  const auto check = [&valid](std::uint32_t rank) {
    S3A_REQUIRE_MSG(valid.contains(rank),
                    "fault plan names a rank that is not a worker");
  };
  for (const fault::WorkerKill& kill : config.fault.kills) check(kill.rank);
  for (const fault::WorkerSlow& slow : config.fault.slowdowns) check(slow.rank);
  for (const fault::ScoreDelay& delay : config.fault.delays) check(delay.rank);
  for (const fault::ScoreDrop& drop : config.fault.drops) check(drop.rank);
}

}  // namespace s3asim::core
