#include "core/scale_model.hpp"

#include <algorithm>
#include <cmath>
#include <coroutine>
#include <deque>
#include <utility>
#include <vector>

#include "sim/lp_scheduler.hpp"
#include "sim/task.hpp"
#include "util/json.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace s3asim::core {
namespace {

using sim::Time;

/// Payload charged for control messages (acks, barrier tokens).
constexpr std::uint64_t kCtrlBytes = 64;

enum class MsgKind : std::uint8_t {
  kWriteReq,   ///< worker/aggregator/master -> server, bytes = request size
  kWriteAck,   ///< server -> writer
  kResult,     ///< MW: worker -> master, bytes = result payload
  kResultAck,  ///< MW: master -> worker
  kShard,      ///< two-phase/aggr: member -> aggregator, bytes = payload
  kGroupAck,   ///< aggregator -> member, group flush landed
  kDone,       ///< query_sync: worker -> master
  kGo,         ///< query_sync: master -> workers
  kFinished,   ///< worker -> master, all queries complete
  kShutdown,   ///< master -> servers after every worker finished
};

struct Msg {
  MsgKind kind = MsgKind::kWriteReq;
  std::uint32_t src = 0;  ///< sender LP id
  std::uint64_t bytes = 0;
};

/// One simulated rank or PFS server: its LP, a single-consumer inbox, and
/// the parked receiver (at most one process per node ever receives).
struct ScaleNode {
  sim::Lp* lp = nullptr;
  std::deque<Msg> inbox;
  std::coroutine_handle<> waiter;
  Time finished_at = 0;
  std::uint64_t result_bytes = 0;  ///< workers: produced; servers: absorbed
  std::uint64_t score = 0;         ///< scoring-kernel accumulator
};

struct Ctx {
  const ScaleConfig& cfg;
  sim::LpScheduler& engine;
  std::vector<ScaleNode> nodes;

  [[nodiscard]] std::uint32_t server_lp(std::uint32_t server) const noexcept {
    return cfg.nprocs + server;
  }
};

/// Awaitable: next message from the node's inbox (FIFO in delivery order —
/// the engine's (time, source LP, source seq) merge makes that order
/// deterministic for any thread count).
struct Recv {
  ScaleNode& node;
  [[nodiscard]] bool await_ready() const noexcept {
    return !node.inbox.empty();
  }
  void await_suspend(std::coroutine_handle<> handle) const noexcept {
    node.waiter = handle;
  }
  [[nodiscard]] Msg await_resume() const {
    const Msg msg = node.inbox.front();
    node.inbox.pop_front();
    return msg;
  }
};

/// Sends `bytes` from LP `src` to LP `dst`: the delivery pays the one-way
/// latency, the per-message software overhead, and the wire time — so
/// every cross-LP edge respects the engine lookahead (= link latency).
void send(Ctx& ctx, std::uint32_t src, std::uint32_t dst, MsgKind kind,
          std::uint64_t bytes) {
  ScaleNode& from = ctx.nodes[src];
  const net::LinkParams& link = ctx.cfg.network;
  const Time at = from.lp->scheduler().now() + link.latency +
                  link.per_message_overhead +
                  sim::transfer_time(bytes, link.bandwidth_bps);
  ScaleNode* to = &ctx.nodes[dst];
  const Msg msg{kind, src, bytes};
  ctx.engine.post(*from.lp, to->lp->id(), at,
                  [to, msg, at](sim::Scheduler& sched) {
                    to->inbox.push_back(msg);
                    if (to->waiter)
                      sched.schedule_at(std::exchange(to->waiter, nullptr), at);
                  });
}

/// List write: one request per server, `bytes` split evenly (PVFS2 list
/// I/O — a single round trip regardless of region count).  Returns the
/// number of requests issued.
std::uint32_t send_list_write(Ctx& ctx, std::uint32_t self,
                              std::uint64_t bytes) {
  const std::uint32_t servers = ctx.cfg.servers;
  const std::uint64_t base = bytes / servers;
  const std::uint64_t rem = bytes % servers;
  std::uint32_t sent = 0;
  for (std::uint32_t s = 0; s < servers; ++s) {
    const std::uint64_t part = base + (s < rem ? 1 : 0);
    if (part == 0) continue;
    send(ctx, self, ctx.server_lp(s), MsgKind::kWriteReq, part);
    ++sent;
  }
  return sent;
}

/// Strided write: per-strip requests round-robin across servers starting
/// at the writer's home server, all in flight at once.  Returns the count.
std::uint32_t send_strided_write(Ctx& ctx, std::uint32_t self,
                                 std::uint64_t bytes) {
  std::uint32_t sent = 0;
  std::uint64_t left = bytes;
  std::uint32_t server = self % ctx.cfg.servers;
  while (left > 0) {
    const std::uint64_t part =
        std::min<std::uint64_t>(left, ctx.cfg.strip_bytes);
    send(ctx, self, ctx.server_lp(server), MsgKind::kWriteReq, part);
    left -= part;
    server = (server + 1) % ctx.cfg.servers;
    ++sent;
  }
  return sent;
}

/// Awaits `count` messages that must all be of `kind` (the protocols are
/// phased, so anything else is a model bug worth failing loudly on).
sim::Task<void> await_acks(ScaleNode& node, MsgKind kind,
                           std::uint32_t count) {
  while (count > 0) {
    const Msg msg = co_await Recv{node};
    S3A_CHECK_MSG(msg.kind == kind,
                  "scale model: unexpected message kind during ack wait");
    --count;
  }
}

/// Aggregator side of a group flush: collects `count` shards, returning
/// the summed payload.
sim::Task<std::uint64_t> collect_shards(ScaleNode& node, std::uint32_t count) {
  std::uint64_t total = 0;
  while (count > 0) {
    const Msg msg = co_await Recv{node};
    S3A_CHECK_MSG(msg.kind == MsgKind::kShard,
                  "scale model: aggregator expected a shard");
    total += msg.bytes;
    --count;
  }
  co_return total;
}

/// Aggregation-group shape for worker LP `self` (ids 1..workers).
/// WW-Coll/WW-CollList interleave lanes over the first cb_nodes workers
/// (member w in lane (w-1) % cb); WW-Aggr groups contiguously by fanin.
struct GroupInfo {
  bool is_aggregator = false;
  std::uint32_t aggregator = 0;  ///< LP id of this worker's aggregator
  std::uint32_t members = 0;     ///< shards to collect (aggregators only)
  std::uint32_t stride = 1;      ///< LP-id step between group members
};

GroupInfo group_info(const ScaleConfig& cfg, std::uint32_t self) {
  GroupInfo info;
  const std::uint32_t workers = cfg.workers();
  if (cfg.strategy == Strategy::WWColl ||
      cfg.strategy == Strategy::WWCollList) {
    const std::uint32_t cb = std::min(std::max<std::uint32_t>(cfg.cb_nodes, 1),
                                      workers);
    const std::uint32_t lane = (self - 1) % cb;
    info.aggregator = 1 + lane;
    info.is_aggregator = self == info.aggregator;
    info.stride = cb;
    if (info.is_aggregator) info.members = (workers - 1 - lane) / cb;
  } else if (cfg.strategy == Strategy::WWAggr) {
    const std::uint32_t fanin =
        std::max<std::uint32_t>(cfg.aggregator_fanin, 1);
    const std::uint32_t group = (self - 1) / fanin;
    info.aggregator = 1 + group * fanin;
    info.is_aggregator = self == info.aggregator;
    info.stride = 1;
    if (info.is_aggregator)
      info.members = std::min(fanin, workers - group * fanin) - 1;
  }
  return info;
}

/// Per-(worker, query) workload draw — a pure function of the seed, so
/// identical across engines and thread counts.
struct Draw {
  std::uint64_t bytes = 0;
  Time compute = 0;
};

Draw draw_workload(const ScaleConfig& cfg, std::uint32_t worker,
                   std::uint32_t query) {
  util::Xoshiro256 rng(util::hash_combine(
      cfg.seed, (static_cast<std::uint64_t>(worker) << 32) | query));
  Draw draw;
  const std::uint64_t byte_span = cfg.result_bytes_max - cfg.result_bytes_min;
  draw.bytes = cfg.result_bytes_min +
               (byte_span == 0 ? 0 : rng() % (byte_span + 1));
  const auto time_span =
      static_cast<std::uint64_t>(cfg.compute_max - cfg.compute_min);
  draw.compute =
      cfg.compute_min +
      static_cast<Time>(time_span == 0 ? 0 : rng() % (time_span + 1));
  return draw;
}

/// The scoring kernel: `rounds` of SplitMix64-style mixing.  This is the
/// host CPU work the engine actually parallelizes; the accumulator feeds
/// the determinism fingerprint, so skipped or reordered work is caught.
std::uint64_t score_slice(std::uint64_t seed, std::uint32_t rounds) {
  std::uint64_t x = seed;
  std::uint64_t acc = 0;
  for (std::uint32_t i = 0; i < rounds; ++i) {
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    acc ^= z ^ (z >> 31);
  }
  return acc;
}

/// One query's search: the compute time advances in slices aligned to the
/// global compute_slice grid (see ScaleConfig::compute_slice), each slice
/// burning one quantum of scoring work.
sim::Task<void> run_compute(Ctx& ctx, ScaleNode& node, std::uint32_t self,
                           std::uint32_t query, Time compute) {
  sim::Scheduler& sched = node.lp->scheduler();
  const Time slice = ctx.cfg.compute_slice;
  Time remaining = compute;
  std::uint32_t tick = 0;
  while (remaining > 0) {
    const Time boundary = (sched.now() / slice + 1) * slice;
    co_await sched.delay(boundary - sched.now());
    remaining -= std::min(remaining, slice);
    node.score ^= score_slice(
        util::hash_combine(util::hash_combine(ctx.cfg.seed, self),
                           (static_cast<std::uint64_t>(query) << 32) | tick),
        ctx.cfg.score_rounds_per_slice);
    ++tick;
  }
}

/// One query's flush, per strategy (the message patterns listed in the
/// header).  Runs on the worker's LP.
sim::Task<void> flush_results(Ctx& ctx, std::uint32_t self, std::uint64_t bytes,
                             const GroupInfo& group) {
  ScaleNode& node = ctx.nodes[self];
  const ScaleConfig& cfg = ctx.cfg;
  switch (cfg.strategy) {
    case Strategy::MW:
      send(ctx, self, 0, MsgKind::kResult, bytes);
      co_await await_acks(node, MsgKind::kResultAck, 1);
      break;
    case Strategy::WWPosix: {
      // POSIX write() blocks per call: one strip in flight at a time.
      std::uint64_t left = bytes;
      std::uint32_t server = self % cfg.servers;
      while (left > 0) {
        const std::uint64_t part =
            std::min<std::uint64_t>(left, cfg.strip_bytes);
        send(ctx, self, ctx.server_lp(server), MsgKind::kWriteReq, part);
        co_await await_acks(node, MsgKind::kWriteAck, 1);
        left -= part;
        server = (server + 1) % cfg.servers;
      }
      break;
    }
    case Strategy::WWList:
    case Strategy::WWSieve:
      // At scale-model granularity a sieved flush looks like a list write:
      // one contiguous window per flush (the per-query region is dense, so
      // no RMW pre-reads fire — docs/IO_MODEL.md §4).
      co_await await_acks(node, MsgKind::kWriteAck,
                          send_list_write(ctx, self, bytes));
      break;
    case Strategy::WWFilePerProcess:
      // Own file, laid out whole on the worker's home server.
      send(ctx, self, ctx.server_lp(self % cfg.servers), MsgKind::kWriteReq,
           bytes);
      co_await await_acks(node, MsgKind::kWriteAck, 1);
      break;
    case Strategy::WWColl:
    case Strategy::WWCollList:
    case Strategy::WWAggr: {
      if (!group.is_aggregator) {
        send(ctx, self, group.aggregator, MsgKind::kShard, bytes);
        co_await await_acks(node, MsgKind::kGroupAck, 1);
        break;
      }
      const std::uint64_t total =
          bytes + co_await collect_shards(node, group.members);
      if (cfg.strategy != Strategy::WWAggr)
        co_await node.lp->scheduler().delay(cfg.two_phase_round_overhead);
      const std::uint32_t requests = cfg.strategy == Strategy::WWColl
                                         ? send_strided_write(ctx, self, total)
                                         : send_list_write(ctx, self, total);
      co_await await_acks(node, MsgKind::kWriteAck, requests);
      for (std::uint32_t m = 1; m <= group.members; ++m)
        send(ctx, self, self + m * group.stride, MsgKind::kGroupAck,
             kCtrlBytes);
      break;
    }
  }
}

sim::Process worker_process(Ctx& ctx, std::uint32_t self) {
  ScaleNode& node = ctx.nodes[self];
  const ScaleConfig& cfg = ctx.cfg;
  const GroupInfo group = group_info(cfg, self);
  // Scheduled joiner: the LP exists from t=0 (so the LP layout never
  // depends on membership), but its work starts at the join time.
  if (const sim::Time join_at = cfg.worker_join_time(self); join_at > 0)
    co_await node.lp->scheduler().delay(join_at);
  const double class_speed = cfg.worker_class_speed(self);
  for (std::uint32_t query = 0; query < cfg.queries; ++query) {
    const Draw draw = draw_workload(cfg, self, query);
    sim::Time compute = draw.compute;
    // Heterogeneous classes divide the search time; skipped entirely when
    // homogeneous so legacy runs stay bit-identical.
    if (class_speed != 1.0)
      compute = static_cast<sim::Time>(std::llround(
          static_cast<double>(compute) / class_speed));
    co_await run_compute(ctx, node, self, query, compute);
    node.result_bytes += draw.bytes;
    co_await flush_results(ctx, self, draw.bytes, group);
    if (cfg.query_sync) {
      send(ctx, self, 0, MsgKind::kDone, kCtrlBytes);
      const Msg go = co_await Recv{node};
      S3A_CHECK_MSG(go.kind == MsgKind::kGo,
                    "scale model: worker expected the go broadcast");
    }
  }
  send(ctx, self, 0, MsgKind::kFinished, kCtrlBytes);
  node.finished_at = node.lp->scheduler().now();
}

/// The master (LP 0): MW write service, query_sync barrier, shutdown.  A
/// deferral queue keeps the dispatcher correct when barrier/finish traffic
/// interleaves a multi-round-trip MW write.
sim::Process master_process(Ctx& ctx) {
  ScaleNode& node = ctx.nodes[0];
  const ScaleConfig& cfg = ctx.cfg;
  const std::uint32_t workers = cfg.workers();
  std::uint32_t finished = 0;
  std::uint32_t done = 0;
  std::deque<Msg> deferred;
  while (finished < workers) {
    Msg msg;
    if (!deferred.empty()) {
      msg = deferred.front();
      deferred.pop_front();
    } else {
      msg = co_await Recv{node};
    }
    switch (msg.kind) {
      case MsgKind::kResult: {
        // The funnel's serial cost: drain the payload off the single
        // master NIC, then write it out as one list write.
        co_await node.lp->scheduler().delay(
            sim::transfer_time(msg.bytes, cfg.network.bandwidth_bps));
        std::uint32_t pending = send_list_write(ctx, 0, msg.bytes);
        while (pending > 0) {
          const Msg reply = co_await Recv{node};
          if (reply.kind == MsgKind::kWriteAck) {
            --pending;
            continue;
          }
          deferred.push_back(reply);
        }
        node.result_bytes += msg.bytes;
        send(ctx, 0, msg.src, MsgKind::kResultAck, kCtrlBytes);
        break;
      }
      case MsgKind::kDone:
        if (++done == workers) {
          done = 0;
          for (std::uint32_t w = 1; w <= workers; ++w)
            send(ctx, 0, w, MsgKind::kGo, kCtrlBytes);
        }
        break;
      case MsgKind::kFinished:
        ++finished;
        break;
      default:
        S3A_CHECK_MSG(false, "scale model: master got an unexpected message");
    }
  }
  for (std::uint32_t s = 0; s < cfg.servers; ++s)
    send(ctx, 0, ctx.server_lp(s), MsgKind::kShutdown, kCtrlBytes);
  node.finished_at = node.lp->scheduler().now();
}

/// A PFS server: FIFO request service — per-request overhead plus disk
/// wire time — until the master's shutdown.
sim::Process server_process(Ctx& ctx, std::uint32_t self) {
  ScaleNode& node = ctx.nodes[self];
  const ScaleConfig& cfg = ctx.cfg;
  for (;;) {
    const Msg msg = co_await Recv{node};
    if (msg.kind == MsgKind::kShutdown) break;
    S3A_CHECK_MSG(msg.kind == MsgKind::kWriteReq,
                  "scale model: server got an unexpected message");
    co_await node.lp->scheduler().delay(
        cfg.disk_per_request +
        sim::transfer_time(msg.bytes, cfg.disk_bandwidth_bps));
    node.result_bytes += msg.bytes;
    send(ctx, self, msg.src, MsgKind::kWriteAck, kCtrlBytes);
  }
  node.finished_at = node.lp->scheduler().now();
}

}  // namespace

std::string ScaleStats::to_json() const {
  util::JsonWriter json;
  json.begin_object();
  json.key("makespan_seconds");
  json.value(makespan_seconds);
  json.key("total_result_bytes");
  json.value(total_result_bytes);
  json.key("events");
  json.value(events);
  json.key("windows");
  json.value(windows);
  json.key("cross_lp_messages");
  json.value(cross_lp_messages);
  json.key("lp_count");
  json.value(lp_count);
  json.key("fingerprint");
  json.value(fingerprint);
  json.end_object();
  return json.str();
}

ScaleStats run_scale_model(const ScaleConfig& config, unsigned threads) {
  S3A_REQUIRE_MSG(config.nprocs >= 2,
                  "scale model needs a master and at least one worker");
  S3A_REQUIRE_MSG(config.servers >= 1, "scale model needs at least one server");
  S3A_REQUIRE_MSG(config.queries >= 1, "scale model needs at least one query");
  S3A_REQUIRE_MSG(config.result_bytes_max >= config.result_bytes_min,
                  "scale model: result_bytes_max < result_bytes_min");
  S3A_REQUIRE_MSG(config.compute_max >= config.compute_min,
                  "scale model: compute_max < compute_min");
  S3A_REQUIRE_MSG(config.compute_slice > 0,
                  "scale model: compute_slice must be positive");
  S3A_REQUIRE_MSG(config.strip_bytes > 0,
                  "scale model: strip_bytes must be positive");
  for (const double speed : config.class_speeds)
    S3A_REQUIRE_MSG(speed > 0.0,
                    "scale model: class_speeds entries must be positive");

  sim::LpScheduler engine(
      sim::LpScheduler::Options{config.network.latency, threads});
  Ctx ctx{config, engine, {}};
  const std::uint32_t total_lps = config.nprocs + config.servers;
  ctx.nodes.resize(total_lps);
  for (std::uint32_t i = 0; i < total_lps; ++i)
    ctx.nodes[i].lp = &engine.add_lp();

  ctx.nodes[0].lp->spawn([&] { return master_process(ctx); });
  for (std::uint32_t w = 1; w < config.nprocs; ++w)
    ctx.nodes[w].lp->spawn([&, w] { return worker_process(ctx, w); });
  for (std::uint32_t s = 0; s < config.servers; ++s) {
    const std::uint32_t id = ctx.server_lp(s);
    ctx.nodes[id].lp->spawn([&, id] { return server_process(ctx, id); });
  }

  ScaleStats stats;
  stats.events = engine.run();
  stats.windows = engine.windows_executed();
  stats.cross_lp_messages = engine.cross_posts();
  stats.lp_count = total_lps;

  Time makespan = 0;
  std::uint64_t fingerprint = util::hash_combine(config.seed, total_lps);
  for (std::uint32_t i = 0; i < total_lps; ++i) {
    ScaleNode& node = ctx.nodes[i];
    S3A_CHECK_MSG(node.lp->scheduler().live_processes() == 0,
                  "scale model did not quiesce");
    makespan = std::max(makespan, node.lp->scheduler().now());
    if (i >= 1 && i < config.nprocs)
      stats.total_result_bytes += node.result_bytes;
    fingerprint = util::hash_combine(fingerprint, i);
    fingerprint = util::hash_combine(
        fingerprint, static_cast<std::uint64_t>(node.finished_at));
    fingerprint = util::hash_combine(fingerprint, node.result_bytes);
    fingerprint = util::hash_combine(fingerprint, node.score);
  }
  stats.makespan_seconds = sim::to_seconds(makespan);
  stats.fingerprint = fingerprint;
  return stats;
}

}  // namespace s3asim::core
