#pragma once

/// \file membership.hpp
/// First-class cluster membership (ROADMAP item 5).
///
/// Through PR 9 the worker set was fixed at `World` construction: every
/// rank existed from t=0, only the fault subsystem could remove one, and
/// the master treated all workers as equally fast (modulo the flat
/// `compute_speed_jitter`).  The `WorkerRegistry` makes membership a
/// first-class runtime object instead:
///
///  * a per-worker lifecycle `standby → joining → active → draining →
///    departed` (with `dead` reachable from any live state — fail-stop
///    kills and elastic leave share one transition path, first-wins);
///  * a membership **epoch** counter bumped by every accepted transition,
///    so any observer can cheaply detect "the cluster changed";
///  * per-worker capability records with named **speed classes**
///    (`worker_classes = standard:speed=1,count=3|accel:speed=4,count=1`)
///    replacing the flat jitter-only heterogeneity model — the jitter
///    still composes multiplicatively on top, preserving byte-identity
///    when no classes are configured;
///  * scheduled mid-run joins (`joins = worker=4,at=2s`) for closed-batch
///    runs — the inverse of a kill fault, and composable with one — and
///    elastic standby pools for serving mode, scaled by the
///    `AutoscalePolicy` (serving.hpp) against the admission queue.
///
/// The registry is pure bookkeeping: it never touches the scheduler or
/// the network.  The runtimes drive it (worker_runtime.cpp initiates the
/// join handshake, master_runtime.cpp activates/drains/retires) and the
/// obs bridge reads it out into `RunStats::membership`.

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "mpi/comm.hpp"
#include "sim/time.hpp"

namespace s3asim::core {

/// "This worker has no scheduled join."
inline constexpr sim::Time kNoScheduledJoin =
    std::numeric_limits<sim::Time>::max();

/// Lifecycle of one worker (DESIGN.md §12 has the transition diagram).
enum class WorkerLifecycle : std::uint8_t {
  Standby,   ///< provisioned but not part of the cluster yet
  Joining,   ///< join handshake in flight (kTagJoin sent, staging)
  Active,    ///< dispatchable: may be assigned tasks
  Draining,  ///< scale-down pending: finishes current work, no new tasks
  Departed,  ///< drained cleanly (elastic leave)
  Dead,      ///< fail-stopped (kill fault or detector retirement)
};

[[nodiscard]] const char* worker_lifecycle_name(WorkerLifecycle state) noexcept;

/// Per-worker capability + lifecycle record.
struct WorkerRecord {
  mpi::Rank rank = 0;
  WorkerLifecycle state = WorkerLifecycle::Active;
  std::uint32_t class_index = 0;  ///< into the configured class list (0 if none)
  /// Class speed × the deterministic per-rank jitter factor.  The
  /// effective search speed is `config.compute_speed * speed_factor`.
  double speed_factor = 1.0;
  sim::Time scheduled_join = kNoScheduledJoin;  ///< closed-batch join time
  sim::Time join_started = 0;    ///< begin_join() instant
  sim::Time join_completed = 0;  ///< activate() instant
  sim::Time left_at = 0;         ///< departed/dead instant (participants only)
  bool participant = false;      ///< ever reached Active
  bool initially_standby = false;  ///< started outside the cluster
};

/// The cluster-membership ledger of one master/worker group.  All
/// transitions are first-wins: a call that does not apply to the worker's
/// current state returns false and changes nothing (so e.g. a worker-side
/// death and the master's later timeout retirement dedup naturally).
class WorkerRegistry {
 public:
  /// `workers` is the group's full potential worker set; `seed`/`jitter`
  /// reproduce the pre-registry per-rank heterogeneity factor exactly.
  WorkerRegistry(const MembershipConfig& membership,
                 const std::vector<mpi::Rank>& workers, std::uint64_t seed,
                 double jitter);

  // ---- Lookups. -----------------------------------------------------------
  [[nodiscard]] const WorkerRecord& record(mpi::Rank rank) const;
  [[nodiscard]] WorkerLifecycle state(mpi::Rank rank) const {
    return record(rank).state;
  }
  [[nodiscard]] double speed_factor(mpi::Rank rank) const {
    return record(rank).speed_factor;
  }
  /// Only Active workers may be assigned tasks.
  [[nodiscard]] bool is_dispatchable(mpi::Rank rank) const {
    return state(rank) == WorkerLifecycle::Active;
  }
  /// True when the worker starts outside the cluster (scheduled joiner or
  /// elastic standby) — it must not receive the initial setup broadcast.
  [[nodiscard]] bool initially_standby(mpi::Rank rank) const {
    return record(rank).initially_standby;
  }
  [[nodiscard]] sim::Time scheduled_join(mpi::Rank rank) const {
    return record(rank).scheduled_join;
  }
  [[nodiscard]] const std::vector<WorkerRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] const std::vector<SpeedClass>& classes() const noexcept {
    return classes_;
  }
  /// Mean speed factor over currently Active workers (1.0 when none) —
  /// the speed-aware dispatcher's fast/slow pivot.
  [[nodiscard]] double active_mean_speed() const;

  // ---- Transitions (each accepted one bumps the epoch). -------------------
  bool begin_join(mpi::Rank rank, sim::Time now);     ///< Standby → Joining
  bool activate(mpi::Rank rank, sim::Time now);       ///< Joining → Active
  bool begin_drain(mpi::Rank rank, sim::Time now);    ///< Active → Draining
  bool complete_drain(mpi::Rank rank, sim::Time now); ///< Draining → Departed
  bool mark_dead(mpi::Rank rank, sim::Time now);  ///< any live state → Dead

  // ---- Aggregates. --------------------------------------------------------
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::uint32_t count(WorkerLifecycle state) const;
  [[nodiscard]] std::uint32_t active_count() const {
    return count(WorkerLifecycle::Active);
  }
  /// Workers that ever reached Active (initial members + completed joins).
  [[nodiscard]] std::uint32_t participant_count() const noexcept {
    return participants_;
  }
  [[nodiscard]] std::uint32_t peak_active() const noexcept {
    return peak_active_;
  }
  [[nodiscard]] std::uint32_t joins_completed() const noexcept {
    return joins_completed_;
  }
  [[nodiscard]] std::uint32_t drains_completed() const noexcept {
    return drains_completed_;
  }
  /// begin_join → activate latencies (seconds), one per completed mid-run
  /// join, in completion order.
  [[nodiscard]] const std::vector<double>& join_latencies() const noexcept {
    return join_latencies_;
  }
  /// Lowest-rank Standby worker, or nullopt when the pool is exhausted.
  [[nodiscard]] std::optional<mpi::Rank> pick_standby() const;
  /// Scale-down victim: the most recently activated Active worker
  /// (ties broken toward the higher rank); nullopt when none is Active.
  [[nodiscard]] std::optional<mpi::Rank> pick_drain_candidate() const;
  /// Σ over participants of their active span (join → leave, clipped to
  /// `end` for workers still in the cluster), in seconds — the
  /// provisioning cost axis of Ablation O.
  [[nodiscard]] double worker_seconds(sim::Time end) const;

 private:
  [[nodiscard]] WorkerRecord& mutable_record(mpi::Rank rank);

  std::vector<WorkerRecord> records_;
  std::vector<SpeedClass> classes_;
  std::uint64_t epoch_ = 0;
  std::uint32_t participants_ = 0;
  std::uint32_t active_ = 0;
  std::uint32_t peak_active_ = 0;
  std::uint32_t joins_completed_ = 0;
  std::uint32_t drains_completed_ = 0;
  std::vector<double> join_latencies_;
};

/// Parses the `worker_classes` spec: '|'-separated `name:key=val,...`
/// clauses with fields `speed` (relative multiplier, > 0) and `count`
/// (pattern slots per cycle, >= 1).  Classes repeat cyclically over the
/// worker ranks, e.g. `standard:speed=1,count=3|accel:speed=4,count=1`
/// makes every 4th worker an accelerator.  Throws std::invalid_argument
/// with a pointed message on malformed input.
[[nodiscard]] std::vector<SpeedClass> parse_worker_classes(
    std::string_view spec);

/// Parses the `joins` spec: '|'-separated `worker=R,at=T[,class=NAME]`
/// clauses (T accepts the fault-plan time grammar: `s` default, `ms`,
/// `us`, `ns`).  `class` overrides the worker's positional speed class.
/// Throws std::invalid_argument on malformed input.
[[nodiscard]] std::vector<JoinSpec> parse_joins(std::string_view spec);

/// Rejects membership configurations that cannot run: joins naming
/// non-worker ranks or unknown speed classes, elastic mode without
/// serving, membership changes under strategies whose collectives assume
/// a fixed cohort (WW-Coll, WW-CollList, WW-Aggr), query_sync with a
/// changing barrier cohort, and kill faults that fire before their
/// target's scheduled join.  Called by the drivers before the World is
/// built, next to validate_fault_plan.
void validate_membership(const SimConfig& config);

}  // namespace s3asim::core
