#pragma once

/// \file workload.hpp
/// Deterministic pseudo-random workload generation.
///
/// Every quantity is derived from (seed, query) via forked RNG streams, so
/// the result set — counts, sizes, scores, fragment assignment, and hence
/// the entire output-file layout — is identical for every strategy and
/// process count (paper §3.3: "Although we use different numbers of
/// processors, the results are always identical since they are
/// pseudo-randomly generated").

#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "util/rng.hpp"

namespace s3asim::core {

/// One search result (HSP report) of a query.
struct ResultInfo {
  std::uint64_t score = 0;     ///< similarity score; file order is descending
  std::uint64_t bytes = 0;     ///< formatted output size
  std::uint32_t fragment = 0;  ///< database fragment that produced it
};

/// Everything about one query's results, in final (descending-score) order.
struct QueryWorkload {
  std::uint64_t query_length = 0;
  std::vector<ResultInfo> results;        ///< sorted by descending score
  std::vector<std::uint64_t> offsets;     ///< region-relative offset per result
  std::uint64_t total_bytes = 0;          ///< region size
  std::vector<std::vector<std::uint32_t>> by_fragment;  ///< result idx per frag
};

class WorkloadModel {
 public:
  explicit WorkloadModel(WorkloadConfig config);

  [[nodiscard]] const WorkloadConfig& config() const noexcept { return config_; }

  /// The (cached) workload of one query.
  [[nodiscard]] const QueryWorkload& query(std::uint32_t q) const;

  /// Absolute file offset of query q's region (sum of earlier regions).
  [[nodiscard]] std::uint64_t region_base(std::uint32_t q) const;

  /// Size of the whole output file.
  [[nodiscard]] std::uint64_t total_output_bytes() const;

  /// Total result count over all queries.
  [[nodiscard]] std::uint64_t total_result_count() const;

  /// Result bytes produced by searching (q, fragment) — drives compute time.
  [[nodiscard]] std::uint64_t fragment_result_bytes(std::uint32_t q,
                                                    std::uint32_t fragment) const;

 private:
  void generate(std::uint32_t q) const;

  WorkloadConfig config_;
  mutable std::vector<std::unique_ptr<QueryWorkload>> cache_;
  mutable std::vector<std::uint64_t> region_base_cache_;
};

}  // namespace s3asim::core
