#include "core/stats.hpp"

#include <sstream>

#include "util/json.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace s3asim::core {

namespace {

void write_tenant_serving(util::JsonWriter& json,
                          const TenantServingStats& stats) {
  json.begin_object();
  json.key("name");
  json.value(stats.name);
  json.key("offered");
  json.value(stats.offered);
  json.key("admitted");
  json.value(stats.admitted);
  json.key("shed");
  json.value(stats.shed);
  json.key("completed");
  json.value(stats.completed);
  json.key("latency_mean_seconds");
  json.value(stats.mean_seconds);
  json.key("latency_p50_seconds");
  json.value(stats.p50_seconds);
  json.key("latency_p95_seconds");
  json.value(stats.p95_seconds);
  json.key("latency_p99_seconds");
  json.value(stats.p99_seconds);
  json.key("latency_max_seconds");
  json.value(stats.max_seconds);
  json.end_object();
}

}  // namespace

double RunStats::worker_mean_seconds(Phase phase) const {
  if (ranks.size() <= 1) return 0.0;
  double total = 0.0;
  for (std::size_t rank = 1; rank < ranks.size(); ++rank)
    total += ranks[rank].phases.seconds(phase);
  return total / static_cast<double>(ranks.size() - 1);
}

double RunStats::master_seconds(Phase phase) const {
  if (ranks.empty()) return 0.0;
  return ranks[0].phases.seconds(phase);
}

std::string RunStats::phase_table() const {
  util::TextTable table({"Phase", "Master (s)", "Worker mean (s)"});
  for (const Phase phase : all_phases()) {
    table.add_row({phase_name(phase),
                   util::format_fixed(master_seconds(phase)),
                   util::format_fixed(worker_mean_seconds(phase))});
  }
  table.add_row({"Wall", util::format_fixed(wall_seconds), ""});
  return table.render();
}

std::string RunStats::to_json() const {
  util::JsonWriter json;
  json.begin_object();
  json.key("strategy");
  json.value(strategy_name(strategy));
  json.key("nprocs");
  json.value(static_cast<std::uint64_t>(nprocs));
  json.key("groups");
  json.value(static_cast<std::uint64_t>(groups));
  json.key("query_sync");
  json.value(query_sync);
  json.key("compute_speed");
  json.value(compute_speed);
  json.key("wall_seconds");
  json.value(wall_seconds);
  json.key("events");
  json.value(events);

  json.key("output");
  json.begin_object();
  json.key("bytes");
  json.value(output_bytes);
  json.key("covered_bytes");
  json.value(bytes_covered);
  json.key("overlaps");
  json.value(overlap_count);
  json.key("exact");
  json.value(file_exact);
  json.key("db_bytes_read");
  json.value(db_bytes_read);
  json.end_object();

  json.key("faults");
  json.begin_object();
  json.key("workers_died");
  json.value(faults.workers_died);
  json.key("workers_retired");
  json.value(faults.workers_retired);
  json.key("tasks_reassigned");
  json.value(faults.tasks_reassigned);
  json.key("duplicate_completions");
  json.value(faults.duplicate_completions);
  json.key("scores_dropped");
  json.value(faults.scores_dropped);
  json.key("repaired_bytes");
  json.value(faults.repaired_bytes);
  json.end_object();

  if (serving.enabled) {
    json.key("serving");
    json.begin_object();
    json.key("goodput_qps");
    json.value(serving.goodput_qps);
    json.key("inflight_peak_bytes");
    json.value(serving.inflight_peak_bytes);
    json.key("overall");
    write_tenant_serving(json, serving.overall);
    json.key("tenants");
    json.begin_array();
    for (const TenantServingStats& tenant : serving.tenants)
      write_tenant_serving(json, tenant);
    json.end_array();
    json.end_object();
  }

  if (membership.enabled) {
    json.key("membership");
    json.begin_object();
    json.key("epoch");
    json.value(membership.epoch);
    json.key("participants");
    json.value(static_cast<std::uint64_t>(membership.participants));
    json.key("peak_active");
    json.value(static_cast<std::uint64_t>(membership.peak_active));
    json.key("final_active");
    json.value(static_cast<std::uint64_t>(membership.final_active));
    json.key("joins");
    json.value(static_cast<std::uint64_t>(membership.joins));
    json.key("drains");
    json.value(static_cast<std::uint64_t>(membership.drains));
    json.key("deaths");
    json.value(static_cast<std::uint64_t>(membership.deaths));
    json.key("worker_seconds");
    json.value(membership.worker_seconds);
    json.key("join_latency_mean_seconds");
    json.value(membership.join_latency_mean_seconds);
    json.key("join_latency_max_seconds");
    json.value(membership.join_latency_max_seconds);
    json.key("speed_min");
    json.value(membership.speed_min);
    json.key("speed_max");
    json.value(membership.speed_max);
    json.key("speed_mean");
    json.value(membership.speed_mean);
    json.key("classes");
    json.begin_array();
    for (const ClassStats& cls : membership.classes) {
      json.begin_object();
      json.key("name");
      json.value(cls.name);
      json.key("speed");
      json.value(cls.speed);
      json.key("workers");
      json.value(static_cast<std::uint64_t>(cls.workers));
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }

  json.key("batch_complete_seconds");
  json.begin_array();
  for (const double at : batch_complete_seconds) json.value(at);
  json.end_array();

  json.key("file_system");
  json.begin_object();
  json.key("requests");
  json.value(fs.server_requests);
  json.key("pairs");
  json.value(fs.server_pairs);
  json.key("bytes");
  json.value(fs.server_bytes);
  json.key("syncs");
  json.value(fs.server_syncs);
  json.key("busy_seconds");
  json.value(fs.server_busy_seconds);
  json.end_object();

  if (cache.enabled) {
    json.key("cache");
    json.begin_object();
    json.key("read_hits");
    json.value(cache.read_hits);
    json.key("read_misses");
    json.value(cache.read_misses);
    json.key("write_hits");
    json.value(cache.write_hits);
    json.key("write_misses");
    json.value(cache.write_misses);
    json.key("evictions");
    json.value(cache.evictions);
    json.key("writebacks");
    json.value(cache.writebacks);
    json.key("writeback_bytes");
    json.value(cache.writeback_bytes);
    json.key("invalidations");
    json.value(cache.invalidations);
    json.key("close_writebacks");
    json.value(cache.close_writebacks);
    json.key("token_grants");
    json.value(cache.token_grants);
    json.key("token_revocations");
    json.value(cache.token_revocations);
    json.key("token_conflicts");
    json.value(cache.token_conflicts);
    json.key("metadata_ops");
    json.value(cache.metadata_ops);
    json.key("metadata_busy_seconds");
    json.value(cache.metadata_busy_seconds);
    json.end_object();
  }

  if (sieve.enabled) {
    json.key("sieve");
    json.begin_object();
    json.key("reads");
    json.value(sieve.reads);
    json.key("writes");
    json.value(sieve.writes);
    json.key("rmw_reads");
    json.value(sieve.rmw_reads);
    json.key("holes_protected");
    json.value(sieve.holes_protected);
    json.key("read_useful_bytes");
    json.value(sieve.read_useful_bytes);
    json.key("read_transferred_bytes");
    json.value(sieve.read_transferred_bytes);
    json.key("write_useful_bytes");
    json.value(sieve.write_useful_bytes);
    json.key("write_transferred_bytes");
    json.value(sieve.write_transferred_bytes);
    json.end_object();
  }

  json.key("ranks");
  json.begin_array();
  for (std::size_t rank = 0; rank < ranks.size(); ++rank) {
    const RankStats& stats = ranks[rank];
    json.begin_object();
    json.key("rank");
    json.value(static_cast<std::uint64_t>(rank));
    json.key("wall_seconds");
    json.value(sim::to_seconds(stats.wall));
    json.key("tasks");
    json.value(stats.tasks_processed);
    json.key("bytes_written");
    json.value(stats.bytes_written);
    json.key("fragment_loads");
    json.value(stats.fragment_loads);
    json.key("phases");
    json.begin_object();
    for (const Phase phase : all_phases()) {
      json.key(phase_name(phase));
      json.value(stats.phases.seconds(phase));
    }
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

std::string RunStats::summary() const {
  std::ostringstream out;
  out << strategy_name(strategy) << " procs=" << nprocs
      << (query_sync ? " sync" : " no-sync") << " speed=" << compute_speed
      << ": wall " << util::format_fixed(wall_seconds) << " s, output "
      << util::format_bytes(output_bytes)
      << (file_exact ? " (verified)" : " (VERIFICATION FAILED)");
  return out.str();
}

}  // namespace s3asim::core
