#pragma once

/// \file fragment_cache.hpp
/// LRU set of database fragments a worker holds in memory.  The master
/// mirrors each worker's cache (both sides apply the same `touch` sequence)
/// to implement mpiBLAST-style fragment-affinity scheduling.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace s3asim::core {

class FragmentCache {
 public:
  explicit FragmentCache(std::size_t capacity) : capacity_(capacity) {}

  /// Marks `fragment` most-recently-used; returns true if it was cached.
  bool touch(std::uint32_t fragment) {
    if (capacity_ == 0) return false;
    const auto it = std::find(lru_.begin(), lru_.end(), fragment);
    if (it != lru_.end()) {
      lru_.erase(it);
      lru_.push_back(fragment);
      return true;
    }
    if (lru_.size() == capacity_) lru_.erase(lru_.begin());
    lru_.push_back(fragment);
    return false;
  }

  [[nodiscard]] bool contains(std::uint32_t fragment) const {
    return std::find(lru_.begin(), lru_.end(), fragment) != lru_.end();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return lru_.size(); }

 private:
  std::size_t capacity_;
  std::vector<std::uint32_t> lru_;
};

}  // namespace s3asim::core
