#pragma once

/// \file trace.hpp
/// Execution tracing — the MPE/Jumpshot substitute (paper §3: S3aSim
/// integrates with MPE and Jumpshot for debugging).  Phase intervals are
/// recorded per rank and can be rendered as a text Gantt chart, exported as
/// CSV for external plotting, or exported as Chrome-trace-event JSON for
/// Perfetto / `chrome://tracing` (docs/OBSERVABILITY.md).  Beyond phase
/// intervals the log also carries per-request PFS service spans and MPI
/// message flow events, so a traced run shows *why* a strategy wins: which
/// server was busy, which rank was waiting on which message.

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace s3asim::trace {

struct Interval {
  std::uint32_t rank = 0;
  std::string_view category;  ///< phase name or custom label, interned by
                              ///< the owning TraceLog (stable until clear())
  sim::Time start = 0;
  sim::Time end = 0;

  [[nodiscard]] sim::Time duration() const noexcept { return end - start; }
};

/// One serviced PFS request (strip-level write/read/sync), attributed to
/// the server that serviced it.
struct Span {
  std::uint32_t server = 0;
  char kind = 'w';  ///< 'w' write, 'r' read, 's' sync
  std::uint64_t pairs = 0;
  std::uint64_t bytes = 0;
  sim::Time start = 0;
  sim::Time end = 0;
};

/// One delivered MPI message: send-side departure and receive-side arrival.
struct Flow {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::int32_t tag = 0;
  std::uint64_t bytes = 0;
  sim::Time sent = 0;
  sim::Time received = 0;
};

class TraceLog {
 public:
  void record(std::uint32_t rank, std::string_view category, sim::Time start,
              sim::Time end) {
    if (end < start) {
      // Clock misuse: drop rather than corrupt, but never silently — the
      // count surfaces in the run manifest (trace.intervals_dropped).
      ++dropped_;
      if (drop_counter_ != nullptr) drop_counter_->add(1);
      return;
    }
    intervals_.push_back(Interval{rank, intern(category), start, end});
  }

  /// Zero-length marker (e.g. a worker death or a retirement decision).
  void event(std::uint32_t rank, std::string_view category, sim::Time at) {
    record(rank, category, at, at);
  }

  /// PFS request span (recorded by the core observer bridge).
  void span(std::uint32_t server, char kind, std::uint64_t pairs,
            std::uint64_t bytes, sim::Time start, sim::Time end) {
    if (end < start) {
      ++dropped_;
      if (drop_counter_ != nullptr) drop_counter_->add(1);
      return;
    }
    spans_.push_back(Span{server, kind, pairs, bytes, start, end});
  }

  /// MPI message flow event (send departure -> receive arrival).
  void flow(std::uint32_t src, std::uint32_t dst, std::int32_t tag,
            std::uint64_t bytes, sim::Time sent, sim::Time received) {
    if (received < sent) {
      ++dropped_;
      if (drop_counter_ != nullptr) drop_counter_->add(1);
      return;
    }
    flows_.push_back(Flow{src, dst, tag, bytes, sent, received});
  }

  /// Mirrors every future drop into `registry`'s "trace.intervals_dropped"
  /// counter (pass nullptr to detach).
  void attach_registry(obs::Registry* registry) {
    drop_counter_ = registry != nullptr
                        ? &registry->counter("trace.intervals_dropped")
                        : nullptr;
  }

  [[nodiscard]] const std::vector<Interval>& intervals() const noexcept {
    return intervals_;
  }
  [[nodiscard]] const std::vector<Span>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] const std::vector<Flow>& flows() const noexcept {
    return flows_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return intervals_.size(); }
  /// Records rejected for running backwards in time (end < start).
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  void clear() noexcept {
    intervals_.clear();
    spans_.clear();
    flows_.clear();
    categories_.clear();
    dropped_ = 0;
  }

  /// Total time per (rank, category).
  [[nodiscard]] std::vector<std::pair<std::string, sim::Time>> totals_for_rank(
      std::uint32_t rank) const;

  /// Renders an ASCII Gantt chart: one row per rank, `width` columns across
  /// [0, makespan], each cell showing the category most present in its slice.
  [[nodiscard]] std::string render_gantt(unsigned width = 100) const;

  /// Writes "rank,category,start_s,end_s" rows.
  void export_csv(const std::string& path) const;

  /// Serializes the full log as Chrome-trace-event JSON: pid 1 = MPI ranks
  /// (one thread per rank; phase intervals as "X" slices, zero-length
  /// markers as "i" instants, message flows as "s"/"f" pairs), pid 2 = PFS
  /// servers (request spans as "X" slices with pairs/bytes args).
  /// Timestamps are microseconds, as the format requires.  See
  /// docs/OBSERVABILITY.md for the schema.
  [[nodiscard]] std::string chrome_json() const;

  /// `chrome_json()` to a file; throws std::runtime_error on I/O failure.
  void export_chrome_json(const std::string& path) const;

 private:
  /// Interns `category` and returns a view into the pool.  There are only a
  /// handful of category names per run (the phase names plus fault markers),
  /// so intervals stay allocation-free on the hot path — a node-based set
  /// keeps the backing strings' addresses stable across inserts.
  std::string_view intern(std::string_view category) {
    const auto it = categories_.find(category);
    if (it != categories_.end()) return *it;
    return *categories_.emplace(category).first;
  }

  std::vector<Interval> intervals_;
  std::vector<Span> spans_;
  std::vector<Flow> flows_;
  std::set<std::string, std::less<>> categories_;
  std::uint64_t dropped_ = 0;
  obs::Counter* drop_counter_ = nullptr;
};

}  // namespace s3asim::trace
