#pragma once

/// \file trace.hpp
/// Execution tracing — the MPE/Jumpshot substitute (paper §3: S3aSim
/// integrates with MPE and Jumpshot for debugging).  Phase intervals are
/// recorded per rank and can be rendered as a text Gantt chart or exported
/// as CSV for external plotting.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace s3asim::trace {

struct Interval {
  std::uint32_t rank = 0;
  std::string category;   ///< phase name or custom label
  sim::Time start = 0;
  sim::Time end = 0;

  [[nodiscard]] sim::Time duration() const noexcept { return end - start; }
};

class TraceLog {
 public:
  void record(std::uint32_t rank, std::string category, sim::Time start,
              sim::Time end) {
    if (end < start) return;  // clock misuse; drop rather than corrupt
    intervals_.push_back(Interval{rank, std::move(category), start, end});
  }

  /// Zero-length marker (e.g. a worker death or a retirement decision).
  void event(std::uint32_t rank, std::string category, sim::Time at) {
    record(rank, std::move(category), at, at);
  }

  [[nodiscard]] const std::vector<Interval>& intervals() const noexcept {
    return intervals_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return intervals_.size(); }
  void clear() noexcept { intervals_.clear(); }

  /// Total time per (rank, category).
  [[nodiscard]] std::vector<std::pair<std::string, sim::Time>> totals_for_rank(
      std::uint32_t rank) const;

  /// Renders an ASCII Gantt chart: one row per rank, `width` columns across
  /// [0, makespan], each cell showing the category most present in its slice.
  [[nodiscard]] std::string render_gantt(unsigned width = 100) const;

  /// Writes "rank,category,start_s,end_s" rows.
  void export_csv(const std::string& path) const;

 private:
  std::vector<Interval> intervals_;
};

}  // namespace s3asim::trace
