#include "trace/trace.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/require.hpp"
#include "util/units.hpp"

namespace s3asim::trace {

std::vector<std::pair<std::string, sim::Time>> TraceLog::totals_for_rank(
    std::uint32_t rank) const {
  std::map<std::string_view, sim::Time> totals;
  for (const Interval& interval : intervals_)
    if (interval.rank == rank) totals[interval.category] += interval.duration();
  std::vector<std::pair<std::string, sim::Time>> out;
  out.reserve(totals.size());
  for (const auto& [category, total] : totals)
    out.emplace_back(std::string(category), total);
  return out;
}

std::string TraceLog::render_gantt(unsigned width) const {
  S3A_REQUIRE(width >= 10);
  if (intervals_.empty()) return "(empty trace)\n";

  sim::Time makespan = 0;
  std::uint32_t max_rank = 0;
  for (const Interval& interval : intervals_) {
    makespan = std::max(makespan, interval.end);
    max_rank = std::max(max_rank, interval.rank);
  }
  if (makespan == 0) return "(zero-length trace)\n";

  // Assign each category a glyph: its first letter if free, otherwise any
  // later letter of the name, otherwise a palette character.
  std::map<std::string_view, char> glyphs;
  std::string used;
  const std::string palette = "*+=@%&$!0123456789";
  for (const Interval& interval : intervals_) {
    if (glyphs.contains(interval.category)) continue;
    char glyph = 0;
    for (const char c : interval.category) {
      const char upper =
          static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      if (std::isalpha(static_cast<unsigned char>(upper)) &&
          used.find(upper) == std::string::npos) {
        glyph = upper;
        break;
      }
    }
    if (glyph == 0) {
      for (const char c : palette) {
        if (used.find(c) == std::string::npos) {
          glyph = c;
          break;
        }
      }
    }
    if (glyph == 0) glyph = '?';
    used += glyph;
    glyphs.emplace(interval.category, glyph);
  }

  std::ostringstream out;
  out << "time span: " << util::format_seconds(sim::to_seconds(makespan))
      << ", one column = "
      << util::format_seconds(sim::to_seconds(makespan) / width) << "\n";
  for (const auto& [category, glyph] : glyphs)
    out << "  " << glyph << " = " << category << "\n";

  for (std::uint32_t rank = 0; rank <= max_rank; ++rank) {
    // For each column pick the category with the most coverage.
    std::vector<std::map<std::string_view, sim::Time>> columns(width);
    bool any = false;
    for (const Interval& interval : intervals_) {
      if (interval.rank != rank) continue;
      any = true;
      const auto first_col = static_cast<std::size_t>(
          interval.start * static_cast<sim::Time>(width) / makespan);
      auto last_col = static_cast<std::size_t>(
          interval.end * static_cast<sim::Time>(width) / makespan);
      last_col = std::min<std::size_t>(last_col, width - 1);
      for (std::size_t col = first_col; col <= last_col; ++col) {
        const sim::Time col_start =
            static_cast<sim::Time>(col) * makespan / static_cast<sim::Time>(width);
        const sim::Time col_end = static_cast<sim::Time>(col + 1) * makespan /
                                  static_cast<sim::Time>(width);
        const sim::Time overlap = std::min(interval.end, col_end) -
                                  std::max(interval.start, col_start);
        if (overlap > 0) columns[col][interval.category] += overlap;
      }
    }
    if (!any) continue;
    out << "rank " << rank << (rank < 10 ? "  |" : " |");
    for (const auto& column : columns) {
      if (column.empty()) {
        out << ' ';
        continue;
      }
      const auto best = std::max_element(
          column.begin(), column.end(),
          [](const auto& a, const auto& b) { return a.second < b.second; });
      out << glyphs.at(best->first);
    }
    out << "|\n";
  }
  return out.str();
}

void TraceLog::export_csv(const std::string& path) const {
  util::CsvWriter csv(path);
  csv.write_row({"rank", "category", "start_s", "end_s"});
  for (const Interval& interval : intervals_) {
    csv.write_row({std::to_string(interval.rank),
                   std::string(interval.category),
                   util::format_fixed(sim::to_seconds(interval.start), 9),
                   util::format_fixed(sim::to_seconds(interval.end), 9)});
  }
}

namespace {

/// Chrome-trace process ids: one synthetic process for the MPI ranks, one
/// for the PFS servers (tid = rank / server index respectively).
constexpr std::int64_t kPidRanks = 1;
constexpr std::int64_t kPidServers = 2;

constexpr double to_us(sim::Time t) noexcept {
  return static_cast<double>(t) / 1000.0;  // ns -> us, the format's unit
}

void event_common(util::JsonWriter& json, const char* ph, std::int64_t pid,
                  std::int64_t tid, double ts, std::string_view name,
                  const char* cat) {
  json.begin_object();
  json.key("ph");
  json.value(ph);
  json.key("pid");
  json.value(pid);
  json.key("tid");
  json.value(tid);
  json.key("ts");
  json.value(ts);
  json.key("name");
  json.value(std::string(name));
  json.key("cat");
  json.value(cat);
}

void metadata_record(util::JsonWriter& json, const char* which,
                     std::int64_t pid, std::int64_t tid,
                     const std::string& label) {
  event_common(json, "M", pid, tid, 0.0, which, "__metadata");
  json.key("args");
  json.begin_object();
  json.key("name");
  json.value(label);
  json.end_object();
  json.end_object();
}

const char* span_name(char kind) noexcept {
  switch (kind) {
    case 'r': return "read";
    case 's': return "sync";
    default: return "write";
  }
}

}  // namespace

std::string TraceLog::chrome_json() const {
  util::JsonWriter json;
  json.begin_object();
  json.key("displayTimeUnit");
  json.value("ms");
  json.key("traceEvents");
  json.begin_array();

  // Metadata: name the two synthetic processes and their threads.
  metadata_record(json, "process_name", kPidRanks, 0, "MPI ranks");
  metadata_record(json, "process_name", kPidServers, 0, "PFS servers");
  std::set<std::uint32_t> ranks;
  for (const Interval& interval : intervals_) ranks.insert(interval.rank);
  for (const Flow& flow : flows_) {
    ranks.insert(flow.src);
    ranks.insert(flow.dst);
  }
  for (const std::uint32_t rank : ranks)
    metadata_record(json, "thread_name", kPidRanks, rank,
                    "rank " + std::to_string(rank));
  std::set<std::uint32_t> servers;
  for (const Span& span : spans_) servers.insert(span.server);
  for (const std::uint32_t server : servers)
    metadata_record(json, "thread_name", kPidServers, server,
                    "server " + std::to_string(server));

  // Per-rank phase intervals: "X" complete slices; zero-length records
  // (fault markers, retirements) become "i" instants.
  for (const Interval& interval : intervals_) {
    if (interval.duration() > 0) {
      event_common(json, "X", kPidRanks, interval.rank, to_us(interval.start),
                   interval.category, "phase");
      json.key("dur");
      json.value(to_us(interval.duration()));
      json.end_object();
    } else {
      event_common(json, "i", kPidRanks, interval.rank, to_us(interval.start),
                   interval.category, "marker");
      json.key("s");
      json.value("t");  // thread-scoped instant
      json.end_object();
    }
  }

  // Per-request PFS service spans on the server process.
  for (const Span& span : spans_) {
    event_common(json, "X", kPidServers, span.server, to_us(span.start),
                 span_name(span.kind), "pfs");
    json.key("dur");
    json.value(to_us(span.end - span.start));
    json.key("args");
    json.begin_object();
    json.key("pairs");
    json.value(span.pairs);
    json.key("bytes");
    json.value(span.bytes);
    json.end_object();
    json.end_object();
  }

  // MPI message flows: a start ("s") on the sender thread bound to a finish
  // ("f") on the receiver thread via a shared id.
  std::uint64_t flow_id = 0;
  for (const Flow& flow : flows_) {
    const std::string id = std::to_string(flow_id++);
    event_common(json, "s", kPidRanks, flow.src, to_us(flow.sent), "msg",
                 "mpi");
    json.key("id");
    json.value(id);
    json.key("args");
    json.begin_object();
    json.key("tag");
    json.value(static_cast<std::int64_t>(flow.tag));
    json.key("bytes");
    json.value(flow.bytes);
    json.end_object();
    json.end_object();
    event_common(json, "f", kPidRanks, flow.dst, to_us(flow.received), "msg",
                 "mpi");
    json.key("id");
    json.value(id);
    json.key("bp");
    json.value("e");  // bind to enclosing slice
    json.end_object();
  }

  json.end_array();
  json.end_object();
  return json.str();
}

void TraceLog::export_chrome_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write trace to " + path);
  out << chrome_json() << '\n';
  if (!out) throw std::runtime_error("failed writing trace to " + path);
}

}  // namespace s3asim::trace
