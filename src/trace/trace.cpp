#include "trace/trace.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>

#include "util/csv.hpp"
#include "util/require.hpp"
#include "util/units.hpp"

namespace s3asim::trace {

std::vector<std::pair<std::string, sim::Time>> TraceLog::totals_for_rank(
    std::uint32_t rank) const {
  std::map<std::string, sim::Time> totals;
  for (const Interval& interval : intervals_)
    if (interval.rank == rank) totals[interval.category] += interval.duration();
  return {totals.begin(), totals.end()};
}

std::string TraceLog::render_gantt(unsigned width) const {
  S3A_REQUIRE(width >= 10);
  if (intervals_.empty()) return "(empty trace)\n";

  sim::Time makespan = 0;
  std::uint32_t max_rank = 0;
  for (const Interval& interval : intervals_) {
    makespan = std::max(makespan, interval.end);
    max_rank = std::max(max_rank, interval.rank);
  }
  if (makespan == 0) return "(zero-length trace)\n";

  // Assign each category a glyph: its first letter if free, otherwise any
  // later letter of the name, otherwise a palette character.
  std::map<std::string, char> glyphs;
  std::string used;
  const std::string palette = "*+=@%&$!0123456789";
  for (const Interval& interval : intervals_) {
    if (glyphs.contains(interval.category)) continue;
    char glyph = 0;
    for (const char c : interval.category) {
      const char upper =
          static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      if (std::isalpha(static_cast<unsigned char>(upper)) &&
          used.find(upper) == std::string::npos) {
        glyph = upper;
        break;
      }
    }
    if (glyph == 0) {
      for (const char c : palette) {
        if (used.find(c) == std::string::npos) {
          glyph = c;
          break;
        }
      }
    }
    if (glyph == 0) glyph = '?';
    used += glyph;
    glyphs.emplace(interval.category, glyph);
  }

  std::ostringstream out;
  out << "time span: " << util::format_seconds(sim::to_seconds(makespan))
      << ", one column = "
      << util::format_seconds(sim::to_seconds(makespan) / width) << "\n";
  for (const auto& [category, glyph] : glyphs)
    out << "  " << glyph << " = " << category << "\n";

  for (std::uint32_t rank = 0; rank <= max_rank; ++rank) {
    // For each column pick the category with the most coverage.
    std::vector<std::map<std::string, sim::Time>> columns(width);
    bool any = false;
    for (const Interval& interval : intervals_) {
      if (interval.rank != rank) continue;
      any = true;
      const auto first_col = static_cast<std::size_t>(
          interval.start * static_cast<sim::Time>(width) / makespan);
      auto last_col = static_cast<std::size_t>(
          interval.end * static_cast<sim::Time>(width) / makespan);
      last_col = std::min<std::size_t>(last_col, width - 1);
      for (std::size_t col = first_col; col <= last_col; ++col) {
        const sim::Time col_start =
            static_cast<sim::Time>(col) * makespan / static_cast<sim::Time>(width);
        const sim::Time col_end = static_cast<sim::Time>(col + 1) * makespan /
                                  static_cast<sim::Time>(width);
        const sim::Time overlap = std::min(interval.end, col_end) -
                                  std::max(interval.start, col_start);
        if (overlap > 0) columns[col][interval.category] += overlap;
      }
    }
    if (!any) continue;
    out << "rank " << rank << (rank < 10 ? "  |" : " |");
    for (const auto& column : columns) {
      if (column.empty()) {
        out << ' ';
        continue;
      }
      const auto best = std::max_element(
          column.begin(), column.end(),
          [](const auto& a, const auto& b) { return a.second < b.second; });
      out << glyphs.at(best->first);
    }
    out << "|\n";
  }
  return out.str();
}

void TraceLog::export_csv(const std::string& path) const {
  util::CsvWriter csv(path);
  csv.write_row({"rank", "category", "start_s", "end_s"});
  for (const Interval& interval : intervals_) {
    csv.write_row({std::to_string(interval.rank), interval.category,
                   util::format_fixed(sim::to_seconds(interval.start), 9),
                   util::format_fixed(sim::to_seconds(interval.end), 9)});
  }
}

}  // namespace s3asim::trace
