#include "bio/align.hpp"

#include <algorithm>
#include <vector>

#include "util/require.hpp"

namespace s3asim::bio {

namespace {
[[nodiscard]] int base_score(char a, char b, const ScoringParams& params) noexcept {
  return a == b ? params.match : params.mismatch;
}
}  // namespace

Hsp extend_ungapped(std::string_view query, std::string_view subject,
                    std::uint32_t query_pos, std::uint32_t subject_pos,
                    std::uint32_t seed_length, const ScoringParams& params) {
  S3A_REQUIRE(query_pos + seed_length <= query.size());
  S3A_REQUIRE(subject_pos + seed_length <= subject.size());

  int score = 0;
  for (std::uint32_t i = 0; i < seed_length; ++i)
    score += base_score(query[query_pos + i], subject[subject_pos + i], params);

  // Rightward extension.
  int best = score;
  std::uint32_t best_right = 0;
  {
    int running = score;
    std::uint32_t steps = 0;
    while (query_pos + seed_length + steps < query.size() &&
           subject_pos + seed_length + steps < subject.size()) {
      running += base_score(query[query_pos + seed_length + steps],
                            subject[subject_pos + seed_length + steps], params);
      ++steps;
      if (running > best) {
        best = running;
        best_right = steps;
      }
      if (best - running > params.xdrop) break;
    }
  }

  // Leftward extension.
  int best_with_left = best;
  std::uint32_t best_left = 0;
  {
    int running = best;
    std::uint32_t steps = 0;
    while (steps < query_pos && steps < subject_pos) {
      running += base_score(query[query_pos - steps - 1],
                            subject[subject_pos - steps - 1], params);
      ++steps;
      if (running > best_with_left) {
        best_with_left = running;
        best_left = steps;
      }
      if (best_with_left - running > params.xdrop) break;
    }
  }

  Hsp hsp;
  hsp.query_start = query_pos - best_left;
  hsp.subject_start = subject_pos - best_left;
  hsp.length = seed_length + best_left + best_right;
  hsp.score = best_with_left;
  return hsp;
}

int banded_smith_waterman(std::string_view query, std::string_view subject,
                          std::int64_t diagonal, std::uint32_t band,
                          const ScoringParams& params) {
  if (query.empty() || subject.empty()) return 0;
  const int gap = params.gap_open + params.gap_extend;  // linear approximation
  const auto rows = static_cast<std::int64_t>(query.size());
  const auto cols = static_cast<std::int64_t>(subject.size());
  const std::int64_t width = 2 * static_cast<std::int64_t>(band) + 1;

  // dp[b] holds the cell on diagonal offset b-band relative to `diagonal`.
  std::vector<int> previous(static_cast<std::size_t>(width), 0);
  std::vector<int> current(static_cast<std::size_t>(width), 0);
  int best = 0;

  for (std::int64_t i = 1; i <= rows; ++i) {
    std::fill(current.begin(), current.end(), 0);
    for (std::int64_t b = 0; b < width; ++b) {
      const std::int64_t j = i + diagonal + (b - band);
      if (j < 1 || j > cols) continue;
      const int match = base_score(query[static_cast<std::size_t>(i - 1)],
                                   subject[static_cast<std::size_t>(j - 1)], params);
      // Same diagonal offset in the previous row is the diagonal move.
      int value = previous[static_cast<std::size_t>(b)] + match;
      // Gap in subject: cell (i-1, j) is diagonal offset b+1 in row i-1.
      if (b + 1 < width)
        value = std::max(value, previous[static_cast<std::size_t>(b + 1)] + gap);
      // Gap in query: cell (i, j-1) is diagonal offset b-1 in row i.
      if (b - 1 >= 0)
        value = std::max(value, current[static_cast<std::size_t>(b - 1)] + gap);
      value = std::max(value, 0);
      current[static_cast<std::size_t>(b)] = value;
      best = std::max(best, value);
    }
    std::swap(previous, current);
  }
  return best;
}

}  // namespace s3asim::bio
