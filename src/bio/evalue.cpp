#include "bio/evalue.hpp"

#include <cmath>

#include "util/require.hpp"

namespace s3asim::bio {

double bit_score(int raw_score, const KarlinAltschulParams& params) {
  S3A_REQUIRE(params.lambda > 0.0 && params.k > 0.0);
  return (params.lambda * static_cast<double>(raw_score) -
          std::log(params.k)) /
         std::log(2.0);
}

double expect_value(int raw_score, std::uint64_t query_length,
                    std::uint64_t database_length,
                    const KarlinAltschulParams& params) {
  S3A_REQUIRE(query_length > 0 && database_length > 0);
  const double bits = bit_score(raw_score, params);
  return static_cast<double>(query_length) *
         static_cast<double>(database_length) * std::exp2(-bits);
}

int min_significant_score(double threshold, std::uint64_t query_length,
                          std::uint64_t database_length,
                          const KarlinAltschulParams& params) {
  S3A_REQUIRE(threshold > 0.0);
  S3A_REQUIRE(query_length > 0 && database_length > 0);
  // E < t  ⇔  S' > log2(m n / t)  ⇔  S > (S'·ln2 + ln K) / λ.
  const double bits_needed =
      std::log2(static_cast<double>(query_length) *
                static_cast<double>(database_length) / threshold);
  const double raw =
      (bits_needed * std::log(2.0) + std::log(params.k)) / params.lambda;
  return static_cast<int>(std::ceil(raw));
}

}  // namespace s3asim::bio
