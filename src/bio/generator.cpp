#include "bio/generator.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "util/require.hpp"

namespace s3asim::bio {

std::vector<Sequence> generate_sequences(const GeneratorConfig& config,
                                         std::uint64_t count,
                                         const std::string& id_prefix) {
  S3A_REQUIRE(config.gc_content >= 0.0 && config.gc_content <= 1.0);
  util::Xoshiro256 rng(config.seed);
  std::vector<Sequence> sequences;
  sequences.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Sequence sequence;
    sequence.id = id_prefix + "|" + std::to_string(i);
    sequence.description = "synthetic sequence " + std::to_string(i);
    const std::uint64_t length = config.length_histogram.sample(rng);
    sequence.data.reserve(length);
    for (std::uint64_t pos = 0; pos < length; ++pos) {
      const bool gc = rng.uniform() < config.gc_content;
      const bool first = rng.uniform() < 0.5;
      sequence.data += gc ? (first ? 'G' : 'C') : (first ? 'A' : 'T');
    }
    sequences.push_back(std::move(sequence));
  }
  return sequences;
}

std::vector<Sequence> generate_queries(std::uint64_t seed, std::uint64_t count) {
  GeneratorConfig config;
  config.seed = seed;
  config.length_histogram = util::nt_query_histogram();
  return generate_sequences(config, count, "s3asim|query");
}

std::vector<std::vector<std::size_t>> fragment_database(
    const std::vector<Sequence>& database, std::uint32_t fragment_count) {
  S3A_REQUIRE(fragment_count >= 1);
  // Greedy longest-processing-time partitioning: assign each sequence (in
  // decreasing length order) to the currently lightest fragment.
  std::vector<std::size_t> order(database.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (database[a].length() != database[b].length())
      return database[a].length() > database[b].length();
    return a < b;
  });

  using Load = std::pair<std::uint64_t, std::uint32_t>;  // (residues, fragment)
  std::priority_queue<Load, std::vector<Load>, std::greater<>> heap;
  for (std::uint32_t f = 0; f < fragment_count; ++f) heap.emplace(0, f);

  std::vector<std::vector<std::size_t>> fragments(fragment_count);
  for (const std::size_t index : order) {
    auto [load, fragment] = heap.top();
    heap.pop();
    fragments[fragment].push_back(index);
    heap.emplace(load + database[index].length(), fragment);
  }
  // Keep each fragment's sequences in original database order.
  for (auto& fragment : fragments) std::sort(fragment.begin(), fragment.end());
  return fragments;
}

std::uint64_t total_residues(const std::vector<Sequence>& sequences) {
  std::uint64_t total = 0;
  for (const Sequence& sequence : sequences) total += sequence.length();
  return total;
}

}  // namespace s3asim::bio
