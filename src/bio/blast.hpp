#pragma once

/// \file blast.hpp
/// A miniature BLASTN-style search engine: k-mer seeding, diagonal-deduped
/// ungapped X-drop extension, optional banded Smith-Waterman rescoring, and
/// score-sorted match lists whose *formatted output size* follows the
/// paper's rule of thumb ("up to three times the maximum of the input query
/// and the matching database sequence").

#include <cstdint>
#include <string>
#include <vector>

#include "bio/align.hpp"
#include "bio/kmer_index.hpp"
#include "bio/sequence.hpp"

namespace s3asim::bio {

/// One query-vs-subject match (the unit that S3aSim's result model counts).
struct Match {
  std::uint32_t subject = 0;     ///< index into the searched subject set
  int score = 0;                 ///< alignment score (SW if rescored)
  Hsp hsp{};                     ///< best ungapped segment
  std::uint64_t output_bytes = 0;  ///< estimated formatted-report size
};

struct BlastParams {
  unsigned k = 11;               ///< BLASTN default word size
  ScoringParams scoring{};
  int min_score = 24;            ///< report threshold
  bool rescore_banded_sw = true; ///< gapped rescoring pass
  std::uint32_t sw_band = 16;
  std::size_t max_matches = 500; ///< keep the top N per query
};

/// Estimated size of the formatted BLAST report for one match — the paper's
/// result-size model (§3): bounded by 3 × max(query length, subject length).
[[nodiscard]] std::uint64_t estimate_output_bytes(std::uint64_t query_length,
                                                  std::uint64_t subject_length,
                                                  std::uint64_t aligned_length);

/// Searches one query against an indexed subject set.  Matches are returned
/// in descending score order (stable on subject index) — the order workers
/// ship results to the master in every parallel tool the paper discusses.
class BlastSearcher {
 public:
  BlastSearcher(std::vector<Sequence> subjects, BlastParams params = {});

  [[nodiscard]] std::vector<Match> search(const Sequence& query) const;

  [[nodiscard]] const std::vector<Sequence>& subjects() const noexcept {
    return subjects_;
  }
  [[nodiscard]] const BlastParams& params() const noexcept { return params_; }

 private:
  std::vector<Sequence> subjects_;
  BlastParams params_;
  KmerIndex index_;
};

}  // namespace s3asim::bio
