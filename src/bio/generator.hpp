#pragma once

/// \file generator.hpp
/// Synthetic sequence-database generation.
///
/// The paper characterizes its workload by the NCBI NT database's length
/// histogram rather than its contents; this generator produces databases
/// and query sets with exactly such statistics, plus the database
/// *fragmentation* step that database-segmented tools (mpiBLAST's
/// mpiformatdb) perform.

#include <cstdint>
#include <vector>

#include "bio/sequence.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"

namespace s3asim::bio {

struct GeneratorConfig {
  std::uint64_t seed = 42;
  /// Length distribution of generated sequences.
  util::BoxHistogram length_histogram = util::nt_database_histogram();
  /// GC content of the generated nucleotides in [0,1].
  double gc_content = 0.5;
};

/// Generates `count` random sequences with histogram-driven lengths.
[[nodiscard]] std::vector<Sequence> generate_sequences(
    const GeneratorConfig& config, std::uint64_t count,
    const std::string& id_prefix = "s3asim|synth");

/// Generates a query set the way the paper describes: `count` sequences
/// from the (truncated) NT query histogram.
[[nodiscard]] std::vector<Sequence> generate_queries(std::uint64_t seed,
                                                     std::uint64_t count);

/// Partitions a database into `fragment_count` fragments balanced by total
/// residue count (greedy longest-first bin packing — what mpiformatdb
/// approximates).  Returns per-fragment sequence indices.
[[nodiscard]] std::vector<std::vector<std::size_t>> fragment_database(
    const std::vector<Sequence>& database, std::uint32_t fragment_count);

/// Total residues across a set of sequences.
[[nodiscard]] std::uint64_t total_residues(const std::vector<Sequence>& sequences);

}  // namespace s3asim::bio
