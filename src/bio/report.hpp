#pragma once

/// \file report.hpp
/// BLAST-style pairwise report formatting.
///
/// This is what the paper's result-size model abstracts: "the actual BLAST
/// output is generally formatted with the input sequence, database
/// sequence, and the matches between them" (§3) — three text rows per
/// alignment block plus headers, which is why a result is bounded by
/// ~3 × max(query length, subject length).  The formatter produces real
/// report text so the model's constant can be validated against it.

#include <cstdint>
#include <string>

#include "bio/blast.hpp"
#include "bio/sequence.hpp"

namespace s3asim::bio {

struct ReportOptions {
  std::size_t line_width = 60;   ///< residues per alignment row
  bool include_header = true;    ///< per-match score/identity header
};

/// Formats one match as a classic three-row pairwise alignment:
///
///   > gi|... subject description
///    Score = 123, Identities = 57/60 (95%)
///
///   Query  1   ACGTACGT...  60
///              |||| |||...
///   Sbjct  87  ACGTTCGT...  146
///
/// The aligned region is the match's HSP (ungapped), so rows align 1:1.
[[nodiscard]] std::string format_match(const Sequence& query,
                                       const Sequence& subject,
                                       const Match& match,
                                       const ReportOptions& options = {});

/// Formats a whole result set, best-first, as BLAST would print them.
[[nodiscard]] std::string format_report(const Sequence& query,
                                        const BlastSearcher& searcher,
                                        const std::vector<Match>& matches,
                                        const ReportOptions& options = {});

/// Fraction of identical positions within the match's HSP, in [0, 1].
[[nodiscard]] double identity_fraction(const Sequence& query,
                                       const Sequence& subject,
                                       const Match& match);

}  // namespace s3asim::bio
