#pragma once

/// \file kmer_index.hpp
/// Exact k-mer seed index — the word-lookup stage of a BLASTN-style search.
/// Maps every 2-bit-packed k-mer of the indexed subject sequences to its
/// (sequence, position) occurrences.

#include <cstdint>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bio/sequence.hpp"
#include "util/require.hpp"

namespace s3asim::bio {

/// One occurrence of a k-mer in the indexed set.
struct SeedHit {
  std::uint32_t sequence = 0;  ///< index into the subject set
  std::uint32_t position = 0;  ///< 0-based offset of the k-mer start

  friend bool operator==(const SeedHit&, const SeedHit&) = default;
};

class KmerIndex {
 public:
  /// Builds an index of all ACGT k-mers (words containing other characters
  /// are skipped).  k in [4, 31].
  KmerIndex(std::span<const Sequence> subjects, unsigned k);

  [[nodiscard]] unsigned k() const noexcept { return k_; }
  [[nodiscard]] std::size_t distinct_kmers() const noexcept { return table_.size(); }
  [[nodiscard]] std::uint64_t total_positions() const noexcept { return positions_; }

  /// Occurrences of the k-mer starting at `text.data()`; empty if the word
  /// contains non-ACGT characters or is absent.
  [[nodiscard]] std::span<const SeedHit> lookup(std::string_view word) const;

  /// Packs an ACGT word into 2 bits/base; returns false on other characters.
  static bool pack(std::string_view word, std::uint64_t& packed) noexcept;

 private:
  unsigned k_;
  std::uint64_t positions_ = 0;
  std::unordered_map<std::uint64_t, std::vector<SeedHit>> table_;
};

}  // namespace s3asim::bio
