#include "bio/kmer_index.hpp"

namespace s3asim::bio {

bool KmerIndex::pack(std::string_view word, std::uint64_t& packed) noexcept {
  packed = 0;
  for (const char c : word) {
    const std::uint8_t code = encode_base(c);
    if (code > 3) return false;
    packed = (packed << 2) | code;
  }
  return true;
}

KmerIndex::KmerIndex(std::span<const Sequence> subjects, unsigned k) : k_(k) {
  S3A_REQUIRE_MSG(k >= 4 && k <= 31, "k must be in [4, 31]");
  for (std::uint32_t s = 0; s < subjects.size(); ++s) {
    const std::string& data = subjects[s].data;
    if (data.size() < k) continue;
    // Rolling 2-bit pack; `valid` counts consecutive ACGT characters seen.
    std::uint64_t packed = 0;
    unsigned valid = 0;
    const std::uint64_t mask = (k >= 32) ? ~0ULL : ((1ULL << (2 * k)) - 1);
    for (std::uint32_t pos = 0; pos < data.size(); ++pos) {
      const std::uint8_t code = encode_base(data[pos]);
      if (code > 3) {
        valid = 0;
        packed = 0;
        continue;
      }
      packed = ((packed << 2) | code) & mask;
      if (++valid >= k) {
        table_[packed].push_back(SeedHit{s, pos + 1 - k});
        ++positions_;
      }
    }
  }
}

std::span<const SeedHit> KmerIndex::lookup(std::string_view word) const {
  S3A_REQUIRE_MSG(word.size() == k_, "lookup word length must equal k");
  std::uint64_t packed = 0;
  if (!pack(word, packed)) return {};
  const auto it = table_.find(packed);
  if (it == table_.end()) return {};
  return it->second;
}

}  // namespace s3asim::bio
