#pragma once

/// \file fasta.hpp
/// Streaming FASTA reader/writer.  The examples use this to materialize the
/// synthetic NT-like database on disk and read it back, mirroring the way
/// mpiBLAST formats and fragments its databases.

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "bio/sequence.hpp"

namespace s3asim::bio {

/// Incremental FASTA parser over any std::istream.
class FastaReader {
 public:
  explicit FastaReader(std::istream& input) : input_(&input) {}

  /// Reads the next record, or std::nullopt at end of input.
  /// Throws std::runtime_error on malformed input (data before any header).
  [[nodiscard]] std::optional<Sequence> next();

  /// Reads all remaining records.
  [[nodiscard]] std::vector<Sequence> read_all();

 private:
  std::istream* input_;
  std::string pending_header_;
  bool saw_header_ = false;
};

/// FASTA writer with configurable line wrapping.
class FastaWriter {
 public:
  explicit FastaWriter(std::ostream& output, std::size_t line_width = 70);

  void write(const Sequence& sequence);
  void write_all(const std::vector<Sequence>& sequences);

 private:
  std::ostream* output_;
  std::size_t line_width_;
};

/// Convenience round trips through files; throw std::runtime_error on I/O
/// failure.
[[nodiscard]] std::vector<Sequence> read_fasta_file(const std::string& path);
void write_fasta_file(const std::string& path,
                      const std::vector<Sequence>& sequences,
                      std::size_t line_width = 70);

}  // namespace s3asim::bio
