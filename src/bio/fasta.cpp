#include "bio/fasta.hpp"

#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace s3asim::bio {

namespace {

/// Splits a header line ">id description..." into (id, description).
void parse_header(const std::string& line, Sequence& out) {
  std::size_t start = 1;  // skip '>'
  while (start < line.size() && std::isspace(static_cast<unsigned char>(line[start])))
    ++start;
  std::size_t id_end = start;
  while (id_end < line.size() && !std::isspace(static_cast<unsigned char>(line[id_end])))
    ++id_end;
  out.id = line.substr(start, id_end - start);
  std::size_t desc_start = id_end;
  while (desc_start < line.size() &&
         std::isspace(static_cast<unsigned char>(line[desc_start])))
    ++desc_start;
  out.description = line.substr(desc_start);
}

void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

}  // namespace

std::optional<Sequence> FastaReader::next() {
  std::string line;
  if (!saw_header_) {
    // Find the first header.
    while (std::getline(*input_, line)) {
      strip_cr(line);
      if (line.empty()) continue;
      if (line[0] != '>')
        throw std::runtime_error("FASTA: sequence data before any '>' header");
      pending_header_ = line;
      saw_header_ = true;
      break;
    }
    if (!saw_header_) return std::nullopt;  // empty input
  }
  if (pending_header_.empty()) return std::nullopt;  // fully consumed

  Sequence sequence;
  parse_header(pending_header_, sequence);
  pending_header_.clear();
  while (std::getline(*input_, line)) {
    strip_cr(line);
    if (line.empty()) continue;
    if (line[0] == '>') {
      pending_header_ = line;
      break;
    }
    for (const char c : line)
      if (!std::isspace(static_cast<unsigned char>(c)))
        sequence.data += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return sequence;
}

std::vector<Sequence> FastaReader::read_all() {
  std::vector<Sequence> sequences;
  while (auto sequence = next()) sequences.push_back(std::move(*sequence));
  return sequences;
}

FastaWriter::FastaWriter(std::ostream& output, std::size_t line_width)
    : output_(&output), line_width_(line_width == 0 ? 70 : line_width) {}

void FastaWriter::write(const Sequence& sequence) {
  *output_ << '>' << sequence.id;
  if (!sequence.description.empty()) *output_ << ' ' << sequence.description;
  *output_ << '\n';
  for (std::size_t pos = 0; pos < sequence.data.size(); pos += line_width_) {
    *output_ << sequence.data.substr(pos, line_width_) << '\n';
  }
}

void FastaWriter::write_all(const std::vector<Sequence>& sequences) {
  for (const Sequence& sequence : sequences) write(sequence);
}

std::vector<Sequence> read_fasta_file(const std::string& path) {
  std::ifstream input(path);
  if (!input) throw std::runtime_error("cannot open FASTA file: " + path);
  FastaReader reader(input);
  return reader.read_all();
}

void write_fasta_file(const std::string& path,
                      const std::vector<Sequence>& sequences,
                      std::size_t line_width) {
  std::ofstream output(path);
  if (!output) throw std::runtime_error("cannot create FASTA file: " + path);
  FastaWriter writer(output, line_width);
  writer.write_all(sequences);
}

}  // namespace s3asim::bio
