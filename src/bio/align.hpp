#pragma once

/// \file align.hpp
/// Pairwise alignment kernels: ungapped X-drop seed extension (the BLAST
/// HSP stage) and banded Smith-Waterman rescoring.

#include <cstdint>
#include <string_view>

namespace s3asim::bio {

/// Simple match/mismatch/gap scoring (BLASTN-style defaults).
struct ScoringParams {
  int match = 2;
  int mismatch = -3;
  int gap_open = -5;
  int gap_extend = -2;
  /// X-drop cutoff for ungapped extension.
  int xdrop = 20;
};

/// An ungapped high-scoring segment pair.
struct Hsp {
  std::uint32_t query_start = 0;
  std::uint32_t subject_start = 0;
  std::uint32_t length = 0;
  int score = 0;

  [[nodiscard]] std::uint32_t query_end() const noexcept {
    return query_start + length;
  }
  [[nodiscard]] std::uint32_t subject_end() const noexcept {
    return subject_start + length;
  }
};

/// Extends a seed match at (query_pos, subject_pos) of length `seed_length`
/// in both directions, ungapped, stopping when the running score drops
/// `params.xdrop` below the best seen (BLAST's X-drop rule).
[[nodiscard]] Hsp extend_ungapped(std::string_view query, std::string_view subject,
                                  std::uint32_t query_pos, std::uint32_t subject_pos,
                                  std::uint32_t seed_length,
                                  const ScoringParams& params);

/// Banded Smith-Waterman: best local alignment score of `query` vs
/// `subject` restricted to |i - j - diagonal| <= band.  Affine gaps are
/// approximated with linear gap cost gap_open+gap_extend per residue.
[[nodiscard]] int banded_smith_waterman(std::string_view query,
                                        std::string_view subject,
                                        std::int64_t diagonal, std::uint32_t band,
                                        const ScoringParams& params);

}  // namespace s3asim::bio
