#include "bio/blast.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace s3asim::bio {

std::uint64_t estimate_output_bytes(std::uint64_t query_length,
                                    std::uint64_t subject_length,
                                    std::uint64_t aligned_length) {
  // A formatted pairwise report prints the query row, the match row, and
  // the subject row for the aligned region, plus headers/statistics.  The
  // paper's cap is 3 × max(query, subject); short alignments print less.
  constexpr std::uint64_t kHeader = 256;
  const std::uint64_t cap = 3 * std::max(query_length, subject_length);
  return std::min(cap, 3 * aligned_length + kHeader);
}

BlastSearcher::BlastSearcher(std::vector<Sequence> subjects, BlastParams params)
    : subjects_(std::move(subjects)),
      params_(params),
      index_(subjects_, params.k) {}

std::vector<Match> BlastSearcher::search(const Sequence& query) const {
  std::vector<Match> matches;
  if (query.data.size() < params_.k) return matches;

  // (subject, diagonal) pairs already extended — BLAST's diagonal dedup.
  std::unordered_map<std::uint32_t, std::unordered_set<std::int64_t>> seen;
  std::unordered_map<std::uint32_t, Match> best_per_subject;

  const std::string_view query_view(query.data);
  for (std::uint32_t pos = 0; pos + params_.k <= query_view.size(); ++pos) {
    const std::string_view word = query_view.substr(pos, params_.k);
    for (const SeedHit& hit : index_.lookup(word)) {
      const std::int64_t diagonal =
          static_cast<std::int64_t>(hit.position) - static_cast<std::int64_t>(pos);
      auto& diagonals = seen[hit.sequence];
      if (!diagonals.insert(diagonal).second) continue;  // already extended

      const Sequence& subject = subjects_[hit.sequence];
      Hsp hsp = extend_ungapped(query_view, subject.data, pos, hit.position,
                                params_.k, params_.scoring);
      int score = hsp.score;
      if (score < params_.min_score) continue;
      if (params_.rescore_banded_sw) {
        score = std::max(
            score, banded_smith_waterman(query_view, subject.data, diagonal,
                                         params_.sw_band, params_.scoring));
      }
      auto [it, inserted] = best_per_subject.try_emplace(hit.sequence);
      if (inserted || score > it->second.score) {
        Match match;
        match.subject = hit.sequence;
        match.score = score;
        match.hsp = hsp;
        match.output_bytes = estimate_output_bytes(
            query.data.size(), subject.data.size(), hsp.length);
        it->second = match;
      }
    }
  }

  matches.reserve(best_per_subject.size());
  for (const auto& [subject, match] : best_per_subject) matches.push_back(match);
  std::sort(matches.begin(), matches.end(), [](const Match& a, const Match& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.subject < b.subject;
  });
  if (matches.size() > params_.max_matches) matches.resize(params_.max_matches);
  return matches;
}

}  // namespace s3asim::bio
