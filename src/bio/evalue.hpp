#pragma once

/// \file evalue.hpp
/// Karlin–Altschul statistics for ungapped local alignments: bit scores and
/// expectation values.  BLAST ranks and thresholds its reported results by
/// E-value; S3aSim's "results ordered by statistics representing the
/// alignment qualities" (§2) is exactly this ordering.

#include <cstdint>

namespace s3asim::bio {

/// Karlin–Altschul parameters for a scoring system.  The defaults are the
/// classic BLASTN values for match/mismatch = +1/−3-class systems scaled to
/// this library's +2/−3 scheme (λ ≈ 0.625, K ≈ 0.41 for +2/−3 on uniform
/// base composition).
struct KarlinAltschulParams {
  double lambda = 0.625;
  double k = 0.41;

  /// Parameters appropriate for this library's default ScoringParams
  /// (+2 match / −3 mismatch, uniform ACGT composition).
  [[nodiscard]] static KarlinAltschulParams blastn_default() noexcept {
    return {};
  }
};

/// Normalized ("bit") score: S' = (λ·S − ln K) / ln 2.
[[nodiscard]] double bit_score(int raw_score,
                               const KarlinAltschulParams& params =
                                   KarlinAltschulParams::blastn_default());

/// Expectation value for a search space of query length m and database
/// residue count n:  E = m · n · 2^(−S').
[[nodiscard]] double expect_value(int raw_score, std::uint64_t query_length,
                                  std::uint64_t database_length,
                                  const KarlinAltschulParams& params =
                                      KarlinAltschulParams::blastn_default());

/// The smallest raw score whose E-value is below `threshold` in the given
/// search space — BLAST's reporting cutoff expressed in raw-score terms.
[[nodiscard]] int min_significant_score(double threshold,
                                        std::uint64_t query_length,
                                        std::uint64_t database_length,
                                        const KarlinAltschulParams& params =
                                            KarlinAltschulParams::blastn_default());

}  // namespace s3asim::bio
