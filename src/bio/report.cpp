#include "bio/report.hpp"

#include <algorithm>
#include <sstream>

#include "util/require.hpp"

namespace s3asim::bio {

double identity_fraction(const Sequence& query, const Sequence& subject,
                         const Match& match) {
  const Hsp& hsp = match.hsp;
  S3A_REQUIRE(hsp.query_end() <= query.length());
  S3A_REQUIRE(hsp.subject_end() <= subject.length());
  if (hsp.length == 0) return 0.0;
  std::uint32_t identical = 0;
  for (std::uint32_t i = 0; i < hsp.length; ++i)
    if (query.data[hsp.query_start + i] == subject.data[hsp.subject_start + i])
      ++identical;
  return static_cast<double>(identical) / static_cast<double>(hsp.length);
}

std::string format_match(const Sequence& query, const Sequence& subject,
                         const Match& match, const ReportOptions& options) {
  S3A_REQUIRE(options.line_width >= 10);
  const Hsp& hsp = match.hsp;
  S3A_REQUIRE(hsp.query_end() <= query.length());
  S3A_REQUIRE(hsp.subject_end() <= subject.length());

  std::ostringstream out;
  if (options.include_header) {
    std::uint32_t identical = 0;
    for (std::uint32_t i = 0; i < hsp.length; ++i)
      if (query.data[hsp.query_start + i] ==
          subject.data[hsp.subject_start + i])
        ++identical;
    out << "> " << subject.id;
    if (!subject.description.empty()) out << ' ' << subject.description;
    out << "\n Score = " << match.score << ", Identities = " << identical
        << '/' << hsp.length;
    if (hsp.length > 0)
      out << " (" << (identical * 100 / hsp.length) << "%)";
    out << "\n\n";
  }

  for (std::uint32_t offset = 0; offset < hsp.length;
       offset += static_cast<std::uint32_t>(options.line_width)) {
    const auto chunk = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        options.line_width, hsp.length - offset));
    const std::uint32_t q_start = hsp.query_start + offset;
    const std::uint32_t s_start = hsp.subject_start + offset;

    out << "Query  " << (q_start + 1) << "  "
        << query.data.substr(q_start, chunk) << "  " << (q_start + chunk)
        << '\n';

    // Match row: '|' for identity, space otherwise, aligned under the
    // sequence columns.
    const std::size_t indent = 7 + std::to_string(q_start + 1).size() + 2;
    out << std::string(indent, ' ');
    for (std::uint32_t i = 0; i < chunk; ++i)
      out << (query.data[q_start + i] == subject.data[s_start + i] ? '|' : ' ');
    out << '\n';

    out << "Sbjct  " << (s_start + 1) << "  "
        << subject.data.substr(s_start, chunk) << "  " << (s_start + chunk)
        << "\n\n";
  }
  return out.str();
}

std::string format_report(const Sequence& query, const BlastSearcher& searcher,
                          const std::vector<Match>& matches,
                          const ReportOptions& options) {
  std::ostringstream out;
  out << "Query= " << query.id;
  if (!query.description.empty()) out << ' ' << query.description;
  out << "\n  (" << query.length() << " letters)\n\n";
  if (matches.empty()) {
    out << " ***** No hits found ******\n";
    return out.str();
  }
  out << "Sequences producing significant alignments:  " << matches.size()
      << "\n\n";
  for (const Match& match : matches) {
    const Sequence& subject = searcher.subjects()[match.subject];
    out << format_match(query, subject, match, options);
  }
  return out.str();
}

}  // namespace s3asim::bio
