#pragma once

/// \file sequence.hpp
/// Biological sequence types shared by the FASTA tooling, the synthetic
/// database generator, and the mini-BLAST search engine.

#include <cstdint>
#include <string>

namespace s3asim::bio {

/// A nucleotide (or protein) sequence with FASTA metadata.
struct Sequence {
  std::string id;           ///< accession, e.g. "gi|3123744|dbj|AB013447.1"
  std::string description;  ///< free text after the id on the header line
  std::string data;         ///< residues, upper-case

  [[nodiscard]] std::uint64_t length() const noexcept { return data.size(); }
};

/// The DNA alphabet used by the generator.
inline constexpr char kNucleotides[] = {'A', 'C', 'G', 'T'};
inline constexpr std::size_t kNucleotideCount = 4;

/// 2-bit encoding for k-mer packing; returns 4 for non-ACGT characters.
[[nodiscard]] constexpr std::uint8_t encode_base(char base) noexcept {
  switch (base) {
    case 'A': case 'a': return 0;
    case 'C': case 'c': return 1;
    case 'G': case 'g': return 2;
    case 'T': case 't': return 3;
    default: return 4;
  }
}

}  // namespace s3asim::bio
