#pragma once

/// \file event_queue.hpp
/// The scheduler's event queue: a hierarchical calendar queue (timing
/// wheel) over compact, trivially-copyable entries, dispatching in exact
/// `(time, insertion sequence)` order.
///
/// Why not `std::priority_queue`?  Heap push/pop costs O(log n) compares
/// and 32-byte moves with data-dependent branches on every event; profiled
/// on the figure sweeps it dominates the kernel's critical path.  The DES
/// event mix is calendar-friendly: most events are same-instant wakeups
/// (channel pushes, barrier releases, gate grants) or short delays, with a
/// thin tail of long compute/fault timers.
///
/// Structure: `kLevels` wheels of 64 slots, indexed by *aligned* windows:
/// level L slot i holds the events that share the cursor's aligned
/// 64^(L+1)-tick window but sit in its i-th 64^L-tick sub-window (so
/// level 0 covers the cursor's current aligned 64 ticks, one tick per
/// slot).  Events outside the cursor's aligned 64^kLevels-tick top
/// window sit in a plain binary-heap overflow.  Pushing appends to a
/// slot in O(1); popping scans per-level occupancy bitmaps and cascades
/// one coarse slot into finer wheels when a level-0 window drains (each
/// event cascades at most kLevels-1 times).
///
/// Determinism: the dispatch tick is always the global minimum time, and a
/// level-0 slot (exactly one tick) is sorted by `seq` before draining, so
/// the pop sequence equals the total `(at, seq)` order bit-exactly —
/// including FIFO fairness among simultaneous events.  Entries appended to
/// the tick being drained (schedule-now during dispatch) carry larger
/// sequence numbers than everything already sorted, so append order is
/// dispatch order.
///
/// Cancellation is a `(slot, generation)` pair checked against the
/// scheduler's token pool, so entries stay POD and copies are memcpys.

#include <algorithm>
#include <array>
#include <bit>
#include <coroutine>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/time.hpp"
#include "util/require.hpp"

namespace s3asim::sim {

/// Slot index meaning "plain entry, not cancellable".
inline constexpr std::uint32_t kNoCancelSlot = 0xffffffffu;

/// One scheduled resumption.  `cancel_slot`/`cancel_gen` identify a
/// generation-counted token in the scheduler's pool; a stale generation
/// means the entry was cancelled and must be discarded on pop.
struct Event {
  Time at = 0;
  std::uint64_t seq = 0;
  std::coroutine_handle<> handle{};
  std::uint32_t cancel_slot = kNoCancelSlot;
  std::uint32_t cancel_gen = 0;
};

class EventQueue {
 public:
  static constexpr int kSlotBits = 6;
  static constexpr std::size_t kSlots = 64;
  static constexpr int kLevels = 6;
  /// Ticks covered by the wheels; farther events go to the overflow heap.
  static constexpr Time kHorizon = Time{1} << (kSlotBits * kLevels);

  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }

  void push(const Event& event) {
    if (event.at < cursor_) rebase(event.at);  // rare: see rebase()
    ++count_;
    place(event);
  }

  /// Next event in (at, seq) order.  Requires !empty().
  [[nodiscard]] const Event& top() {
    position_cursor();
    return (*drain_)[drain_idx_];
  }

  void pop() {
    position_cursor();
    ++drain_idx_;
    --count_;
    // Compact an exhausted drain slot right away: a same-instant wakeup
    // chain (channel ping-pong) otherwise appends behind the drain index
    // forever and the slot grows without bound, going cache-cold.
    if (drain_idx_ == drain_->size()) {
      drain_->clear();
      drain_idx_ = 0;
    }
  }

  /// `top()` + `pop()` fused into a single cursor positioning — the
  /// dispatch loop calls this once per event instead of paying the
  /// position check twice.  Requires !empty().
  [[nodiscard]] Event pop_next() {
    position_cursor();
    const Event event = (*drain_)[drain_idx_];
    ++drain_idx_;
    --count_;
    if (drain_idx_ == drain_->size()) {
      drain_->clear();
      drain_idx_ = 0;
    }
    return event;
  }

 private:
  struct Level {
    std::array<std::vector<Event>, kSlots> slot;
    std::uint64_t occupied = 0;
  };

  /// Files an event into the right wheel slot or the overflow heap.
  ///
  /// The level comes from the highest bit where `at` and the cursor
  /// *differ* (not from the raw delta): level L holds exactly the events
  /// that share the cursor's aligned 64^(L+1)-tick window but not its
  /// 64^L one.  That alignment is what makes the scans sound — level 0
  /// only ever holds the cursor's current aligned 64-tick window (so a
  /// level-0 dispatch can never overtake an event parked on a coarser
  /// level), and an occupied coarse slot's index is always strictly
  /// ahead of the cursor's (no wrap, no aliasing, cascades always
  /// advance).
  void place(const Event& event) {
    const Time diff = event.at ^ cursor_;
    if (diff < static_cast<Time>(kSlots)) {
      const auto index = static_cast<std::size_t>(event.at & Time{63});
      level0_.slot[index].push_back(event);
      level0_.occupied |= std::uint64_t{1} << index;
      return;
    }
    if (diff >= kHorizon) {  // different top-level window: later than
      overflow_.push_back(event);  // anything the wheels can hold
      std::push_heap(overflow_.begin(), overflow_.end(), HeapLater{});
      return;
    }
    const int level = (static_cast<int>(std::bit_width(
                           static_cast<std::uint64_t>(diff))) -
                       1) /
                      kSlotBits;
    Level& wheel = level_(level);
    const auto index = static_cast<std::size_t>(
        (event.at >> (kSlotBits * level)) & Time{63});
    wheel.slot[index].push_back(event);
    wheel.occupied |= std::uint64_t{1} << index;
    coarse_mask_ |= 1u << level;
  }

  /// Ensures `drain_`/`drain_idx_` point at the next undispatched event:
  /// finishes a drained tick, advances the cursor to the next occupied
  /// tick (cascading coarse slots and refilling from overflow as the
  /// cursor moves), and seq-sorts the new tick's slot.
  void position_cursor() {
    if (drain_ != nullptr) {
      if (drain_idx_ < drain_->size()) return;
      drain_->clear();
      level0_.occupied &= ~(std::uint64_t{1} << (cursor_ & Time{63}));
      drain_ = nullptr;
    }
    S3A_CHECK_MSG(count_ > 0, "top/pop on an empty event queue");
    for (;;) {
      if (level0_.occupied != 0) {
        const auto start = static_cast<int>(cursor_ & Time{63});
        const std::uint64_t rotated = std::rotr(level0_.occupied, start);
        const int offset = std::countr_zero(rotated);
        const int index = (start + offset) & 63;
        cursor_ = (cursor_ & ~Time{63}) + index + (index < start ? 64 : 0);
        refill_from_overflow();
        std::vector<Event>& slot =
            level0_.slot[static_cast<std::size_t>(index)];
        if (slot.size() > 1)
          std::sort(slot.begin(), slot.end(),
                    [](const Event& a, const Event& b) {
                      return a.seq < b.seq;
                    });
        drain_ = &slot;
        drain_idx_ = 0;
        return;
      }
      if (cascade_one_slot()) continue;
      // Wheels empty: jump the cursor to the earliest overflow event and
      // pull everything inside the new horizon back into the wheels.
      S3A_CHECK_MSG(!overflow_.empty(), "event accounting out of sync");
      cursor_ = overflow_.front().at;
      refill_from_overflow();
    }
  }

  /// Redistributes the coarse slot whose window starts earliest into finer
  /// wheels.  The earliest *event* is not necessarily on the finest
  /// occupied level — an old long-delay entry's window may start before a
  /// younger short-delay entry's — so every level's candidate window is
  /// compared.  Returns false when every wheel level >= 1 is empty.
  [[nodiscard]] bool cascade_one_slot() {
    int best_level = 0;
    int best_index = 0;
    Time best_window = 0;
    for (unsigned mask = coarse_mask_; mask != 0; mask &= mask - 1) {
      const int level = std::countr_zero(mask);
      Level* wheel = levels_[static_cast<std::size_t>(level) - 1].get();
      if (wheel->occupied == 0) {  // lazily clear stale summary bits
        coarse_mask_ &= ~(1u << level);
        continue;
      }
      const int shift = kSlotBits * level;
      const auto start = static_cast<int>((cursor_ >> shift) & Time{63});
      const std::uint64_t rotated = std::rotr(wheel->occupied, start);
      const int offset = std::countr_zero(rotated);
      const int index = (start + offset) & 63;
      // Aligned placement (see place()) guarantees index >= start — an
      // occupied slot is never behind the cursor within its super-window.
      const Time window = (((cursor_ >> shift) & ~Time{63}) + index) << shift;
      if (best_level == 0 || window < best_window) {
        best_level = level;
        best_index = index;
        best_window = window;
      }
    }
    if (best_level == 0) return false;
    Level& wheel = *levels_[static_cast<std::size_t>(best_level) - 1];
    std::vector<Event>& slot = wheel.slot[static_cast<std::size_t>(best_index)];
    // Jump the cursor straight to the slot's earliest event, not just the
    // window start: occupied slots at distinct levels cover disjoint time
    // ranges (each level lives inside the cursor's aligned super-window,
    // coarser levels strictly past it), so this slot holds every event in
    // its window and its minimum is the global minimum.  The jump drops
    // that event directly to level 0 instead of one level per round.
    Time min_at = slot.front().at;
    for (const Event& event : slot) min_at = std::min(min_at, event.at);
    if (min_at > cursor_) cursor_ = min_at;  // never regress (stale slots)
    // Copy out (not swap: a swap would strip the slot vector's capacity, a
    // malloc on its next use) and clear before re-placing — place() may
    // touch this same wheel level.  Slot order is irrelevant; the level-0
    // drain sorts each tick by seq.
    cascade_buffer_.assign(slot.begin(), slot.end());
    slot.clear();
    wheel.occupied &= ~(std::uint64_t{1} << best_index);
    for (const Event& event : cascade_buffer_) place(event);
    return true;
  }

  /// Maintains the invariant that the wheels hold exactly the events in
  /// the cursor's aligned top-level super-window and overflow everything
  /// past it (which is therefore later than anything the wheels hold, so
  /// wheels always dispatch first).
  void refill_from_overflow() {
    while (!overflow_.empty() &&
           (overflow_.front().at ^ cursor_) < kHorizon) {
      std::pop_heap(overflow_.begin(), overflow_.end(), HeapLater{});
      const Event event = overflow_.back();
      overflow_.pop_back();
      place(event);
    }
  }

  /// Rewinds the cursor below its current position by rebuilding the
  /// calendar.  Only reachable when events are scheduled between a
  /// `run_until()` deadline and the further tick the cursor had already
  /// scanned to — never on the steady-state path.
  void rebase(Time at) {
    std::vector<Event> pending;
    pending.reserve(count_);
    if (drain_ != nullptr) {
      pending.insert(pending.end(),
                     drain_->begin() + static_cast<std::ptrdiff_t>(drain_idx_),
                     drain_->end());
      drain_->clear();
      drain_ = nullptr;
    }
    collect_level(level0_, pending);
    for (auto& wheel : levels_)
      if (wheel) collect_level(*wheel, pending);
    pending.insert(pending.end(), overflow_.begin(), overflow_.end());
    overflow_.clear();
    cursor_ = at;
    coarse_mask_ = 0;
    for (const Event& event : pending) place(event);
  }

  static void collect_level(Level& wheel, std::vector<Event>& out) {
    if (wheel.occupied == 0) return;
    for (auto& slot : wheel.slot) {
      out.insert(out.end(), slot.begin(), slot.end());
      slot.clear();
    }
    wheel.occupied = 0;
  }

  [[nodiscard]] Level& level_(int level) {
    auto& wheel = levels_[static_cast<std::size_t>(level) - 1];
    if (!wheel) wheel = std::make_unique<Level>();
    return *wheel;
  }

  struct HeapLater {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Time cursor_ = 0;                 ///< next tick the calendar will dispatch
  std::size_t count_ = 0;           ///< undispatched events across all tiers
  std::vector<Event>* drain_ = nullptr;  ///< level-0 slot being dispatched
  std::size_t drain_idx_ = 0;
  Level level0_;
  unsigned coarse_mask_ = 0;  ///< bit L set => level L (>=1) may be occupied
  std::array<std::unique_ptr<Level>, kLevels - 1> levels_;
  std::vector<Event> overflow_;     ///< binary heap, (at, seq) min first
  std::vector<Event> cascade_buffer_;  ///< scratch for slot redistribution
};

}  // namespace s3asim::sim
