#pragma once

/// \file barrier.hpp
/// Reusable (cyclic) synchronization barrier for a fixed party count.
/// Models MPI_Barrier and the paper's "query sync" option.

#include <coroutine>
#include <vector>

#include "sim/scheduler.hpp"
#include "util/require.hpp"

namespace s3asim::sim {

class Barrier {
 public:
  Barrier(Scheduler& scheduler, std::size_t parties)
      : scheduler_(&scheduler), parties_(parties) {
    S3A_REQUIRE(parties >= 1);
  }
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  struct ArriveAwaiter {
    Barrier& barrier;
    [[nodiscard]] bool await_ready() {
      if (++barrier.arrived_ == barrier.parties_) {
        barrier.release();
        return true;  // last arriver proceeds immediately
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> handle) {
      barrier.waiters_.push_back(handle);
    }
    void await_resume() const noexcept {}
  };

  /// Blocks until `parties` processes have arrived; then all proceed and the
  /// barrier resets for the next cycle.
  [[nodiscard]] ArriveAwaiter arrive_and_wait() noexcept {
    return ArriveAwaiter{*this};
  }

  /// Permanently removes one party (fail-stop departure): every cycle from
  /// now on completes with one fewer arrival.  If the arrivals already
  /// present satisfy the reduced count, the current cycle completes
  /// immediately — survivors blocked on a dead peer are released.
  void leave() {
    S3A_REQUIRE_MSG(parties_ >= 1, "leave() on an empty barrier");
    --parties_;
    if (parties_ > 0 && arrived_ == parties_) release();
  }

  [[nodiscard]] std::size_t parties() const noexcept { return parties_; }
  [[nodiscard]] std::size_t arrived() const noexcept { return arrived_; }
  [[nodiscard]] std::uint64_t generation() const noexcept { return generation_; }

 private:
  /// Completes the current cycle: wakes all waiters, resets for the next.
  void release() {
    arrived_ = 0;
    ++generation_;
    for (const auto handle : waiters_) scheduler_->schedule_now(handle);
    waiters_.clear();
  }

  Scheduler* scheduler_;
  std::size_t parties_;
  std::size_t arrived_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<std::coroutine_handle<>> waiters_{};
};

}  // namespace s3asim::sim
