#pragma once

/// \file lp.hpp
/// A logical partition (LP) of the conservative parallel engine.
///
/// Each LP wraps one `sim::Scheduler` — the unchanged serial DES kernel —
/// plus the three things the windowed executor (lp_scheduler.hpp) needs to
/// migrate it safely between worker threads:
///
///  * a `FramePool` of its own, installed via `FramePool::Scope` whenever
///    the LP executes, so coroutine frames are always allocated and freed
///    by the same pool no matter which thread runs the window;
///  * a lock-free MPSC `Mailbox` where other LPs stage cross-partition
///    messages for delivery at the next window barrier;
///  * a monotonically increasing outgoing-post sequence number, part of
///    the deterministic (time, source LP, source sequence) merge key.
///
/// An LP either *owns* its scheduler (engine-created, `LpScheduler::
/// add_lp`) or *adopts* an external one (`LpScheduler::adopt_lp`).  An
/// adopted scheduler may already hold coroutine frames allocated on the
/// adopting thread's default pool, so adopted LPs are pinned: the engine
/// runs them only on the coordinating thread, never on pool workers.

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/frame_pool.hpp"
#include "sim/mailbox.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace s3asim::sim {

class Lp {
 public:
  using Id = std::uint32_t;

  /// One staged cross-LP message.  `apply` runs on the destination LP at
  /// the window barrier (single-threaded, with the destination's frame
  /// pool installed) and typically schedules a coroutine handle or
  /// deposits a payload into an LP-owned inbox plus a wake-up.
  struct Post {
    Time at = 0;
    Id src_lp = 0;
    std::uint64_t src_seq = 0;
    std::function<void(Scheduler&)> apply;
  };

  /// Engine-owned LP with its own scheduler.
  explicit Lp(Id id)
      : id_(id),
        owned_(std::make_unique<Scheduler>()),
        scheduler_(owned_.get()) {}

  /// LP adopting an externally owned scheduler (e.g. a core::World's).
  /// Pinned to the coordinating thread — see the file comment.
  Lp(Id id, Scheduler& adopted) : id_(id), scheduler_(&adopted) {}

  Lp(const Lp&) = delete;
  Lp& operator=(const Lp&) = delete;

  [[nodiscard]] Id id() const noexcept { return id_; }
  [[nodiscard]] bool pinned() const noexcept { return owned_ == nullptr; }
  [[nodiscard]] Scheduler& scheduler() noexcept { return *scheduler_; }
  [[nodiscard]] FramePool& frame_pool() noexcept { return pool_; }
  [[nodiscard]] Mailbox<Post>& mailbox() noexcept { return mailbox_; }

  /// Spawns a top-level process with this LP's frame pool installed, so
  /// the frame is owned by the LP from birth.  `make` is invoked under the
  /// pool scope because a coroutine's frame is allocated at call time:
  ///
  ///   lp.spawn([&] { return worker_proc(ctx, rank); });
  template <typename MakeProcess>
  void spawn(MakeProcess&& make) {
    FramePool::Scope scope(pool_);
    scheduler_->spawn(make());
  }

  /// Next outgoing-post sequence number.  Called only while this LP
  /// executes (single-threaded), so a plain counter suffices — and it is
  /// what makes the cross-LP merge key reproducible run to run.
  [[nodiscard]] std::uint64_t next_post_seq() noexcept { return post_seq_++; }

 private:
  Id id_;
  std::unique_ptr<Scheduler> owned_;  ///< null for adopted schedulers
  Scheduler* scheduler_;
  FramePool pool_;
  Mailbox<Post> mailbox_;
  std::uint64_t post_seq_ = 0;
};

}  // namespace s3asim::sim
