#include "sim/scheduler.hpp"

#include <utility>

namespace s3asim::sim {

std::size_t Scheduler::run() {
  std::size_t resumed = 0;
  while (!queue_.empty()) {
    const Entry entry = queue_.top();
    queue_.pop();
    if (entry.token && entry.token->cancelled) continue;  // dead timer entry
    now_ = entry.at;
    entry.handle.resume();
    ++resumed;
    if (first_error_) {
      auto error = std::exchange(first_error_, nullptr);
      std::rethrow_exception(error);
    }
  }
  return resumed;
}

std::size_t Scheduler::run_until(Time deadline) {
  std::size_t resumed = 0;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    const Entry entry = queue_.top();
    queue_.pop();
    if (entry.token && entry.token->cancelled) continue;  // dead timer entry
    now_ = entry.at;
    entry.handle.resume();
    ++resumed;
    if (first_error_) {
      auto error = std::exchange(first_error_, nullptr);
      std::rethrow_exception(error);
    }
  }
  if (now_ < deadline) now_ = deadline;
  return resumed;
}

}  // namespace s3asim::sim
