#include "sim/scheduler.hpp"

#include <utility>

namespace s3asim::sim {

std::size_t Scheduler::run() {
  std::size_t resumed = 0;
  while (!queue_.empty()) {
    const Event event = queue_.pop_next();
    if (cancelled(event)) continue;  // dead timer entry
    now_ = event.at;
    event.handle.resume();
    ++resumed;
    if (first_error_) {
      events_ += resumed;
      auto error = std::exchange(first_error_, nullptr);
      std::rethrow_exception(error);
    }
  }
  events_ += resumed;
  return resumed;
}

std::size_t Scheduler::run_until(Time deadline) {
  std::size_t resumed = 0;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    const Event event = queue_.top();
    queue_.pop();
    if (cancelled(event)) continue;  // dead timer entry
    now_ = event.at;
    event.handle.resume();
    ++resumed;
    if (first_error_) {
      events_ += resumed;
      auto error = std::exchange(first_error_, nullptr);
      std::rethrow_exception(error);
    }
  }
  if (now_ < deadline) now_ = deadline;
  events_ += resumed;
  return resumed;
}

}  // namespace s3asim::sim
