#include "sim/scheduler.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "sim/frame_pool.hpp"

namespace s3asim::sim {

std::size_t Scheduler::run() {
  std::size_t resumed = 0;
  while (!queue_.empty()) {
    const Event event = queue_.pop_next();
    if (cancelled(event)) continue;  // dead timer entry
    now_ = event.at;
    event.handle.resume();
    ++resumed;
    if (prof_every_ != 0 && --prof_countdown_ == 0) profile_sample();
    if (first_error_) {
      events_ += resumed;
      auto error = std::exchange(first_error_, nullptr);
      std::rethrow_exception(error);
    }
  }
  events_ += resumed;
  return resumed;
}

std::size_t Scheduler::run_until(Time deadline) {
  std::size_t resumed = 0;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    const Event event = queue_.top();
    queue_.pop();
    if (cancelled(event)) continue;  // dead timer entry
    now_ = event.at;
    event.handle.resume();
    ++resumed;
    if (prof_every_ != 0 && --prof_countdown_ == 0) profile_sample();
    if (first_error_) {
      events_ += resumed;
      auto error = std::exchange(first_error_, nullptr);
      std::rethrow_exception(error);
    }
  }
  if (now_ < deadline) now_ = deadline;
  events_ += resumed;
  return resumed;
}

std::size_t Scheduler::run_window(Time end) {
  std::size_t resumed = 0;
  while (!queue_.empty() && queue_.top().at < end) {
    const Event event = queue_.top();
    queue_.pop();
    if (cancelled(event)) continue;  // dead timer entry
    now_ = event.at;
    event.handle.resume();
    ++resumed;
    if (prof_every_ != 0 && --prof_countdown_ == 0) profile_sample();
    if (first_error_) {
      events_ += resumed;
      auto error = std::exchange(first_error_, nullptr);
      std::rethrow_exception(error);
    }
  }
  events_ += resumed;
  return resumed;
}

void Scheduler::attach_profiler(obs::Registry* registry,
                                std::uint64_t sample_every) {
  if (registry == nullptr) {
    prof_every_ = 0;
    prof_countdown_ = 0;
    prof_queue_depth_ = prof_pop_seconds_ = nullptr;
    prof_pool_live_ = prof_pool_reused_ = prof_pool_slab_bytes_ = nullptr;
    prof_samples_ = nullptr;
    return;
  }
  S3A_REQUIRE(sample_every >= 1);
  prof_every_ = sample_every;
  prof_countdown_ = sample_every;
  // Resolve the metric objects once; samples are then map-lookup-free.
  prof_queue_depth_ = &registry->histogram("sim.sched.queue_depth");
  // Host-clock latency lives under host.* so `obs_validate
  // --simulated-only` can strip it and leave an exactly-diffable manifest.
  prof_pop_seconds_ = &registry->histogram("host.sched.pop_seconds");
  prof_pool_live_ = &registry->gauge("sim.frame_pool.live");
  prof_pool_reused_ = &registry->gauge("sim.frame_pool.reused");
  prof_pool_slab_bytes_ = &registry->gauge("sim.frame_pool.slab_bytes");
  prof_samples_ = &registry->counter("sim.sched.profile_samples");
  prof_last_ = std::chrono::steady_clock::now();
}

void Scheduler::profile_sample() {
  prof_countdown_ = prof_every_;
  const auto host_now = std::chrono::steady_clock::now();
  const double elapsed =
      std::chrono::duration<double>(host_now - prof_last_).count();
  prof_last_ = host_now;
  // Mean host-clock cost of one resumption over the sampling window — the
  // "pop latency" a DES-kernel regression shows up in first.
  prof_pop_seconds_->observe(elapsed / static_cast<double>(prof_every_));
  prof_queue_depth_->observe(static_cast<double>(queue_.size()));
  const FramePool& pool = FramePool::local();
  prof_pool_live_->set(static_cast<double>(pool.live()));
  prof_pool_reused_->set(static_cast<double>(pool.reused()));
  prof_pool_slab_bytes_->set(static_cast<double>(pool.slab_bytes()));
  prof_samples_->add(1);
}

}  // namespace s3asim::sim
