#pragma once

/// \file frame_pool.hpp
/// Slab allocator for coroutine frames.
///
/// Every simulated operation (MPI send, file write, timer wait) is a `Task`
/// coroutine, so frame allocation sits on the hot path of the DES kernel.
/// The pool replaces per-frame `malloc`/`free` with size-class free lists
/// carved from large slabs: a hit is a pointer pop, a release is a pointer
/// push, and slab memory is retained for reuse until thread exit.
///
/// The pool is *thread-local by default*: a scheduler runs on exactly one
/// thread, and a simulation allocates and frees all of its frames on that
/// thread, so no synchronization is needed — which is what keeps concurrent
/// sweep workers (bench::SweepRunner) scalable.  Frames must be freed by
/// the pool that allocated them; the single-threaded `Scheduler` guarantees
/// this for the default pool.
///
/// The parallel engine migrates a logical partition (LP) between worker
/// threads across windows, so an LP's frames cannot live in any one
/// thread's pool.  `FramePool::Scope` reroutes `local()` to an LP-owned
/// pool for the duration of the LP's window: the LP runs on exactly one
/// thread at a time and the engine's window barrier provides the
/// happens-before edge between windows, so the pool still never needs
/// synchronization.

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace s3asim::sim {

class FramePool {
 public:
  /// Free-list granularity: requests are rounded up to 64-byte classes, so
  /// a freed frame is reusable by any coroutine of the same class.
  static constexpr std::size_t kGranularity = 64;
  /// Requests above this fall through to `operator new` (rare: only very
  /// large frames, e.g. coroutines with big inline arrays).
  static constexpr std::size_t kMaxPooled = 4096;
  /// Slab size carved into blocks on demand.
  static constexpr std::size_t kSlabBytes = 256 * 1024;

  FramePool() = default;
  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;
  ~FramePool() {
    for (std::byte* slab : slabs_) ::operator delete[](slab);
  }

  /// The calling thread's pool: the innermost installed `Scope`'s pool, or
  /// the thread's default pool (created on first use, destroyed — slabs
  /// released — at thread exit).
  static FramePool& local() noexcept {
    if (FramePool* installed = current_slot()) return *installed;
    static thread_local FramePool pool;
    return pool;
  }

  /// RAII install: routes this thread's `FramePool::local()` to `pool`
  /// for the scope's lifetime (nestable; restores the previous routing on
  /// destruction).  The caller must guarantee the installed pool is used
  /// by one thread at a time — the engine's window barrier does.
  class Scope {
   public:
    explicit Scope(FramePool& pool) noexcept : previous_(current_slot()) {
      current_slot() = &pool;
    }
    ~Scope() { current_slot() = previous_; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    FramePool* previous_;
  };

  void* allocate(std::size_t size) {
    if (size > kMaxPooled) {
      ++oversize_allocs_;
      return ::operator new(size);
    }
    const std::size_t klass = class_of(size);
    ++live_;
    ++allocations_;
    if (FreeBlock* block = free_[klass]) {
      free_[klass] = block->next;
      ++reused_;
      return block;
    }
    return carve((klass + 1) * kGranularity);
  }

  void deallocate(void* ptr, std::size_t size) noexcept {
    if (size > kMaxPooled) {
      ::operator delete(ptr);
      return;
    }
    const std::size_t klass = class_of(size);
    auto* block = static_cast<FreeBlock*>(ptr);
    block->next = free_[klass];
    free_[klass] = block;
    --live_;
  }

  /// Pooled blocks currently handed out (0 when all frames are destroyed).
  [[nodiscard]] std::uint64_t live() const noexcept { return live_; }
  /// Total pooled allocations served (reused + fresh); with `reused()`
  /// this gives the pool hit rate.
  [[nodiscard]] std::uint64_t allocations() const noexcept {
    return allocations_;
  }
  /// Allocations served from a free list rather than fresh slab space.
  [[nodiscard]] std::uint64_t reused() const noexcept { return reused_; }
  /// Allocations too large to pool (fell through to operator new).
  [[nodiscard]] std::uint64_t oversize_allocs() const noexcept {
    return oversize_allocs_;
  }
  /// Slab memory retained by the pool.
  [[nodiscard]] std::size_t slab_bytes() const noexcept {
    return slabs_.size() * kSlabBytes;
  }

 private:
  /// The thread's current Scope target (null = default thread-local pool).
  static FramePool*& current_slot() noexcept {
    static thread_local FramePool* current = nullptr;
    return current;
  }

  struct FreeBlock {
    FreeBlock* next;
  };
  static constexpr std::size_t kClasses = kMaxPooled / kGranularity;

  [[nodiscard]] static constexpr std::size_t class_of(
      std::size_t size) noexcept {
    // size 0..64 -> class 0, 65..128 -> class 1, ...
    return size == 0 ? 0 : (size - 1) / kGranularity;
  }

  void* carve(std::size_t block_bytes) {
    if (static_cast<std::size_t>(bump_end_ - bump_) < block_bytes) {
      // `new std::byte[...]` is aligned to __STDCPP_DEFAULT_NEW_ALIGNMENT__,
      // and blocks are multiples of 64 bytes, so every block keeps the
      // default-new alignment coroutine frames require.
      auto* slab = static_cast<std::byte*>(::operator new[](kSlabBytes));
      slabs_.push_back(slab);
      bump_ = slab;
      bump_end_ = slab + kSlabBytes;
    }
    std::byte* block = bump_;
    bump_ += block_bytes;
    return block;
  }

  FreeBlock* free_[kClasses] = {};
  std::vector<std::byte*> slabs_;
  std::byte* bump_ = nullptr;
  std::byte* bump_end_ = nullptr;
  std::uint64_t live_ = 0;
  std::uint64_t allocations_ = 0;
  std::uint64_t reused_ = 0;
  std::uint64_t oversize_allocs_ = 0;
};

/// Base class wiring a coroutine promise's frame allocation into the pool.
/// `Process::promise_type` and `Task<T>::promise_type` inherit from this;
/// the compiler routes frame new/delete through these operators (the sized
/// delete receives the exact frame size, so no per-block header is needed).
struct PooledFramePromise {
  static void* operator new(std::size_t size) {
    return FramePool::local().allocate(size);
  }
  static void operator delete(void* ptr, std::size_t size) noexcept {
    FramePool::local().deallocate(ptr, size);
  }
};

}  // namespace s3asim::sim
