#pragma once

/// \file time.hpp
/// Simulated-time representation.  Integer nanoseconds keep event ordering
/// exact and platform-independent (doubles would make event order depend on
/// rounding, breaking the bit-for-bit determinism the paper relies on).

#include <cmath>
#include <cstdint>

namespace s3asim::sim {

/// Simulated time / duration in nanoseconds.
using Time = std::int64_t;

inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1'000;
inline constexpr Time kMillisecond = 1'000'000;
inline constexpr Time kSecond = 1'000'000'000;

[[nodiscard]] constexpr Time nanoseconds(std::int64_t n) noexcept { return n; }

[[nodiscard]] inline Time microseconds(double us) noexcept {
  return static_cast<Time>(std::llround(us * 1e3));
}

[[nodiscard]] inline Time milliseconds(double ms) noexcept {
  return static_cast<Time>(std::llround(ms * 1e6));
}

[[nodiscard]] inline Time seconds(double s) noexcept {
  return static_cast<Time>(std::llround(s * 1e9));
}

[[nodiscard]] constexpr double to_seconds(Time t) noexcept {
  return static_cast<double>(t) / 1e9;
}

[[nodiscard]] constexpr double to_milliseconds(Time t) noexcept {
  return static_cast<double>(t) / 1e6;
}

/// Duration of moving `bytes` at `bytes_per_second`, rounded to whole ns.
[[nodiscard]] inline Time transfer_time(std::uint64_t bytes,
                                        double bytes_per_second) noexcept {
  if (bytes_per_second <= 0.0) return 0;
  return static_cast<Time>(
      std::llround(static_cast<double>(bytes) / bytes_per_second * 1e9));
}

}  // namespace s3asim::sim
