#pragma once

/// \file timer.hpp
/// Cancellable one-shot timer — the primitive behind result timeouts and
/// fault-injection triggers.
///
/// A `Timer` is armed for an absolute deadline and awaited by at most one
/// process: `bool fired = co_await timer.wait()`.  The awaiter resumes
/// either when simulated time reaches the deadline (`fired == true`) or
/// when `cancel()` is called (`fired == false`, resumed immediately at the
/// current time).  Cancellation never advances the clock: the stale queue
/// entry is discarded by the scheduler without becoming the "next event",
/// so an unexpired timeout cannot extend a run's wall time.  Waking the
/// waiter on cancel (rather than abandoning it) keeps the simulation
/// quiescent — no coroutine frame is ever left suspended on a dead timer.
///
/// Arming and cancelling are allocation-free: the timer holds one
/// generation-counted slot in the scheduler's token pool for its whole
/// lifetime, and each arm/cancel bumps the slot's generation, invalidating
/// any entry (or captured wait) from a previous arming.

#include <coroutine>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "util/require.hpp"

namespace s3asim::sim {

class Timer {
 public:
  explicit Timer(Scheduler& scheduler) noexcept : scheduler_(&scheduler) {}
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  ~Timer() { scheduler_->cancel_ref_release(ref_); }

  /// Arms (or re-arms) the timer for absolute time `deadline` (>= now).
  /// Re-arming an armed timer cancels the previous deadline first: a
  /// process already waiting resumes with `fired == false`.
  void arm_at(Time deadline) {
    if (armed_) cancel();
    S3A_CHECK_MSG(deadline >= scheduler_->now(),
                  "cannot arm a timer in the past");
    armed_ = true;
    deadline_ = deadline;
    ref_ = scheduler_->cancel_ref_renew(ref_);
  }

  /// Arms the timer `duration` from the current time.
  void arm_in(Time duration) { arm_at(scheduler_->now() + duration); }

  /// Disarms the timer.  A waiting process resumes with `fired == false` at
  /// the current instant; the queued deadline entry is discarded without
  /// advancing time.  No-op if the timer is not armed.
  void cancel() {
    if (!armed_) return;
    armed_ = false;
    ref_ = scheduler_->cancel_ref_renew(ref_);
    if (waiter_) {
      const auto handle = waiter_;
      waiter_ = nullptr;
      scheduler_->schedule_now(handle);
    }
  }

  [[nodiscard]] bool armed() const noexcept { return armed_; }
  [[nodiscard]] Time deadline() const noexcept { return deadline_; }

  struct WaitAwaiter {
    Timer& timer;
    Scheduler::CancelRef ref{};

    [[nodiscard]] bool await_ready() const noexcept { return !timer.armed_; }
    void await_suspend(std::coroutine_handle<> handle) {
      S3A_CHECK_MSG(timer.waiter_ == nullptr,
                    "a timer supports a single waiter");
      ref = timer.ref_;
      timer.waiter_ = handle;
      timer.scheduler_->schedule_cancellable_at(handle, timer.deadline_, ref);
    }
    [[nodiscard]] bool await_resume() const noexcept {
      // Resumed by cancel() (or the timer was never armed): the captured
      // generation is stale — report "not fired".  (The timer may have been
      // re-armed in the meantime; only our captured ref is inspected.)
      if (!timer.scheduler_->cancel_ref_current(ref)) return false;
      // Deadline reached: the timer is spent.
      timer.armed_ = false;
      timer.waiter_ = nullptr;
      return true;
    }
  };

  /// Awaitable: true if the deadline was reached, false if cancelled (or if
  /// the timer was not armed at all).
  [[nodiscard]] WaitAwaiter wait() noexcept { return WaitAwaiter{*this}; }

 private:
  Scheduler* scheduler_;
  bool armed_ = false;
  Time deadline_ = 0;
  Scheduler::CancelRef ref_{};
  std::coroutine_handle<> waiter_{};
};

}  // namespace s3asim::sim
