#pragma once

/// \file task.hpp
/// Coroutine types for simulation code.
///
/// `Process`  — a detached top-level coroutine started with
///              `Scheduler::spawn`.  Its frame self-destroys on completion;
///              exceptions are captured by the scheduler and rethrown from
///              `Scheduler::run()`.
/// `Task<T>`  — a lazily-started child coroutine awaited with `co_await`.
///              The `Task` object (living in the awaiting frame) owns the
///              child frame; completion resumes the parent via symmetric
///              transfer, so arbitrarily deep call chains use O(1) stack.

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "sim/frame_pool.hpp"
#include "sim/scheduler.hpp"
#include "util/require.hpp"

namespace s3asim::sim {

/// Detached top-level simulation process.  Create by calling a coroutine
/// function returning `Process`, then hand it to `Scheduler::spawn`.
class [[nodiscard]] Process {
 public:
  struct promise_type : PooledFramePromise {
    Scheduler* scheduler = nullptr;

    Process get_return_object() {
      return Process{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> handle) const noexcept {
        Scheduler* scheduler = handle.promise().scheduler;
        handle.destroy();
        if (scheduler != nullptr) scheduler->note_process_finished();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() noexcept {}
    void unhandled_exception() noexcept {
      if (scheduler != nullptr)
        scheduler->note_process_failed(std::current_exception());
    }
  };

  Process(Process&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  Process& operator=(Process&&) = delete;
  ~Process() {
    // A Process that was never spawned still owns its frame.
    if (handle_) handle_.destroy();
  }

 private:
  friend class Scheduler;
  explicit Process(std::coroutine_handle<promise_type> handle) : handle_(handle) {}

  std::coroutine_handle<promise_type> handle_;
};

inline void Scheduler::spawn(Process process) {
  S3A_REQUIRE_MSG(process.handle_, "spawning an empty process");
  process.handle_.promise().scheduler = this;
  note_process_started();
  schedule_now(std::exchange(process.handle_, {}));
}

/// Lazily-started awaitable child coroutine.
template <class T>
class [[nodiscard]] Task {
 public:
  struct promise_type : PooledFramePromise {
    std::coroutine_handle<> continuation{};
    std::optional<T> value{};
    std::exception_ptr error{};

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> handle) const noexcept {
        auto continuation = handle.promise().continuation;
        return continuation ? continuation : std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    template <class U>
    void return_value(U&& result) {
      value.emplace(std::forward<U>(result));
    }
    void unhandled_exception() noexcept { error = std::current_exception(); }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  /// Awaiting a Task starts it immediately (same simulated instant) and
  /// resumes the awaiter when the task completes.
  auto operator co_await() noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      [[nodiscard]] bool await_ready() const noexcept {
        return !handle || handle.done();
      }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        handle.promise().continuation = cont;
        return handle;
      }
      T await_resume() {
        auto& promise = handle.promise();
        if (promise.error) std::rethrow_exception(promise.error);
        S3A_CHECK_MSG(promise.value.has_value(), "task finished without a value");
        return std::move(*promise.value);
      }
    };
    return Awaiter{handle_};
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> handle) : handle_(handle) {}

  std::coroutine_handle<promise_type> handle_;
};

/// void specialization.
template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : PooledFramePromise {
    std::coroutine_handle<> continuation{};
    std::exception_ptr error{};

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> handle) const noexcept {
        auto continuation = handle.promise().continuation;
        return continuation ? continuation : std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() noexcept {}
    void unhandled_exception() noexcept { error = std::current_exception(); }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  auto operator co_await() noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      [[nodiscard]] bool await_ready() const noexcept {
        return !handle || handle.done();
      }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        handle.promise().continuation = cont;
        return handle;
      }
      void await_resume() {
        if (handle.promise().error)
          std::rethrow_exception(handle.promise().error);
      }
    };
    return Awaiter{handle_};
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> handle) : handle_(handle) {}

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace s3asim::sim
