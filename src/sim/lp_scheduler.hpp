#pragma once

/// \file lp_scheduler.hpp
/// Conservative parallel discrete-event executor (the `--engine=parallel`
/// backend).
///
/// The simulation is partitioned into logical partitions (LPs, lp.hpp),
/// each wrapping an unchanged serial `Scheduler`.  Execution proceeds in
/// bounded *time windows* of width `lookahead` — the guaranteed minimum
/// cross-LP latency, advertised by the network model (`net::Network::
/// lookahead()`, ≥ 7.5 µs for the paper's Myrinet link):
///
///   1. deliver: every staged cross-LP message is drained from the
///      destination's mailbox, sorted by (time, source LP, source
///      sequence), and applied — a deterministic merge, independent of
///      which threads produced the messages;
///   2. plan: gmin = the earliest pending event across all LPs; the window
///      is [gmin, gmin + lookahead) and every LP with an event inside it
///      is *active*;
///   3. execute: active LPs run `Scheduler::run_window(gmin + lookahead)`
///      concurrently on the worker pool (each LP single-threaded, claimed
///      via an atomic cursor — idle threads steal the next unclaimed LP);
///      messages they emit for other LPs land in mailboxes, and the
///      lookahead guarantees their delivery times lie at or beyond the
///      window end, so no LP can receive an event it should already have
///      executed — the classic null-message-free conservative argument;
///   4. barrier, then repeat until every queue and mailbox is empty.
///
/// Determinism contract: results are bit-identical for any thread count.
/// Within a window each LP retires its events in serial (time, seq) order;
/// across LPs the only interaction is the mailbox, and its merge order is
/// the explicit (time, lp, seq) key — nothing observable depends on thread
/// scheduling.  A single-LP simulation executed through windows retires
/// exactly the serial event sequence, so `--engine=parallel` is
/// bit-identical to `--engine=serial` by construction there too.
///
/// Zero lookahead is rejected up front: with no minimum cross-LP latency
/// there is no window width under which concurrent execution is safe, and
/// the right engine is the serial one.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/lp.hpp"
#include "sim/time.hpp"

namespace s3asim::obs {
class Registry;
class Counter;
class Histogram;
class Gauge;
}  // namespace s3asim::obs

namespace s3asim::sim {

class LpScheduler {
 public:
  struct Options {
    /// Window width = guaranteed minimum cross-LP delivery latency.
    /// Must be > 0 (rejected otherwise, with an actionable error).
    Time lookahead = 0;
    /// Total execution threads (coordinator included); <= 1 runs every
    /// window inline on the calling thread through the same code path.
    unsigned threads = 1;
  };

  explicit LpScheduler(Options options);
  ~LpScheduler();
  LpScheduler(const LpScheduler&) = delete;
  LpScheduler& operator=(const LpScheduler&) = delete;

  /// Creates an engine-owned LP (its own scheduler, pool, mailbox).
  Lp& add_lp();

  /// Wraps an externally owned scheduler as an LP.  Pinned to the
  /// coordinating thread (see lp.hpp); everything else — windows, mailbox
  /// delivery, metrics — behaves identically.
  Lp& adopt_lp(Scheduler& scheduler);

  [[nodiscard]] std::size_t lp_count() const noexcept { return lps_.size(); }
  [[nodiscard]] Lp& lp(Lp::Id id) { return *lps_.at(id); }
  [[nodiscard]] Time lookahead() const noexcept { return options_.lookahead; }
  [[nodiscard]] unsigned threads() const noexcept { return options_.threads; }

  /// Stages a message from `src` (the LP currently executing) for `dst`,
  /// delivered at absolute time `at`.  While a window is executing, `at`
  /// must lie at or beyond the window end — i.e. the message must pay at
  /// least the lookahead; a violation throws with an actionable error.
  /// `apply` runs on the destination LP at the barrier (single-threaded,
  /// destination frame pool installed).
  void post(Lp& src, Lp::Id dst, Time at,
            std::function<void(Scheduler&)> apply);

  /// Runs every LP to global quiescence (all queues and mailboxes empty).
  /// Returns the total number of resumptions across all LPs.  Rethrows
  /// the first process error, picking the lowest-id failing LP when
  /// several fail in one window (deterministic across thread counts).
  std::size_t run();

  /// Publishes engine metrics into `registry` (nullptr detaches), all
  /// under "host.engine.*": they describe the executor, not the simulated
  /// system, and exist only when this engine runs — keeping them out of
  /// `sim.*` is what lets `obs_validate --simulated-only` output compare
  /// byte-equal across engines.  Deterministic counts (windows,
  /// activations, cross-LP posts) stay reachable through the accessors
  /// below.  See docs/OBSERVABILITY.md.
  void attach_metrics(obs::Registry* registry);

  // Introspection (tests and benches).
  [[nodiscard]] std::uint64_t windows_executed() const noexcept {
    return windows_;
  }
  [[nodiscard]] std::uint64_t lp_activations() const noexcept {
    return activations_;
  }
  [[nodiscard]] std::uint64_t cross_posts() const noexcept {
    return cross_posts_;
  }
  [[nodiscard]] std::uint64_t steals() const noexcept {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  void worker_main(unsigned thread_index);
  /// Claims unexecuted active LPs until the window's cursor runs out.
  void claim_loop(unsigned thread_index);
  /// One LP's slice of the current window (any thread).
  void run_lp(Lp& lp, unsigned thread_index);
  /// Drains and applies every LP's staged posts in merge-key order.
  void deliver_staged();
  /// Runs one planned window to its barrier; returns resumptions.
  std::size_t execute_window();
  void start_workers();
  void publish_window_metrics(std::size_t active_count);

  Options options_;
  std::vector<std::unique_ptr<Lp>> lps_;

  // Window state (written by the coordinator between windows; read by
  // workers during one — the round handshake provides the ordering).
  Time window_end_ = 0;
  bool in_window_ = false;
  std::vector<Lp*> active_;     ///< this window's runnable LPs, id order
  std::vector<Lp*> stealable_;  ///< active_ minus pinned LPs
  std::vector<Lp*> pinned_;     ///< active_ LPs only the coordinator runs
  std::vector<Lp::Post> staging_;  ///< barrier-time drain scratch
  std::vector<std::exception_ptr> errors_;  ///< per-LP, window-scoped

  // Worker-pool handshake.
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable round_start_;
  std::condition_variable round_done_;
  std::uint64_t round_ = 0;
  bool stop_ = false;
  std::atomic<std::size_t> next_{0};       ///< claim cursor into stealable_
  std::atomic<std::size_t> remaining_{0};  ///< unfinished stealable LPs
  std::atomic<std::size_t> window_resumed_{0};

  // Accounting.
  std::uint64_t windows_ = 0;      ///< deterministic
  std::uint64_t activations_ = 0;  ///< deterministic
  std::uint64_t cross_posts_ = 0;  ///< deterministic
  std::atomic<std::uint64_t> steals_{0};  ///< host-dependent

  // Metrics (resolved once by attach_metrics; coordinator-only access).
  obs::Counter* met_windows_ = nullptr;
  obs::Counter* met_activations_ = nullptr;
  obs::Counter* met_cross_posts_ = nullptr;
  obs::Histogram* met_window_lps_ = nullptr;
  obs::Histogram* met_lp_queue_depth_ = nullptr;
  obs::Gauge* met_lps_ = nullptr;
  obs::Counter* met_steals_ = nullptr;
  obs::Histogram* met_stall_seconds_ = nullptr;
  std::uint64_t published_steals_ = 0;
  std::uint64_t published_cross_posts_ = 0;
};

}  // namespace s3asim::sim
