#pragma once

/// \file gate.hpp
/// One-shot event: processes `co_await gate.wait()` until someone calls
/// `open()`.  Used for request completion (MPI_Wait-style) and shutdown
/// signalling.  Waiters are released through the scheduler queue so wakeup
/// order is deterministic (FIFO at the same instant).

#include <coroutine>
#include <vector>

#include "sim/scheduler.hpp"

namespace s3asim::sim {

class Gate {
 public:
  explicit Gate(Scheduler& scheduler) noexcept : scheduler_(&scheduler) {}
  Gate(const Gate&) = delete;
  Gate& operator=(const Gate&) = delete;

  /// Opens the gate, releasing current and future waiters.  Idempotent.
  void open() {
    if (open_) return;
    open_ = true;
    if (waiter0_) {
      scheduler_->schedule_now(waiter0_);
      waiter0_ = nullptr;
    }
    for (const auto handle : overflow_) scheduler_->schedule_now(handle);
    overflow_.clear();
  }

  [[nodiscard]] bool is_open() const noexcept { return open_; }

  struct WaitAwaiter {
    Gate& gate;
    [[nodiscard]] bool await_ready() const noexcept { return gate.open_; }
    void await_suspend(std::coroutine_handle<> handle) {
      if (!gate.waiter0_) {
        gate.waiter0_ = handle;
      } else {
        gate.overflow_.push_back(handle);
      }
    }
    void await_resume() const noexcept {}
  };

  [[nodiscard]] WaitAwaiter wait() noexcept { return WaitAwaiter{*this}; }

 private:
  Scheduler* scheduler_;
  bool open_ = false;
  /// First waiter stored inline (FIFO: it is released first).  Gates almost
  /// always have exactly one waiter — the per-request `serviced` gate on
  /// the PFS client path — and the inline slot keeps that path free of the
  /// waiter-vector's first-push allocation.
  std::coroutine_handle<> waiter0_ = nullptr;
  std::vector<std::coroutine_handle<>> overflow_{};
};

}  // namespace s3asim::sim
