#pragma once

/// \file gate.hpp
/// One-shot event: processes `co_await gate.wait()` until someone calls
/// `open()`.  Used for request completion (MPI_Wait-style) and shutdown
/// signalling.  Waiters are released through the scheduler queue so wakeup
/// order is deterministic (FIFO at the same instant).

#include <coroutine>
#include <vector>

#include "sim/scheduler.hpp"

namespace s3asim::sim {

class Gate {
 public:
  explicit Gate(Scheduler& scheduler) noexcept : scheduler_(&scheduler) {}
  Gate(const Gate&) = delete;
  Gate& operator=(const Gate&) = delete;

  /// Opens the gate, releasing current and future waiters.  Idempotent.
  void open() {
    if (open_) return;
    open_ = true;
    for (const auto handle : waiters_) scheduler_->schedule_now(handle);
    waiters_.clear();
  }

  [[nodiscard]] bool is_open() const noexcept { return open_; }

  struct WaitAwaiter {
    Gate& gate;
    [[nodiscard]] bool await_ready() const noexcept { return gate.open_; }
    void await_suspend(std::coroutine_handle<> handle) {
      gate.waiters_.push_back(handle);
    }
    void await_resume() const noexcept {}
  };

  [[nodiscard]] WaitAwaiter wait() noexcept { return WaitAwaiter{*this}; }

 private:
  Scheduler* scheduler_;
  bool open_ = false;
  std::vector<std::coroutine_handle<>> waiters_{};
};

}  // namespace s3asim::sim
