#pragma once

/// \file mailbox.hpp
/// Lock-free multi-producer single-consumer mailbox.
///
/// The parallel engine (lp_scheduler.hpp) stages every cross-LP message in
/// the destination LP's mailbox: any worker thread may push while its LP
/// executes a window, and the coordinator drains all mailboxes at the
/// window barrier — so pushes are concurrent, drains are not.  `push` is a
/// lock-free Treiber-stack insert (one CAS on the head, no locks taken on
/// the simulation's hot path); `drain` detaches the whole list with a
/// single exchange.
///
/// Ordering: `drain` returns items in reverse push order (stack order).
/// Callers that need a deterministic order must sort — the engine does,
/// by the (time, source LP, source sequence) key carried in the message —
/// so the mailbox itself never needs to preserve one.

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace s3asim::sim {

template <typename T>
class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;
  ~Mailbox() {
    Node* node = head_.load(std::memory_order_relaxed);
    while (node != nullptr) {
      Node* next = node->next;
      delete node;
      node = next;
    }
  }

  /// Thread-safe, lock-free.  Any thread may push at any time.
  void push(T value) {
    auto* node = new Node{head_.load(std::memory_order_relaxed),
                          std::move(value)};
    while (!head_.compare_exchange_weak(node->next, node,
                                        std::memory_order_release,
                                        std::memory_order_relaxed)) {
    }
  }

  /// Detaches every staged item into `out` (appended, reverse push order)
  /// and returns how many were moved.  Single consumer: concurrent pushes
  /// are safe, concurrent drains are not.
  std::size_t drain(std::vector<T>& out) {
    Node* node = head_.exchange(nullptr, std::memory_order_acquire);
    std::size_t count = 0;
    while (node != nullptr) {
      out.push_back(std::move(node->value));
      Node* next = node->next;
      delete node;
      node = next;
      ++count;
    }
    return count;
  }

  /// True when no item is staged (consumer-side check between windows;
  /// racy under concurrent pushes, exact at a barrier).
  [[nodiscard]] bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) == nullptr;
  }

 private:
  struct Node {
    Node* next;
    T value;
  };

  std::atomic<Node*> head_{nullptr};
};

}  // namespace s3asim::sim
