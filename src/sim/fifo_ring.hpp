#pragma once

/// \file fifo_ring.hpp
/// Grow-only power-of-two ring buffer with deque-style FIFO access.
///
/// Wait queues (resource grants, channel consumers) and channel mailboxes
/// cycle on every simulated I/O operation.  `std::deque` serves that
/// pattern with a sliding block window: steady-state traffic allocates a
/// fresh block and frees the trailing one every `block / sizeof(T)`
/// operations, forever.  The ring instead reaches its high-water capacity
/// once and never touches the allocator again, and its storage is a single
/// contiguous span that stays cache-resident.
///
/// Semantics match the deque subset the simulator uses: strict FIFO
/// `push_back`/`pop_front`, front peek, and FIFO-ordered indexing for
/// drain loops.  `T` must be default-constructible (slots are constructed
/// up front) and movable; popped slots are left moved-from and are
/// overwritten on reuse.

#include <cstddef>
#include <utility>
#include <vector>

namespace s3asim::sim {

template <class T>
class FifoRing {
 public:
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  void push_back(T value) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) & mask_] = std::move(value);
    ++size_;
  }

  [[nodiscard]] T& front() noexcept { return buf_[head_]; }
  [[nodiscard]] const T& front() const noexcept { return buf_[head_]; }

  /// Removes and returns the front element.
  T pop_front() {
    T value = std::move(buf_[head_]);
    head_ = (head_ + 1) & mask_;
    --size_;
    return value;
  }

  /// FIFO-indexed access: `ring[0]` is the front, `ring[size() - 1]` the
  /// most recently pushed element.
  [[nodiscard]] T& operator[](std::size_t index) noexcept {
    return buf_[(head_ + index) & mask_];
  }
  [[nodiscard]] const T& operator[](std::size_t index) const noexcept {
    return buf_[(head_ + index) & mask_];
  }

  /// Drops every element (in FIFO order); capacity is retained.
  void clear() {
    while (size_ != 0) (void)pop_front();
  }

 private:
  void grow() {
    const std::size_t capacity = buf_.empty() ? 16 : buf_.size() * 2;
    std::vector<T> next(capacity);
    for (std::size_t i = 0; i < size_; ++i)
      next[i] = std::move(buf_[(head_ + i) & mask_]);
    buf_ = std::move(next);
    head_ = 0;
    mask_ = capacity - 1;
  }

  std::vector<T> buf_{};
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace s3asim::sim
