#pragma once

/// \file wait_group.hpp
/// Counting completion latch for fan-out/fan-in: a parent `add(n)`s before
/// spawning n children, each child calls `done()` when finished, and the
/// parent `co_await wait()`s until the count returns to zero.
///
/// This replaces the vector-of-`unique_ptr<Gate>` pattern (one heap
/// allocation per child per operation) with a single stack object per
/// fan-out.  Wakeups go through the scheduler queue, so release order is
/// deterministic; unlike a Gate, a WaitGroup is reusable — after the count
/// hits zero, a later `add()` starts a new cycle (the POSIX-write path
/// reuses one WaitGroup across every extent's round trip).

#include <coroutine>
#include <cstdint>
#include <vector>

#include "sim/scheduler.hpp"
#include "util/require.hpp"

namespace s3asim::sim {

class WaitGroup {
 public:
  explicit WaitGroup(Scheduler& scheduler) noexcept : scheduler_(&scheduler) {}
  WaitGroup(const WaitGroup&) = delete;
  WaitGroup& operator=(const WaitGroup&) = delete;

  /// Registers `n` future `done()` calls.  Must precede the spawn of the
  /// work it accounts for, so a child completing synchronously cannot drop
  /// the count to zero early.
  void add(std::uint32_t n = 1) noexcept { count_ += n; }

  /// Marks one unit complete; releases all waiters when the count reaches
  /// zero (through the scheduler queue — FIFO at the same instant).
  void done() {
    S3A_REQUIRE_MSG(count_ > 0, "WaitGroup::done without matching add");
    if (--count_ > 0) return;
    if (waiter0_) {
      scheduler_->schedule_now(waiter0_);
      waiter0_ = nullptr;
    }
    for (const auto handle : overflow_) scheduler_->schedule_now(handle);
    overflow_.clear();
  }

  /// Outstanding `done()` calls.
  [[nodiscard]] std::uint32_t pending() const noexcept { return count_; }

  struct WaitAwaiter {
    WaitGroup& group;
    [[nodiscard]] bool await_ready() const noexcept {
      return group.count_ == 0;
    }
    void await_suspend(std::coroutine_handle<> handle) {
      if (!group.waiter0_) {
        group.waiter0_ = handle;
      } else {
        group.overflow_.push_back(handle);
      }
    }
    void await_resume() const noexcept {}
  };

  /// Awaitable: resumes once the count is zero (immediately if it already
  /// is — a zero-count wait never suspends).
  [[nodiscard]] WaitAwaiter wait() noexcept { return WaitAwaiter{*this}; }

 private:
  Scheduler* scheduler_;
  std::uint32_t count_ = 0;
  /// First waiter inline — the overwhelmingly common case is exactly one
  /// parent waiting, and keeping it out of the vector keeps the whole
  /// fan-in allocation-free.
  std::coroutine_handle<> waiter0_ = nullptr;
  std::vector<std::coroutine_handle<>> overflow_{};
};

}  // namespace s3asim::sim
