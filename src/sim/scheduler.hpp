#pragma once

/// \file scheduler.hpp
/// The discrete-event scheduler.  Every suspension point in the simulator
/// (delays, message arrivals, resource grants, barrier releases) funnels
/// through this queue, which orders events by (time, insertion sequence) —
/// FIFO among simultaneous events — so runs are fully deterministic.

#include <chrono>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"
#include "util/require.hpp"

namespace s3asim::obs {
class Registry;
class Counter;
class Histogram;
class Gauge;
}  // namespace s3asim::obs

namespace s3asim::sim {

class Process;

/// Single-threaded discrete-event scheduler.
///
/// Coroutine frames are owned by their parents (`Task` objects live in the
/// awaiting frame); top-level `Process` frames self-destroy at completion.
/// A simulation is expected to run to quiescence — `run()` drains the queue
/// and `live_processes()` must reach zero (server loops exit via closed
/// channels).  Destroying a scheduler with live processes leaks their
/// frames; tests assert quiescence instead.
class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Enqueues a coroutine to resume at absolute time `at` (>= now()).
  void schedule_at(std::coroutine_handle<> handle, Time at) {
    S3A_CHECK_MSG(at >= now_, "cannot schedule into the past");
    queue_.push(Event{at, next_seq_++, handle, kNoCancelSlot, 0});
  }

  /// Enqueues a coroutine to resume at the current time, after all events
  /// already enqueued for this instant (FIFO fairness).
  void schedule_now(std::coroutine_handle<> handle) { schedule_at(handle, now_); }

  // --- Cancellable entries -------------------------------------------------
  //
  // A cancellable entry carries a reference to a generation-counted slot in
  // the scheduler-owned token pool.  Bumping the slot's generation
  // invalidates every outstanding entry that references it — arming and
  // cancelling a timer is allocation-free, and a cancelled entry is
  // discarded when it reaches the head of the queue *without* advancing
  // simulated time (a cancelled timeout must not extend the run).

  /// Reference to a pool slot at a specific generation.
  struct CancelRef {
    std::uint32_t slot = kNoCancelSlot;
    std::uint32_t gen = 0;
  };

  /// Invalidates all entries scheduled under `ref` and returns a fresh
  /// reference to the same slot (acquiring a slot on first use).  O(1),
  /// allocation-free after the first call.
  [[nodiscard]] CancelRef cancel_ref_renew(CancelRef ref) {
    if (ref.slot == kNoCancelSlot) {
      if (free_slots_.empty()) {
        cancel_gens_.push_back(0);
        return {static_cast<std::uint32_t>(cancel_gens_.size() - 1), 0};
      }
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      return {slot, cancel_gens_[slot]};
    }
    return {ref.slot, ++cancel_gens_[ref.slot]};
  }

  /// Returns the slot to the pool, invalidating outstanding entries.
  void cancel_ref_release(CancelRef ref) {
    if (ref.slot == kNoCancelSlot) return;
    ++cancel_gens_[ref.slot];
    free_slots_.push_back(ref.slot);
  }

  /// True while no renew/release has happened since `ref` was obtained —
  /// i.e. entries scheduled under `ref` are still live.
  [[nodiscard]] bool cancel_ref_current(CancelRef ref) const noexcept {
    return ref.slot != kNoCancelSlot && cancel_gens_[ref.slot] == ref.gen;
  }

  /// Slots ever allocated (tests assert the pool stays small under churn).
  [[nodiscard]] std::size_t cancel_slots_allocated() const noexcept {
    return cancel_gens_.size();
  }

  /// Like schedule_at, but the entry is skipped (and time is *not* advanced
  /// to it) if `ref`'s slot generation moved on by the time it would fire.
  void schedule_cancellable_at(std::coroutine_handle<> handle, Time at,
                               CancelRef ref) {
    S3A_CHECK_MSG(at >= now_, "cannot schedule into the past");
    queue_.push(Event{at, next_seq_++, handle, ref.slot, ref.gen});
  }

  /// Starts a top-level detached process at the current time.
  void spawn(Process process);

  /// Runs until the event queue is empty.  Returns the number of resumptions
  /// performed.  Rethrows the first exception that escaped any process.
  std::size_t run();

  /// Runs until the queue is empty or simulated time would exceed
  /// `deadline`; events after the deadline stay queued.
  std::size_t run_until(Time deadline);

  /// Runs every event strictly before `end`; events at or after `end` stay
  /// queued and `now()` is left at the last retired event (never advanced
  /// to `end`).  This is the parallel engine's window primitive: executing
  /// one scheduler through a sequence of abutting windows retires events
  /// in exactly the same (time, seq) order as a single `run()`, so a
  /// windowed run is bit-identical to a serial one by construction.
  std::size_t run_window(Time end);

  /// Timestamp of the earliest queued event (cancelled timer entries
  /// included — they are discarded on pop without advancing time, so using
  /// their timestamp for window planning costs at most an empty window).
  /// Requires has_pending().
  [[nodiscard]] Time next_event_time() { return queue_.top().at; }

  [[nodiscard]] bool has_pending() const noexcept { return !queue_.empty(); }
  /// Queued (not yet retired) events, cancelled entries included.
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return queue_.size();
  }
  [[nodiscard]] std::size_t live_processes() const noexcept { return live_; }
  [[nodiscard]] std::size_t finished_processes() const noexcept { return finished_; }

  /// Cumulative resumptions across all run()/run_until() calls — the
  /// event-throughput numerator reported in RunStats and BENCH_*.json.
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return events_;
  }

  /// Arms the DES-kernel profiler: every `sample_every` resumptions the run
  /// loop records the event-queue depth and frame-pool occupancy under the
  /// "sim.sched.*" / "sim.frame_pool.*" names, and the host-clock per-event
  /// pop latency under "host.sched.pop_seconds" — the host.* namespace
  /// marks the one nondeterministic manifest field, which `obs_validate
  /// --simulated-only` strips for exact diffs (docs/OBSERVABILITY.md).
  /// Samples read host time only — simulated time and event order are
  /// untouched, so profiled runs stay bit-identical.  When detached
  /// (default) the run loop pays a single predicted-not-taken branch per
  /// event.  Pass nullptr to detach.
  void attach_profiler(obs::Registry* registry,
                       std::uint64_t sample_every = 1024);

  /// Awaitable: suspend the current coroutine for `duration` sim-time.
  struct DelayAwaiter {
    Scheduler& scheduler;
    Time duration;
    [[nodiscard]] bool await_ready() const noexcept { return duration <= 0; }
    void await_suspend(std::coroutine_handle<> handle) const {
      scheduler.schedule_at(handle, scheduler.now() + duration);
    }
    void await_resume() const noexcept {}
  };

  [[nodiscard]] DelayAwaiter delay(Time duration) noexcept {
    return DelayAwaiter{*this, duration};
  }

  /// Awaitable: yield to other same-time events, resuming afterwards.
  [[nodiscard]] DelayAwaiter yield() noexcept { return DelayAwaiter{*this, 1}; }

  // Process bookkeeping (used by Process' promise; not for applications).
  void note_process_started() noexcept { ++live_; }
  void note_process_finished() noexcept {
    --live_;
    ++finished_;
  }
  void note_process_failed(std::exception_ptr error) noexcept {
    if (!first_error_) first_error_ = error;
  }

 private:
  /// True when the entry references a slot whose generation moved on.
  [[nodiscard]] bool cancelled(const Event& event) const noexcept {
    return event.cancel_slot != kNoCancelSlot &&
           cancel_gens_[event.cancel_slot] != event.cancel_gen;
  }

  /// Records one profiler sample and re-arms the countdown (out of line —
  /// the run loop only pays the countdown branch).
  void profile_sample();

  EventQueue queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_ = 0;
  std::size_t live_ = 0;
  std::size_t finished_ = 0;
  std::exception_ptr first_error_{};
  std::vector<std::uint32_t> cancel_gens_;   ///< slot -> current generation
  std::vector<std::uint32_t> free_slots_;    ///< released slot indices

  // Profiler state (inert unless attach_profiler armed it).
  std::uint64_t prof_every_ = 0;       ///< 0 = detached
  std::uint64_t prof_countdown_ = 0;   ///< events until the next sample
  obs::Histogram* prof_queue_depth_ = nullptr;
  obs::Histogram* prof_pop_seconds_ = nullptr;
  obs::Gauge* prof_pool_live_ = nullptr;
  obs::Gauge* prof_pool_reused_ = nullptr;
  obs::Gauge* prof_pool_slab_bytes_ = nullptr;
  obs::Counter* prof_samples_ = nullptr;
  std::chrono::steady_clock::time_point prof_last_{};
};

}  // namespace s3asim::sim
