#pragma once

/// \file scheduler.hpp
/// The discrete-event scheduler.  Every suspension point in the simulator
/// (delays, message arrivals, resource grants, barrier releases) funnels
/// through this queue, which orders events by (time, insertion sequence) —
/// FIFO among simultaneous events — so runs are fully deterministic.

#include <coroutine>
#include <cstdint>
#include <exception>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"
#include "util/require.hpp"

namespace s3asim::sim {

class Process;

/// Shared cancellation flag for cancellable queue entries (see Timer).
/// A cancelled entry is discarded when it reaches the head of the queue
/// *without* advancing simulated time — a cancelled timeout must not
/// extend the run.
struct CancelToken {
  bool cancelled = false;
};

/// Single-threaded discrete-event scheduler.
///
/// Coroutine frames are owned by their parents (`Task` objects live in the
/// awaiting frame); top-level `Process` frames self-destroy at completion.
/// A simulation is expected to run to quiescence — `run()` drains the queue
/// and `live_processes()` must reach zero (server loops exit via closed
/// channels).  Destroying a scheduler with live processes leaks their
/// frames; tests assert quiescence instead.
class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Enqueues a coroutine to resume at absolute time `at` (>= now()).
  void schedule_at(std::coroutine_handle<> handle, Time at) {
    S3A_CHECK_MSG(at >= now_, "cannot schedule into the past");
    queue_.push(Entry{at, next_seq_++, handle});
  }

  /// Enqueues a coroutine to resume at the current time, after all events
  /// already enqueued for this instant (FIFO fairness).
  void schedule_now(std::coroutine_handle<> handle) { schedule_at(handle, now_); }

  /// Like schedule_at, but the entry is skipped (and time is *not* advanced
  /// to it) if `token->cancelled` is set by the time it would fire.
  void schedule_cancellable_at(std::coroutine_handle<> handle, Time at,
                               std::shared_ptr<CancelToken> token) {
    S3A_CHECK_MSG(at >= now_, "cannot schedule into the past");
    queue_.push(Entry{at, next_seq_++, handle, std::move(token)});
  }

  /// Starts a top-level detached process at the current time.
  void spawn(Process process);

  /// Runs until the event queue is empty.  Returns the number of resumptions
  /// performed.  Rethrows the first exception that escaped any process.
  std::size_t run();

  /// Runs until the queue is empty or simulated time would exceed
  /// `deadline`; events after the deadline stay queued.
  std::size_t run_until(Time deadline);

  [[nodiscard]] bool has_pending() const noexcept { return !queue_.empty(); }
  [[nodiscard]] std::size_t live_processes() const noexcept { return live_; }
  [[nodiscard]] std::size_t finished_processes() const noexcept { return finished_; }

  /// Awaitable: suspend the current coroutine for `duration` sim-time.
  struct DelayAwaiter {
    Scheduler& scheduler;
    Time duration;
    [[nodiscard]] bool await_ready() const noexcept { return duration <= 0; }
    void await_suspend(std::coroutine_handle<> handle) const {
      scheduler.schedule_at(handle, scheduler.now() + duration);
    }
    void await_resume() const noexcept {}
  };

  [[nodiscard]] DelayAwaiter delay(Time duration) noexcept {
    return DelayAwaiter{*this, duration};
  }

  /// Awaitable: yield to other same-time events, resuming afterwards.
  [[nodiscard]] DelayAwaiter yield() noexcept { return DelayAwaiter{*this, 1}; }

  // Process bookkeeping (used by Process' promise; not for applications).
  void note_process_started() noexcept { ++live_; }
  void note_process_finished() noexcept {
    --live_;
    ++finished_;
  }
  void note_process_failed(std::exception_ptr error) noexcept {
    if (!first_error_) first_error_ = error;
  }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
    std::shared_ptr<CancelToken> token{};  ///< null for plain entries
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  std::size_t finished_ = 0;
  std::exception_ptr first_error_{};
};

}  // namespace s3asim::sim
