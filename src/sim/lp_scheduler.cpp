#include "sim/lp_scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "util/require.hpp"

namespace s3asim::sim {

namespace {

constexpr Time kTimeMax = std::numeric_limits<Time>::max();

}  // namespace

LpScheduler::LpScheduler(Options options) : options_(options) {
  S3A_REQUIRE_MSG(
      options_.lookahead > 0,
      "the parallel engine needs a positive lookahead: window width is the "
      "guaranteed minimum cross-LP delivery latency, and a zero-latency "
      "edge admits same-instant cross-LP interactions no window can order "
      "safely — raise the network latency (net::LinkParams::latency) or "
      "use --engine=serial");
  if (options_.threads == 0) options_.threads = 1;
}

LpScheduler::~LpScheduler() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    round_start_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }
}

Lp& LpScheduler::add_lp() {
  S3A_CHECK_MSG(!in_window_, "cannot add LPs while a window is executing");
  lps_.push_back(std::make_unique<Lp>(static_cast<Lp::Id>(lps_.size())));
  return *lps_.back();
}

Lp& LpScheduler::adopt_lp(Scheduler& scheduler) {
  S3A_CHECK_MSG(!in_window_, "cannot add LPs while a window is executing");
  lps_.push_back(
      std::make_unique<Lp>(static_cast<Lp::Id>(lps_.size()), scheduler));
  return *lps_.back();
}

void LpScheduler::post(Lp& src, Lp::Id dst, Time at,
                       std::function<void(Scheduler&)> apply) {
  S3A_REQUIRE_MSG(dst < lps_.size(), "post to unknown LP");
  if (in_window_ && at < window_end_) {
    S3A_REQUIRE_MSG(
        false,
        "cross-LP message violates the lookahead: delivery at t=" +
            std::to_string(at) + " ns but the current window ends at t=" +
            std::to_string(window_end_) + " ns (lookahead " +
            std::to_string(options_.lookahead) +
            " ns) — every cross-LP interaction must pay at least the "
            "network lookahead; model zero-offset interactions inside one "
            "LP or run --engine=serial");
  }
  lps_[dst]->mailbox().push(
      Lp::Post{at, src.id(), src.next_post_seq(), std::move(apply)});
}

void LpScheduler::deliver_staged() {
  // Applying a post may itself post (delivery handlers forwarding work),
  // possibly to an LP already drained this pass — sweep until globally
  // empty.  The sweep order (LP id, then the sorted merge key) is fixed,
  // so delivery stays deterministic.
  bool again = true;
  while (again) {
    again = false;
    for (auto& lp : lps_) {
      if (lp->mailbox().empty()) continue;
      staging_.clear();
      lp->mailbox().drain(staging_);
      again = true;
      std::sort(staging_.begin(), staging_.end(),
                [](const Lp::Post& a, const Lp::Post& b) {
                  if (a.at != b.at) return a.at < b.at;
                  if (a.src_lp != b.src_lp) return a.src_lp < b.src_lp;
                  return a.src_seq < b.src_seq;
                });
      FramePool* pool = lp->pinned() ? nullptr : &lp->frame_pool();
      for (Lp::Post& post : staging_) {
        if (pool != nullptr) {
          FramePool::Scope scope(*pool);
          post.apply(lp->scheduler());
        } else {
          post.apply(lp->scheduler());
        }
        ++cross_posts_;
      }
    }
  }
}

std::size_t LpScheduler::run() {
  if (options_.threads > 1 && workers_.empty()) start_workers();
  if (errors_.size() < lps_.size()) errors_.resize(lps_.size());
  std::size_t total = 0;
  for (;;) {
    deliver_staged();
    Time gmin = kTimeMax;
    for (auto& lp : lps_)
      if (lp->scheduler().has_pending())
        gmin = std::min(gmin, lp->scheduler().next_event_time());
    if (gmin == kTimeMax) break;  // quiescent: no events, mailboxes drained
    window_end_ = gmin > kTimeMax - options_.lookahead
                      ? kTimeMax
                      : gmin + options_.lookahead;
    active_.clear();
    for (auto& lp : lps_) {
      if (!lp->scheduler().has_pending() ||
          lp->scheduler().next_event_time() >= window_end_)
        continue;
      active_.push_back(lp.get());
      if (met_lp_queue_depth_ != nullptr)
        met_lp_queue_depth_->observe(
            static_cast<double>(lp->scheduler().queue_depth()));
    }
    ++windows_;
    activations_ += active_.size();
    total += execute_window();
    publish_window_metrics(active_.size());
    for (Lp* lp : active_) {
      if (!errors_[lp->id()]) continue;
      auto error = std::exchange(errors_[lp->id()], nullptr);
      std::rethrow_exception(error);
    }
  }
  return total;
}

std::size_t LpScheduler::execute_window() {
  window_resumed_.store(0, std::memory_order_relaxed);
  const unsigned coordinator = options_.threads - 1;
  if (workers_.empty()) {
    in_window_ = true;
    for (Lp* lp : active_) run_lp(*lp, coordinator);
    in_window_ = false;
    return window_resumed_.load(std::memory_order_relaxed);
  }

  stealable_.clear();
  pinned_.clear();
  for (Lp* lp : active_) (lp->pinned() ? pinned_ : stealable_).push_back(lp);

  // Sparse-window fast path: with at most one stealable LP there is no
  // parallelism to extract, so skip the round handshake (workers stay
  // asleep) and run the window inline.  This is the common shape during
  // I/O phases — a handful of staggered server events per window — and
  // the *only* shape for a single adopted LP (the full model under
  // --engine=parallel), where it keeps windows near-free.
  if (stealable_.size() <= 1) {
    in_window_ = true;
    for (Lp* lp : pinned_) run_lp(*lp, coordinator);
    for (Lp* lp : stealable_) run_lp(*lp, coordinator);
    in_window_ = false;
    return window_resumed_.load(std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    next_.store(0, std::memory_order_relaxed);
    remaining_.store(stealable_.size(), std::memory_order_relaxed);
    in_window_ = true;
    ++round_;
  }
  round_start_.notify_all();

  // The coordinator is a full pool member: pinned LPs first (only it may
  // run them), then it steals from the shared cursor like everyone else.
  for (Lp* lp : pinned_) run_lp(*lp, coordinator);
  claim_loop(coordinator);

  const auto wait_begin = std::chrono::steady_clock::now();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    round_done_.wait(lock, [this] {
      return remaining_.load(std::memory_order_acquire) == 0;
    });
    in_window_ = false;
  }
  if (met_stall_seconds_ != nullptr) {
    const auto waited = std::chrono::steady_clock::now() - wait_begin;
    met_stall_seconds_->observe(
        std::chrono::duration<double>(waited).count());
  }
  return window_resumed_.load(std::memory_order_relaxed);
}

void LpScheduler::claim_loop(unsigned thread_index) {
  for (;;) {
    const std::size_t index = next_.fetch_add(1, std::memory_order_relaxed);
    if (index >= stealable_.size()) return;
    run_lp(*stealable_[index], thread_index);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mutex_);
      round_done_.notify_one();
    }
  }
}

void LpScheduler::run_lp(Lp& lp, unsigned thread_index) {
  if (lp.id() % options_.threads != thread_index)
    steals_.fetch_add(1, std::memory_order_relaxed);
  std::size_t resumed = 0;
  try {
    if (lp.pinned()) {
      // An adopted scheduler's frames live in the adopting thread's
      // default pool (they predate the engine) — keep using it, which is
      // safe because pinned LPs only ever run on the coordinator.
      resumed = lp.scheduler().run_window(window_end_);
    } else {
      FramePool::Scope scope(lp.frame_pool());
      resumed = lp.scheduler().run_window(window_end_);
    }
  } catch (...) {
    errors_[lp.id()] = std::current_exception();
  }
  window_resumed_.fetch_add(resumed, std::memory_order_relaxed);
}

void LpScheduler::worker_main(unsigned thread_index) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      round_start_.wait(lock, [&] { return stop_ || round_ != seen; });
      if (stop_) return;
      seen = round_;
    }
    claim_loop(thread_index);
  }
}

void LpScheduler::start_workers() {
  workers_.reserve(options_.threads - 1);
  for (unsigned i = 0; i + 1 < options_.threads; ++i)
    workers_.emplace_back([this, i] { worker_main(i); });
}

void LpScheduler::attach_metrics(obs::Registry* registry) {
  if (registry == nullptr) {
    met_windows_ = met_activations_ = met_cross_posts_ = met_steals_ = nullptr;
    met_window_lps_ = met_lp_queue_depth_ = met_stall_seconds_ = nullptr;
    met_lps_ = nullptr;
    return;
  }
  met_windows_ = &registry->counter("host.engine.windows");
  met_activations_ = &registry->counter("host.engine.lp_activations");
  met_cross_posts_ = &registry->counter("host.engine.cross_lp_messages");
  met_window_lps_ = &registry->histogram("host.engine.window_lps");
  met_lp_queue_depth_ = &registry->histogram("host.engine.lp_queue_depth");
  met_lps_ = &registry->gauge("host.engine.lps");
  // Host-clock / thread-placement metrics: nondeterministic by nature, so
  // they live under host.* (stripped by obs_validate --simulated-only).
  met_steals_ = &registry->counter("host.engine.steals");
  met_stall_seconds_ = &registry->histogram("host.engine.window_stall_seconds");
  published_steals_ = steals_.load(std::memory_order_relaxed);
  published_cross_posts_ = cross_posts_;
}

void LpScheduler::publish_window_metrics(std::size_t active_count) {
  if (met_windows_ == nullptr) return;
  met_windows_->add(1);
  met_activations_->add(active_count);
  met_window_lps_->observe(static_cast<double>(active_count));
  met_lps_->set(static_cast<double>(lps_.size()));
  met_cross_posts_->add(cross_posts_ - published_cross_posts_);
  published_cross_posts_ = cross_posts_;
  const std::uint64_t stolen = steals_.load(std::memory_order_relaxed);
  met_steals_->add(stolen - published_steals_);
  published_steals_ = stolen;
}

}  // namespace s3asim::sim
