#pragma once

/// \file resource.hpp
/// Counting FIFO resource — models anything that serializes work: a NIC
/// transmit path, a disk head, a server request pipeline.  `capacity`
/// concurrent holders; further acquirers queue in arrival order.

#include <coroutine>
#include <cstdint>
#include <utility>

#include "sim/fifo_ring.hpp"
#include "sim/scheduler.hpp"
#include "util/require.hpp"

namespace s3asim::sim {

class Resource {
 public:
  explicit Resource(Scheduler& scheduler, std::uint32_t capacity = 1)
      : scheduler_(&scheduler), capacity_(capacity) {
    S3A_REQUIRE(capacity >= 1);
  }
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  struct AcquireAwaiter {
    Resource& resource;
    [[nodiscard]] bool await_ready() const noexcept {
      if (resource.in_use_ < resource.capacity_) {
        ++resource.in_use_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> handle) {
      resource.waiters_.push_back(handle);
    }
    void await_resume() const noexcept {}
  };

  /// Awaitable acquire; pair with `release()` or use `ResourceHold`.
  [[nodiscard]] AcquireAwaiter acquire() noexcept { return AcquireAwaiter{*this}; }

  /// Releases one slot.  If a waiter is queued, the slot is handed over
  /// directly (in_use_ stays constant) and the waiter resumes at `now`.
  void release() {
    S3A_CHECK_MSG(in_use_ > 0, "release without acquire");
    if (!waiters_.empty()) {
      scheduler_->schedule_now(waiters_.pop_front());
    } else {
      --in_use_;
    }
  }

  [[nodiscard]] std::uint32_t in_use() const noexcept { return in_use_; }
  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t queue_length() const noexcept { return waiters_.size(); }

 private:
  Scheduler* scheduler_;
  std::uint32_t capacity_;
  std::uint32_t in_use_ = 0;
  FifoRing<std::coroutine_handle<>> waiters_{};
};

/// RAII release for a slot that has already been acquired:
///   co_await resource.acquire();
///   ResourceHold hold{resource};
class ResourceHold {
 public:
  explicit ResourceHold(Resource& resource) noexcept : resource_(&resource) {}
  ResourceHold(ResourceHold&& other) noexcept
      : resource_(std::exchange(other.resource_, nullptr)) {}
  ResourceHold(const ResourceHold&) = delete;
  ResourceHold& operator=(const ResourceHold&) = delete;
  ResourceHold& operator=(ResourceHold&&) = delete;
  ~ResourceHold() {
    if (resource_ != nullptr) resource_->release();
  }

 private:
  Resource* resource_;
};

}  // namespace s3asim::sim
