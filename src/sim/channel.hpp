#pragma once

/// \file channel.hpp
/// Unbounded closeable mailbox.  The producer side never blocks; consumers
/// `co_await channel.pop()` and receive `std::nullopt` once the channel is
/// closed and drained.  Server loops (PFS servers, the MPI progress engine)
/// are written as `while (auto item = co_await ch.pop()) { ... }` so the
/// whole simulation reaches quiescence when drivers close their channels.

#include <coroutine>
#include <optional>
#include <utility>

#include "sim/fifo_ring.hpp"
#include "sim/scheduler.hpp"
#include "util/require.hpp"

namespace s3asim::sim {

template <class T>
class Channel {
 public:
  explicit Channel(Scheduler& scheduler) noexcept : scheduler_(&scheduler) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Delivers an item; wakes the longest-waiting consumer if any.
  void push(T item) {
    S3A_REQUIRE_MSG(!closed_, "push to a closed channel");
    if (!poppers_.empty()) {
      PopAwaiter* popper = poppers_.pop_front();
      popper->result.emplace(std::move(item));
      scheduler_->schedule_now(popper->waiter);
    } else {
      items_.push_back(std::move(item));
    }
  }

  /// Closes the channel: queued items still drain, waiting (and future)
  /// consumers get std::nullopt once empty.  Idempotent.
  void close() {
    if (closed_) return;
    closed_ = true;
    for (std::size_t i = 0; i < poppers_.size(); ++i)
      scheduler_->schedule_now(poppers_[i]->waiter);
    poppers_.clear();
  }

  [[nodiscard]] bool closed() const noexcept { return closed_; }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }

  struct PopAwaiter {
    Channel& channel;
    std::optional<T> result{};
    std::coroutine_handle<> waiter{};

    [[nodiscard]] bool await_ready() {
      if (!channel.items_.empty()) {
        result.emplace(channel.items_.pop_front());
        return true;
      }
      return channel.closed_;
    }
    void await_suspend(std::coroutine_handle<> handle) {
      waiter = handle;
      channel.poppers_.push_back(this);
    }
    std::optional<T> await_resume() {
      // A consumer woken by close() may still find late items absent;
      // a consumer woken by push() has its result deposited directly.
      if (!result && !channel.items_.empty())
        result.emplace(channel.items_.pop_front());
      return std::move(result);
    }
  };

  /// Awaitable pop: yields the next item or std::nullopt when closed+empty.
  [[nodiscard]] PopAwaiter pop() noexcept { return PopAwaiter{*this}; }

 private:
  Scheduler* scheduler_;
  FifoRing<T> items_{};
  FifoRing<PopAwaiter*> poppers_{};
  bool closed_ = false;
};

}  // namespace s3asim::sim
