#pragma once

/// \file rng.hpp
/// Deterministic pseudo-random number generation for the simulator.
///
/// S3aSim requires bit-identical workloads regardless of simulated process
/// count, platform, or standard-library version (the paper: "the results are
/// always identical since they are pseudo-randomly generated").  We therefore
/// avoid std::mt19937 + std::*_distribution (whose algorithms are
/// implementation-defined for the real distributions) and ship our own
/// xoshiro256** generator plus the handful of distributions the workload
/// model needs.

#include <array>
#include <cstdint>
#include <limits>

namespace s3asim::util {

/// SplitMix64 — used to expand a single 64-bit seed into generator state.
/// Reference: Sebastiano Vigna, public-domain implementation.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed via SplitMix64.
  explicit constexpr Xoshiro256(std::uint64_t seed = 0x5eedf00ddeadbeefULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] (inclusive), lo <= hi.  Uses Lemire-style
  /// rejection-free scaling acceptable for simulation workloads.
  constexpr std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept {
    const std::uint64_t span = hi - lo;
    if (span == std::numeric_limits<std::uint64_t>::max()) return (*this)();
    // 128-bit multiply-shift maps a 64-bit draw onto [0, span].
    const unsigned __int128 product =
        static_cast<unsigned __int128>((*this)()) *
        static_cast<unsigned __int128>(span + 1);
    return lo + static_cast<std::uint64_t>(product >> 64);
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform_real(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Derives an independent child generator; used to give each (query,
  /// fragment) pair its own stream so results do not depend on scheduling.
  constexpr Xoshiro256 fork(std::uint64_t stream_id) noexcept {
    SplitMix64 sm(state_[0] ^ (stream_id * 0x9e3779b97f4a7c15ULL + 0x1234abcdULL));
    Xoshiro256 child(sm.next());
    return child;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Stable 64-bit hash combiner for deriving per-entity seeds.
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  SplitMix64 sm(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
  return sm.next();
}

}  // namespace s3asim::util
