#pragma once

/// \file json.hpp
/// A minimal JSON writer *and* parser: the writer exports run statistics,
/// traces, and metric manifests for external tooling; the parser reads
/// them back for schema validation (tests, `obs_validate`).  Both are
/// deterministic and locale-independent.

#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace s3asim::util {

/// Streaming JSON writer with explicit structure calls:
///
///   JsonWriter json;
///   json.begin_object();
///   json.key("name"); json.value("WW-List");
///   json.key("procs"); json.value(96);
///   json.key("phases"); json.begin_array();
///   ...
///   json.end_array();
///   json.end_object();
///   std::string text = json.str();
///
/// The writer tracks whether a comma is needed; misuse (value without a
/// key inside an object, unbalanced end calls) throws std::logic_error.
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits an object key; must be inside an object and followed by a value
  /// or container.
  void key(const std::string& name);

  void value(const std::string& text);
  void value(const char* text);
  void value(double number);
  void value(std::int64_t number);
  void value(std::uint64_t number);
  void value(bool boolean);
  void null();

  /// Finished document text.  Throws if containers are unbalanced.
  [[nodiscard]] std::string str() const;

  /// Escapes a string for embedding in JSON (quotes not included).
  [[nodiscard]] static std::string escape(const std::string& text);

 private:
  enum class Frame { Object, Array };
  void before_value();

  std::ostringstream out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;
  bool pending_key_ = false;
};

/// Parsed JSON document node.  Numbers are held as doubles (sufficient for
/// the self-produced documents this parser exists to validate); objects
/// keep their members in sorted key order.
class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::Bool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::Number;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::String;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::Object;
  }

  /// Typed accessors; throw std::runtime_error on a kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Array elements (throws unless is_array()).
  [[nodiscard]] const std::vector<JsonValue>& items() const;
  /// Object members (throws unless is_object()).
  [[nodiscard]] const std::map<std::string, JsonValue>& members() const;

  /// Object member lookup; `at` throws when missing.
  [[nodiscard]] bool contains(const std::string& key) const;
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  /// Array element lookup; throws when out of range.
  [[nodiscard]] const JsonValue& at(std::size_t index) const;
  /// Element/member count; 0 for scalars.
  [[nodiscard]] std::size_t size() const noexcept;

 private:
  friend JsonValue parse_json(std::string_view text);
  friend class JsonParser;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses one complete JSON document (trailing whitespace allowed).  Throws
/// std::runtime_error with a byte offset on malformed input.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace s3asim::util
