#pragma once

/// \file json.hpp
/// A minimal JSON *writer* (no parsing): enough to export run statistics
/// for external tooling.  Produces deterministic, valid JSON with escaped
/// strings and locale-independent numbers.

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace s3asim::util {

/// Streaming JSON writer with explicit structure calls:
///
///   JsonWriter json;
///   json.begin_object();
///   json.key("name"); json.value("WW-List");
///   json.key("procs"); json.value(96);
///   json.key("phases"); json.begin_array();
///   ...
///   json.end_array();
///   json.end_object();
///   std::string text = json.str();
///
/// The writer tracks whether a comma is needed; misuse (value without a
/// key inside an object, unbalanced end calls) throws std::logic_error.
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits an object key; must be inside an object and followed by a value
  /// or container.
  void key(const std::string& name);

  void value(const std::string& text);
  void value(const char* text);
  void value(double number);
  void value(std::int64_t number);
  void value(std::uint64_t number);
  void value(bool boolean);
  void null();

  /// Finished document text.  Throws if containers are unbalanced.
  [[nodiscard]] std::string str() const;

  /// Escapes a string for embedding in JSON (quotes not included).
  [[nodiscard]] static std::string escape(const std::string& text);

 private:
  enum class Frame { Object, Array };
  void before_value();

  std::ostringstream out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;
  bool pending_key_ = false;
};

}  // namespace s3asim::util
