#include "util/log.hpp"

#include <cctype>
#include <iostream>
#include <stdexcept>

namespace s3asim::util {

namespace {
LogLevel g_level = LogLevel::Warn;
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level = level; }
LogLevel log_level() noexcept { return g_level; }

const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

LogLevel parse_log_level(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name)
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (lower == "trace") return LogLevel::Trace;
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn" || lower == "warning") return LogLevel::Warn;
  if (lower == "error") return LogLevel::Error;
  if (lower == "off" || lower == "none") return LogLevel::Off;
  throw std::invalid_argument("unknown log level '" + name + "'");
}

namespace detail {
void emit(LogLevel level, const std::string& message) {
  std::ostream& out = static_cast<int>(level) >= static_cast<int>(LogLevel::Warn)
                          ? std::cerr
                          : std::clog;
  out << "[" << to_string(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace s3asim::util
