#pragma once

/// \file require.hpp
/// Lightweight contract-checking macros used across all s3asim modules.
///
/// S3A_REQUIRE      — precondition check, always on, throws std::invalid_argument.
/// S3A_CHECK        — internal invariant check, always on, throws std::logic_error.
/// S3A_UNREACHABLE  — marks control flow that cannot be reached (e.g. after an
///                    exhaustive switch); throws std::logic_error if it is.
///
/// Following the C++ Core Guidelines (I.6/E.12), violated contracts are
/// reported with the failing expression and source location so that callers
/// (and tests) can assert on them.

#include <stdexcept>
#include <string>

namespace s3asim::util {

[[noreturn]] inline void throw_requirement_failure(const char* expr,
                                                   const char* file, int line,
                                                   const std::string& msg) {
  throw std::invalid_argument(std::string("requirement failed: ") + expr +
                              " at " + file + ":" + std::to_string(line) +
                              (msg.empty() ? "" : (" — " + msg)));
}

[[noreturn]] inline void throw_invariant_failure(const char* expr,
                                                 const char* file, int line,
                                                 const std::string& msg) {
  throw std::logic_error(std::string("invariant failed: ") + expr + " at " +
                         file + ":" + std::to_string(line) +
                         (msg.empty() ? "" : (" — " + msg)));
}

}  // namespace s3asim::util

#define S3A_REQUIRE(expr)                                                     \
  do {                                                                        \
    if (!(expr))                                                              \
      ::s3asim::util::throw_requirement_failure(#expr, __FILE__, __LINE__,    \
                                                "");                          \
  } while (0)

#define S3A_REQUIRE_MSG(expr, msg)                                            \
  do {                                                                        \
    if (!(expr))                                                              \
      ::s3asim::util::throw_requirement_failure(#expr, __FILE__, __LINE__,    \
                                                (msg));                       \
  } while (0)

#define S3A_CHECK(expr)                                                       \
  do {                                                                        \
    if (!(expr))                                                              \
      ::s3asim::util::throw_invariant_failure(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define S3A_CHECK_MSG(expr, msg)                                              \
  do {                                                                        \
    if (!(expr))                                                              \
      ::s3asim::util::throw_invariant_failure(#expr, __FILE__, __LINE__,      \
                                              (msg));                         \
  } while (0)

#define S3A_UNREACHABLE()                                                     \
  ::s3asim::util::throw_invariant_failure("unreachable", __FILE__, __LINE__,  \
                                          "control flow reached a branch "    \
                                          "declared impossible")
