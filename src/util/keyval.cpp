#include "util/keyval.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/require.hpp"
#include "util/units.hpp"

namespace s3asim::util {

namespace {

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return text.substr(begin, end - begin);
}

std::string strip_comment(const std::string& line) {
  for (std::size_t i = 0; i < line.size(); ++i)
    if (line[i] == '#' || line[i] == ';') return line.substr(0, i);
  return line;
}

std::string lower(std::string text) {
  for (char& c : text)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return text;
}

[[noreturn]] void fail(std::size_t line_number, const std::string& message) {
  throw std::invalid_argument("config line " + std::to_string(line_number) +
                              ": " + message);
}

}  // namespace

KeyValConfig KeyValConfig::parse(const std::string& text) {
  KeyValConfig config;
  std::istringstream input(text);
  std::string line;
  std::size_t line_number = 0;
  std::string histogram_section;
  std::vector<HistogramBin> bins;

  auto flush_histogram = [&]() {
    if (histogram_section.empty()) return;
    if (bins.empty())
      throw std::invalid_argument("histogram '" + histogram_section +
                                  "' has no bins");
    config.histograms_.emplace(histogram_section, BoxHistogram(bins));
    histogram_section.clear();
    bins.clear();
  };

  while (std::getline(input, line)) {
    ++line_number;
    const std::string content = trim(strip_comment(line));
    if (content.empty()) continue;

    if (content.front() == '[') {
      if (content.back() != ']') fail(line_number, "unterminated section");
      flush_histogram();
      const std::string section = trim(content.substr(1, content.size() - 2));
      if (section.rfind("histogram", 0) != 0)
        fail(line_number, "unknown section '" + section + "'");
      histogram_section = trim(section.substr(9));
      if (histogram_section.empty())
        fail(line_number, "histogram section needs a name");
      continue;
    }

    if (!histogram_section.empty()) {
      std::istringstream fields(content);
      HistogramBin bin;
      if (!(fields >> bin.lo >> bin.hi >> bin.weight))
        fail(line_number, "expected 'lo hi weight'");
      std::string extra;
      if (fields >> extra) fail(line_number, "trailing data '" + extra + "'");
      bins.push_back(bin);
      continue;
    }

    const std::size_t equals = content.find('=');
    if (equals == std::string::npos)
      fail(line_number, "expected 'key = value'");
    const std::string key = trim(content.substr(0, equals));
    const std::string value = trim(content.substr(equals + 1));
    if (key.empty()) fail(line_number, "empty key");
    if (config.values_.contains(key))
      fail(line_number, "duplicate key '" + key + "'");
    config.values_.emplace(key, value);
  }
  flush_histogram();
  return config;
}

KeyValConfig KeyValConfig::parse_file(const std::string& path) {
  std::ifstream input(path);
  if (!input) throw std::runtime_error("cannot open config file: " + path);
  std::ostringstream buffer;
  buffer << input.rdbuf();
  return parse(buffer.str());
}

const std::string* KeyValConfig::find(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return nullptr;
  touched_[key] = true;
  return &it->second;
}

bool KeyValConfig::has(const std::string& key) const {
  return values_.contains(key);
}

std::string KeyValConfig::get_string(const std::string& key,
                                     const std::string& fallback) const {
  const std::string* value = find(key);
  return value ? *value : fallback;
}

std::int64_t KeyValConfig::get_int(const std::string& key,
                                   std::int64_t fallback) const {
  const std::string* value = find(key);
  if (!value) return fallback;
  try {
    std::size_t consumed = 0;
    const std::int64_t parsed = std::stoll(*value, &consumed);
    if (consumed != value->size()) throw std::invalid_argument("");
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("key '" + key + "': bad integer '" + *value +
                                "'");
  }
}

double KeyValConfig::get_double(const std::string& key, double fallback) const {
  const std::string* value = find(key);
  if (!value) return fallback;
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(*value, &consumed);
    if (consumed != value->size()) throw std::invalid_argument("");
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("key '" + key + "': bad number '" + *value +
                                "'");
  }
}

bool KeyValConfig::get_bool(const std::string& key, bool fallback) const {
  const std::string* value = find(key);
  if (!value) return fallback;
  const std::string norm = lower(*value);
  if (norm == "true" || norm == "yes" || norm == "on" || norm == "1")
    return true;
  if (norm == "false" || norm == "no" || norm == "off" || norm == "0")
    return false;
  throw std::invalid_argument("key '" + key + "': bad boolean '" + *value +
                              "'");
}

std::uint64_t KeyValConfig::get_bytes(const std::string& key,
                                      std::uint64_t fallback) const {
  const std::string* value = find(key);
  if (!value) return fallback;
  try {
    return parse_bytes(*value);
  } catch (const std::exception& error) {
    throw std::invalid_argument("key '" + key + "': " + error.what());
  }
}

std::optional<BoxHistogram> KeyValConfig::get_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  if (it == histograms_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> KeyValConfig::unused_keys() const {
  std::vector<std::string> unused;
  for (const auto& [key, value] : values_)
    if (!touched_.contains(key)) unused.push_back(key);
  return unused;
}

}  // namespace s3asim::util
