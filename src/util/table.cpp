#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/units.hpp"

namespace s3asim::util {

TextTable::TextTable(std::vector<std::string> headers, std::vector<Align> aligns)
    : headers_(std::move(headers)), aligns_(std::move(aligns)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::add_row_numeric(const std::string& label,
                                const std::vector<double>& values,
                                int decimals) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (const double v : values) cells.push_back(format_fixed(v, decimals));
  add_row(std::move(cells));
}

std::string TextTable::render() const {
  std::size_t columns = headers_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());
  std::vector<std::size_t> widths(columns, 0);
  auto measure = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  };
  measure(headers_);
  for (const auto& row : rows_) measure(row);

  auto align_of = [&](std::size_t c) {
    if (c < aligns_.size()) return aligns_[c];
    return c == 0 ? Align::Left : Align::Right;
  };
  auto emit_row = [&](std::ostringstream& out, const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < columns; ++c) {
      const std::string cell = c < row.size() ? row[c] : std::string{};
      const std::size_t pad = widths[c] - cell.size();
      out << (c == 0 ? "| " : " ");
      if (align_of(c) == Align::Right) out << std::string(pad, ' ') << cell;
      else out << cell << std::string(pad, ' ');
      out << " |";
    }
    out << '\n';
  };

  std::ostringstream out;
  std::ostringstream rule;
  for (std::size_t c = 0; c < columns; ++c)
    rule << (c == 0 ? "+" : "") << std::string(widths[c] + 2, '-') << "+";
  rule << '\n';

  out << rule.str();
  if (!headers_.empty()) {
    emit_row(out, headers_);
    out << rule.str();
  }
  for (const auto& row : rows_) emit_row(out, row);
  out << rule.str();
  return out.str();
}

}  // namespace s3asim::util
