#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace s3asim::util {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::span<const double> values, double p) {
  S3A_REQUIRE(p >= 0.0 && p <= 100.0);
  S3A_REQUIRE_MSG(!values.empty(), "percentile of empty sample");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double mean_of(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double coefficient_of_variation(std::span<const double> values) {
  RunningStats stats;
  for (const double v : values) stats.add(v);
  if (stats.count() == 0 || stats.mean() == 0.0) return 0.0;
  return stats.stddev() / stats.mean();
}

}  // namespace s3asim::util
