#pragma once

/// \file histogram.hpp
/// Box histograms — the workload-description primitive of S3aSim.
///
/// The paper (§3) lets the user supply "a box histogram of input query sizes"
/// and "a box histogram of database sequence sizes".  A box histogram is a
/// set of [lo, hi] ranges with relative weights; sampling picks a bin with
/// probability proportional to its weight, then a uniform value inside it.

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace s3asim::util {

/// One bin of a box histogram: the closed integer range [lo, hi] with a
/// non-negative relative weight.
struct HistogramBin {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  double weight = 0.0;

  friend bool operator==(const HistogramBin&, const HistogramBin&) = default;
};

/// A box histogram over unsigned integer values (sequence lengths, byte
/// sizes, ...).  Immutable after construction; cheap to copy.
class BoxHistogram {
 public:
  BoxHistogram() = default;

  /// Builds a histogram from bins.  Requires at least one bin, each with
  /// lo <= hi and weight >= 0, and a positive total weight.
  explicit BoxHistogram(std::vector<HistogramBin> bins);

  BoxHistogram(std::initializer_list<HistogramBin> bins)
      : BoxHistogram(std::vector<HistogramBin>(bins)) {}

  /// Draws one value.  Deterministic given the generator state.
  [[nodiscard]] std::uint64_t sample(Xoshiro256& rng) const;

  /// Expected value assuming uniform density within each bin.
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Smallest representable value (min over bins of lo).
  [[nodiscard]] std::uint64_t min_value() const noexcept { return min_; }
  /// Largest representable value (max over bins of hi).
  [[nodiscard]] std::uint64_t max_value() const noexcept { return max_; }

  [[nodiscard]] std::span<const HistogramBin> bins() const noexcept {
    return bins_;
  }
  [[nodiscard]] bool empty() const noexcept { return bins_.empty(); }

  /// Approximate quantile (by integrating bin densities), q in [0, 1].
  [[nodiscard]] double quantile(double q) const;

  /// Multi-line human-readable rendering used by the examples.
  [[nodiscard]] std::string describe() const;

  friend bool operator==(const BoxHistogram&, const BoxHistogram&) = default;

 private:
  std::vector<HistogramBin> bins_{};
  std::vector<double> cumulative_{};  // cumulative normalized weights
  double total_weight_ = 0.0;
  double mean_ = 0.0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Builds an empirical box histogram from observed values with the given
/// number of (geometrically spaced) bins.  Used by the FASTA tooling to
/// derive a histogram from a real database.
[[nodiscard]] BoxHistogram build_histogram(std::span<const std::uint64_t> values,
                                           unsigned bin_count = 16);

/// The NCBI NT nucleotide database length histogram used throughout the
/// paper's evaluation: min sequence length 6 B, max slightly over 43 MB,
/// mean 4401 B (paper §3.3).  The bin structure is our reconstruction with
/// exactly those statistics.
[[nodiscard]] const BoxHistogram& nt_database_histogram();

/// Per the paper, the 20 input queries were drawn from "the same histogram"
/// as the database (≈ 86 KiB total for 20 queries, i.e. mean ≈ 4.3 KiB).
[[nodiscard]] const BoxHistogram& nt_query_histogram();

}  // namespace s3asim::util
