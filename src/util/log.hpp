#pragma once

/// \file log.hpp
/// Leveled logging with a process-global level.  Default level is Warn so
/// benches and tests stay quiet; examples raise it to Info.

#include <sstream>
#include <string>

namespace s3asim::util {

enum class LogLevel : int { Trace = 0, Debug, Info, Warn, Error, Off };

/// Sets/gets the global log threshold (not thread-safe by design: the
/// simulator is single-threaded; see DESIGN.md §2).
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

[[nodiscard]] const char* to_string(LogLevel level) noexcept;

/// Parses "debug", "INFO", ... (case-insensitive). Throws on unknown names.
[[nodiscard]] LogLevel parse_log_level(const std::string& name);

namespace detail {
void emit(LogLevel level, const std::string& message);
}  // namespace detail

}  // namespace s3asim::util

#define S3A_LOG(level, ...)                                                  \
  do {                                                                       \
    if (static_cast<int>(level) >=                                           \
        static_cast<int>(::s3asim::util::log_level())) {                     \
      std::ostringstream s3a_log_stream__;                                   \
      s3a_log_stream__ << __VA_ARGS__;                                       \
      ::s3asim::util::detail::emit(level, s3a_log_stream__.str());           \
    }                                                                        \
  } while (0)

#define S3A_LOG_DEBUG(...) S3A_LOG(::s3asim::util::LogLevel::Debug, __VA_ARGS__)
#define S3A_LOG_INFO(...) S3A_LOG(::s3asim::util::LogLevel::Info, __VA_ARGS__)
#define S3A_LOG_WARN(...) S3A_LOG(::s3asim::util::LogLevel::Warn, __VA_ARGS__)
#define S3A_LOG_ERROR(...) S3A_LOG(::s3asim::util::LogLevel::Error, __VA_ARGS__)
