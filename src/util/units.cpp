#include "util/units.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace s3asim::util {

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string format_bytes(std::uint64_t bytes) {
  if (bytes >= GiB)
    return format_fixed(static_cast<double>(bytes) / static_cast<double>(GiB)) + " GiB";
  if (bytes >= MiB)
    return format_fixed(static_cast<double>(bytes) / static_cast<double>(MiB)) + " MiB";
  if (bytes >= KiB)
    return format_fixed(static_cast<double>(bytes) / static_cast<double>(KiB)) + " KiB";
  return std::to_string(bytes) + " B";
}

std::uint64_t parse_bytes(std::string_view text) {
  std::size_t pos = 0;
  while (pos < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[pos])) || text[pos] == '.'))
    ++pos;
  if (pos == 0) throw std::invalid_argument("parse_bytes: no leading number");
  const std::string number(text.substr(0, pos));
  double value = 0.0;
  try {
    value = std::stod(number);
  } catch (const std::exception&) {
    throw std::invalid_argument("parse_bytes: bad number '" + number + "'");
  }
  while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos])))
    ++pos;
  std::string unit(text.substr(pos));
  for (char& c : unit) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  double multiplier = 1.0;
  if (unit.empty() || unit == "b") {
    multiplier = 1.0;
  } else if (unit == "kib" || unit == "k") {
    multiplier = static_cast<double>(KiB);
  } else if (unit == "mib" || unit == "m") {
    multiplier = static_cast<double>(MiB);
  } else if (unit == "gib" || unit == "g") {
    multiplier = static_cast<double>(GiB);
  } else if (unit == "kb") {
    multiplier = 1e3;
  } else if (unit == "mb") {
    multiplier = 1e6;
  } else if (unit == "gb") {
    multiplier = 1e9;
  } else {
    throw std::invalid_argument("parse_bytes: unknown unit '" + unit + "'");
  }
  const double total = value * multiplier;
  if (total < 0.0 || std::isnan(total))
    throw std::invalid_argument("parse_bytes: negative or NaN size");
  return static_cast<std::uint64_t>(std::llround(total));
}

std::string format_seconds(double seconds) {
  const double magnitude = std::fabs(seconds);
  if (magnitude >= 1.0) return format_fixed(seconds) + " s";
  if (magnitude >= 1e-3) return format_fixed(seconds * 1e3) + " ms";
  if (magnitude >= 1e-6) return format_fixed(seconds * 1e6) + " us";
  return format_fixed(seconds * 1e9) + " ns";
}

}  // namespace s3asim::util
