#pragma once

/// \file stats.hpp
/// Small online/offline statistics helpers used by the phase-timing report
/// and the benchmark harness (mean / stddev / min / max / percentiles).

#include <cstddef>
#include <span>
#include <vector>

namespace s3asim::util {

/// Welford online accumulator — numerically stable mean/variance.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merges another accumulator (parallel Welford combine).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Linear-interpolated percentile of an unsorted sample, p in [0, 100].
[[nodiscard]] double percentile(std::span<const double> values, double p);

/// Coefficient of variation (stddev / mean); 0 when mean is 0.
[[nodiscard]] double coefficient_of_variation(std::span<const double> values);

/// Arithmetic mean of a sample (0 for empty).
[[nodiscard]] double mean_of(std::span<const double> values);

}  // namespace s3asim::util
