#pragma once

/// \file units.hpp
/// Byte-size and time formatting/parsing helpers shared by the reporting
/// layers (tables, traces, benches).

#include <cstdint>
#include <string>
#include <string_view>

namespace s3asim::util {

inline constexpr std::uint64_t KiB = 1024ULL;
inline constexpr std::uint64_t MiB = 1024ULL * KiB;
inline constexpr std::uint64_t GiB = 1024ULL * MiB;

/// "1.25 MiB", "64 KiB", "17 B".  Two significant decimals.
[[nodiscard]] std::string format_bytes(std::uint64_t bytes);

/// Parses "64KiB", "1.5 MiB", "208MB" (decimal MB = 1e6), plain "4096".
/// Throws std::invalid_argument on malformed input.
[[nodiscard]] std::uint64_t parse_bytes(std::string_view text);

/// "12.34 s", "5.6 ms", "780 us", "3 ns" from a second count.
[[nodiscard]] std::string format_seconds(double seconds);

/// Fixed-width "%.2f" double rendering (locale-independent).
[[nodiscard]] std::string format_fixed(double value, int decimals = 2);

}  // namespace s3asim::util
