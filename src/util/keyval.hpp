#pragma once

/// \file keyval.hpp
/// A small key=value configuration-file format for the CLI driver:
///
///   # comment
///   strategy = WW-List        ; inline comments too
///   nprocs = 64
///   query_sync = true
///   strip_size = 64KiB
///
///   [histogram database]      # section: histogram bins, one per line
///   6 100 0.045
///   101 300 0.110
///
/// Lookups are typed; unknown keys can be enumerated so callers can reject
/// typos.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/histogram.hpp"

namespace s3asim::util {

class KeyValConfig {
 public:
  /// Parses text; throws std::invalid_argument with line info on errors.
  [[nodiscard]] static KeyValConfig parse(const std::string& text);

  /// Reads and parses a file; throws std::runtime_error if unreadable.
  [[nodiscard]] static KeyValConfig parse_file(const std::string& path);

  [[nodiscard]] bool has(const std::string& key) const;

  /// Typed getters: return the parsed value or `fallback`; throw
  /// std::invalid_argument when present but malformed.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;
  /// Accepts unit suffixes via parse_bytes ("64KiB", "1.5 MiB", "4096").
  [[nodiscard]] std::uint64_t get_bytes(const std::string& key,
                                        std::uint64_t fallback) const;

  /// Histogram sections: `[histogram <name>]` followed by `lo hi weight`
  /// lines.
  [[nodiscard]] std::optional<BoxHistogram> get_histogram(
      const std::string& name) const;

  /// Keys that were never queried through any getter — typo detection.
  [[nodiscard]] std::vector<std::string> unused_keys() const;

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }

 private:
  [[nodiscard]] const std::string* find(const std::string& key) const;

  std::map<std::string, std::string> values_;
  std::map<std::string, BoxHistogram> histograms_;
  mutable std::map<std::string, bool> touched_;
};

}  // namespace s3asim::util
