#pragma once

/// \file csv.hpp
/// Minimal CSV writer.  Each bench binary mirrors its printed table into a
/// CSV so the figures can be re-plotted without re-running the simulation.

#include <fstream>
#include <string>
#include <vector>

namespace s3asim::util {

/// RFC-4180-ish CSV writer (quotes cells containing commas/quotes/newlines).
class CsvWriter {
 public:
  /// Opens (truncates) the file; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& cells);
  void write_row_numeric(const std::string& label,
                         const std::vector<double>& values);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  static std::string escape(const std::string& cell);

  std::string path_;
  std::ofstream out_;
};

}  // namespace s3asim::util
