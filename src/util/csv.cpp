#include "util/csv.hpp"

#include <stdexcept>

#include "util/units.hpp"

namespace s3asim::util {

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (const char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  out_.flush();
}

void CsvWriter::write_row_numeric(const std::string& label,
                                  const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (const double v : values) cells.push_back(format_fixed(v, 6));
  write_row(cells);
}

}  // namespace s3asim::util
