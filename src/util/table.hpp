#pragma once

/// \file table.hpp
/// ASCII table rendering for the benchmark harness — every figure/table of
/// the paper is regenerated as one of these plus a CSV file.

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace s3asim::util {

/// Column alignment within a rendered table.
enum class Align { Left, Right };

/// A simple row/column text table.  Rows are added as vectors of cells; the
/// renderer pads every column to its widest cell.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers,
                     std::vector<Align> aligns = {});

  /// Appends a row.  Short rows are padded with empty cells; long rows
  /// extend the column set.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void add_row_numeric(const std::string& label,
                       const std::vector<double>& values, int decimals = 2);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] std::string render() const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& t) {
    return os << t.render();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace s3asim::util
