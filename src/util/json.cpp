#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace s3asim::util {

void JsonWriter::before_value() {
  if (stack_.empty()) {
    if (!out_.str().empty())
      throw std::logic_error("JsonWriter: more than one top-level value");
    return;
  }
  if (stack_.back() == Frame::Object) {
    if (!pending_key_)
      throw std::logic_error("JsonWriter: value inside object needs a key");
    pending_key_ = false;
    return;
  }
  if (has_items_.back()) out_ << ',';
  has_items_.back() = true;
}

void JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  stack_.push_back(Frame::Object);
  has_items_.push_back(false);
}

void JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Frame::Object || pending_key_)
    throw std::logic_error("JsonWriter: unbalanced end_object");
  out_ << '}';
  stack_.pop_back();
  has_items_.pop_back();
}

void JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  stack_.push_back(Frame::Array);
  has_items_.push_back(false);
}

void JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Frame::Array)
    throw std::logic_error("JsonWriter: unbalanced end_array");
  out_ << ']';
  stack_.pop_back();
  has_items_.pop_back();
}

void JsonWriter::key(const std::string& name) {
  if (stack_.empty() || stack_.back() != Frame::Object || pending_key_)
    throw std::logic_error("JsonWriter: key outside object");
  if (has_items_.back()) out_ << ',';
  has_items_.back() = true;
  out_ << '"' << escape(name) << "\":";
  pending_key_ = true;
}

void JsonWriter::value(const std::string& text) {
  before_value();
  out_ << '"' << escape(text) << '"';
}

void JsonWriter::value(const char* text) { value(std::string(text)); }

void JsonWriter::value(double number) {
  before_value();
  if (!std::isfinite(number)) {
    out_ << "null";
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", number);
  out_ << buffer;
}

void JsonWriter::value(std::int64_t number) {
  before_value();
  out_ << number;
}

void JsonWriter::value(std::uint64_t number) {
  before_value();
  out_ << number;
}

void JsonWriter::value(bool boolean) {
  before_value();
  out_ << (boolean ? "true" : "false");
}

void JsonWriter::null() {
  before_value();
  out_ << "null";
}

std::string JsonWriter::str() const {
  if (!stack_.empty())
    throw std::logic_error("JsonWriter: unbalanced containers at str()");
  return out_.str();
}

std::string JsonWriter::escape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': escaped += "\\\""; break;
      case '\\': escaped += "\\\\"; break;
      case '\n': escaped += "\\n"; break;
      case '\r': escaped += "\\r"; break;
      case '\t': escaped += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          escaped += buffer;
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

}  // namespace s3asim::util
