#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace s3asim::util {

void JsonWriter::before_value() {
  if (stack_.empty()) {
    if (!out_.str().empty())
      throw std::logic_error("JsonWriter: more than one top-level value");
    return;
  }
  if (stack_.back() == Frame::Object) {
    if (!pending_key_)
      throw std::logic_error("JsonWriter: value inside object needs a key");
    pending_key_ = false;
    return;
  }
  if (has_items_.back()) out_ << ',';
  has_items_.back() = true;
}

void JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  stack_.push_back(Frame::Object);
  has_items_.push_back(false);
}

void JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Frame::Object || pending_key_)
    throw std::logic_error("JsonWriter: unbalanced end_object");
  out_ << '}';
  stack_.pop_back();
  has_items_.pop_back();
}

void JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  stack_.push_back(Frame::Array);
  has_items_.push_back(false);
}

void JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Frame::Array)
    throw std::logic_error("JsonWriter: unbalanced end_array");
  out_ << ']';
  stack_.pop_back();
  has_items_.pop_back();
}

void JsonWriter::key(const std::string& name) {
  if (stack_.empty() || stack_.back() != Frame::Object || pending_key_)
    throw std::logic_error("JsonWriter: key outside object");
  if (has_items_.back()) out_ << ',';
  has_items_.back() = true;
  out_ << '"' << escape(name) << "\":";
  pending_key_ = true;
}

void JsonWriter::value(const std::string& text) {
  before_value();
  out_ << '"' << escape(text) << '"';
}

void JsonWriter::value(const char* text) { value(std::string(text)); }

void JsonWriter::value(double number) {
  before_value();
  if (!std::isfinite(number)) {
    out_ << "null";
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", number);
  out_ << buffer;
}

void JsonWriter::value(std::int64_t number) {
  before_value();
  out_ << number;
}

void JsonWriter::value(std::uint64_t number) {
  before_value();
  out_ << number;
}

void JsonWriter::value(bool boolean) {
  before_value();
  out_ << (boolean ? "true" : "false");
}

void JsonWriter::null() {
  before_value();
  out_ << "null";
}

std::string JsonWriter::str() const {
  if (!stack_.empty())
    throw std::logic_error("JsonWriter: unbalanced containers at str()");
  return out_.str();
}

// --------------------------------------------------------------------------
// Parser
// --------------------------------------------------------------------------

namespace {

[[noreturn]] void parse_fail(std::size_t at, const std::string& what) {
  throw std::runtime_error("json parse error at byte " + std::to_string(at) +
                           ": " + what);
}

}  // namespace

/// Recursive-descent parser over a string_view; depth-limited so malformed
/// deeply-nested input cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) parse_fail(pos_, "trailing content");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 128;

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  [[nodiscard]] char peek() {
    if (pos_ >= text_.size()) parse_fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c)
      parse_fail(pos_, std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) parse_fail(pos_, "nesting too deep");
    skip_whitespace();
    const char c = peek();
    JsonValue value;
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        value.kind_ = JsonValue::Kind::String;
        value.string_ = parse_string();
        return value;
      case 't':
        if (!consume_literal("true")) parse_fail(pos_, "invalid literal");
        value.kind_ = JsonValue::Kind::Bool;
        value.bool_ = true;
        return value;
      case 'f':
        if (!consume_literal("false")) parse_fail(pos_, "invalid literal");
        value.kind_ = JsonValue::Kind::Bool;
        value.bool_ = false;
        return value;
      case 'n':
        if (!consume_literal("null")) parse_fail(pos_, "invalid literal");
        value.kind_ = JsonValue::Kind::Null;
        return value;
      default:
        return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    JsonValue value;
    value.kind_ = JsonValue::Kind::Object;
    expect('{');
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    for (;;) {
      skip_whitespace();
      const std::size_t key_at = pos_;
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      if (!value.object_.emplace(std::move(key), parse_value(depth + 1))
               .second)
        parse_fail(key_at, "duplicate object key");
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return value;
    }
  }

  JsonValue parse_array(int depth) {
    JsonValue value;
    value.kind_ = JsonValue::Kind::Array;
    expect('[');
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    for (;;) {
      value.array_.push_back(parse_value(depth + 1));
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return value;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) parse_fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        parse_fail(pos_ - 1, "raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) parse_fail(pos_, "unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // Surrogate pair.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
              parse_fail(pos_, "unpaired surrogate");
            pos_ += 2;
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF)
              parse_fail(pos_, "invalid low surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          }
          append_utf8(out, code);
          break;
        }
        default:
          parse_fail(pos_ - 1, "invalid escape character");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) parse_fail(pos_, "truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else parse_fail(pos_ - 1, "invalid hex digit");
    }
    return code;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) parse_fail(start, "expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    // JSON forbids leading zeros ("01") and a bare minus sign.
    const std::size_t digits = token[0] == '-' ? 1 : 0;
    if (token.size() == digits) parse_fail(start, "malformed number");
    if (token[digits] == '0' && token.size() > digits + 1 &&
        token[digits + 1] >= '0' && token[digits + 1] <= '9')
      parse_fail(start, "leading zero in number");
    char* end = nullptr;
    const double number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size())
      parse_fail(start, "malformed number");
    JsonValue value;
    value.kind_ = JsonValue::Kind::Number;
    value.number_ = number;
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool JsonValue::as_bool() const {
  if (kind_ != Kind::Bool) throw std::runtime_error("json: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::Number) throw std::runtime_error("json: not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::String) throw std::runtime_error("json: not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::Array) throw std::runtime_error("json: not an array");
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::members() const {
  if (kind_ != Kind::Object) throw std::runtime_error("json: not an object");
  return object_;
}

bool JsonValue::contains(const std::string& key) const {
  return kind_ == Kind::Object && object_.contains(key);
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const auto it = members().find(key);
  if (it == object_.end())
    throw std::runtime_error("json: missing key \"" + key + "\"");
  return it->second;
}

const JsonValue& JsonValue::at(std::size_t index) const {
  const auto& elements = items();
  if (index >= elements.size())
    throw std::runtime_error("json: array index out of range");
  return elements[index];
}

std::size_t JsonValue::size() const noexcept {
  if (kind_ == Kind::Array) return array_.size();
  if (kind_ == Kind::Object) return object_.size();
  return 0;
}

JsonValue parse_json(std::string_view text) {
  return JsonParser(text).parse_document();
}

std::string JsonWriter::escape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': escaped += "\\\""; break;
      case '\\': escaped += "\\\\"; break;
      case '\n': escaped += "\\n"; break;
      case '\r': escaped += "\\r"; break;
      case '\t': escaped += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          escaped += buffer;
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

}  // namespace s3asim::util
