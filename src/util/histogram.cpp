#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/require.hpp"
#include "util/units.hpp"

namespace s3asim::util {

BoxHistogram::BoxHistogram(std::vector<HistogramBin> bins)
    : bins_(std::move(bins)) {
  S3A_REQUIRE_MSG(!bins_.empty(), "box histogram needs at least one bin");
  min_ = bins_.front().lo;
  max_ = bins_.front().hi;
  double weighted_value_sum = 0.0;
  cumulative_.reserve(bins_.size());
  for (const auto& bin : bins_) {
    S3A_REQUIRE_MSG(bin.lo <= bin.hi, "histogram bin with lo > hi");
    S3A_REQUIRE_MSG(bin.weight >= 0.0, "histogram bin with negative weight");
    total_weight_ += bin.weight;
    cumulative_.push_back(total_weight_);
    const double mid =
        (static_cast<double>(bin.lo) + static_cast<double>(bin.hi)) / 2.0;
    weighted_value_sum += mid * bin.weight;
    min_ = std::min(min_, bin.lo);
    max_ = std::max(max_, bin.hi);
  }
  S3A_REQUIRE_MSG(total_weight_ > 0.0, "histogram total weight must be > 0");
  mean_ = weighted_value_sum / total_weight_;
}

std::uint64_t BoxHistogram::sample(Xoshiro256& rng) const {
  S3A_REQUIRE_MSG(!bins_.empty(), "sampling an empty histogram");
  const double draw = rng.uniform() * total_weight_;
  const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), draw);
  const auto idx = static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cumulative_.begin(),
                               static_cast<std::ptrdiff_t>(bins_.size()) - 1));
  const auto& bin = bins_[idx];
  return rng.uniform_u64(bin.lo, bin.hi);
}

double BoxHistogram::quantile(double q) const {
  S3A_REQUIRE(q >= 0.0 && q <= 1.0);
  const double target = q * total_weight_;
  double before = 0.0;
  for (const auto& bin : bins_) {
    if (before + bin.weight >= target || &bin == &bins_.back()) {
      const double frac =
          bin.weight > 0.0 ? (target - before) / bin.weight : 0.0;
      const double clamped = std::clamp(frac, 0.0, 1.0);
      return static_cast<double>(bin.lo) +
             clamped * (static_cast<double>(bin.hi) - static_cast<double>(bin.lo));
    }
    before += bin.weight;
  }
  return static_cast<double>(max_);
}

std::string BoxHistogram::describe() const {
  std::ostringstream out;
  out << "box histogram: " << bins_.size() << " bins, range ["
      << format_bytes(min_) << ", " << format_bytes(max_)
      << "], mean " << format_bytes(static_cast<std::uint64_t>(mean_)) << "\n";
  for (const auto& bin : bins_) {
    out << "  [" << bin.lo << ", " << bin.hi << "]  weight "
        << bin.weight / total_weight_ << "\n";
  }
  return out.str();
}

BoxHistogram build_histogram(std::span<const std::uint64_t> values,
                             unsigned bin_count) {
  S3A_REQUIRE_MSG(!values.empty(), "cannot build a histogram from no values");
  S3A_REQUIRE(bin_count >= 1);
  const auto [min_it, max_it] = std::minmax_element(values.begin(), values.end());
  const std::uint64_t lo = *min_it;
  const std::uint64_t hi = *max_it;
  if (lo == hi) {
    return BoxHistogram{{HistogramBin{lo, hi, 1.0}}};
  }
  // Geometric bin edges suit the heavy-tailed length distributions of
  // sequence databases far better than linear ones.
  const double log_lo = std::log(static_cast<double>(std::max<std::uint64_t>(lo, 1)));
  const double log_hi = std::log(static_cast<double>(hi) + 1.0);
  std::vector<HistogramBin> bins;
  bins.reserve(bin_count);
  std::uint64_t edge = lo;
  for (unsigned i = 0; i < bin_count; ++i) {
    const double t = static_cast<double>(i + 1) / static_cast<double>(bin_count);
    auto next = static_cast<std::uint64_t>(
        std::llround(std::exp(log_lo + t * (log_hi - log_lo))));
    next = std::max(next, edge + 1);
    const std::uint64_t bin_hi = (i + 1 == bin_count) ? hi : next - 1;
    bins.push_back(HistogramBin{edge, std::max(bin_hi, edge), 0.0});
    edge = std::max(bin_hi, edge) + 1;
    if (edge > hi) break;
  }
  for (const std::uint64_t v : values) {
    const auto it = std::partition_point(
        bins.begin(), bins.end(),
        [v](const HistogramBin& b) { return b.hi < v; });
    if (it != bins.end()) it->weight += 1.0;
  }
  std::erase_if(bins, [](const HistogramBin& b) { return b.weight == 0.0; });
  return BoxHistogram{std::move(bins)};
}

const BoxHistogram& nt_database_histogram() {
  // Reconstruction of the NCBI NT length distribution with the paper's
  // stated statistics: min 6 B, max slightly over 43 MB, mean ≈ 4401 B.
  static const BoxHistogram hist{{
      {6, 100, 0.045},
      {101, 300, 0.110},
      {301, 800, 0.230},
      {801, 1'500, 0.250},
      {1'501, 3'000, 0.200},
      {3'001, 8'000, 0.100},
      {8'001, 20'000, 0.040},
      {20'001, 60'000, 0.015},
      {60'001, 200'000, 0.004},
      {200'001, 1'000'000, 0.0018},
      // NT's multi-megabyte tail exists (max slightly over 43 MB) but such
      // sequences are a vanishing fraction of the ~3M entries; with ~30k
      // samples per run the expected count here is ~0.03, matching a real
      // draw where a 43 MB subject almost never appears.
      {1'000'001, 43'131'105, 0.000001},
  }};
  return hist;
}

const BoxHistogram& nt_query_histogram() {
  // "We used the same histogram to represent our input query set of 20
  // queries (roughly maps to approximately 86 KBytes of input queries)" —
  // i.e. a mean query length in the 4 KiB range; the extreme multi-MB tail
  // cannot appear in an 86 KiB / 20-query set, so it is truncated here.
  static const BoxHistogram hist{{
      {6, 100, 0.030},
      {101, 300, 0.080},
      {301, 800, 0.200},
      {801, 1'500, 0.220},
      {1'501, 3'000, 0.200},
      {3'001, 8'000, 0.150},
      {8'001, 20'000, 0.090},
      {20'001, 43'000, 0.040},
  }};
  return hist;
}

}  // namespace s3asim::util
