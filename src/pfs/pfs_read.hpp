#pragma once

/// \file pfs_read.hpp
/// Read-path and data-sieving member definitions of `pfs::Pfs`, split out
/// of pfs.hpp (which #includes this at the bottom — never include this
/// file directly).  Three client read shapes mirror the write side:
///
///  * `read_list` — native list I/O: one request per touched server with
///    that server's whole OL list (PVFS2's native noncontiguous support);
///  * `read_sieved` / `write_sieved` — ROMIO data sieving (sieve.hpp):
///    contiguous buffer-sized windows, hole amplification on reads,
///    read-modify-write hole protection on writes;
///  * the cache path `cache_read_list` — byte-range read leases acquired
///    symmetrically with the write path's `absorb_batch`, block-granular
///    hit/miss accounting, and a parallel fetch of only the missing
///    pieces.
///
/// With the cache enabled, sieved reads and writes defer to the cache
/// path: the client cache already coalesces at block granularity and keeps
/// granules resident, so stacking a sieve buffer under it would re-read
/// bytes the cache is about to keep (docs/IO_MODEL.md §5).
///
/// The cache-layer glue (lease spans, grants, revocations, writebacks)
/// lives here too, shared by the read and write dispatchers.

#ifndef S3ASIM_PFS_PFS_HPP_INCLUDED
#error "include pfs/pfs.hpp instead of pfs/pfs_read.hpp"
#endif

namespace s3asim::pfs {

inline sim::Task<void> Pfs::read_list(FileHandle file, net::EndpointId client,
                                      std::span<const Extent> extents) {
  if (cache_enabled()) return cache_read_list(file, client, extents);
  return direct_read_list(file, client, extents);
}

inline sim::Task<void> Pfs::direct_read_list(FileHandle file,
                                             net::EndpointId client,
                                             std::span<const Extent> extents) {
  FileState& state = file_state(file);
  for (const Extent& extent : extents) state.bytes_read += extent.length;
  co_await read_fanout(client, extents);
}

inline sim::Task<void> Pfs::read_fanout(net::EndpointId client,
                                        std::span<const Extent> extents) {
  ScratchLease scratch = acquire_scratch();
  params_.layout.group_by_server(extents, *scratch);
  sim::WaitGroup pending(*scheduler_);
  for (std::uint32_t s = 0; s < scratch->per_server.size(); ++s) {
    if (scratch->per_server[s].empty()) continue;
    pending.add();
    scheduler_->spawn(issue_read(s, client, scratch->per_server[s], pending));
  }
  co_await pending.wait();
}

inline sim::Task<void> Pfs::write_fanout(net::EndpointId client,
                                         std::span<const Extent> extents) {
  ScratchLease scratch = acquire_scratch();
  params_.layout.group_by_server(extents, *scratch);
  sim::WaitGroup pending(*scheduler_);
  for (std::uint32_t s = 0; s < scratch->per_server.size(); ++s) {
    if (scratch->per_server[s].empty()) continue;
    pending.add();
    scheduler_->spawn(issue_write(s, client, scratch->per_server[s], pending));
  }
  co_await pending.wait();
}

inline sim::Task<void> Pfs::read_sieved(FileHandle file, net::EndpointId client,
                                        std::span<const Extent> extents,
                                        std::uint64_t buffer_bytes) {
  if (cache_enabled()) {
    co_await cache_read_list(file, client, extents);
    co_return;
  }
  FileState& state = file_state(file);
  const SievePlan plan = plan_sieve(extents, buffer_bytes);
  state.bytes_read += plan.useful_bytes;
  sieve_.reads += plan.windows.size();
  sieve_.read_useful_bytes += plan.useful_bytes;
  sieve_.read_transferred_bytes += plan.transferred_bytes;
  // Windows run sequentially — there is one sieve buffer, reused — while
  // each window's per-server transfers proceed in parallel.
  for (const SieveWindow& window : plan.windows) {
    const Extent span{window.offset, window.length};
    co_await read_fanout(client, std::span<const Extent>(&span, 1));
  }
}

inline sim::Task<void> Pfs::write_sieved(FileHandle file,
                                         net::EndpointId client,
                                         std::span<const Extent> extents,
                                         std::uint64_t buffer_bytes,
                                         std::uint32_t writer,
                                         std::uint64_t query) {
  if (cache_enabled()) {
    // Write-back caching subsumes write-side sieving: absorption already
    // coalesces, with no amplification and no RMW.  Lease semantics stay
    // identical to the list path.
    co_await cache_write_list(file, client, extents, writer, query);
    co_return;
  }
  FileState& state = file_state(file);
  const SievePlan plan = plan_sieve(extents, buffer_bytes);
  sieve_.writes += plan.windows.size();
  sieve_.write_useful_bytes += plan.useful_bytes;
  sieve_.write_transferred_bytes += plan.transferred_bytes;
  for (const SieveWindow& window : plan.windows) {
    const Extent span{window.offset, window.length};
    if (window.holes != 0) {
      // Read-modify-write: fetch the window so its holes are written back
      // with their current contents.  PVFS2 offers no locking, so this
      // pre-read is the only protection the gaps get — see DESIGN.md §11
      // for the concurrency caveat this inherits from real ROMIO.
      ++sieve_.rmw_reads;
      sieve_.holes_protected += window.holes;
      co_await read_fanout(client, std::span<const Extent>(&span, 1));
    }
    co_await write_fanout(client, std::span<const Extent>(&span, 1));
  }
  // Only the caller's extents land in the image: the hole bytes rewrote
  // whatever the pre-read saw, leaving other writers' data attributed to
  // them.
  for (const Extent& extent : extents)
    state.image.record_write(extent.offset, extent.length, writer, query);
}

inline sim::Task<void> Pfs::cache_read(FileHandle file, net::EndpointId client,
                                       std::uint64_t offset,
                                       std::uint64_t length) {
  const Extent one{offset, length};
  co_await cache_read_list(file, client, std::span<const Extent>(&one, 1));
}

inline std::vector<Pfs::LeaseSpan> Pfs::read_lease_spans(
    FileHandle file, net::EndpointId client,
    std::span<const Extent> extents) const {
  std::vector<LeaseSpan> needed;
  const std::uint64_t granule = params_.cache.token_bytes;
  const auto holder = static_cast<std::uint32_t>(client);
  for (const Extent& extent : extents) {
    if (extent.length == 0) continue;
    const std::uint64_t first = extent.offset / granule * granule;
    const std::uint64_t last =
        (extent.offset + extent.length + granule - 1) / granule * granule;
    for (std::uint64_t begin = first; begin < last; begin += granule)
      if (!tokens_->covered(file, holder, TokenMode::Read, begin,
                            begin + granule))
        needed.emplace_back(begin, begin + granule);
  }
  std::sort(needed.begin(), needed.end());
  std::vector<LeaseSpan> merged;
  for (const LeaseSpan& span : needed) {
    if (!merged.empty() && span.first <= merged.back().second)
      merged.back().second = std::max(merged.back().second, span.second);
    else
      merged.push_back(span);
  }
  return merged;
}

inline sim::Task<void> Pfs::cache_read_list(FileHandle file,
                                            net::EndpointId client,
                                            std::span<const Extent> extents) {
  FileState& state = file_state(file);
  for (const Extent& extent : extents) state.bytes_read += extent.length;
  // Read-lease acquisition, symmetric with absorb_batch: double-checked
  // under the serialized token service so a competing writer cannot revoke
  // between our grant and our probe.
  std::vector<LeaseSpan> needed = read_lease_spans(file, client, extents);
  std::optional<sim::ResourceHold> hold;
  if (!needed.empty()) {
    co_await token_service_->acquire();
    hold.emplace(*token_service_);
    needed = read_lease_spans(file, client, extents);
    if (!needed.empty())
      co_await grant_spans(file, client, TokenMode::Read, needed);
  }
  std::vector<Extent> missing;
  ClientCache& cache = client_cache(client);
  for (const Extent& extent : extents)
    cache.absorb_read(file, extent, missing);
  hold.reset();
  if (!missing.empty())
    co_await read_fanout(
        client, std::span<const Extent>(missing.data(), missing.size()));
  co_await drain_evictions(client);
}

inline std::vector<Pfs::LeaseSpan> Pfs::uncovered_spans(
    FileHandle file, net::EndpointId client, TokenMode mode,
    std::span<const Extent> extents) const {
  std::vector<LeaseSpan> needed;
  const std::uint64_t granule = params_.cache.token_bytes;
  const auto holder = static_cast<std::uint32_t>(client);
  for (const Extent& extent : extents) {
    if (extent.length == 0) continue;
    const std::uint64_t begin = extent.offset / granule * granule;
    const std::uint64_t end =
        (extent.offset + extent.length + granule - 1) / granule * granule;
    if (!tokens_->covered(file, holder, mode, begin, end))
      needed.emplace_back(begin, end);
  }
  std::sort(needed.begin(), needed.end());
  std::vector<LeaseSpan> merged;
  for (const LeaseSpan& span : needed) {
    if (!merged.empty() && span.first <= merged.back().second)
      merged.back().second = std::max(merged.back().second, span.second);
    else
      merged.push_back(span);
  }
  return merged;
}

inline sim::Task<void> Pfs::grant_spans(FileHandle file, net::EndpointId client,
                                        TokenMode mode,
                                        const std::vector<LeaseSpan>& spans) {
  co_await network_->transfer(
      client, server_endpoint_base_,
      params_.request_header_bytes + params_.pair_header_bytes * spans.size());
  account_metadata_op();
  co_await scheduler_->delay(params_.metadata_op);
  const auto holder = static_cast<std::uint32_t>(client);
  for (const LeaseSpan& span : spans)
    for (const TokenManager::Revocation& revocation :
         tokens_->acquire(file, holder, mode, span.first, span.second))
      co_await revoke_one(file, revocation);
  co_await network_->transfer(server_endpoint_base_, client, params_.ack_bytes);
}

inline sim::Task<void> Pfs::absorb_batch(FileHandle file,
                                         net::EndpointId client,
                                         std::span<const Extent> extents,
                                         std::uint32_t writer,
                                         std::uint64_t query) {
  std::vector<LeaseSpan> needed =
      uncovered_spans(file, client, TokenMode::Write, extents);
  std::optional<sim::ResourceHold> hold;
  if (!needed.empty()) {
    co_await token_service_->acquire();
    hold.emplace(*token_service_);
    needed = uncovered_spans(file, client, TokenMode::Write, extents);
    if (!needed.empty())
      co_await grant_spans(file, client, TokenMode::Write, needed);
  }
  FileState& state = file_state(file);
  ClientCache& cache = client_cache(client);
  for (const Extent& extent : extents) {
    cache.absorb_write(file, extent);
    state.image.record_write(extent.offset, extent.length, writer, query);
  }
}

inline sim::Task<void> Pfs::revoke_one(
    FileHandle file, const TokenManager::Revocation& revocation) {
  const auto victim = static_cast<net::EndpointId>(revocation.client);
  co_await network_->transfer(server_endpoint_base_, victim,
                              params_.request_header_bytes);
  WritebackRun run;
  client_cache(victim).invalidate(file, revocation.begin, revocation.end, run);
  if (!run.extents.empty()) co_await writeback_run(victim, run);
  co_await network_->transfer(victim, server_endpoint_base_,
                              params_.ack_bytes);
}

inline sim::Task<void> Pfs::writeback_run(net::EndpointId client,
                                          const WritebackRun& run) {
  ScratchLease scratch = acquire_scratch();
  params_.layout.group_by_server(
      std::span<const Extent>(run.extents.data(), run.extents.size()),
      *scratch);
  sim::WaitGroup pending(*scheduler_);
  for (std::uint32_t s = 0; s < scratch->per_server.size(); ++s) {
    if (scratch->per_server[s].empty()) continue;
    pending.add();
    scheduler_->spawn(issue_write(s, client, scratch->per_server[s], pending));
  }
  co_await pending.wait();
}

inline sim::Task<void> Pfs::drain_evictions(net::EndpointId client) {
  ClientCache& cache = client_cache(client);
  while (cache.needs_eviction()) {
    WritebackRun run;
    cache.evict_one(run);
    if (!run.extents.empty()) co_await writeback_run(client, run);
  }
}

}  // namespace s3asim::pfs
