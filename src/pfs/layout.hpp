#pragma once

/// \file layout.hpp
/// PVFS2-style round-robin striping.
///
/// A file is split into fixed-size strips distributed round-robin over N
/// I/O servers (the paper: 16 servers, 64 KiB strips ⇒ a 1 MiB stripe).
/// Each server stores its strips back-to-back in a local byte stream, so a
/// contiguous file extent maps to at most one contiguous region per server —
/// which is why contiguous I/O is so much cheaper than noncontiguous I/O.

#include <cstdint>
#include <span>
#include <vector>

#include "util/require.hpp"
#include "util/units.hpp"

namespace s3asim::pfs {

/// A contiguous byte range in the logical file.
struct Extent {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;

  [[nodiscard]] std::uint64_t end() const noexcept { return offset + length; }
  friend bool operator==(const Extent&, const Extent&) = default;
};

/// A contiguous byte range in one server's local byte stream.
struct ServerPiece {
  std::uint32_t server = 0;
  std::uint64_t server_offset = 0;
  std::uint64_t length = 0;

  friend bool operator==(const ServerPiece&, const ServerPiece&) = default;
};

/// Caller-owned scratch for `Layout::group_by_server`: the per-server OL
/// lists keep their capacity across calls, so a client that decomposes
/// thousands of extents (WW-POSIX: one call per extent per query) allocates
/// only on its very first use.  `Pfs` pools these per in-flight operation.
struct GroupScratch {
  std::vector<std::vector<ServerPiece>> per_server;
};

class Layout {
 public:
  Layout(std::uint64_t strip_size, std::uint32_t server_count)
      : strip_size_(strip_size), server_count_(server_count) {
    S3A_REQUIRE(strip_size >= 1);
    S3A_REQUIRE(server_count >= 1);
  }

  /// Paper defaults: 64 KiB strips, 16 servers (1 MiB full stripe).
  [[nodiscard]] static Layout paper_default() {
    return Layout(64 * util::KiB, 16);
  }

  [[nodiscard]] std::uint64_t strip_size() const noexcept { return strip_size_; }
  [[nodiscard]] std::uint32_t server_count() const noexcept { return server_count_; }
  [[nodiscard]] std::uint64_t stripe_size() const noexcept {
    return strip_size_ * server_count_;
  }

  /// The server holding the byte at `file_offset`.
  [[nodiscard]] std::uint32_t server_of(std::uint64_t file_offset) const noexcept {
    return static_cast<std::uint32_t>((file_offset / strip_size_) % server_count_);
  }

  /// The server-local offset of the byte at `file_offset`.
  [[nodiscard]] std::uint64_t server_offset_of(std::uint64_t file_offset) const noexcept {
    const std::uint64_t stripe = file_offset / stripe_size();
    return stripe * strip_size_ + file_offset % strip_size_;
  }

  /// Decomposes a file extent into per-server pieces, in file-offset order.
  /// Adjacent strips on the same server are coalesced (they are contiguous
  /// in the server's local stream when they belong to consecutive stripes).
  [[nodiscard]] std::vector<ServerPiece> map_extent(const Extent& extent) const {
    std::vector<ServerPiece> pieces;
    if (extent.length == 0) return pieces;
    std::uint64_t offset = extent.offset;
    std::uint64_t remaining = extent.length;
    while (remaining > 0) {
      const std::uint64_t in_strip = offset % strip_size_;
      const std::uint64_t chunk = std::min(remaining, strip_size_ - in_strip);
      const std::uint32_t server = server_of(offset);
      const std::uint64_t server_off = server_offset_of(offset);
      if (!pieces.empty() && pieces.back().server == server &&
          pieces.back().server_offset + pieces.back().length == server_off) {
        pieces.back().length += chunk;
      } else {
        pieces.push_back(ServerPiece{server, server_off, chunk});
      }
      offset += chunk;
      remaining -= chunk;
    }
    return pieces;
  }

  /// Maps many extents and groups the pieces per server into caller-owned
  /// scratch, coalescing adjacent server-local ranges.
  /// `scratch.per_server[s]` is the OL (offset-length) list that a list-I/O
  /// request would carry to server `s`.  Allocation-free once the scratch's
  /// lists have grown to the working set: the strip walk appends directly to
  /// the per-server lists instead of materialising intermediate piece
  /// vectors.
  void group_by_server(std::span<const Extent> extents,
                       GroupScratch& scratch) const {
    scratch.per_server.resize(server_count_);
    for (auto& list : scratch.per_server) list.clear();
    for (const Extent& extent : extents) {
      std::uint64_t offset = extent.offset;
      std::uint64_t remaining = extent.length;
      while (remaining > 0) {
        const std::uint64_t in_strip = offset % strip_size_;
        const std::uint64_t chunk = std::min(remaining, strip_size_ - in_strip);
        const std::uint32_t server = server_of(offset);
        const std::uint64_t server_off = server_offset_of(offset);
        auto& list = scratch.per_server[server];
        if (!list.empty() &&
            list.back().server_offset + list.back().length == server_off) {
          list.back().length += chunk;
        } else {
          list.push_back(ServerPiece{server, server_off, chunk});
        }
        offset += chunk;
        remaining -= chunk;
      }
    }
  }

  /// Convenience form returning fresh vectors (tests, cold paths).
  [[nodiscard]] std::vector<std::vector<ServerPiece>> group_by_server(
      const std::vector<Extent>& extents) const {
    GroupScratch scratch;
    group_by_server(std::span<const Extent>(extents), scratch);
    return std::move(scratch.per_server);
  }

 private:
  std::uint64_t strip_size_;
  std::uint32_t server_count_;
};

}  // namespace s3asim::pfs
