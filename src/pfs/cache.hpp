#pragma once

/// \file cache.hpp
/// Client-side PFS caching with byte-range lease tokens (ISSUE 8), pure
/// logic only — no scheduler, no network.  Two pieces:
///
///  * `TokenManager` — the lease table the metadata server (server 0)
///    consults: byte-range read/write leases per (file, client) with
///    overlap detection, range subtraction and per-victim revocation lists.
///    Modeled after the `FileToken` design of distributed file servers
///    that serialize conflicting byte ranges through a metadata authority.
///  * `ClientCache` — one per client endpoint: a write-back block cache
///    (configurable capacity, block granularity, LRU eviction) that absorbs
///    write extents, coalesces them into contiguous runs, and surrenders
///    dirty data on eviction, sync, token revocation and close.
///
/// The simulation glue (round-trip costs, server requests) lives in
/// `Pfs` (pfs.hpp); everything here is deterministic data-structure work,
/// unit-tested against brute-force per-byte references.

#include <algorithm>
#include <cstdint>
#include <list>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "pfs/layout.hpp"
#include "util/require.hpp"
#include "util/units.hpp"

namespace s3asim::pfs {

/// File handles are dense indices handed out by `Pfs::create_file`.
using FileHandle = std::uint32_t;

/// Knobs of the client-side cache layer.  Disabled by default
/// (`capacity_bytes == 0`): every client path ships extents straight to the
/// servers, byte-identical to pre-cache builds.
struct CacheParams {
  /// Per-client cache capacity; 0 disables the whole layer.
  std::uint64_t capacity_bytes = 0;
  /// Cache block (page) size.  Must divide the layout strip size so a
  /// block never straddles servers.
  std::uint64_t block_bytes = 64 * util::KiB;
  /// Lease granularity: grants round out to multiples of this.  Must be a
  /// positive multiple of `block_bytes` (a lease boundary never splits a
  /// cache block).
  std::uint64_t token_bytes = util::MiB;

  [[nodiscard]] bool enabled() const noexcept { return capacity_bytes > 0; }
  [[nodiscard]] std::uint64_t capacity_blocks() const noexcept {
    return block_bytes == 0 ? 0 : capacity_bytes / block_bytes;
  }
};

/// Cache/token activity counters, aggregated `ServerStats`-style: one per
/// `ClientCache` plus the token counters, summed by `Pfs::cache_stats()`
/// and published as `pfs.cache.*` (docs/OBSERVABILITY.md).
struct CacheStats {
  std::uint64_t read_hits = 0;      ///< blocks served entirely from cache
  std::uint64_t read_misses = 0;    ///< blocks (partially) fetched
  std::uint64_t write_hits = 0;     ///< absorbed into an already-cached block
  std::uint64_t write_misses = 0;   ///< absorbed into a freshly-added block
  std::uint64_t evictions = 0;      ///< blocks dropped by LRU pressure
  std::uint64_t writebacks = 0;  ///< dirty runs written back (evict/sync)
  std::uint64_t writeback_bytes = 0;  ///< total bytes written back
  std::uint64_t invalidations = 0;  ///< blocks dropped by lease revocation
  std::uint64_t close_writebacks = 0;  ///< dirty blocks flushed at close
  std::uint64_t token_grants = 0;       ///< lease-acquisition round trips
  std::uint64_t token_revocations = 0;  ///< per-victim revocation round trips
  std::uint64_t token_conflicts = 0;    ///< conflicting leases encountered

  /// Field-wise accumulation — a counter added here is automatically part
  /// of the aggregate.
  CacheStats& operator+=(const CacheStats& other) noexcept {
    read_hits += other.read_hits;
    read_misses += other.read_misses;
    write_hits += other.write_hits;
    write_misses += other.write_misses;
    evictions += other.evictions;
    writebacks += other.writebacks;
    writeback_bytes += other.writeback_bytes;
    invalidations += other.invalidations;
    close_writebacks += other.close_writebacks;
    token_grants += other.token_grants;
    token_revocations += other.token_revocations;
    token_conflicts += other.token_conflicts;
    return *this;
  }
};

enum class TokenMode : std::uint8_t { Read, Write };

/// One byte-range lease: `client` holds [begin, end) in `mode`.  Write
/// leases are exclusive; read leases may overlap across clients.
struct FileToken {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  TokenMode mode = TokenMode::Read;
  std::uint32_t client = 0;

  [[nodiscard]] bool overlaps(std::uint64_t other_begin,
                              std::uint64_t other_end) const noexcept {
    return begin < other_end && other_begin < end;
  }
};

namespace cache_detail {

/// Inserts [begin, end) into a sorted, disjoint extent list, merging
/// overlap and adjacency.
inline void add_range(std::vector<Extent>& set, std::uint64_t begin,
                      std::uint64_t end) {
  if (begin >= end) return;
  set.push_back(Extent{begin, end - begin});
  std::sort(set.begin(), set.end(), [](const Extent& a, const Extent& b) {
    return a.offset < b.offset;
  });
  std::vector<Extent> merged;
  merged.reserve(set.size());
  for (const Extent& extent : set) {
    if (!merged.empty() && extent.offset <= merged.back().end()) {
      merged.back().length =
          std::max(merged.back().end(), extent.end()) - merged.back().offset;
    } else {
      merged.push_back(extent);
    }
  }
  set = std::move(merged);
}

/// Removes [begin, end) from a sorted, disjoint extent list (may split an
/// extent in two).
inline void subtract_range(std::vector<Extent>& set, std::uint64_t begin,
                           std::uint64_t end) {
  if (begin >= end) return;
  std::vector<Extent> kept;
  kept.reserve(set.size() + 1);
  for (const Extent& extent : set) {
    if (extent.end() <= begin || extent.offset >= end) {
      kept.push_back(extent);
      continue;
    }
    if (extent.offset < begin)
      kept.push_back(Extent{extent.offset, begin - extent.offset});
    if (extent.end() > end) kept.push_back(Extent{end, extent.end() - end});
  }
  set = std::move(kept);
}

/// Appends an extent to an ascending list, fusing it with the previous one
/// when contiguous — the writeback coalescing step.
inline void append_coalesced(std::vector<Extent>& out, const Extent& extent) {
  if (extent.length == 0) return;
  if (!out.empty() && out.back().end() == extent.offset) {
    out.back().length += extent.length;
  } else {
    out.push_back(extent);
  }
}

}  // namespace cache_detail

/// The metadata server's lease table.  All mutation is synchronous and
/// deterministic; the caller (Pfs) models the wire/service costs and the
/// serialization of concurrent requests.
class TokenManager {
 public:
  /// One revocation owed to a victim: `client` loses [begin, end).
  struct Revocation {
    std::uint32_t client = 0;
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
  };

  /// True when `client` already holds all of [begin, end) in `mode` (a
  /// write lease satisfies a read request, not vice versa).
  [[nodiscard]] bool covered(FileHandle file, std::uint32_t client,
                             TokenMode mode, std::uint64_t begin,
                             std::uint64_t end) const {
    if (begin >= end) return true;
    if (file >= files_.size()) return false;
    std::uint64_t cursor = begin;
    bool progress = true;
    while (cursor < end && progress) {
      progress = false;
      for (const FileToken& token : files_[file]) {
        if (token.client != client) continue;
        if (mode == TokenMode::Write && token.mode != TokenMode::Write)
          continue;
        if (token.begin <= cursor && cursor < token.end) {
          cursor = token.end;
          progress = true;
          break;
        }
      }
    }
    return cursor >= end;
  }

  /// Grants [begin, end) in `mode` to `client`, subtracting the range from
  /// every conflicting lease (and from the client's own leases, so an
  /// upgrade replaces rather than stacks).  Returns the revocations owed,
  /// merged per victim and ordered by (client, begin) — the caller performs
  /// one revocation round trip per entry.
  [[nodiscard]] std::vector<Revocation> acquire(FileHandle file,
                                                std::uint32_t client,
                                                TokenMode mode,
                                                std::uint64_t begin,
                                                std::uint64_t end) {
    S3A_REQUIRE(begin < end);
    if (file >= files_.size()) files_.resize(file + 1);
    std::vector<FileToken>& tokens = files_[file];
    std::vector<FileToken> kept;
    kept.reserve(tokens.size() + 2);
    std::vector<Revocation> owed;
    for (const FileToken& token : tokens) {
      if (!token.overlaps(begin, end)) {
        kept.push_back(token);
        continue;
      }
      if (token.client == client) {
        subtract(token, begin, end, kept);  // replaced by the grant below
        continue;
      }
      if (token.mode == TokenMode::Write || mode == TokenMode::Write) {
        ++conflicts_;
        owed.push_back(Revocation{token.client, std::max(token.begin, begin),
                                  std::min(token.end, end)});
        subtract(token, begin, end, kept);
      } else {
        kept.push_back(token);  // concurrent readers share the range
      }
    }
    kept.push_back(FileToken{begin, end, mode, client});
    tokens = std::move(kept);
    coalesce_client(tokens, client);
    ++grants_;
    std::sort(owed.begin(), owed.end(),
              [](const Revocation& a, const Revocation& b) {
                return a.client != b.client ? a.client < b.client
                                            : a.begin < b.begin;
              });
    std::vector<Revocation> merged;
    for (const Revocation& revocation : owed) {
      if (!merged.empty() && merged.back().client == revocation.client &&
          revocation.begin <= merged.back().end) {
        merged.back().end = std::max(merged.back().end, revocation.end);
      } else {
        merged.push_back(revocation);
      }
    }
    revocations_ += merged.size();
    return merged;
  }

  /// Drops every lease `client` holds, across all files (close).
  void release_client(std::uint32_t client) {
    for (std::vector<FileToken>& tokens : files_)
      std::erase_if(tokens, [client](const FileToken& token) {
        return token.client == client;
      });
  }

  /// The lease list of one file (tests and diagnostics).
  [[nodiscard]] std::span<const FileToken> file_tokens(FileHandle file) const {
    if (file >= files_.size()) return {};
    return files_[file];
  }

  [[nodiscard]] std::uint64_t grants() const noexcept { return grants_; }
  [[nodiscard]] std::uint64_t revocations() const noexcept {
    return revocations_;
  }
  [[nodiscard]] std::uint64_t conflicts() const noexcept { return conflicts_; }

  /// Folds the token counters into a `CacheStats` aggregate.
  void add_counters(CacheStats& stats) const noexcept {
    stats.token_grants += grants_;
    stats.token_revocations += revocations_;
    stats.token_conflicts += conflicts_;
  }

 private:
  /// Appends `token` minus [begin, end) — up to two remainder leases.
  static void subtract(const FileToken& token, std::uint64_t begin,
                       std::uint64_t end, std::vector<FileToken>& out) {
    if (token.begin < begin)
      out.push_back(FileToken{token.begin, begin, token.mode, token.client});
    if (token.end > end)
      out.push_back(FileToken{end, token.end, token.mode, token.client});
  }

  /// Re-normalizes one client's leases: sorted, disjoint, same-mode
  /// adjacency merged.  Other clients' leases keep their order.
  static void coalesce_client(std::vector<FileToken>& tokens,
                              std::uint32_t client) {
    std::vector<FileToken> own;
    std::vector<FileToken> others;
    for (const FileToken& token : tokens)
      (token.client == client ? own : others).push_back(token);
    std::sort(own.begin(), own.end(),
              [](const FileToken& a, const FileToken& b) {
                return a.begin < b.begin;
              });
    std::vector<FileToken> merged;
    merged.reserve(own.size());
    for (const FileToken& token : own) {
      if (!merged.empty() && merged.back().mode == token.mode &&
          token.begin <= merged.back().end) {
        merged.back().end = std::max(merged.back().end, token.end);
      } else {
        merged.push_back(token);
      }
    }
    others.insert(others.end(), merged.begin(), merged.end());
    tokens = std::move(others);
  }

  std::vector<std::vector<FileToken>> files_;  ///< lease table per file
  std::uint64_t grants_ = 0;
  std::uint64_t revocations_ = 0;
  std::uint64_t conflicts_ = 0;
};

/// One flush's worth of dirty data: ascending, coalesced extents of a
/// single file, ready for a list write.
struct WritebackRun {
  FileHandle file = 0;
  std::vector<Extent> extents;
  std::uint64_t bytes = 0;
};

/// Per-client write-back block cache.  Blocks are keyed (file, index) in a
/// deterministic map; recency lives in an intrusive LRU list.  Dirty and
/// valid byte ranges are tracked per block so writebacks carry exactly the
/// dirty bytes, coalesced across contiguous blocks.
class ClientCache {
 public:
  explicit ClientCache(const CacheParams& params) : params_(params) {
    S3A_REQUIRE(params.enabled());
    S3A_REQUIRE(params.block_bytes > 0);
    S3A_REQUIRE(params.capacity_blocks() >= 1);
  }

  /// Absorbs one written extent: every touched block becomes resident and
  /// dirty.  Counts a write hit per already-resident block, a miss per
  /// block added.  Call `needs_eviction`/`evict_one` afterwards.
  void absorb_write(FileHandle file, const Extent& extent) {
    for_each_block(extent, [&](std::uint64_t index, std::uint64_t lo,
                               std::uint64_t hi) {
      const BlockKey key{file, index};
      if (blocks_.contains(key)) {
        ++stats_.write_hits;
      } else {
        ++stats_.write_misses;
      }
      Block& block = touch(key);
      cache_detail::add_range(block.dirty, lo, hi);
      cache_detail::add_range(block.valid, lo, hi);
    });
  }

  /// Splits a read extent into cached and missing pieces.  Missing pieces
  /// are appended to `missing` (ascending, coalesced) and inserted as clean
  /// resident data — the caller models the fetch.  Counts a read hit per
  /// block served entirely from cache, a miss otherwise.
  void absorb_read(FileHandle file, const Extent& extent,
                   std::vector<Extent>& missing) {
    for_each_block(extent, [&](std::uint64_t index, std::uint64_t lo,
                               std::uint64_t hi) {
      const BlockKey key{file, index};
      std::vector<Extent> uncovered{Extent{lo, hi - lo}};
      if (const auto it = blocks_.find(key); it != blocks_.end()) {
        for (const Extent& valid : it->second.valid)
          cache_detail::subtract_range(uncovered, valid.offset, valid.end());
      }
      if (uncovered.empty()) {
        ++stats_.read_hits;
      } else {
        ++stats_.read_misses;
      }
      for (const Extent& piece : uncovered)
        cache_detail::append_coalesced(missing, piece);
      Block& block = touch(key);
      cache_detail::add_range(block.valid, lo, hi);
    });
  }

  [[nodiscard]] bool needs_eviction() const noexcept {
    return blocks_.size() > params_.capacity_blocks();
  }

  /// Evicts the least-recently-used block.  If it is dirty, its whole
  /// contiguous dirty block run (same file, adjacent indices) is flushed
  /// into `run` — flush-behind: the neighbours stay resident, now clean, so
  /// their later eviction is free and the writeback is one large request
  /// instead of many block-sized ones.
  void evict_one(WritebackRun& run) {
    S3A_REQUIRE(!lru_.empty());
    const BlockKey victim = lru_.back();
    const auto victim_it = blocks_.find(victim);
    if (!victim_it->second.dirty.empty()) {
      std::uint64_t lo = victim.index;
      while (lo > 0) {
        const auto it = blocks_.find(BlockKey{victim.file, lo - 1});
        if (it == blocks_.end() || it->second.dirty.empty()) break;
        --lo;
      }
      std::uint64_t hi = victim.index;
      while (true) {
        const auto it = blocks_.find(BlockKey{victim.file, hi + 1});
        if (it == blocks_.end() || it->second.dirty.empty()) break;
        ++hi;
      }
      run.file = victim.file;
      for (std::uint64_t index = lo; index <= hi; ++index) {
        Block& block = blocks_.at(BlockKey{victim.file, index});
        for (const Extent& extent : block.dirty) {
          run.bytes += extent.length;
          cache_detail::append_coalesced(run.extents, extent);
        }
        block.dirty.clear();
      }
      ++stats_.writebacks;
      stats_.writeback_bytes += run.bytes;
    }
    lru_.pop_back();
    blocks_.erase(victim_it);
    ++stats_.evictions;
  }

  /// sync: collects and cleans every dirty extent of `file`; the blocks
  /// stay resident.
  void flush_file(FileHandle file, WritebackRun& run) {
    run.file = file;
    for (auto it = blocks_.lower_bound(BlockKey{file, 0});
         it != blocks_.end() && it->first.file == file; ++it) {
      for (const Extent& extent : it->second.dirty) {
        run.bytes += extent.length;
        cache_detail::append_coalesced(run.extents, extent);
      }
      it->second.dirty.clear();
    }
    if (run.bytes > 0) {
      ++stats_.writebacks;
      stats_.writeback_bytes += run.bytes;
    }
  }

  /// Lease revocation: dirty data inside [begin, end) of `file` goes into
  /// `run` for writeback; blocks entirely inside the range are dropped
  /// (invalidated), partially-covered blocks lose the range only.
  void invalidate(FileHandle file, std::uint64_t begin, std::uint64_t end,
                  WritebackRun& run) {
    if (begin >= end) return;
    run.file = file;
    const std::uint64_t block = params_.block_bytes;
    auto it = blocks_.lower_bound(BlockKey{file, begin / block});
    while (it != blocks_.end() && it->first.file == file &&
           it->first.index * block < end) {
      Block& resident = it->second;
      for (const Extent& extent : resident.dirty) {
        const std::uint64_t lo = std::max(extent.offset, begin);
        const std::uint64_t hi = std::min(extent.end(), end);
        if (lo < hi) {
          run.bytes += hi - lo;
          cache_detail::append_coalesced(run.extents, Extent{lo, hi - lo});
        }
      }
      cache_detail::subtract_range(resident.dirty, begin, end);
      cache_detail::subtract_range(resident.valid, begin, end);
      const std::uint64_t block_begin = it->first.index * block;
      if (begin <= block_begin && end >= block_begin + block) {
        lru_.erase(resident.lru);
        it = blocks_.erase(it);
        ++stats_.invalidations;
      } else {
        ++it;
      }
    }
    if (run.bytes > 0) {
      ++stats_.writebacks;
      stats_.writeback_bytes += run.bytes;
    }
  }

  /// close: flushes every dirty block (one run per file, ascending) and
  /// drops all residency.  Counts `close_writebacks` per dirty block.
  void close_all(std::vector<WritebackRun>& runs) {
    WritebackRun* current = nullptr;
    for (auto& [key, block] : blocks_) {
      if (block.dirty.empty()) continue;
      if (current == nullptr || current->file != key.file) {
        runs.push_back(WritebackRun{key.file, {}, 0});
        current = &runs.back();
      }
      for (const Extent& extent : block.dirty) {
        current->bytes += extent.length;
        cache_detail::append_coalesced(current->extents, extent);
      }
      ++stats_.close_writebacks;
    }
    for (const WritebackRun& run : runs) stats_.writeback_bytes += run.bytes;
    blocks_.clear();
    lru_.clear();
  }

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t resident_blocks() const noexcept {
    return blocks_.size();
  }

  /// The least-recently-used block's (file, index), for tests.
  [[nodiscard]] std::pair<FileHandle, std::uint64_t> lru_victim() const {
    S3A_REQUIRE(!lru_.empty());
    return {lru_.back().file, lru_.back().index};
  }

 private:
  struct BlockKey {
    FileHandle file = 0;
    std::uint64_t index = 0;
    auto operator<=>(const BlockKey&) const = default;
  };
  struct Block {
    std::list<BlockKey>::iterator lru;
    std::vector<Extent> dirty;  ///< absolute file extents, sorted, disjoint
    std::vector<Extent> valid;  ///< superset of dirty (reads add clean data)
  };

  /// Makes `key` resident and most-recently-used.
  Block& touch(const BlockKey& key) {
    auto it = blocks_.find(key);
    if (it == blocks_.end()) {
      lru_.push_front(key);
      it = blocks_.emplace(key, Block{lru_.begin(), {}, {}}).first;
    } else {
      lru_.splice(lru_.begin(), lru_, it->second.lru);
    }
    return it->second;
  }

  /// Calls `body(index, lo, hi)` for each block the extent touches, with
  /// [lo, hi) the extent's absolute intersection with that block.
  template <typename Body>
  void for_each_block(const Extent& extent, Body&& body) {
    if (extent.length == 0) return;
    const std::uint64_t block = params_.block_bytes;
    for (std::uint64_t index = extent.offset / block;
         index <= (extent.end() - 1) / block; ++index) {
      const std::uint64_t lo = std::max(extent.offset, index * block);
      const std::uint64_t hi = std::min(extent.end(), (index + 1) * block);
      body(index, lo, hi);
    }
  }

  CacheParams params_;
  CacheStats stats_;
  std::map<BlockKey, Block> blocks_;
  std::list<BlockKey> lru_;  ///< front = most recently used
};

}  // namespace s3asim::pfs
