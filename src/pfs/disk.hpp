#pragma once

/// \file disk.hpp
/// Per-server storage cost model (2006-era commodity I/O node under PVFS2).
///
/// Service time of one write request carrying `pairs` offset-length regions
/// and `bytes` of data:
///     per_request + pairs * per_pair + bytes / bandwidth
/// `MPI_File_sync` maps to a dedicated sync request costing `sync_cost`
/// (forcing dirty data out to the platter, dominated by seek + rotation).

#include <cstdint>

#include "sim/time.hpp"
#include "util/units.hpp"

namespace s3asim::pfs {

struct DiskModel {
  /// Fixed cost of accepting and dispatching any request (metadata lookup,
  /// buffer setup, one head repositioning).
  sim::Time per_request = sim::milliseconds(2);
  /// Incremental cost of each noncontiguous region in a request: datatype
  /// processing plus, dominantly, a head repositioning per scattered region
  /// on a 2006-era disk (~6 ms seek + rotation).
  sim::Time per_pair = sim::milliseconds(6);
  /// Streaming bandwidth of the server's disk subsystem.
  double bandwidth_bps = 38.0 * 1024 * 1024;
  /// Base cost of a sync/flush request that has dirty data to push out.
  sim::Time sync_cost = sim::milliseconds(6);
  /// Cost of a sync when the server holds no dirty data (cache hit).
  sim::Time sync_noop_cost = sim::microseconds(200);
  /// Rate at which dirty data drains to the platter during a sync.
  double sync_flush_bps = 24.0 * 1024 * 1024;
  /// Read-side cost knobs.  Zero means "inherit the write-side value" —
  /// the default keeps reads charged exactly like writes, as the simulator
  /// always has, so existing figure CSVs are unchanged; configurations may
  /// model cheaper reads (no write-back, read-ahead hits) explicitly.
  sim::Time read_per_request = 0;
  sim::Time read_per_pair = 0;
  double read_bandwidth_bps = 0.0;

  [[nodiscard]] sim::Time write_service_time(std::uint64_t pairs,
                                             std::uint64_t bytes) const noexcept {
    return per_request + static_cast<sim::Time>(pairs) * per_pair +
           sim::transfer_time(bytes, bandwidth_bps);
  }

  /// Service time of a read request; falls back to the write cost model for
  /// any knob left at zero.
  [[nodiscard]] sim::Time read_service_time(std::uint64_t pairs,
                                            std::uint64_t bytes) const noexcept {
    const sim::Time req = read_per_request != 0 ? read_per_request : per_request;
    const sim::Time pair = read_per_pair != 0 ? read_per_pair : per_pair;
    const double bps =
        read_bandwidth_bps != 0.0 ? read_bandwidth_bps : bandwidth_bps;
    return req + static_cast<sim::Time>(pairs) * pair +
           sim::transfer_time(bytes, bps);
  }

  /// Service time of an MPI_File_sync-induced flush given the dirty bytes
  /// accumulated at the server since the last sync.
  [[nodiscard]] sim::Time sync_service_time(std::uint64_t dirty_bytes) const noexcept {
    if (dirty_bytes == 0) return sync_noop_cost;
    return sync_cost + sim::transfer_time(dirty_bytes, sync_flush_bps);
  }

  /// A fast, uniform model for unit tests that need exact arithmetic.
  [[nodiscard]] static DiskModel test_model() noexcept {
    DiskModel model;
    model.per_request = 1'000;
    model.per_pair = 100;
    model.bandwidth_bps = 1e9;  // 1 ns per byte
    model.sync_cost = 10'000;
    model.sync_noop_cost = 100;
    model.sync_flush_bps = 1e9;
    return model;
  }
};

}  // namespace s3asim::pfs
