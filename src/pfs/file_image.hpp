#pragma once

/// \file file_image.hpp
/// Logical image of an output file: which byte ranges have been written, by
/// whom, in what order.  This is the correctness oracle for every I/O
/// strategy — the paper's guarantee is that workers write to *mutually
/// exclusive* locations, so any overlap is a bug in the offset-list logic.
///
/// Hot-path design: writes land in a staged buffer and are folded into a
/// flat sorted interval vector in batches (one sort + linear union merge per
/// ~1k writes), instead of one `std::map` node allocation and tree rebalance
/// per write.  Coverage queries flush lazily, so recording stays O(1)
/// amortised with zero per-write allocation once the vectors have grown.
/// Provenance history is a bounded ring by default; strategies that need
/// the full write log (tests, gap repair debugging) opt in explicitly.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "pfs/layout.hpp"
#include "util/require.hpp"

namespace s3asim::pfs {

/// A write recorded against the file, with provenance.
struct RecordedWrite {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint32_t writer = 0;  // rank or client id
  std::uint64_t query = 0;   // application-level tag (query index)
};

class FileImage {
 public:
  enum class HistoryMode {
    Bounded,  ///< keep only the most recent kHistoryCapacity writes
    Full,     ///< keep every write (unbounded; tests and forensics)
  };

  /// Most recent writes retained in Bounded mode.
  static constexpr std::size_t kHistoryCapacity = 1024;

  FileImage() = default;
  explicit FileImage(HistoryMode mode)
      : full_history_(mode == HistoryMode::Full) {}

  /// Records a write.  Overlap with existing data is recorded (PVFS2 does
  /// not serialize or reject overlapping writes) but counted, so tests can
  /// assert `overlap_count() == 0`.
  void record_write(std::uint64_t offset, std::uint64_t length,
                    std::uint32_t writer = 0, std::uint64_t query = 0) {
    if (length == 0) return;
    if (full_history_ || history_.size() < kHistoryCapacity) {
      history_.push_back(RecordedWrite{offset, length, writer, query});
    } else {
      history_[write_count_ % kHistoryCapacity] =
          RecordedWrite{offset, length, writer, query};
      history_wrapped_ = true;
    }
    ++write_count_;
    bytes_written_ += length;
    staged_.push_back(Interval{offset, offset + length});
    if (staged_.size() >= kFlushThreshold) flush();
  }

  /// Total bytes across all writes (overlapping bytes counted every time).
  [[nodiscard]] std::uint64_t bytes_written() const noexcept { return bytes_written_; }

  /// Number of writes observed to overlap other written data.  Zero iff no
  /// write ever intersected another; the exact count of a pile-up is
  /// batch-order dependent.
  [[nodiscard]] std::uint64_t overlap_count() const noexcept {
    flush();
    return overlaps_;
  }

  /// Bytes covered by at least one write.
  [[nodiscard]] std::uint64_t covered_bytes() const noexcept {
    flush();
    return covered_;
  }

  /// True iff the union of writes is exactly [0, total) with no overlap.
  [[nodiscard]] bool covers_exactly(std::uint64_t total) const noexcept {
    flush();
    if (overlaps_ != 0) return false;
    if (total == 0) return intervals_.empty();
    return intervals_.size() == 1 && intervals_.front().begin == 0 &&
           intervals_.front().end == total;
  }

  /// Uncovered holes inside [0, total).
  [[nodiscard]] std::vector<Extent> gaps(std::uint64_t total) const {
    flush();
    std::vector<Extent> holes;
    std::uint64_t cursor = 0;
    for (const Interval& interval : intervals_) {
      if (interval.begin >= total) break;
      if (interval.begin > cursor)
        holes.push_back(Extent{cursor, interval.begin - cursor});
      cursor = std::max(cursor, interval.end);
    }
    if (cursor < total) holes.push_back(Extent{cursor, total - cursor});
    return holes;
  }

  /// The recorded write log, oldest first.  In Bounded mode this is only
  /// available while the log fits the ring — construct with
  /// `HistoryMode::Full` to inspect provenance of long runs.
  /// (Not noexcept: the wrapped-ring contract check below throws.)
  [[nodiscard]] const std::vector<RecordedWrite>& history() const {
    S3A_REQUIRE_MSG(!history_wrapped_,
                    "bounded write history overflowed; construct the "
                    "FileImage with HistoryMode::Full to keep all writes");
    return history_;
  }

  [[nodiscard]] std::uint64_t write_count() const noexcept { return write_count_; }

 private:
  struct Interval {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
  };

  /// Staged writes folded into the flat store per batch.
  static constexpr std::size_t kFlushThreshold = 1024;

  /// Folds the staged writes into `intervals_` with one sort and a linear
  /// union merge.  Existing intervals are disjoint and non-adjacent, so any
  /// strict intersection seen during the sweep involves a staged write and
  /// bumps the overlap counter.
  void flush() const noexcept {
    if (staged_.empty()) return;
    std::sort(staged_.begin(), staged_.end(),
              [](const Interval& a, const Interval& b) {
                return a.begin != b.begin ? a.begin < b.begin : a.end < b.end;
              });
    merge_buf_.clear();
    merge_buf_.reserve(intervals_.size() + staged_.size());
    covered_ = 0;
    std::size_t i = 0;
    std::size_t j = 0;
    Interval current{};
    bool have_current = false;
    const auto emit = [this](const Interval& interval) {
      merge_buf_.push_back(interval);
      covered_ += interval.end - interval.begin;
    };
    while (i < intervals_.size() || j < staged_.size()) {
      Interval next{};
      if (j >= staged_.size() ||
          (i < intervals_.size() && intervals_[i].begin <= staged_[j].begin)) {
        next = intervals_[i++];
      } else {
        next = staged_[j++];
      }
      if (!have_current) {
        current = next;
        have_current = true;
        continue;
      }
      if (next.begin <= current.end) {
        if (next.begin < current.end) ++overlaps_;
        current.end = std::max(current.end, next.end);
      } else {
        emit(current);
        current = next;
      }
    }
    if (have_current) emit(current);
    intervals_.swap(merge_buf_);
    staged_.clear();
  }

  // Flat store (sorted, disjoint, adjacency-merged) plus the pending batch;
  // mutable so const coverage queries can flush lazily.
  mutable std::vector<Interval> intervals_;
  mutable std::vector<Interval> staged_;
  mutable std::vector<Interval> merge_buf_;
  mutable std::uint64_t overlaps_ = 0;
  mutable std::uint64_t covered_ = 0;
  std::vector<RecordedWrite> history_;
  bool full_history_ = false;
  bool history_wrapped_ = false;
  std::uint64_t write_count_ = 0;
  std::uint64_t bytes_written_ = 0;
};

}  // namespace s3asim::pfs
