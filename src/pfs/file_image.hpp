#pragma once

/// \file file_image.hpp
/// Logical image of an output file: which byte ranges have been written, by
/// whom, in what order.  This is the correctness oracle for every I/O
/// strategy — the paper's guarantee is that workers write to *mutually
/// exclusive* locations, so any overlap is a bug in the offset-list logic.

#include <cstdint>
#include <map>
#include <vector>

#include "pfs/layout.hpp"
#include "util/require.hpp"

namespace s3asim::pfs {

/// A write recorded against the file, with provenance.
struct RecordedWrite {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint32_t writer = 0;  // rank or client id
  std::uint64_t query = 0;   // application-level tag (query index)
};

class FileImage {
 public:
  /// Records a write.  Overlap with existing data is recorded (PVFS2 does
  /// not serialize or reject overlapping writes) but counted, so tests can
  /// assert `overlap_count() == 0`.
  void record_write(std::uint64_t offset, std::uint64_t length,
                    std::uint32_t writer = 0, std::uint64_t query = 0) {
    if (length == 0) return;
    history_.push_back(RecordedWrite{offset, length, writer, query});
    bytes_written_ += length;
    insert_interval(offset, length);
  }

  /// Total bytes across all writes (overlapping bytes counted every time).
  [[nodiscard]] std::uint64_t bytes_written() const noexcept { return bytes_written_; }

  /// Number of writes that overlapped previously-written data.
  [[nodiscard]] std::uint64_t overlap_count() const noexcept { return overlaps_; }

  /// Bytes covered by at least one write.
  [[nodiscard]] std::uint64_t covered_bytes() const noexcept {
    std::uint64_t total = 0;
    for (const auto& [offset, end] : intervals_) total += end - offset;
    return total;
  }

  /// True iff the union of writes is exactly [0, total) with no overlap.
  [[nodiscard]] bool covers_exactly(std::uint64_t total) const noexcept {
    if (overlaps_ != 0) return false;
    if (total == 0) return intervals_.empty();
    return intervals_.size() == 1 && intervals_.begin()->first == 0 &&
           intervals_.begin()->second == total;
  }

  /// Uncovered holes inside [0, total).
  [[nodiscard]] std::vector<Extent> gaps(std::uint64_t total) const {
    std::vector<Extent> holes;
    std::uint64_t cursor = 0;
    for (const auto& [offset, end] : intervals_) {
      if (offset >= total) break;
      if (offset > cursor) holes.push_back(Extent{cursor, offset - cursor});
      cursor = std::max(cursor, end);
    }
    if (cursor < total) holes.push_back(Extent{cursor, total - cursor});
    return holes;
  }

  [[nodiscard]] const std::vector<RecordedWrite>& history() const noexcept {
    return history_;
  }

  [[nodiscard]] std::uint64_t write_count() const noexcept { return history_.size(); }

 private:
  void insert_interval(std::uint64_t offset, std::uint64_t length) {
    std::uint64_t end = offset + length;
    // Find the first interval that could overlap or be adjacent.
    auto it = intervals_.upper_bound(offset);
    if (it != intervals_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= offset) {
        if (prev->second > offset) ++overlaps_;
        offset = prev->first;
        end = std::max(end, prev->second);
        it = intervals_.erase(prev);
      }
    }
    while (it != intervals_.end() && it->first <= end) {
      if (it->first < end) ++overlaps_;
      end = std::max(end, it->second);
      it = intervals_.erase(it);
    }
    intervals_[offset] = end;
  }

  std::map<std::uint64_t, std::uint64_t> intervals_;  // offset -> end (merged)
  std::vector<RecordedWrite> history_;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t overlaps_ = 0;
};

}  // namespace s3asim::pfs
