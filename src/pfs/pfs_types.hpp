#pragma once

/// \file pfs_types.hpp
/// Parameter and counter types of the simulated PFS, split out of pfs.hpp
/// so the cache layer (cache.hpp) and the server machinery share one
/// definition of `PfsParams`/`ServerStats` without a circular include.

#include <cstdint>
#include <vector>

#include "pfs/cache.hpp"
#include "pfs/disk.hpp"
#include "pfs/layout.hpp"
#include "sim/time.hpp"

namespace s3asim::pfs {

/// Server-side fault injection: from `from` onwards the server's per-request
/// service time is multiplied by `service_factor` (a failing disk, a
/// rebuilding RAID set), and the first request serviced at or after `from`
/// additionally waits out a one-shot `stall` (a controller reset).  The
/// fault module translates `FaultPlan` entries into these.
struct ServerDegradation {
  std::uint32_t server = 0;
  sim::Time from = 0;
  double service_factor = 1.0;
  sim::Time stall = 0;
};

struct PfsParams {
  Layout layout = Layout::paper_default();
  DiskModel disk{};
  /// Cost of a metadata operation at the metadata server (create/open,
  /// lease grant/release).
  sim::Time metadata_op = sim::microseconds(120);
  /// Wire size of a request envelope and of each OL pair within it.
  std::uint64_t request_header_bytes = 64;
  std::uint64_t pair_header_bytes = 16;
  /// Wire size of a server acknowledgement.
  std::uint64_t ack_bytes = 32;
  /// Injected server degradations (empty = healthy file system).
  std::vector<ServerDegradation> degradations;
  /// Client-side write-back cache + byte-range lease tokens (cache.hpp).
  /// Disabled by default (capacity 0): every client path ships extents
  /// straight to the servers, byte-identical to pre-cache builds.
  CacheParams cache{};
};

/// Per-server activity counters.
///
/// `busy` is disk-queue service occupancy only — the time the server's
/// service loop spent working requests (plus fault stalls).  Metadata
/// operations (create/open, lease traffic) never ride in `busy`: they are
/// modeled as a latency at the metadata server and accounted separately in
/// `metadata_ops`/`metadata_busy` on server 0, so cache token traffic is
/// attributable without perturbing the disk-occupancy figures.
struct ServerStats {
  std::uint64_t requests = 0;
  std::uint64_t pairs = 0;
  std::uint64_t bytes = 0;
  std::uint64_t syncs = 0;
  std::uint64_t reads = 0;
  std::uint64_t read_pairs = 0;
  std::uint64_t read_bytes = 0;
  sim::Time busy = 0;
  /// Metadata-service counters — nonzero only on server 0, which doubles
  /// as the metadata server (create/open and cache lease round trips).
  std::uint64_t metadata_ops = 0;
  sim::Time metadata_busy = 0;

  /// Field-wise accumulation — `Pfs::aggregate_stats` sums through this, so
  /// a counter added here is automatically part of the aggregate.
  ServerStats& operator+=(const ServerStats& other) noexcept {
    requests += other.requests;
    pairs += other.pairs;
    bytes += other.bytes;
    syncs += other.syncs;
    reads += other.reads;
    read_pairs += other.read_pairs;
    read_bytes += other.read_bytes;
    busy += other.busy;
    metadata_ops += other.metadata_ops;
    metadata_busy += other.metadata_busy;
    return *this;
  }
};

/// Per-request observability hook: `on_request_serviced` fires once per
/// serviced server request, after its service interval elapsed.  `kind` is
/// 'w' (write), 'r' (read), or 's' (sync); `[start, end)` is the service
/// interval in simulated time.  Implemented by the core observer bridge
/// (trace spans + service-time histograms); the PFS itself stays free of
/// trace/metrics dependencies, and with no observer attached the service
/// path is unchanged.
class RequestObserver {
 public:
  virtual ~RequestObserver() = default;
  virtual void on_request_serviced(std::uint32_t server, char kind,
                                   std::uint64_t pairs, std::uint64_t bytes,
                                   sim::Time start, sim::Time end) = 0;
};

}  // namespace s3asim::pfs
