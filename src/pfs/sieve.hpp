#pragma once

/// \file sieve.hpp
/// Data-sieving access plan for noncontiguous I/O (Thakur/Gropp/Lusk,
/// "Optimizing Noncontiguous Accesses in MPI-IO"; docs/IO_MODEL.md §4).
///
/// Instead of shipping one OL pair per extent (list I/O) or one round trip
/// per extent (POSIX), data sieving covers the extent list with large
/// *contiguous* windows of at most one sieve buffer each, reads/writes the
/// whole window, and scatters/gathers the useful bytes in memory.  The
/// trade is explicit: far fewer OL pairs and requests, paid for with
/// *amplification* — the hole bytes between extents travel too.  On the
/// write side every window containing holes must be read back first
/// (read-modify-write) so the holes are rewritten with their current
/// contents rather than garbage.
///
/// `plan_sieve` is pure and deterministic: extents in, window plan out.
/// The Pfs client paths (pfs_read.hpp) turn the plan into simulated
/// transfers and the counters published as `pfs.sieve.*`.

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "pfs/layout.hpp"
#include "util/require.hpp"

namespace s3asim::pfs {

/// One contiguous sieve-buffer transfer.  The window always starts and
/// ends on a useful byte (leading/trailing holes are trimmed away — they
/// would be pure waste), so `useful_bytes >= 1` and
/// `useful_bytes + hole_bytes == length`.
struct SieveWindow {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;       ///< window span; <= buffer_bytes
  std::uint64_t useful_bytes = 0; ///< bytes the caller actually asked for
  std::uint64_t hole_bytes = 0;   ///< amplification: unrequested bytes moved
  std::uint64_t holes = 0;        ///< count of gaps strictly inside the window

  [[nodiscard]] std::uint64_t end() const noexcept { return offset + length; }
};

/// A full access plan: ascending, disjoint windows covering every
/// requested byte exactly once.
struct SievePlan {
  std::vector<SieveWindow> windows;
  std::uint64_t useful_bytes = 0;
  std::uint64_t transferred_bytes = 0;  ///< sum of window lengths
  std::uint64_t hole_bytes = 0;

  [[nodiscard]] std::uint64_t amplified_bytes() const noexcept {
    return transferred_bytes - useful_bytes;
  }
};

/// Normalizes an extent list: drops empty extents, sorts by offset, and
/// merges overlap/adjacency.  Exposed for tests (the property test checks
/// the plan against a per-byte reference built from the same input).
[[nodiscard]] inline std::vector<Extent> coalesce_extents(
    std::span<const Extent> extents) {
  std::vector<Extent> sorted;
  sorted.reserve(extents.size());
  for (const Extent& extent : extents)
    if (extent.length != 0) sorted.push_back(extent);
  std::sort(sorted.begin(), sorted.end(),
            [](const Extent& a, const Extent& b) {
              return a.offset < b.offset;
            });
  std::vector<Extent> merged;
  merged.reserve(sorted.size());
  for (const Extent& extent : sorted) {
    if (!merged.empty() && extent.offset <= merged.back().end()) {
      merged.back().length =
          std::max(merged.back().end(), extent.end()) - merged.back().offset;
    } else {
      merged.push_back(extent);
    }
  }
  return merged;
}

/// Greedy window packing, the ROMIO ADIOI_GEN strategy: each window opens
/// at the first unconsumed useful byte and extends through every useful
/// run that *starts* within `buffer_bytes` of the window start, clipped to
/// the buffer.  A run longer than the buffer is split across windows.
[[nodiscard]] inline SievePlan plan_sieve(std::span<const Extent> extents,
                                          std::uint64_t buffer_bytes) {
  S3A_REQUIRE_MSG(buffer_bytes > 0, "sieve buffer must be positive");
  SievePlan plan;
  const std::vector<Extent> runs = coalesce_extents(extents);
  std::size_t index = 0;
  std::uint64_t cursor = 0;  // next unconsumed byte within runs[index]
  while (index < runs.size()) {
    const std::uint64_t start = std::max(runs[index].offset, cursor);
    const std::uint64_t limit = start + buffer_bytes;
    SieveWindow window;
    window.offset = start;
    std::uint64_t covered_end = start;
    while (index < runs.size() && runs[index].offset < limit &&
           std::max(runs[index].offset, covered_end) < limit) {
      const std::uint64_t run_begin = std::max(runs[index].offset, cursor);
      const std::uint64_t run_end = std::min(runs[index].end(), limit);
      if (run_begin >= run_end) break;
      if (run_begin > covered_end) {
        // Never on the first run: the window opens on a useful byte.
        ++window.holes;
        window.hole_bytes += run_begin - covered_end;
      }
      window.useful_bytes += run_end - run_begin;
      covered_end = run_end;
      if (run_end == runs[index].end()) {
        ++index;
        cursor = 0;
      } else {
        cursor = run_end;  // run split by the buffer limit
        break;
      }
    }
    window.length = covered_end - window.offset;
    plan.useful_bytes += window.useful_bytes;
    plan.transferred_bytes += window.length;
    plan.hole_bytes += window.hole_bytes;
    plan.windows.push_back(window);
  }
  return plan;
}

/// Client-side data-sieving counters, aggregated over every sieved
/// operation of a Pfs instance and published as `pfs.sieve.*` (only when
/// sieving actually ran — write-only manifests stay byte-identical).
struct SieveStats {
  std::uint64_t reads = 0;            ///< sieve-buffer window reads
  std::uint64_t writes = 0;           ///< sieve-buffer window writes
  std::uint64_t rmw_reads = 0;        ///< pre-reads protecting write holes
  std::uint64_t holes_protected = 0;  ///< hole ranges preserved via RMW
  std::uint64_t read_useful_bytes = 0;
  std::uint64_t read_transferred_bytes = 0;
  std::uint64_t write_useful_bytes = 0;
  std::uint64_t write_transferred_bytes = 0;

  [[nodiscard]] bool used() const noexcept { return reads + writes != 0; }
  [[nodiscard]] std::uint64_t read_amplified_bytes() const noexcept {
    return read_transferred_bytes - read_useful_bytes;
  }
  [[nodiscard]] std::uint64_t write_amplified_bytes() const noexcept {
    return write_transferred_bytes - write_useful_bytes;
  }

  SieveStats& operator+=(const SieveStats& other) noexcept {
    reads += other.reads;
    writes += other.writes;
    rmw_reads += other.rmw_reads;
    holes_protected += other.holes_protected;
    read_useful_bytes += other.read_useful_bytes;
    read_transferred_bytes += other.read_transferred_bytes;
    write_useful_bytes += other.write_useful_bytes;
    write_transferred_bytes += other.write_transferred_bytes;
    return *this;
  }
};

}  // namespace s3asim::pfs
