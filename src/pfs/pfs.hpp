#pragma once

/// \file pfs.hpp
/// The simulated parallel file system: N server processes behind network
/// endpoints, a metadata server, striped file layout, and client-side write
/// paths (contiguous, POSIX per-extent, native list I/O).
///
/// PVFS2 properties modeled (paper §3.1):
///  * no locking and no atomicity for overlapping writes — requests from
///    different clients interleave freely with no false-sharing
///    serialization;
///  * native noncontiguous support: one list-I/O request ships an arbitrary
///    OL (offset-length) list to each touched server;
///  * server-side costs: per-request overhead, per-OL-pair overhead, byte
///    bandwidth, and an explicit sync (flush) request.

#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "pfs/disk.hpp"
#include "pfs/file_image.hpp"
#include "pfs/layout.hpp"
#include "sim/channel.hpp"
#include "sim/gate.hpp"
#include "sim/task.hpp"
#include "sim/wait_group.hpp"
#include "util/require.hpp"

namespace s3asim::pfs {

/// Server-side fault injection: from `from` onwards the server's per-request
/// service time is multiplied by `service_factor` (a failing disk, a
/// rebuilding RAID set), and the first request serviced at or after `from`
/// additionally waits out a one-shot `stall` (a controller reset).  The
/// fault module translates `FaultPlan` entries into these.
struct ServerDegradation {
  std::uint32_t server = 0;
  sim::Time from = 0;
  double service_factor = 1.0;
  sim::Time stall = 0;
};

struct PfsParams {
  Layout layout = Layout::paper_default();
  DiskModel disk{};
  /// Cost of a metadata operation at the metadata server (create/open).
  sim::Time metadata_op = sim::microseconds(120);
  /// Wire size of a request envelope and of each OL pair within it.
  std::uint64_t request_header_bytes = 64;
  std::uint64_t pair_header_bytes = 16;
  /// Wire size of a server acknowledgement.
  std::uint64_t ack_bytes = 32;
  /// Injected server degradations (empty = healthy file system).
  std::vector<ServerDegradation> degradations;
};

using FileHandle = std::uint32_t;

/// Per-server activity counters.
struct ServerStats {
  std::uint64_t requests = 0;
  std::uint64_t pairs = 0;
  std::uint64_t bytes = 0;
  std::uint64_t syncs = 0;
  std::uint64_t reads = 0;
  std::uint64_t read_bytes = 0;
  sim::Time busy = 0;

  /// Field-wise accumulation — `Pfs::aggregate_stats` sums through this, so
  /// a counter added here is automatically part of the aggregate.
  ServerStats& operator+=(const ServerStats& other) noexcept {
    requests += other.requests;
    pairs += other.pairs;
    bytes += other.bytes;
    syncs += other.syncs;
    reads += other.reads;
    read_bytes += other.read_bytes;
    busy += other.busy;
    return *this;
  }
};

/// Per-request observability hook: `on_request_serviced` fires once per
/// serviced server request, after its service interval elapsed.  `kind` is
/// 'w' (write), 'r' (read), or 's' (sync); `[start, end)` is the service
/// interval in simulated time.  Implemented by the core observer bridge
/// (trace spans + service-time histograms); the PFS itself stays free of
/// trace/metrics dependencies, and with no observer attached the service
/// path is unchanged.
class RequestObserver {
 public:
  virtual ~RequestObserver() = default;
  virtual void on_request_serviced(std::uint32_t server, char kind,
                                   std::uint64_t pairs, std::uint64_t bytes,
                                   sim::Time start, sim::Time end) = 0;
};

class Pfs {
 public:
  /// Servers occupy network endpoints [server_endpoint_base,
  /// server_endpoint_base + layout.server_count()).  Server 0 doubles as
  /// the metadata server (matching the paper's configuration).
  Pfs(sim::Scheduler& scheduler, net::Network& network,
      net::EndpointId server_endpoint_base, PfsParams params = {})
      : scheduler_(&scheduler),
        network_(&network),
        params_(params),
        server_endpoint_base_(server_endpoint_base) {
    const std::uint32_t count = params_.layout.server_count();
    S3A_REQUIRE(server_endpoint_base + count <= network.endpoint_count());
    servers_.reserve(count);
    for (std::uint32_t s = 0; s < count; ++s) {
      servers_.push_back(std::make_unique<Server>(scheduler));
      scheduler_->spawn(server_loop(s));
    }
    for (const ServerDegradation& degradation : params_.degradations) {
      S3A_REQUIRE_MSG(degradation.server < count,
                      "degraded server id out of range");
      S3A_REQUIRE(degradation.service_factor >= 1.0);
      servers_[degradation.server]->faults.push_back(
          ActiveFault{degradation, false});
    }
  }
  Pfs(const Pfs&) = delete;
  Pfs& operator=(const Pfs&) = delete;

  [[nodiscard]] const Layout& layout() const noexcept { return params_.layout; }
  [[nodiscard]] const PfsParams& params() const noexcept { return params_; }

  /// Stops all server loops (call after the application has quiesced so the
  /// scheduler can drain to zero live processes).
  void shutdown() {
    for (const auto& server : servers_) server->queue.close();
  }

  /// Creates a file; models a metadata round trip from `client` to the
  /// metadata server (server 0).
  sim::Task<FileHandle> create_file(net::EndpointId client, std::string name) {
    co_await network_->transfer(client, server_endpoint_base_,
                                params_.request_header_bytes);
    co_await scheduler_->delay(params_.metadata_op);
    co_await network_->transfer(server_endpoint_base_, client, params_.ack_bytes);
    files_.push_back(std::make_unique<FileState>(std::move(name)));
    co_return static_cast<FileHandle>(files_.size() - 1);
  }

  /// One contiguous write: at most one OL pair per server, all servers in
  /// parallel; completes when the slowest server acknowledges.
  sim::Task<void> write_contiguous(FileHandle file, net::EndpointId client,
                                   std::uint64_t offset, std::uint64_t length,
                                   std::uint32_t writer = 0,
                                   std::uint64_t query = 0) {
    const Extent one{offset, length};
    co_await write_list(file, client, std::span<const Extent>(&one, 1), writer,
                        query);
  }

  /// Native list I/O: every extent decomposed and grouped per server; one
  /// request per touched server carrying that server's whole OL list; all
  /// servers proceed in parallel.  The extents may live anywhere that
  /// outlives the call (vector, stack array); decomposition goes through a
  /// pooled scratch and completion through one WaitGroup, so the whole
  /// fan-out allocates nothing in steady state.
  sim::Task<void> write_list(FileHandle file, net::EndpointId client,
                             std::span<const Extent> extents,
                             std::uint32_t writer = 0, std::uint64_t query = 0) {
    FileState& state = file_state(file);
    ScratchLease scratch = acquire_scratch();
    params_.layout.group_by_server(extents, *scratch);
    sim::WaitGroup pending(*scheduler_);
    for (std::uint32_t s = 0; s < scratch->per_server.size(); ++s) {
      if (scratch->per_server[s].empty()) continue;
      pending.add();
      scheduler_->spawn(issue_write(s, client, scratch->per_server[s], pending));
    }
    co_await pending.wait();

    for (const Extent& extent : extents)
      state.image.record_write(extent.offset, extent.length, writer, query);
  }

  /// Read of a contiguous range: one request per touched server carrying
  /// only headers out, data back.  Used by query-segmentation tools that
  /// stream database fragments from the file system.
  sim::Task<void> read_contiguous(FileHandle file, net::EndpointId client,
                                  std::uint64_t offset, std::uint64_t length) {
    FileState& state = file_state(file);
    state.bytes_read += length;
    const Extent one{offset, length};
    ScratchLease scratch = acquire_scratch();
    params_.layout.group_by_server(std::span<const Extent>(&one, 1), *scratch);
    sim::WaitGroup pending(*scheduler_);
    for (std::uint32_t s = 0; s < scratch->per_server.size(); ++s) {
      if (scratch->per_server[s].empty()) continue;
      pending.add();
      scheduler_->spawn(issue_read(s, client, scratch->per_server[s], pending));
    }
    co_await pending.wait();
  }

  /// POSIX-style noncontiguous write: one fully-synchronous round trip per
  /// extent, in order — "the MPI_Write() call without optimization".  One
  /// scratch and one WaitGroup carry the whole extent loop.
  sim::Task<void> write_posix(FileHandle file, net::EndpointId client,
                              std::span<const Extent> extents,
                              std::uint32_t writer = 0, std::uint64_t query = 0) {
    FileState& state = file_state(file);
    const std::uint64_t strip = params_.layout.strip_size();
    for (const Extent& extent : extents) {
      // The common case — an extent inside one strip — is a strictly
      // sequential round trip to one server carrying one OL pair, and is
      // awaited directly: no decomposition scratch, no detached process, no
      // completion latch.  Only a strip-crossing extent needs the general
      // grouping (and, when it touches several servers, the parallel
      // fan-out).
      if (extent.length != 0 && extent.offset % strip + extent.length <= strip) {
        co_await write_one(params_.layout.server_of(extent.offset), client,
                           /*pairs=*/1, extent.length);
      } else {
        ScratchLease scratch = acquire_scratch();
        params_.layout.group_by_server(std::span<const Extent>(&extent, 1),
                                       *scratch);
        std::uint32_t touched = 0;
        std::uint32_t only = 0;
        for (std::uint32_t s = 0; s < scratch->per_server.size(); ++s) {
          if (scratch->per_server[s].empty()) continue;
          ++touched;
          only = s;
        }
        if (touched == 1) {
          co_await write_one(only, client, scratch->per_server[only]);
        } else {
          sim::WaitGroup pending(*scheduler_);
          for (std::uint32_t s = 0; s < scratch->per_server.size(); ++s) {
            if (scratch->per_server[s].empty()) continue;
            pending.add();
            scheduler_->spawn(
                issue_write(s, client, scratch->per_server[s], pending));
          }
          co_await pending.wait();
        }
      }
      state.image.record_write(extent.offset, extent.length, writer, query);
    }
  }

  /// MPI_File_sync: a flush request to every server, in parallel.
  sim::Task<void> sync(FileHandle file, net::EndpointId client) {
    (void)file;  // PVFS2 sync flushes the server-side streams
    sim::WaitGroup pending(*scheduler_);
    for (std::uint32_t s = 0; s < servers_.size(); ++s) {
      pending.add();
      scheduler_->spawn(issue_sync(s, client, pending));
    }
    co_await pending.wait();
  }

  [[nodiscard]] const FileImage& image(FileHandle file) const {
    S3A_REQUIRE(file < files_.size());
    return files_[file]->image;
  }
  [[nodiscard]] const std::string& file_name(FileHandle file) const {
    S3A_REQUIRE(file < files_.size());
    return files_[file]->name;
  }
  [[nodiscard]] const ServerStats& server_stats(std::uint32_t server) const {
    S3A_REQUIRE(server < servers_.size());
    return servers_[server]->stats;
  }
  [[nodiscard]] ServerStats aggregate_stats() const {
    ServerStats total;
    for (const auto& server : servers_) total += server->stats;
    return total;
  }

  /// Attaches (or detaches, with nullptr) the per-request observer.
  void set_observer(RequestObserver* observer) noexcept {
    observer_ = observer;
  }

  /// Bytes read from a file so far (query-segmentation database streaming).
  [[nodiscard]] std::uint64_t bytes_read(FileHandle file) const {
    S3A_REQUIRE(file < files_.size());
    return files_[file]->bytes_read;
  }

 private:
  struct ServerRequest {
    std::uint64_t pairs = 0;
    std::uint64_t bytes = 0;
    bool is_sync = false;
    bool is_read = false;
    net::EndpointId client = 0;
    sim::Gate* done = nullptr;
  };
  struct ActiveFault {
    ServerDegradation spec;
    bool stalled = false;  ///< one-shot stall already taken
  };
  struct Server {
    explicit Server(sim::Scheduler& scheduler) : queue(scheduler) {}
    sim::Channel<ServerRequest> queue;
    ServerStats stats;
    std::uint64_t dirty_bytes = 0;  ///< written since the last sync
    std::vector<ActiveFault> faults;
  };
  struct FileState {
    explicit FileState(std::string file_name) : name(std::move(file_name)) {}
    std::string name;
    FileImage image;
    std::uint64_t bytes_read = 0;
  };

  [[nodiscard]] FileState& file_state(FileHandle file) {
    S3A_REQUIRE(file < files_.size());
    return *files_[file];
  }

  /// RAII lease on a pooled `GroupScratch`.  One scratch is checked out per
  /// in-flight client operation (concurrent clients each hold their own)
  /// and returned — capacity intact — when the operation's coroutine frame
  /// is destroyed, after the fan-in completes.
  class ScratchLease {
   public:
    ScratchLease(Pfs& fs, GroupScratch& scratch) noexcept
        : fs_(&fs), scratch_(&scratch) {}
    ScratchLease(const ScratchLease&) = delete;
    ScratchLease& operator=(const ScratchLease&) = delete;
    ~ScratchLease() { fs_->free_scratch_.push_back(scratch_); }

    [[nodiscard]] GroupScratch& operator*() const noexcept { return *scratch_; }
    [[nodiscard]] GroupScratch* operator->() const noexcept { return scratch_; }

   private:
    Pfs* fs_;
    GroupScratch* scratch_;
  };

  [[nodiscard]] ScratchLease acquire_scratch() {
    if (free_scratch_.empty()) {
      scratch_pool_.push_back(std::make_unique<GroupScratch>());
      free_scratch_.push_back(scratch_pool_.back().get());
    }
    GroupScratch* scratch = free_scratch_.back();
    free_scratch_.pop_back();
    return ScratchLease(*this, *scratch);
  }

  [[nodiscard]] net::EndpointId server_endpoint(std::uint32_t server) const noexcept {
    return server_endpoint_base_ + server;
  }

  /// One write round trip to one server: ship header + data, enqueue for
  /// service, wait for the ack.  Awaited directly by strictly sequential
  /// paths (POSIX per-extent writes) and wrapped in `issue_write` for
  /// parallel fan-out.  Only the pair count and byte total cross the wire —
  /// the server models cost, not content — so callers that already know the
  /// request shape (a single-strip extent) skip decomposition entirely.
  sim::Task<void> write_one(std::uint32_t server, net::EndpointId client,
                            std::uint64_t pairs, std::uint64_t bytes) {
    const std::uint64_t wire_bytes =
        params_.request_header_bytes + params_.pair_header_bytes * pairs + bytes;
    co_await network_->transfer(client, server_endpoint(server), wire_bytes);
    sim::Gate serviced(*scheduler_);
    ServerRequest request{.pairs = pairs, .bytes = bytes,
                          .client = client, .done = &serviced};
    servers_[server]->queue.push(request);
    co_await serviced.wait();
    co_await network_->transfer(server_endpoint(server), client, params_.ack_bytes);
  }

  /// Adapter summing a scratch OL list into the (pairs, bytes) shape the
  /// round trip needs.  Not a coroutine: the sizes are latched here, so the
  /// returned task no longer references `pieces`.
  [[nodiscard]] sim::Task<void> write_one(std::uint32_t server,
                                          net::EndpointId client,
                                          const std::vector<ServerPiece>& pieces) {
    std::uint64_t bytes = 0;
    for (const ServerPiece& piece : pieces) bytes += piece.length;
    return write_one(server, client, pieces.size(), bytes);
  }

  /// Detached fan-out wrapper around `write_one` for multi-server writes.
  sim::Process issue_write(std::uint32_t server, net::EndpointId client,
                           const std::vector<ServerPiece>& pieces,
                           sim::WaitGroup& done) {
    co_await write_one(server, client, pieces);
    done.done();
  }

  /// Client side of one read request: headers out, service, data back.
  sim::Process issue_read(std::uint32_t server, net::EndpointId client,
                          const std::vector<ServerPiece>& pieces,
                          sim::WaitGroup& done) {
    std::uint64_t bytes = 0;
    for (const ServerPiece& piece : pieces) bytes += piece.length;
    const std::uint64_t pairs = pieces.size();
    const std::uint64_t request_bytes =
        params_.request_header_bytes + params_.pair_header_bytes * pairs;
    co_await network_->transfer(client, server_endpoint(server), request_bytes);
    sim::Gate serviced(*scheduler_);
    ServerRequest request{.pairs = pairs, .bytes = bytes,
                          .client = client, .done = &serviced};
    request.is_read = true;
    servers_[server]->queue.push(request);
    co_await serviced.wait();
    co_await network_->transfer(server_endpoint(server), client,
                                params_.ack_bytes + bytes);
    done.done();
  }

  sim::Process issue_sync(std::uint32_t server, net::EndpointId client,
                          sim::WaitGroup& done) {
    co_await network_->transfer(client, server_endpoint(server),
                                params_.request_header_bytes);
    sim::Gate serviced(*scheduler_);
    ServerRequest request{.is_sync = true, .client = client,
                          .done = &serviced};
    servers_[server]->queue.push(request);
    co_await serviced.wait();
    co_await network_->transfer(server_endpoint(server), client, params_.ack_bytes);
    done.done();
  }

  /// Degradation active at `now`: one-shot stall (taken on the first request
  /// serviced at/after the fault start) plus a combined service multiplier.
  sim::Task<double> apply_degradations(Server& server) {
    double factor = 1.0;
    for (ActiveFault& fault : server.faults) {
      if (scheduler_->now() < fault.spec.from) continue;
      if (!fault.stalled) {
        fault.stalled = true;
        if (fault.spec.stall > 0) {
          co_await scheduler_->delay(fault.spec.stall);
          server.stats.busy += fault.spec.stall;
        }
      }
      factor *= fault.spec.service_factor;
    }
    co_return factor;
  }

  [[nodiscard]] static sim::Time degrade(sim::Time service,
                                         double factor) noexcept {
    if (factor == 1.0) return service;
    return static_cast<sim::Time>(
        std::llround(static_cast<double>(service) * factor));
  }

  /// Bookkeeping shared by both service paths; returns the service time.
  [[nodiscard]] sim::Time account_request(Server& server,
                                          const ServerRequest& request,
                                          double factor) {
    if (request.is_sync) {
      const sim::Time service =
          degrade(params_.disk.sync_service_time(server.dirty_bytes), factor);
      server.dirty_bytes = 0;
      ++server.stats.syncs;
      server.stats.busy += service;
      return service;
    }
    if (request.is_read) {
      // Reads have their own cost knobs (defaulting to the write model)
      // and leave no dirty data.
      const sim::Time service = degrade(
          params_.disk.read_service_time(request.pairs, request.bytes), factor);
      ++server.stats.reads;
      server.stats.read_bytes += request.bytes;
      server.stats.busy += service;
      return service;
    }
    const sim::Time service = degrade(
        params_.disk.write_service_time(request.pairs, request.bytes), factor);
    server.dirty_bytes += request.bytes;
    ++server.stats.requests;
    server.stats.pairs += request.pairs;
    server.stats.bytes += request.bytes;
    server.stats.busy += service;
    return service;
  }

  /// Server process: FIFO service of queued requests.  The server sleeps
  /// through each service interval (an arithmetic busy-until clock would
  /// assign wakeup sequence numbers at enqueue time instead of completion
  /// time and flip same-instant tie-breaks, perturbing run results).  A
  /// healthy server skips the degradation coroutine entirely: with no
  /// faults it never suspends, so the fast path is observationally
  /// identical and saves one frame per serviced request.
  sim::Process server_loop(std::uint32_t index) {
    Server& server = *servers_[index];
    while (auto request = co_await server.queue.pop()) {
      const double factor =
          server.faults.empty() ? 1.0 : co_await apply_degradations(server);
      const sim::Time service = account_request(server, *request, factor);
      const sim::Time start = scheduler_->now();
      co_await scheduler_->delay(service);
      if (observer_ != nullptr) {
        const char kind =
            request->is_sync ? 's' : (request->is_read ? 'r' : 'w');
        observer_->on_request_serviced(index, kind, request->pairs,
                                       request->bytes, start,
                                       scheduler_->now());
      }
      request->done->open();
    }
  }

  sim::Scheduler* scheduler_;
  net::Network* network_;
  PfsParams params_;
  net::EndpointId server_endpoint_base_;
  RequestObserver* observer_ = nullptr;
  std::vector<std::unique_ptr<Server>> servers_;
  std::vector<std::unique_ptr<FileState>> files_;
  /// Pool of extent-decomposition scratches (stable addresses; leases hand
  /// out raw pointers).  Grows to the peak number of concurrent client
  /// operations and is reused forever after.
  std::vector<std::unique_ptr<GroupScratch>> scratch_pool_;
  std::vector<GroupScratch*> free_scratch_;
};

}  // namespace s3asim::pfs
