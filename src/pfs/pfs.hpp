#pragma once
#define S3ASIM_PFS_PFS_HPP_INCLUDED

/// \file pfs.hpp
/// The simulated parallel file system: N server processes behind network
/// endpoints, a metadata server, striped file layout, and client-side write
/// paths (contiguous, POSIX per-extent, native list I/O).
///
/// PVFS2 properties modeled (paper §3.1):
///  * no locking and no atomicity for overlapping writes — requests from
///    different clients interleave freely with no false-sharing
///    serialization;
///  * native noncontiguous support: one list-I/O request ships an arbitrary
///    OL (offset-length) list to each touched server;
///  * server-side costs: per-request overhead, per-OL-pair overhead, byte
///    bandwidth, and an explicit sync (flush) request.
///
/// Optional client-side cache layer (DESIGN.md §10): when
/// `PfsParams::cache` is enabled, every client path absorbs writes into a
/// per-client write-back `ClientCache` guarded by byte-range lease tokens
/// granted by the metadata server (`TokenManager` + a serialized token
/// service).  Off by default — the direct-dispatch paths above are then
/// byte-identical to pre-cache builds.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "pfs/cache.hpp"
#include "pfs/disk.hpp"
#include "pfs/file_image.hpp"
#include "pfs/layout.hpp"
#include "pfs/pfs_types.hpp"
#include "pfs/sieve.hpp"
#include "sim/channel.hpp"
#include "sim/gate.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"
#include "sim/wait_group.hpp"
#include "util/require.hpp"

namespace s3asim::pfs {

class Pfs {
 public:
  /// Servers occupy network endpoints [server_endpoint_base,
  /// server_endpoint_base + layout.server_count()).  Server 0 doubles as
  /// the metadata server (matching the paper's configuration).
  Pfs(sim::Scheduler& scheduler, net::Network& network,
      net::EndpointId server_endpoint_base, PfsParams params = {})
      : scheduler_(&scheduler),
        network_(&network),
        params_(params),
        server_endpoint_base_(server_endpoint_base) {
    const std::uint32_t count = params_.layout.server_count();
    S3A_REQUIRE(server_endpoint_base + count <= network.endpoint_count());
    servers_.reserve(count);
    for (std::uint32_t s = 0; s < count; ++s) {
      servers_.push_back(std::make_unique<Server>(scheduler));
      scheduler_->spawn(server_loop(s));
    }
    for (const ServerDegradation& degradation : params_.degradations) {
      S3A_REQUIRE_MSG(degradation.server < count,
                      "degraded server id out of range");
      S3A_REQUIRE(degradation.service_factor >= 1.0);
      servers_[degradation.server]->faults.push_back(
          ActiveFault{degradation, false});
    }
    if (params_.cache.enabled()) {
      const CacheParams& cache = params_.cache;
      S3A_REQUIRE_MSG(cache.block_bytes > 0 &&
                          params_.layout.strip_size() % cache.block_bytes == 0,
                      "cache_block must divide the layout strip size");
      S3A_REQUIRE_MSG(cache.token_bytes >= cache.block_bytes &&
                          cache.token_bytes % cache.block_bytes == 0,
                      "token_granularity must be a multiple of cache_block");
      S3A_REQUIRE_MSG(cache.capacity_bytes >= cache.block_bytes,
                      "cache_capacity must hold at least one cache block");
      tokens_ = std::make_unique<TokenManager>();
      token_service_ = std::make_unique<sim::Resource>(scheduler, 1);
    }
  }
  Pfs(const Pfs&) = delete;
  Pfs& operator=(const Pfs&) = delete;

  [[nodiscard]] const Layout& layout() const noexcept { return params_.layout; }
  [[nodiscard]] const PfsParams& params() const noexcept { return params_; }

  /// Stops all server loops (call after the application has quiesced so the
  /// scheduler can drain to zero live processes).
  void shutdown() {
    for (const auto& server : servers_) server->queue.close();
  }

  /// Creates a file; models a metadata round trip from `client` to the
  /// metadata server (server 0).
  sim::Task<FileHandle> create_file(net::EndpointId client, std::string name) {
    co_await network_->transfer(client, server_endpoint_base_,
                                params_.request_header_bytes);
    account_metadata_op();
    co_await scheduler_->delay(params_.metadata_op);
    co_await network_->transfer(server_endpoint_base_, client, params_.ack_bytes);
    files_.push_back(std::make_unique<FileState>(std::move(name)));
    co_return static_cast<FileHandle>(files_.size() - 1);
  }

  /// One contiguous write: at most one OL pair per server, all servers in
  /// parallel; completes when the slowest server acknowledges.
  sim::Task<void> write_contiguous(FileHandle file, net::EndpointId client,
                                   std::uint64_t offset, std::uint64_t length,
                                   std::uint32_t writer = 0,
                                   std::uint64_t query = 0) {
    const Extent one{offset, length};
    co_await write_list(file, client, std::span<const Extent>(&one, 1), writer,
                        query);
  }

  /// Native list I/O: every extent decomposed and grouped per server; one
  /// request per touched server carrying that server's whole OL list; all
  /// servers proceed in parallel.  The extents may live anywhere that
  /// outlives the call (vector, stack array); decomposition goes through a
  /// pooled scratch and completion through one WaitGroup, so the whole
  /// fan-out allocates nothing in steady state.
  /// Dispatcher, not a coroutine: the direct path keeps the exact frame
  /// layout (and frame-pool behavior) of pre-cache builds when the cache
  /// is off.
  [[nodiscard]] sim::Task<void> write_list(FileHandle file,
                                           net::EndpointId client,
                                           std::span<const Extent> extents,
                                           std::uint32_t writer = 0,
                                           std::uint64_t query = 0) {
    if (cache_enabled())
      return cache_write_list(file, client, extents, writer, query);
    return direct_write_list(file, client, extents, writer, query);
  }

 private:
  sim::Task<void> direct_write_list(FileHandle file, net::EndpointId client,
                                    std::span<const Extent> extents,
                                    std::uint32_t writer, std::uint64_t query) {
    FileState& state = file_state(file);
    ScratchLease scratch = acquire_scratch();
    params_.layout.group_by_server(extents, *scratch);
    sim::WaitGroup pending(*scheduler_);
    for (std::uint32_t s = 0; s < scratch->per_server.size(); ++s) {
      if (scratch->per_server[s].empty()) continue;
      pending.add();
      scheduler_->spawn(issue_write(s, client, scratch->per_server[s], pending));
    }
    co_await pending.wait();

    for (const Extent& extent : extents)
      state.image.record_write(extent.offset, extent.length, writer, query);
  }

  /// Cache path: one batched lease acquisition for the whole OL list, then
  /// every extent lands in the write-back cache — servers see nothing until
  /// eviction, sync, revocation, or close.
  sim::Task<void> cache_write_list(FileHandle file, net::EndpointId client,
                                   std::span<const Extent> extents,
                                   std::uint32_t writer, std::uint64_t query) {
    co_await absorb_batch(file, client, extents, writer, query);
    co_await drain_evictions(client);
  }

 public:
  /// Read of a contiguous range: one request per touched server carrying
  /// only headers out, data back.  Used by query-segmentation tools that
  /// stream database fragments from the file system.
  [[nodiscard]] sim::Task<void> read_contiguous(FileHandle file,
                                                net::EndpointId client,
                                                std::uint64_t offset,
                                                std::uint64_t length) {
    if (cache_enabled()) return cache_read(file, client, offset, length);
    return direct_read_contiguous(file, client, offset, length);
  }

  /// Native noncontiguous list read — the read twin of `write_list`: every
  /// extent decomposed and grouped per server, one request per touched
  /// server carrying that server's whole OL list, data back in parallel.
  /// Definitions live in pfs_read.hpp (split to keep this header focused
  /// on the write paths and server machinery).
  [[nodiscard]] sim::Task<void> read_list(FileHandle file,
                                          net::EndpointId client,
                                          std::span<const Extent> extents);

  /// Data-sieving read (docs/IO_MODEL.md §4): the extent list is covered by
  /// contiguous windows of at most `buffer_bytes`; each window is one
  /// contiguous transfer (amplified by its holes) issued sequentially — the
  /// single client-side sieve buffer is reused per window.
  sim::Task<void> read_sieved(FileHandle file, net::EndpointId client,
                              std::span<const Extent> extents,
                              std::uint64_t buffer_bytes);

  /// Data-sieving write: each window containing holes is read back first
  /// (hole protection), then written as one contiguous transfer.  Only the
  /// real extents are recorded in the file image — the hole bytes rewrite
  /// the contents the pre-read fetched.
  sim::Task<void> write_sieved(FileHandle file, net::EndpointId client,
                               std::span<const Extent> extents,
                               std::uint64_t buffer_bytes,
                               std::uint32_t writer = 0,
                               std::uint64_t query = 0);

  /// Client-side sieve counters (published as `pfs.sieve.*` when used).
  [[nodiscard]] const SieveStats& sieve_stats() const noexcept {
    return sieve_;
  }

 private:
  sim::Task<void> direct_read_contiguous(FileHandle file,
                                         net::EndpointId client,
                                         std::uint64_t offset,
                                         std::uint64_t length) {
    FileState& state = file_state(file);
    state.bytes_read += length;
    const Extent one{offset, length};
    ScratchLease scratch = acquire_scratch();
    params_.layout.group_by_server(std::span<const Extent>(&one, 1), *scratch);
    sim::WaitGroup pending(*scheduler_);
    for (std::uint32_t s = 0; s < scratch->per_server.size(); ++s) {
      if (scratch->per_server[s].empty()) continue;
      pending.add();
      scheduler_->spawn(issue_read(s, client, scratch->per_server[s], pending));
    }
    co_await pending.wait();
  }

 public:
  /// POSIX-style noncontiguous write: one fully-synchronous round trip per
  /// extent, in order — "the MPI_Write() call without optimization".  One
  /// scratch and one WaitGroup carry the whole extent loop.
  [[nodiscard]] sim::Task<void> write_posix(FileHandle file,
                                            net::EndpointId client,
                                            std::span<const Extent> extents,
                                            std::uint32_t writer = 0,
                                            std::uint64_t query = 0) {
    if (cache_enabled())
      return cache_write_posix(file, client, extents, writer, query);
    return direct_write_posix(file, client, extents, writer, query);
  }

 private:
  /// Cache path keeps POSIX per-call semantics: each extent checks (and
  /// pays for) its lease separately — the round-trip cadence that token
  /// contention punishes — but the data itself is absorbed write-back.
  sim::Task<void> cache_write_posix(FileHandle file, net::EndpointId client,
                                    std::span<const Extent> extents,
                                    std::uint32_t writer, std::uint64_t query) {
    for (const Extent& extent : extents)
      co_await absorb_batch(file, client, std::span<const Extent>(&extent, 1),
                            writer, query);
    co_await drain_evictions(client);
  }

  sim::Task<void> direct_write_posix(FileHandle file, net::EndpointId client,
                                     std::span<const Extent> extents,
                                     std::uint32_t writer,
                                     std::uint64_t query) {
    FileState& state = file_state(file);
    const std::uint64_t strip = params_.layout.strip_size();
    for (const Extent& extent : extents) {
      // The common case — an extent inside one strip — is a strictly
      // sequential round trip to one server carrying one OL pair, and is
      // awaited directly: no decomposition scratch, no detached process, no
      // completion latch.  Only a strip-crossing extent needs the general
      // grouping (and, when it touches several servers, the parallel
      // fan-out).
      if (extent.length != 0 && extent.offset % strip + extent.length <= strip) {
        co_await write_one(params_.layout.server_of(extent.offset), client,
                           /*pairs=*/1, extent.length);
      } else {
        ScratchLease scratch = acquire_scratch();
        params_.layout.group_by_server(std::span<const Extent>(&extent, 1),
                                       *scratch);
        std::uint32_t touched = 0;
        std::uint32_t only = 0;
        for (std::uint32_t s = 0; s < scratch->per_server.size(); ++s) {
          if (scratch->per_server[s].empty()) continue;
          ++touched;
          only = s;
        }
        if (touched == 1) {
          co_await write_one(only, client, scratch->per_server[only]);
        } else {
          sim::WaitGroup pending(*scheduler_);
          for (std::uint32_t s = 0; s < scratch->per_server.size(); ++s) {
            if (scratch->per_server[s].empty()) continue;
            pending.add();
            scheduler_->spawn(
                issue_write(s, client, scratch->per_server[s], pending));
          }
          co_await pending.wait();
        }
      }
      state.image.record_write(extent.offset, extent.length, writer, query);
    }
  }

 public:
  /// MPI_File_sync: a flush request to every server, in parallel.  With the
  /// cache enabled, the client first writes back its dirty data for the
  /// file (one coalesced list write), then issues the server-side flush.
  [[nodiscard]] sim::Task<void> sync(FileHandle file, net::EndpointId client) {
    if (cache_enabled()) return cache_sync(file, client);
    return direct_sync(file, client);
  }

 private:
  sim::Task<void> cache_sync(FileHandle file, net::EndpointId client) {
    WritebackRun run;
    client_cache(client).flush_file(file, run);
    if (!run.extents.empty()) co_await writeback_run(client, run);
    co_await direct_sync(file, client);
  }

  sim::Task<void> direct_sync(FileHandle file, net::EndpointId client) {
    (void)file;  // PVFS2 sync flushes the server-side streams
    sim::WaitGroup pending(*scheduler_);
    for (std::uint32_t s = 0; s < servers_.size(); ++s) {
      pending.add();
      scheduler_->spawn(issue_sync(s, client, pending));
    }
    co_await pending.wait();
  }

 public:

  [[nodiscard]] const FileImage& image(FileHandle file) const {
    S3A_REQUIRE(file < files_.size());
    return files_[file]->image;
  }
  [[nodiscard]] const std::string& file_name(FileHandle file) const {
    S3A_REQUIRE(file < files_.size());
    return files_[file]->name;
  }
  [[nodiscard]] const ServerStats& server_stats(std::uint32_t server) const {
    S3A_REQUIRE(server < servers_.size());
    return servers_[server]->stats;
  }
  [[nodiscard]] ServerStats aggregate_stats() const {
    ServerStats total;
    for (const auto& server : servers_) total += server->stats;
    return total;
  }

  /// Attaches (or detaches, with nullptr) the per-request observer.
  void set_observer(RequestObserver* observer) noexcept {
    observer_ = observer;
  }

  /// Bytes read from a file so far (query-segmentation database streaming).
  [[nodiscard]] std::uint64_t bytes_read(FileHandle file) const {
    S3A_REQUIRE(file < files_.size());
    return files_[file]->bytes_read;
  }

  /// --- Client-side cache layer (DESIGN.md §10). --------------------------

  [[nodiscard]] bool cache_enabled() const noexcept {
    return params_.cache.enabled();
  }

  /// Cache/token counters summed over every client cache plus the token
  /// manager (`ServerStats`-style aggregation; published as `pfs.cache.*`).
  [[nodiscard]] CacheStats cache_stats() const {
    CacheStats total;
    for (const auto& [client, cache] : caches_) total += cache->stats();
    if (tokens_ != nullptr) tokens_->add_counters(total);
    return total;
  }

  /// The lease table, for tests and diagnostics (cache-enabled only).
  [[nodiscard]] const TokenManager& token_manager() const {
    S3A_REQUIRE(tokens_ != nullptr);
    return *tokens_;
  }

  /// Close-time flush: writes back every dirty block `client` still holds,
  /// drops its residency, and returns its leases with one metadata round
  /// trip.  No-op when the cache is disabled or the client never touched
  /// it.  Every client must call this before `shutdown` so no dirty data is
  /// lost (the runtimes hook it into rank teardown).
  sim::Task<void> release_client(net::EndpointId client) {
    if (!cache_enabled()) co_return;
    const auto it = caches_.find(client);
    if (it == caches_.end()) co_return;
    std::vector<WritebackRun> runs;
    it->second->close_all(runs);
    for (const WritebackRun& run : runs)
      if (!run.extents.empty()) co_await writeback_run(client, run);
    tokens_->release_client(static_cast<std::uint32_t>(client));
    co_await network_->transfer(client, server_endpoint_base_,
                                params_.request_header_bytes);
    account_metadata_op();
    co_await scheduler_->delay(params_.metadata_op);
    co_await network_->transfer(server_endpoint_base_, client,
                                params_.ack_bytes);
  }

 private:
  struct ServerRequest {
    std::uint64_t pairs = 0;
    std::uint64_t bytes = 0;
    bool is_sync = false;
    bool is_read = false;
    net::EndpointId client = 0;
    sim::Gate* done = nullptr;
  };
  struct ActiveFault {
    ServerDegradation spec;
    bool stalled = false;  ///< one-shot stall already taken
  };
  struct Server {
    explicit Server(sim::Scheduler& scheduler) : queue(scheduler) {}
    sim::Channel<ServerRequest> queue;
    ServerStats stats;
    std::uint64_t dirty_bytes = 0;  ///< written since the last sync
    std::vector<ActiveFault> faults;
  };
  struct FileState {
    explicit FileState(std::string file_name) : name(std::move(file_name)) {}
    std::string name;
    FileImage image;
    std::uint64_t bytes_read = 0;
  };

  [[nodiscard]] FileState& file_state(FileHandle file) {
    S3A_REQUIRE(file < files_.size());
    return *files_[file];
  }

  /// RAII lease on a pooled `GroupScratch`.  One scratch is checked out per
  /// in-flight client operation (concurrent clients each hold their own)
  /// and returned — capacity intact — when the operation's coroutine frame
  /// is destroyed, after the fan-in completes.
  class ScratchLease {
   public:
    ScratchLease(Pfs& fs, GroupScratch& scratch) noexcept
        : fs_(&fs), scratch_(&scratch) {}
    ScratchLease(const ScratchLease&) = delete;
    ScratchLease& operator=(const ScratchLease&) = delete;
    ~ScratchLease() { fs_->free_scratch_.push_back(scratch_); }

    [[nodiscard]] GroupScratch& operator*() const noexcept { return *scratch_; }
    [[nodiscard]] GroupScratch* operator->() const noexcept { return scratch_; }

   private:
    Pfs* fs_;
    GroupScratch* scratch_;
  };

  [[nodiscard]] ScratchLease acquire_scratch() {
    if (free_scratch_.empty()) {
      scratch_pool_.push_back(std::make_unique<GroupScratch>());
      free_scratch_.push_back(scratch_pool_.back().get());
    }
    GroupScratch* scratch = free_scratch_.back();
    free_scratch_.pop_back();
    return ScratchLease(*this, *scratch);
  }

  [[nodiscard]] net::EndpointId server_endpoint(std::uint32_t server) const noexcept {
    return server_endpoint_base_ + server;
  }

  /// One write round trip to one server: ship header + data, enqueue for
  /// service, wait for the ack.  Awaited directly by strictly sequential
  /// paths (POSIX per-extent writes) and wrapped in `issue_write` for
  /// parallel fan-out.  Only the pair count and byte total cross the wire —
  /// the server models cost, not content — so callers that already know the
  /// request shape (a single-strip extent) skip decomposition entirely.
  sim::Task<void> write_one(std::uint32_t server, net::EndpointId client,
                            std::uint64_t pairs, std::uint64_t bytes) {
    const std::uint64_t wire_bytes =
        params_.request_header_bytes + params_.pair_header_bytes * pairs + bytes;
    co_await network_->transfer(client, server_endpoint(server), wire_bytes);
    sim::Gate serviced(*scheduler_);
    ServerRequest request{.pairs = pairs, .bytes = bytes,
                          .client = client, .done = &serviced};
    servers_[server]->queue.push(request);
    co_await serviced.wait();
    co_await network_->transfer(server_endpoint(server), client, params_.ack_bytes);
  }

  /// Adapter summing a scratch OL list into the (pairs, bytes) shape the
  /// round trip needs.  Not a coroutine: the sizes are latched here, so the
  /// returned task no longer references `pieces`.
  [[nodiscard]] sim::Task<void> write_one(std::uint32_t server,
                                          net::EndpointId client,
                                          const std::vector<ServerPiece>& pieces) {
    std::uint64_t bytes = 0;
    for (const ServerPiece& piece : pieces) bytes += piece.length;
    return write_one(server, client, pieces.size(), bytes);
  }

  /// Detached fan-out wrapper around `write_one` for multi-server writes.
  sim::Process issue_write(std::uint32_t server, net::EndpointId client,
                           const std::vector<ServerPiece>& pieces,
                           sim::WaitGroup& done) {
    co_await write_one(server, client, pieces);
    done.done();
  }

  /// Client side of one read request: headers out, service, data back.
  sim::Process issue_read(std::uint32_t server, net::EndpointId client,
                          const std::vector<ServerPiece>& pieces,
                          sim::WaitGroup& done) {
    std::uint64_t bytes = 0;
    for (const ServerPiece& piece : pieces) bytes += piece.length;
    const std::uint64_t pairs = pieces.size();
    const std::uint64_t request_bytes =
        params_.request_header_bytes + params_.pair_header_bytes * pairs;
    co_await network_->transfer(client, server_endpoint(server), request_bytes);
    sim::Gate serviced(*scheduler_);
    ServerRequest request{.pairs = pairs, .bytes = bytes,
                          .client = client, .done = &serviced};
    request.is_read = true;
    servers_[server]->queue.push(request);
    co_await serviced.wait();
    co_await network_->transfer(server_endpoint(server), client,
                                params_.ack_bytes + bytes);
    done.done();
  }

  sim::Process issue_sync(std::uint32_t server, net::EndpointId client,
                          sim::WaitGroup& done) {
    co_await network_->transfer(client, server_endpoint(server),
                                params_.request_header_bytes);
    sim::Gate serviced(*scheduler_);
    ServerRequest request{.is_sync = true, .client = client,
                          .done = &serviced};
    servers_[server]->queue.push(request);
    co_await serviced.wait();
    co_await network_->transfer(server_endpoint(server), client, params_.ack_bytes);
    done.done();
  }

  /// Degradation active at `now`: one-shot stall (taken on the first request
  /// serviced at/after the fault start) plus a combined service multiplier.
  sim::Task<double> apply_degradations(Server& server) {
    double factor = 1.0;
    for (ActiveFault& fault : server.faults) {
      if (scheduler_->now() < fault.spec.from) continue;
      if (!fault.stalled) {
        fault.stalled = true;
        if (fault.spec.stall > 0) {
          co_await scheduler_->delay(fault.spec.stall);
          server.stats.busy += fault.spec.stall;
        }
      }
      factor *= fault.spec.service_factor;
    }
    co_return factor;
  }

  [[nodiscard]] static sim::Time degrade(sim::Time service,
                                         double factor) noexcept {
    if (factor == 1.0) return service;
    return static_cast<sim::Time>(
        std::llround(static_cast<double>(service) * factor));
  }

  /// Bookkeeping shared by both service paths; returns the service time.
  [[nodiscard]] sim::Time account_request(Server& server,
                                          const ServerRequest& request,
                                          double factor) {
    if (request.is_sync) {
      const sim::Time service =
          degrade(params_.disk.sync_service_time(server.dirty_bytes), factor);
      server.dirty_bytes = 0;
      ++server.stats.syncs;
      server.stats.busy += service;
      return service;
    }
    if (request.is_read) {
      // Reads have their own cost knobs (defaulting to the write model)
      // and leave no dirty data.
      const sim::Time service = degrade(
          params_.disk.read_service_time(request.pairs, request.bytes), factor);
      ++server.stats.reads;
      server.stats.read_pairs += request.pairs;
      server.stats.read_bytes += request.bytes;
      server.stats.busy += service;
      return service;
    }
    const sim::Time service = degrade(
        params_.disk.write_service_time(request.pairs, request.bytes), factor);
    server.dirty_bytes += request.bytes;
    ++server.stats.requests;
    server.stats.pairs += request.pairs;
    server.stats.bytes += request.bytes;
    server.stats.busy += service;
    return service;
  }

  /// Server process: FIFO service of queued requests.  The server sleeps
  /// through each service interval (an arithmetic busy-until clock would
  /// assign wakeup sequence numbers at enqueue time instead of completion
  /// time and flip same-instant tie-breaks, perturbing run results).  A
  /// healthy server skips the degradation coroutine entirely: with no
  /// faults it never suspends, so the fast path is observationally
  /// identical and saves one frame per serviced request.
  sim::Process server_loop(std::uint32_t index) {
    Server& server = *servers_[index];
    while (auto request = co_await server.queue.pop()) {
      const double factor =
          server.faults.empty() ? 1.0 : co_await apply_degradations(server);
      const sim::Time service = account_request(server, *request, factor);
      const sim::Time start = scheduler_->now();
      co_await scheduler_->delay(service);
      if (observer_ != nullptr) {
        const char kind =
            request->is_sync ? 's' : (request->is_read ? 'r' : 'w');
        observer_->on_request_serviced(index, kind, request->pairs,
                                       request->bytes, start,
                                       scheduler_->now());
      }
      request->done->open();
    }
  }

  /// --- Cache-layer glue (all private; DESIGN.md §10). --------------------

  /// Books one metadata operation on server 0 (the metadata server).
  /// Metadata time is tracked apart from `busy` — see ServerStats.
  void account_metadata_op() {
    Server& meta = *servers_[0];
    ++meta.stats.metadata_ops;
    meta.stats.metadata_busy += params_.metadata_op;
  }

  /// The lazily-created cache of one client endpoint (deterministic map).
  [[nodiscard]] ClientCache& client_cache(net::EndpointId client) {
    auto& slot = caches_[client];
    if (slot == nullptr) slot = std::make_unique<ClientCache>(params_.cache);
    return *slot;
  }

  using LeaseSpan = std::pair<std::uint64_t, std::uint64_t>;

  /// Rounds each extent out to lease granularity and returns the merged,
  /// ascending spans `client` does not yet hold in `mode` (whole-span
  /// check; the read path uses the granule-precise `read_lease_spans`).
  [[nodiscard]] std::vector<LeaseSpan> uncovered_spans(
      FileHandle file, net::EndpointId client, TokenMode mode,
      std::span<const Extent> extents) const;

  /// The lease-acquisition round trip (caller holds the token service):
  /// one request to the metadata server carrying one OL pair per span, the
  /// metadata op, any revocation round trips, then the grant ack.
  sim::Task<void> grant_spans(FileHandle file, net::EndpointId client,
                              TokenMode mode,
                              const std::vector<LeaseSpan>& spans);

  /// Write-lease acquisition + cache absorption for one extent batch.  The
  /// whole lease-check → grant → absorb sequence runs under the serialized
  /// token service when a grant is needed, so a competing client can never
  /// revoke between our grant and our absorb; when the leases are already
  /// held, check and absorb are synchronous (no suspension in between).
  sim::Task<void> absorb_batch(FileHandle file, net::EndpointId client,
                               std::span<const Extent> extents,
                               std::uint32_t writer, std::uint64_t query);

  /// Cached read of one contiguous range: delegates to `cache_read_list`
  /// (pfs_read.hpp), the shared lease-symmetric read path.
  sim::Task<void> cache_read(FileHandle file, net::EndpointId client,
                             std::uint64_t offset, std::uint64_t length);

  /// Cached list read: read-lease acquisition symmetric with
  /// `absorb_batch` (granule-precise spans, double-checked under the
  /// serialized token service), cache probe per extent, then one parallel
  /// fetch of only the missing pieces.  Defined in pfs_read.hpp.
  sim::Task<void> cache_read_list(FileHandle file, net::EndpointId client,
                                  std::span<const Extent> extents);

  /// Direct (cache-off) list read; accounts `bytes_read`.
  sim::Task<void> direct_read_list(FileHandle file, net::EndpointId client,
                                   std::span<const Extent> extents);

  /// Granule-precise read-lease gaps: unlike the write path's whole-span
  /// check, an extent spanning several token granules only requests the
  /// granules the client does not already hold (partial holds are the
  /// common case for shared read leases).
  [[nodiscard]] std::vector<LeaseSpan> read_lease_spans(
      FileHandle file, net::EndpointId client,
      std::span<const Extent> extents) const;

  /// One parallel read fan-out over the touched servers (no bytes_read
  /// accounting — that belongs to the dispatching read path).
  sim::Task<void> read_fanout(net::EndpointId client,
                              std::span<const Extent> extents);

  /// One parallel write fan-out (cost only; image recording is the
  /// caller's job).
  sim::Task<void> write_fanout(net::EndpointId client,
                               std::span<const Extent> extents);

  /// One revocation round trip: metadata server → victim callback, the
  /// victim's dirty data in the range written back, victim → metadata ack.
  sim::Task<void> revoke_one(FileHandle file,
                             const TokenManager::Revocation& revocation);

  /// Ships one coalesced writeback run as a native list write (the data was
  /// recorded in the file image at absorb time).
  sim::Task<void> writeback_run(net::EndpointId client,
                                const WritebackRun& run);

  /// Flush-behind eviction loop: while over capacity, the LRU block's
  /// contiguous dirty run goes back to the servers in one list write.
  sim::Task<void> drain_evictions(net::EndpointId client);

  sim::Scheduler* scheduler_;
  net::Network* network_;
  PfsParams params_;
  net::EndpointId server_endpoint_base_;
  RequestObserver* observer_ = nullptr;
  std::vector<std::unique_ptr<Server>> servers_;
  std::vector<std::unique_ptr<FileState>> files_;
  /// Pool of extent-decomposition scratches (stable addresses; leases hand
  /// out raw pointers).  Grows to the peak number of concurrent client
  /// operations and is reused forever after.
  std::vector<std::unique_ptr<GroupScratch>> scratch_pool_;
  std::vector<GroupScratch*> free_scratch_;
  /// Cache layer (null unless params_.cache.enabled()).  The token service
  /// is a capacity-1 resource serializing metadata-server lease traffic;
  /// client caches are keyed by endpoint in a deterministic map.
  std::unique_ptr<TokenManager> tokens_;
  std::unique_ptr<sim::Resource> token_service_;
  std::map<net::EndpointId, std::unique_ptr<ClientCache>> caches_;
  /// Data-sieving counters (client side, aggregate over all clients).
  SieveStats sieve_;
};

}  // namespace s3asim::pfs

// Out-of-class definitions of the read-path and data-sieving members
// (kept in a separate header so each file stays within the source-size
// hygiene budget).
#include "pfs/pfs_read.hpp"  // IWYU pragma: keep
