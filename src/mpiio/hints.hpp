#pragma once

/// \file hints.hpp
/// MPI-IO hint set (the subset S3aSim exposes; paper §3: "MPI-IO hints"
/// are one of the user-customizable inputs).

#include <cstdint>

#include "sim/time.hpp"

namespace s3asim::mpiio {

/// How a collective write is executed internally.
enum class CollectiveAlgorithm {
  /// ROMIO's default generic collective: two-phase I/O (extent allgather,
  /// data exchange to aggregators, large contiguous aggregator writes).
  TwoPhase,
  /// The alternative the paper's conclusion proposes: every process writes
  /// its own extents with native list I/O, bracketed by barriers ("a
  /// collective I/O method implemented with list I/O and forced
  /// synchronization").
  ListWithSync,
};

/// How an independent noncontiguous access (read or write) is executed —
/// the ROMIO ADIO choices of Thakur/Gropp/Lusk (docs/IO_MODEL.md §4).
enum class NoncontigMethod {
  /// One synchronous contiguous transfer per extent ("MPI_Write() without
  /// optimization").
  Posix,
  /// PVFS2-native list I/O: one batched request per touched server.
  ListIo,
  /// ROMIO data sieving: contiguous sieve-buffer windows; holes amplify
  /// reads, and sieved writes pre-read windows containing holes
  /// (read-modify-write).  Buffer size via `Hints::sieve_buffer_bytes`.
  Sieve,
};

struct Hints {
  CollectiveAlgorithm collective_algorithm = CollectiveAlgorithm::TwoPhase;
  /// Number of collective-buffering aggregator nodes (ROMIO `cb_nodes`);
  /// 0 means "all participants" (ROMIO's PVFS2 default).
  std::uint32_t cb_nodes = 0;
  /// ROMIO `cb_buffer_size`: the two-phase exchange proceeds in rounds of
  /// at most this many bytes per aggregator.
  std::uint64_t cb_buffer_size = 4u * 1024 * 1024;
  /// Align two-phase file domains to file-system strip boundaries
  /// (ROMIO/PVFS2 tuning).
  bool align_domains_to_strips = true;
  /// Data-sieving buffer size (ROMIO `ind_rd_buffer_size`): the window an
  /// independent sieved access transfers per round trip.  Config key
  /// `sieve_buffer`, CLI `--sieve-buffer`.
  std::uint64_t sieve_buffer_bytes = 4u * 1024 * 1024;
  /// Per-participant, per-round implementation overhead of ROMIO's generic
  /// two-phase path (buffer management, datatype processing, alltoallv
  /// control traffic, request bookkeeping at high process counts).
  /// Calibrated against the paper's measurement that two-phase was "not as
  /// efficient as list I/O with synchronization in almost all of our test
  /// cases" (§4/§5); the ListWithSync algorithm does not pay it.
  sim::Time two_phase_round_overhead = sim::milliseconds(700);
};

}  // namespace s3asim::mpiio
